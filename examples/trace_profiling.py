#!/usr/bin/env python3
"""Trace-driven profiling (the paper's second evaluation methodology).

Shows the offline path end to end:

1. profile the built-in synthetic trace workloads (the stand-ins for
   LuxMark, BulletPhysics, GLBench, face detection, ...);
2. write one trace to disk in the text format and read it back;
3. define a *custom* synthetic profile and see how its mask pattern
   family decides whether BCC is enough or SCC is needed.

Run:  python examples/trace_profiling.py
"""

import tempfile
from pathlib import Path

from repro.analysis.report import format_table
from repro.trace import (
    PatternFamily,
    SyntheticProfile,
    generate_trace_list,
    load_trace,
    profile_trace,
    trace_events,
    trace_names,
    write_trace,
)


def profile_builtin_traces():
    rows = []
    for name in trace_names():
        profile = profile_trace(name, trace_events(name))
        rows.append([
            name,
            f"{profile.simd_efficiency:.3f}",
            "divergent" if profile.divergent else "coherent",
            f"{profile.bcc_reduction_pct:.1f}%",
            f"{profile.scc_reduction_pct:.1f}%",
        ])
    print(format_table(
        ["trace", "SIMD eff", "class", "BCC reduction", "SCC reduction"],
        rows,
        title="Built-in synthetic trace workloads (paper Section 5.1)",
    ))


def round_trip_a_trace():
    events = generate_trace_list(
        SyntheticProfile(
            name="demo",
            num_instructions=1000,
            width_mix=((16, 1.0),),
            active_histogram=((4, 1.0), (16, 1.0)),
            pattern_weights=((PatternFamily.SCATTERED, 1.0),),
            seed=42,
        )
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "demo.trace"
        write_trace(events, path)
        reloaded = load_trace(path)
        assert reloaded == events
        print(f"\nround-tripped {len(reloaded)} events through {path.name}: OK")


def pattern_family_study():
    print("\nPattern family vs which optimization works "
          "(4 of 16 lanes active):")
    rows = []
    for family in PatternFamily:
        profile_spec = SyntheticProfile(
            name=f"study_{family.value}",
            num_instructions=2000,
            width_mix=((16, 1.0),),
            active_histogram=((4, 1.0),),
            pattern_weights=((family, 1.0),),
            seed=7,
        )
        profile = profile_trace(family.value,
                                generate_trace_list(profile_spec))
        rows.append([
            family.value,
            f"{profile.bcc_reduction_pct:.1f}%",
            f"{profile.scc_reduction_pct:.1f}%",
            "BCC suffices" if profile.scc_additional_pct < 1.0 else "needs SCC",
        ])
    print(format_table(
        ["pattern family", "BCC", "SCC", "verdict"], rows))


if __name__ == "__main__":
    profile_builtin_traces()
    round_trip_a_trace()
    pattern_family_study()
