#!/usr/bin/env python3
"""Nested-divergence study: reproduce paper Table 2 interactively.

Each nesting level L splits the 16 lanes by their low L index bits,
executing all 2**L branch paths.  The per-path execution masks determine
which optimization layer can recover the wasted cycles:

* L1/L2 masks are strided — only SCC's lane swizzling packs them;
* L3 masks occupy two aligned quads — plain BCC already halves them;
* L4 single-lane masks live in one half — even the stock Ivy Bridge
  half-mask rewrite fires.

Run:  python examples/nested_divergence_study.py
"""

from repro.core import format_mask
from repro.core.scc import scc_schedule
from repro.experiments.table2 import table2_analytic, table2_simulated, render
from repro.kernels.micro import table2_path_masks


def show_path_masks():
    print("Per-path execution masks (paper Table 2, SIMD16):")
    for level in range(1, 5):
        masks = table2_path_masks(level)
        shown = ", ".join(f"{m:04X}" for m in masks[:4])
        suffix = "" if len(masks) <= 4 else f", ... ({len(masks)} paths)"
        print(f"  L{level}: {shown}{suffix}")
    print()


def show_scc_schedule_for_l1():
    mask = table2_path_masks(1)[0]  # 0x5555
    print(f"SCC schedule for L1 path mask {format_mask(mask, 16)}:")
    schedule = scc_schedule(mask, 16)
    for c, cycle in enumerate(schedule.cycles):
        slots = ", ".join(
            f"out{slot.out_lane} <- Q{slot.quad}.L{slot.src_lane}"
            + (" (swizzled)" if slot.swizzled else "")
            for slot in cycle
        )
        print(f"  cycle {c}: {slots}")
    print(f"  => {schedule.cycle_count} cycles instead of 4, "
          f"{schedule.swizzle_count} lane swizzles\n")


def main():
    show_path_masks()
    show_scc_schedule_for_l1()
    print(render(table2_analytic(), "Table 2 (analytic)"))
    print()
    print("Running the nested kernels on the simulator "
          "(includes per-path common code)...")
    print(render(table2_simulated(n=512), "Table 2 (simulated)"))


if __name__ == "__main__":
    main()
