#!/usr/bin/env python3
"""Ray-tracing divergence study (the paper's Figure 11 scenario).

Runs the ambient-occlusion ray tracer — the paper's most divergent
workload family — over all four procedural scenes at SIMD8 and SIMD16,
then shows:

* how SIMD efficiency drops as the SIMD width grows (the paper's
  argument that wider machines need compaction more);
* the EU-cycle reduction BCC and SCC deliver per scene; and
* how the data-cluster bandwidth knob (DC1 vs DC2) gates how much of
  that shows up in total execution time.

Run:  python examples/raytracing_divergence.py
"""

from repro.analysis.report import format_table
from repro.core import CompactionPolicy
from repro.gpu import GpuConfig, total_time_reduction_pct
from repro.kernels.raytracing import ambient_occlusion, scene_names
from repro.kernels.workload import run_workload


def main():
    width_px = 16  # 256 rays per scene keeps the demo quick
    rows = []
    for scene in scene_names():
        for simd_width in (8, 16):
            result = run_workload(
                ambient_occlusion(scene, width_px=width_px,
                                  simd_width=simd_width, ao_samples=3),
                GpuConfig(),
            )
            rows.append([
                f"RT-AO-{scene.upper()}{simd_width}",
                f"{result.simd_efficiency:.3f}",
                f"{result.eu_cycle_reduction_pct(CompactionPolicy.BCC):.1f}%",
                f"{result.eu_cycle_reduction_pct(CompactionPolicy.SCC):.1f}%",
                f"{result.memory_divergence:.2f}",
            ])
    print(format_table(
        ["workload", "SIMD efficiency", "BCC EU saving", "SCC EU saving",
         "lines/message"],
        rows,
        title="Ambient occlusion across scenes and SIMD widths",
    ))
    print()

    # Bandwidth study on one scene: how much of the EU saving survives
    # into total time under DC1 vs DC2 (paper Figure 11's main point).
    scene = "bl"
    print(f"Bandwidth study, scene {scene!r}, SIMD16:")
    for dc, label in ((1.0, "DC1 (today)"), (2.0, "DC2 (future)")):
        results = {}
        for policy in (CompactionPolicy.IVB, CompactionPolicy.SCC):
            config = GpuConfig(policy=policy).with_memory(dc_lines_per_cycle=dc)
            results[policy] = run_workload(
                ambient_occlusion(scene, width_px=width_px, simd_width=16,
                                  ao_samples=3),
                config,
            )
        ivb = results[CompactionPolicy.IVB]
        scc = results[CompactionPolicy.SCC]
        print(f"  {label}: SCC total-time reduction "
              f"{total_time_reduction_pct(ivb, scc):5.1f}%   "
              f"(EU-cycle reduction "
              f"{ivb.eu_cycle_reduction_pct(CompactionPolicy.SCC):.1f}%, "
              f"DC throughput {ivb.dc_throughput:.2f} lines/cycle)")


if __name__ == "__main__":
    main()
