#!/usr/bin/env python3
"""Intra-warp vs inter-warp compaction (the paper's positioning claim).

The paper argues that thread-block-compaction-class techniques are more
powerful in principle but impractical: they need per-lane addressable
register files (> +40 % area), block-wide synchronization, and they
*increase memory divergence* by mixing threads from different warps.

This example makes that concrete on one synthetic trace: it builds warp
groups, shows TBC's lane-conflict problem on a repeated divergence
pattern, and compares cycle savings and line-request counts.

Run:  python examples/interwarp_comparison.py
"""

from repro.analysis.report import format_table
from repro.area.regfile import baseline_grf, bcc_grf, interwarp_grf, overhead_pct
from repro.baselines.interwarp import (
    compare_on_groups,
    groups_from_trace,
    tbc_schedule,
)
from repro.core.quads import format_mask
from repro.trace.workloads import trace_events


def lane_conflict_demo():
    print("Lane-conflict demo (paper Section 3.2):")
    print("four warps all diverging with mask 0xAAAA —")
    masks = [0xAAAA] * 4
    schedule = tbc_schedule(masks, 16)
    print(f"  TBC issues {len(schedule)} compacted warps "
          f"(every warp wants the same lane positions):")
    for mask, sources in schedule:
        print(f"    {format_mask(mask, 16)}  from {sources} source warp(s)")
    print("  -> zero benefit from TBC, while SCC halves every one of them.\n")

    print("four warps with complementary quarters —")
    masks = [0x000F, 0x00F0, 0x0F00, 0xF000]
    schedule = tbc_schedule(masks, 16)
    print(f"  TBC packs them into {len(schedule)} warp(s):")
    for mask, sources in schedule:
        print(f"    {format_mask(mask, 16)}  from {sources} source warp(s)")
    print("  -> maximal TBC benefit, but the merged warp now touches "
          "4 warps' cache lines.\n")


def trace_comparison():
    rows = []
    for name in ("luxmark_sky", "bulletphysics", "glbench_egypt",
                 "fd_politicians"):
        comparison = compare_on_groups(
            groups_from_trace(trace_events(name), group_size=4))
        rows.append([
            name,
            f"{comparison.bcc_reduction_pct:.1f}%",
            f"{comparison.scc_reduction_pct:.1f}%",
            f"{comparison.tbc_reduction_pct:.1f}%",
            f"+{comparison.memory_divergence_increase_pct:.0f}%",
        ])
    print(format_table(
        ["trace", "BCC", "SCC", "idealized TBC", "TBC extra line requests"],
        rows,
        title="EU-cycle reduction and memory-divergence cost (4-warp blocks)",
    ))
    print()
    print("register-file area: baseline "
          f"{overhead_pct(baseline_grf()):+.0f}%, BCC "
          f"{overhead_pct(bcc_grf()):+.0f}%, inter-warp 8-banked "
          f"{overhead_pct(interwarp_grf()):+.0f}%")


if __name__ == "__main__":
    lane_conflict_demo()
    trace_comparison()
