#!/usr/bin/env python3
"""Quickstart: write a kernel, run it on the simulated GPU, compare policies.

This walks the full public API in ~60 lines:

1. build a divergent SIMD16 kernel with :class:`repro.KernelBuilder`;
2. launch it on the cycle-level simulator under the IVB baseline;
3. read the analytic EU-cycle savings of BCC and SCC from one run;
4. re-run under each policy to see the end-to-end speedup.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CmpOp,
    CompactionPolicy,
    DType,
    GpuConfig,
    GpuSimulator,
    KernelBuilder,
)


def build_kernel():
    """y[i] = expensive(x[i]) for odd i, cheap(x[i]) for even i.

    The branch splits every SIMD16 warp into two strided half-masks
    (0x5555 / 0xAAAA) — the pattern BCC cannot compress but SCC can.
    """
    b = KernelBuilder("quickstart", simd_width=16)
    gid = b.global_id()
    xs = b.surface_arg("x")
    ys = b.surface_arg("y")

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)  # byte offsets
    x = b.vreg(DType.F32)
    b.load(x, addr, xs)

    parity = b.vreg(DType.I32)
    b.and_(parity, gid, 1)
    is_odd = b.cmp(CmpOp.NE, parity, 0)

    y = b.vreg(DType.F32)
    with b.if_(is_odd):
        b.sqrt(y, x)  # "expensive" arm
        b.sin(y, y)
        b.mad(y, y, 2.0, 1.0)
        b.else_()
        b.mul(y, x, 0.5)  # "cheap" arm
    b.store(y, addr, ys)
    return b.finish()


def main():
    program = build_kernel()
    print(program.disassemble())
    print()

    n = 4096
    x = np.abs(np.random.default_rng(0).standard_normal(n)).astype(np.float32)

    # One baseline run gives the analytic EU-cycle picture for free:
    # CompactionStats tracks every policy simultaneously.
    y = np.zeros(n, dtype=np.float32)
    result = GpuSimulator(GpuConfig()).run(program, n, buffers={"x": x, "y": y})
    print(f"SIMD efficiency:        {result.simd_efficiency:.3f}")
    print(f"EU cycles (IVB base):   {result.eu_cycles}")
    for policy in (CompactionPolicy.BCC, CompactionPolicy.SCC):
        print(f"  {policy.value.upper()} EU-cycle reduction: "
              f"{result.eu_cycle_reduction_pct(policy):5.1f}%")
    print()

    # Timed runs under each policy show the end-to-end effect.
    print(f"{'policy':8s} {'total cycles':>12s} {'speedup':>8s}")
    baseline_cycles = None
    for policy in (CompactionPolicy.IVB, CompactionPolicy.BCC,
                   CompactionPolicy.SCC):
        y = np.zeros(n, dtype=np.float32)
        run = GpuSimulator(GpuConfig(policy=policy)).run(
            program, n, buffers={"x": x, "y": y})
        if baseline_cycles is None:
            baseline_cycles = run.total_cycles
        print(f"{policy.value:8s} {run.total_cycles:12d} "
              f"{baseline_cycles / run.total_cycles:8.2f}x")

    # Functional check against numpy.
    expected = np.where(np.arange(n) % 2 == 1,
                        np.sin(np.sqrt(x)) * 2.0 + 1.0, x * 0.5)
    np.testing.assert_allclose(y, expected.astype(np.float32), rtol=1e-5)
    print("\nfunctional check: OK")


if __name__ == "__main__":
    main()
