"""Property tests for SCC schedules, crossbar words, and the fuzz layer."""

import random

import pytest

from repro.core.quads import QUAD_WIDTH, clamp_mask, lane_of_quad
from repro.core.scc import scc_schedule, swizzle_settings_for_cycle
from repro.core.scc_hw import decode_cycle, encode_cycle
from repro.verify import fuzz_masks, verify_sim_vs_profiler
from repro.verify.properties import random_mask

WIDTHS = (8, 16, 32)


def _random_masks(width, count, seed):
    rng = random.Random(seed)
    masks = {0, (1 << width) - 1, 0xAAAA & ((1 << width) - 1)}
    while len(masks) < count:
        masks.add(clamp_mask(random_mask(rng, width), width))
    return sorted(masks)


class TestUnswizzleInversion:
    """Write-back routing must be the exact inverse of the operand swizzle."""

    @pytest.mark.parametrize("width", WIDTHS)
    def test_unswizzle_inverts_swizzle(self, width):
        for mask in _random_masks(width, 60, seed=width):
            schedule = scc_schedule(mask, width)
            unswizzle = schedule.unswizzle_settings()
            assert len(unswizzle) == schedule.cycle_count
            for cycle, back in zip(schedule.cycles, unswizzle):
                forward = swizzle_settings_for_cycle(cycle)
                inverse = {out: (quad, lane) for out, quad, lane in back}
                for out_lane, source in enumerate(forward):
                    if source is None:
                        assert out_lane not in inverse
                    else:
                        assert inverse[out_lane] == source

    @pytest.mark.parametrize("width", WIDTHS)
    def test_roundtrip_restores_every_element_home(self, width):
        # Move actual payloads through the operand swizzle and back
        # through the unswizzle: every element must land on the exact
        # (quad, lane) register position it was fetched from.
        for mask in _random_masks(width, 40, seed=100 + width):
            schedule = scc_schedule(mask, width)
            written = {}
            for cycle, back in zip(schedule.cycles,
                                   schedule.unswizzle_settings()):
                settings = swizzle_settings_for_cycle(cycle)
                # ALU lane n computes on the element routed to it...
                alu_out = {n: settings[n] for n in range(QUAD_WIDTH)
                           if settings[n] is not None}
                # ...and write-back steers lane n's result to (quad, lane).
                for out_lane, quad, dst_lane in back:
                    written[(quad, dst_lane)] = alu_out[out_lane]
            for (quad, lane), source in written.items():
                assert source == (quad, lane)
            covered = {lane_of_quad(q, l) for q, l in written}
            expected = {i for i in range(width) if (mask >> i) & 1}
            assert covered == expected


class TestCrossbarActivations:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_swizzle_count_matches_hardware_activations(self, width):
        # swizzle_count must equal the number of crossbar routes whose
        # decoded control word moves a lane off its home position.
        for mask in _random_masks(width, 60, seed=200 + width):
            schedule = scc_schedule(mask, width)
            activations = 0
            for cycle in schedule.cycles:
                decoded = decode_cycle(encode_cycle(cycle, width))
                assert (sorted(decoded, key=lambda s: s.out_lane)
                        == sorted(cycle, key=lambda s: s.out_lane))
                activations += sum(1 for slot in decoded
                                   if slot.src_lane != slot.out_lane)
            assert activations == schedule.swizzle_count

    def test_figure7_mask_has_four_swizzles(self):
        # Paper Figure 7's worked SIMD16 example: 0xAAAA packs 8 active
        # lanes into 2 cycles with 4 swizzles.
        schedule = scc_schedule(0xAAAA, 16)
        assert schedule.cycle_count == 2
        assert schedule.swizzle_count == 4


class TestFuzzLayer:
    def test_fuzz_layer_is_clean(self):
        reports = fuzz_masks(iterations=200, seed=7)
        assert {r.name for r in reports} == {
            "cycle-model", "schedule-partition", "unswizzle-inversion",
            "crossbar-roundtrip", "stats-profiler-agreement"}
        for report in reports:
            assert report.passed, report.violations
            assert report.cases > 0

    def test_fuzz_is_deterministic_per_seed(self):
        first = [r.as_dict() for r in fuzz_masks(iterations=50, seed=11)]
        second = [r.as_dict() for r in fuzz_masks(iterations=50, seed=11)]
        assert first == second

    def test_random_mask_hits_edge_shapes(self):
        rng = random.Random(0)
        masks = {random_mask(rng, 16) for _ in range(300)}
        assert 0 in masks  # fully masked off
        assert 0xFFFF in masks  # fully coherent


class TestSimVsProfiler:
    def test_simulator_matches_trace_replay(self):
        report = verify_sim_vs_profiler(["va", "bsearch"])
        assert report.cases == 2
        assert report.passed, report.violations
