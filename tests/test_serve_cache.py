"""Fleet-shared result cache tests (the service layer, no HTTP).

The tentpole contract: one content-keyed store shared by the whole
fleet.  An accepted remote result post persists its serialized blob
into the daemon's :class:`~repro.runner.ResultCache` *before*
subscribers resolve; workers probe ``cache_fetch`` before simulating;
publishes are code-salt-gated and digest-verified; and the store is the
*same* store a foreground ``repro run`` over the cache dir uses, so
bit-identity is checkable end to end without processes.
"""

import asyncio

import pytest

from repro.errors import (
    CacheMissError,
    CodeSaltMismatchError,
    FenceRejectedError,
)
from repro.kernels import WORKLOAD_REGISTRY, run_workload
from repro.runner import ResultCache, code_salt
from repro.serve import (
    JobService,
    JobSpec,
    JobState,
    result_blob,
    result_from_blob,
    result_payload,
)

from test_worker import FakeClock, _lease_one


def _fleet(tmp_path, clock=None, **kwargs):
    kwargs.setdefault("cache", tmp_path / "cache")
    kwargs.setdefault("local_exec", False)
    service = JobService(tmp_path / "data", **kwargs)
    if clock is not None:
        service._now = clock
    return service


def _computed(payload):
    """(spec, result, payload, blob) for one simulated job — what a
    live worker would hold right before posting."""
    spec = JobSpec.from_payload(payload)
    workload = WORKLOAD_REGISTRY[spec.workload](**dict(spec.params))
    result = run_workload(workload, spec.to_config(), verify=spec.verify)
    return spec, result, result_payload(spec, result), result_blob(result)


class TestResultPostWarmsCache:
    def test_accepted_post_persists_blob_into_runner_cache(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va", "policy": "scc"})
        grant = _lease_one(service, "w1")
        spec, result, payload, blob = _computed(
            {"workload": "va", "policy": "scc"})
        service.complete_remote(record.id, "w1", grant["fence"], payload,
                                cache=blob)
        assert record.state == JobState.DONE
        assert service.counters.get("serve.cache.published") == 1
        # The foreground runner's view of the very same store: the
        # entry loads by Job and is bit-identical to the worker's run.
        cache = ResultCache(tmp_path / "cache")
        loaded = cache.load(spec.to_job())
        assert loaded is not None
        assert loaded.buffers_digest == result.buffers_digest
        # Full payload equality covers the derived ALU/SIMD stats
        # fingerprints too: the served entry is bit-identical.
        assert result_payload(spec, loaded) == payload

    def test_publish_event_is_journaled(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        _, result, payload, blob = _computed({"workload": "va"})
        service.complete_remote(record.id, "w1", grant["fence"], payload,
                                cache=blob)
        events = [e for e in service.journal.load()
                  if e["event"] == "publish"]
        assert len(events) == 1
        assert events[0]["id"] == record.id
        assert events[0]["key"] == record.key
        assert events[0]["worker"] == "w1"
        assert events[0]["digest"] == result.buffers_digest
        assert events[0]["via"] == "result_post"

    def test_blobless_post_still_resolves(self, tmp_path):
        """The blob is an optimization: a worker that skipped it (too
        large, old build) still resolves the job — cold cache."""
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        _, _, payload, _ = _computed({"workload": "va"})
        service.complete_remote(record.id, "w1", grant["fence"], payload)
        assert record.state == JobState.DONE
        assert service.counters.get("serve.cache.published") == 0
        with pytest.raises(CacheMissError):
            service.cache_fetch(record.key, salt=code_salt())

    def test_salt_skew_rejects_post_and_keeps_lease(self, tmp_path):
        """A mixed-version fleet must not poison the store: the typed
        412 rejects the whole post, the lease stays live, and the
        worker's follow-up post *without* the blob lands."""
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        _, _, payload, blob = _computed({"workload": "va"})
        skewed = dict(blob, salt="0" * 12)
        with pytest.raises(CodeSaltMismatchError):
            service.complete_remote(record.id, "w1", grant["fence"],
                                    payload, cache=skewed)
        assert record.state == JobState.RUNNING  # post rejected whole
        assert service.leases.get(record.id) is not None  # lease alive
        with pytest.raises(CacheMissError):
            service.cache_fetch(record.key, salt=code_salt())
        service.complete_remote(record.id, "w1", grant["fence"], payload)
        assert record.state == JobState.DONE

    def test_malformed_blob_is_a_value_error(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        _, _, payload, blob = _computed({"workload": "va"})
        for bad in ({"encoding": "gzip", "salt": blob["salt"],
                     "data": blob["data"]},
                    dict(blob, data="!!!not-base64!!!"),
                    dict(blob, salt=""),
                    "not a mapping"):
            with pytest.raises(ValueError):
                service.complete_remote(record.id, "w1", grant["fence"],
                                        payload, cache=bad)
        assert record.state == JobState.RUNNING

    def test_blob_payload_digest_disagreement_rejected(self, tmp_path):
        """The blob must describe the very result being posted."""
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        _, _, payload, _ = _computed({"workload": "va"})
        _, _, _, other_blob = _computed({"workload": "dp"})
        with pytest.raises(ValueError):
            service.complete_remote(record.id, "w1", grant["fence"],
                                    payload, cache=other_blob)

    def test_existing_entry_is_not_rewritten(self, tmp_path):
        """Publish-before-post already stored the entry: the result
        post's ingest is a no-op, not a second write."""
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        _, _, payload, blob = _computed({"workload": "va"})
        body = service.cache_publish(record.key, blob, worker="w1",
                                     job_id=record.id)
        assert body["stored"] is True
        service.complete_remote(record.id, "w1", grant["fence"], payload,
                                cache=blob)
        assert record.state == JobState.DONE
        assert service.counters.get("serve.cache.published") == 1  # once
        again = service.cache_publish(record.key, blob)
        assert again == {"key": record.key, "stored": False,
                         "reason": "exists"}

    def test_zombie_post_never_reaches_the_store(self, tmp_path):
        """Fence rejection happens before blob ingest: a fenced-out
        worker's post does not publish as a side effect."""
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        stale = _lease_one(service, "w1")
        clock.advance(service.lease_ttl + 1.0)
        service.expire_leases()
        _lease_one(service, "w2")
        _, _, payload, blob = _computed({"workload": "va"})
        with pytest.raises(FenceRejectedError):
            service.complete_remote(record.id, "w1", stale["fence"],
                                    payload, cache=blob)
        with pytest.raises(CacheMissError):
            service.cache_fetch(record.key, salt=code_salt())


class TestCacheFetch:
    def test_miss_then_hit_round_trip(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        spec, result, _, blob = _computed({"workload": "va"})
        key = spec.to_job().key
        with pytest.raises(CacheMissError):
            service.cache_fetch(key, salt=code_salt())
        service.cache_publish(key, blob, worker="w1")
        body = service.cache_fetch(key, salt=code_salt())
        assert body["key"] == key
        assert body["salt"] == code_salt()
        served = result_from_blob(body)
        assert served.buffers_digest == result.buffers_digest
        assert served.alu_stats == result.alu_stats
        assert served.simd_stats == result.simd_stats
        counters = service.counters
        assert counters.get("serve.cache.fetch") == 2
        assert counters.get("serve.cache.fetch_hits") == 1
        assert counters.get("serve.cache.published") == 1

    def test_fetch_salt_gate(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        spec, _, _, blob = _computed({"workload": "va"})
        key = spec.to_job().key
        service.cache_publish(key, blob)
        with pytest.raises(CodeSaltMismatchError):
            service.cache_fetch(key, salt="different-simulator")
        # Saltless fetch (trusting caller) still serves.
        assert service.cache_fetch(key)["key"] == key

    def test_fetch_requires_key(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        with pytest.raises(ValueError):
            service.cache_fetch("")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        """Bit rot between publish and fetch: the daemon quarantines
        the entry and reports a miss, never serves garbage."""
        service = _fleet(tmp_path, FakeClock())
        spec, _, _, blob = _computed({"workload": "va"})
        key = spec.to_job().key
        service.cache_publish(key, blob)
        path = service.runner.cache.path_for_key(key)
        path.write_bytes(b"\x00garbage\x00" * 16)
        with pytest.raises(CacheMissError):
            service.cache_fetch(key, salt=code_salt())
        assert not path.exists()  # quarantined, not left to re-trip
        assert service.runner.cache.corrupt == 1

    def test_cacheless_daemon_always_misses_and_skips_publish(
            self, tmp_path):
        service = _fleet(tmp_path, FakeClock(), cache=None)
        spec, _, _, blob = _computed({"workload": "va"})
        key = spec.to_job().key
        body = service.cache_publish(key, blob)
        assert body == {"key": key, "stored": False, "reason": "no cache"}
        with pytest.raises(CacheMissError):
            service.cache_fetch(key, salt=code_salt())


class TestRestartAndFleetRoundTrip:
    def test_worker_result_served_across_daemon_restart(self, tmp_path):
        """Worker A's posted result must be a cache hit for a restarted
        daemon's fleet: resubmission of the same spec is served to
        worker B from the store, bit-identical, with no execution."""
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va", "policy": "bcc"})
        grant = _lease_one(service, "w1")
        spec, result, payload, blob = _computed(
            {"workload": "va", "policy": "bcc"})
        service.complete_remote(record.id, "w1", grant["fence"], payload,
                                cache=blob)
        # Same dirs = a daemon restart.  The resubmitted job's worker
        # probes the cache exactly as ServeWorker._fetch_cached does.
        reborn = _fleet(tmp_path, clock)
        again = reborn.submit({"workload": "va", "policy": "bcc"})
        assert again.key == record.key
        body = reborn.cache_fetch(again.key, salt=code_salt())
        served = result_from_blob(body)
        assert served.buffers_digest == result.buffers_digest
        assert result_payload(spec, served) == payload
        assert reborn.counters.get("serve.cache.fetch_hits") == 1

    def test_fetch_serves_stored_bytes_verbatim(self, tmp_path):
        """No re-pickle on the way out: the served envelope carries the
        exact bytes the publisher stored (digest-stable end to end)."""
        service = _fleet(tmp_path, FakeClock())
        spec, _, _, blob = _computed({"workload": "va"})
        key = spec.to_job().key
        service.cache_publish(key, blob)
        body = service.cache_fetch(key, salt=code_salt())
        assert body["data"] == blob["data"]
        assert body["digest"] == blob["digest"]
        assert body["size"] == blob["size"]


class TestRemoteTraceExport:
    def test_blob_carried_telemetry_exports_a_trace(self, tmp_path):
        """Remote jobs used to lose their Chrome trace (the JSON result
        payload cannot carry telemetry); the blob restores it."""
        from repro.telemetry.chrome_trace import validate_chrome_trace
        import json

        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va", "telemetry": "trace"})
        grant = _lease_one(service, "w1")
        _, result, payload, blob = _computed(
            {"workload": "va", "telemetry": "trace"})
        assert result.telemetry is not None
        service.complete_remote(record.id, "w1", grant["fence"], payload,
                                cache=blob)
        assert record.state == JobState.DONE
        assert record.trace_path is not None
        trace = json.loads((tmp_path / "data" / "traces"
                            / f"{record.id}.json").read_text())
        assert validate_chrome_trace(trace) > 0
