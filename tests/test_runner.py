"""Tests for the shared parallel + cached experiment runner."""

import pickle

import pytest

from repro.core.policy import CompactionPolicy
from repro.gpu.config import GpuConfig
from repro.gpu.results import KernelRunResult
from repro.runner import (
    Job,
    ResultCache,
    Runner,
    config_digest,
    default_runner,
    stable_digest,
)

#: Small fast workloads for grid tests.
GRID_WORKLOADS = ("va", "gnoise")
GRID_POLICIES = (CompactionPolicy.IVB, CompactionPolicy.SCC)


def _grid_jobs():
    return [
        Job(name, GpuConfig(policy=policy))
        for name in GRID_WORKLOADS
        for policy in GRID_POLICIES
    ]


class TestJobIdentity:
    def test_same_request_same_key(self):
        assert Job("va").key == Job("va", GpuConfig()).key

    def test_params_change_key(self):
        assert Job("va", params={"n": 128}).key != Job("va").key
        assert (Job("va", params={"n": 128}).key
                == Job("va", params={"n": 128}).key)

    def test_config_change_key(self):
        assert (Job("va", GpuConfig(policy=CompactionPolicy.SCC)).key
                != Job("va").key)
        assert (Job("va", GpuConfig().with_memory(perfect_l3=True)).key
                != Job("va").key)

    def test_config_digest_covers_nested_memory_params(self):
        base = GpuConfig()
        assert (config_digest(base.with_memory(dc_lines_per_cycle=2.0))
                != config_digest(base))

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            Job("no_such_workload")

    def test_inline_factories_never_alias(self):
        a = Job("x", factory=lambda: None)
        b = Job("x", factory=lambda: None)
        assert a.key != b.key
        assert not a.cacheable

    def test_stable_digest_rejects_unkeyable(self):
        with pytest.raises(TypeError):
            stable_digest(object())


class TestParallelMatchesSerial:
    def test_bit_identical_results(self, tmp_path):
        jobs = _grid_jobs()
        serial = Runner(workers=1, cache=False).run(jobs)
        parallel = Runner(workers=2, cache=False).run(_grid_jobs())
        for job_s, job_p in zip(jobs, _grid_jobs()):
            a, b = serial[job_s], parallel[job_p]
            assert a.summary() == b.summary()
            assert a.eu_cycles_by_policy() == b.eu_cycles_by_policy()
            assert a.kernel == b.kernel and a.policy == b.policy

    def test_duplicate_jobs_simulated_once(self):
        runner = Runner(workers=1, cache=False)
        results = runner.run([Job("va"), Job("va"), Job("va")])
        assert runner.last_stats.requested == 3
        assert runner.last_stats.unique == 1
        assert runner.last_stats.executed == 1
        assert len(results) == 1  # identical jobs collapse to one entry


class TestResultCache:
    def test_hit_on_repeat_run(self, tmp_path):
        cold = Runner(workers=1, cache=ResultCache(tmp_path))
        first = cold.run_one("va")
        assert cold.last_stats.executed == 1

        warm = Runner(workers=1, cache=ResultCache(tmp_path))
        second = warm.run_one("va")
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cache_hits == 1
        assert first.summary() == second.summary()

    def test_miss_after_config_change(self, tmp_path):
        Runner(workers=1, cache=ResultCache(tmp_path)).run_one("va")
        changed = Runner(workers=1, cache=ResultCache(tmp_path))
        changed.run([Job("va", GpuConfig().with_memory(
            dc_lines_per_cycle=2.0))])
        assert changed.last_stats.cache_hits == 0
        assert changed.last_stats.executed == 1

    def test_miss_after_code_salt_change(self, tmp_path):
        Runner(workers=1, cache=ResultCache(tmp_path, salt="one")).run_one("va")
        stale = Runner(workers=1, cache=ResultCache(tmp_path, salt="two"))
        stale.run_one("va")
        assert stale.last_stats.executed == 1

    def test_corrupted_entry_falls_back_to_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(workers=1, cache=cache)
        reference = runner.run_one("va")
        entries = list(tmp_path.glob("*/*/*.pkl"))
        assert len(entries) == 1
        entries[0].write_bytes(b"definitely not a pickle")

        recovered_cache = ResultCache(tmp_path)
        recovered = Runner(workers=1, cache=recovered_cache)
        result = recovered.run_one("va")
        assert recovered_cache.corrupt == 1
        assert recovered.last_stats.executed == 1
        assert result.summary() == reference.summary()

    def test_wrong_type_entry_treated_as_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(workers=1, cache=cache)
        runner.run_one("va")
        entry = next(tmp_path.glob("*/*/*.pkl"))
        entry.write_bytes(pickle.dumps({"not": "a result"}))

        again = ResultCache(tmp_path)
        assert again.load(Job("va")) is None
        assert again.corrupt == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        assert cache.clear() == 1
        assert not list(tmp_path.glob("*/*/*.pkl"))

    def test_parallel_run_populates_cache(self, tmp_path):
        pool = Runner(workers=2, cache=ResultCache(tmp_path))
        pool.run(_grid_jobs())
        assert pool.last_stats.executed == len(_grid_jobs())

        warm = Runner(workers=2, cache=ResultCache(tmp_path))
        warm.run(_grid_jobs())
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cache_hits == len(_grid_jobs())


class TestShardedLayout:
    def test_entries_land_in_two_level_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        entry = next(tmp_path.glob("*/*/*.pkl"))
        digest = entry.name.rsplit("-", 1)[1].removesuffix(".pkl")
        # ab/cd/<name>-abcd....pkl: shard dirs are the digest prefix.
        assert entry.parent.name == digest[2:4]
        assert entry.parent.parent.name == digest[:2]
        assert entry == cache.path_for(Job("va"))

    def test_legacy_flat_entry_read_through_and_migrated(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        job = Job("va")
        sharded = cache.path_for(job)
        legacy = cache.legacy_path_for(job)
        # Rewind to the pre-sharding on-disk layout.
        legacy.write_bytes(sharded.read_bytes())
        sharded.unlink()

        reopened = ResultCache(tmp_path)
        runner = Runner(workers=1, cache=reopened)
        runner.run_one("va")
        assert runner.last_stats.cache_hits == 1  # served from flat file
        assert runner.last_stats.executed == 0
        assert reopened.migrated == 1
        assert sharded.exists() and not legacy.exists()
        # Second read comes straight from the sharded path.
        rewarm = ResultCache(tmp_path)
        assert rewarm.load(job) is not None
        assert rewarm.migrated == 0

    def test_corrupt_legacy_entry_quarantined_not_migrated(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job("va")
        cache.legacy_path_for(job).write_bytes(b"garbage from the past")
        assert cache.load(job) is None
        assert cache.corrupt == 1
        assert cache.migrated == 0
        assert not cache.legacy_path_for(job).exists()  # quarantined

    def test_clear_sweeps_both_layouts(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        legacy = cache.legacy_path_for(Job("dp"))
        legacy.write_bytes(b"stale flat entry")
        assert cache.clear() == 2
        assert not list(tmp_path.glob("*/*/*.pkl")) and not legacy.exists()


class TestQueueWaitAccounting:
    def test_serial_batch_waits_accumulate(self, tmp_path):
        events = []
        runner = Runner(workers=1, cache=False, progress=events.append)
        jobs = [Job("fault_sleep", params={"seconds": 0.2, "n": 8}),
                Job("fault_sleep", params={"seconds": 0.0, "n": 8})]
        runner.run(jobs)
        waited = {e.job.key: e for e in events}
        first, second = (waited[j.key] for j in jobs)
        # The second job queued behind the first's 0.2s sleep; its own
        # execution clock excludes that wait entirely.
        assert second.queue_wait >= first.elapsed * 0.9
        assert first.queue_wait < first.elapsed
        assert runner.last_stats.queue_seconds >= second.queue_wait
        assert (runner.last_stats.host_seconds
                >= first.elapsed + second.elapsed - 1e-6)

    def test_cache_hits_report_no_wait(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        events = []
        warm = Runner(workers=1, cache=cache, progress=events.append)
        warm.run_one("va")
        assert events[-1].status == "cached"
        assert events[-1].queue_wait == 0.0
        assert warm.last_stats.queue_seconds == 0.0

    def test_pool_waits_recorded_per_job(self, tmp_path):
        events = []
        runner = Runner(workers=2, cache=ResultCache(tmp_path),
                        progress=events.append)
        runner.run(_grid_jobs())
        executed = [e for e in events if e.status == "executed"]
        assert len(executed) == len(_grid_jobs())
        assert all(e.queue_wait >= 0.0 for e in executed)
        assert runner.last_stats.queue_seconds == pytest.approx(
            sum(e.queue_wait for e in executed), abs=1e-6)


class TestProgressAndStats:
    def test_progress_events_cover_every_unique_job(self, tmp_path):
        events = []
        runner = Runner(workers=1, cache=ResultCache(tmp_path),
                        progress=events.append)
        runner.run([Job("va"), Job("va"),
                    Job("va", GpuConfig(policy=CompactionPolicy.SCC))])
        assert len(events) == 2
        assert {e.status for e in events} == {"executed"}
        assert sorted(e.index for e in events) == [1, 2]
        assert all(e.total == 2 for e in events)

        rerun = Runner(workers=1, cache=ResultCache(tmp_path),
                       progress=events.append)
        rerun.run([Job("va")])
        assert events[-1].status == "cached"

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Runner(workers=0)


class TestInlineFactories:
    def test_inline_factory_runs_and_is_uncached(self, tmp_path):
        from repro.kernels.linalg import vector_add

        cache = ResultCache(tmp_path)
        runner = Runner(workers=2, cache=cache)
        job = Job("va_inline", factory=lambda: vector_add(n=64))
        result = runner.run([job])[job]
        assert isinstance(result, KernelRunResult)
        assert not list(tmp_path.glob("*/*/*.pkl"))


class TestDefaultRunner:
    def test_default_runner_is_shared(self):
        assert default_runner() is default_runner()


class TestAllPoliciesThroughRunner:
    def test_registry_name_batches_by_policy(self, tmp_path):
        from repro.kernels.workload import run_workload_all_policies

        runner = Runner(workers=1, cache=ResultCache(tmp_path))
        results = run_workload_all_policies("va", runner=runner)
        assert set(results) == {"ivb", "bcc", "scc"}
        assert runner.last_stats.executed == 3

        warm = Runner(workers=1, cache=ResultCache(tmp_path))
        again = run_workload_all_policies("va", runner=warm)
        assert warm.last_stats.cache_hits == 3
        assert {k: v.total_cycles for k, v in again.items()} == \
            {k: v.total_cycles for k, v in results.items()}
