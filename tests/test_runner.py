"""Tests for the shared parallel + cached experiment runner."""

import pickle

import pytest

from repro.core.policy import CompactionPolicy
from repro.gpu.config import GpuConfig
from repro.gpu.results import KernelRunResult
from repro.runner import (
    Job,
    ResultCache,
    Runner,
    config_digest,
    default_runner,
    stable_digest,
)

#: Small fast workloads for grid tests.
GRID_WORKLOADS = ("va", "gnoise")
GRID_POLICIES = (CompactionPolicy.IVB, CompactionPolicy.SCC)


def _grid_jobs():
    return [
        Job(name, GpuConfig(policy=policy))
        for name in GRID_WORKLOADS
        for policy in GRID_POLICIES
    ]


class TestJobIdentity:
    def test_same_request_same_key(self):
        assert Job("va").key == Job("va", GpuConfig()).key

    def test_params_change_key(self):
        assert Job("va", params={"n": 128}).key != Job("va").key
        assert (Job("va", params={"n": 128}).key
                == Job("va", params={"n": 128}).key)

    def test_config_change_key(self):
        assert (Job("va", GpuConfig(policy=CompactionPolicy.SCC)).key
                != Job("va").key)
        assert (Job("va", GpuConfig().with_memory(perfect_l3=True)).key
                != Job("va").key)

    def test_config_digest_covers_nested_memory_params(self):
        base = GpuConfig()
        assert (config_digest(base.with_memory(dc_lines_per_cycle=2.0))
                != config_digest(base))

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            Job("no_such_workload")

    def test_inline_factories_never_alias(self):
        a = Job("x", factory=lambda: None)
        b = Job("x", factory=lambda: None)
        assert a.key != b.key
        assert not a.cacheable

    def test_stable_digest_rejects_unkeyable(self):
        with pytest.raises(TypeError):
            stable_digest(object())


class TestParallelMatchesSerial:
    def test_bit_identical_results(self, tmp_path):
        jobs = _grid_jobs()
        serial = Runner(workers=1, cache=False).run(jobs)
        parallel = Runner(workers=2, cache=False).run(_grid_jobs())
        for job_s, job_p in zip(jobs, _grid_jobs()):
            a, b = serial[job_s], parallel[job_p]
            assert a.summary() == b.summary()
            assert a.eu_cycles_by_policy() == b.eu_cycles_by_policy()
            assert a.kernel == b.kernel and a.policy == b.policy

    def test_duplicate_jobs_simulated_once(self):
        runner = Runner(workers=1, cache=False)
        results = runner.run([Job("va"), Job("va"), Job("va")])
        assert runner.last_stats.requested == 3
        assert runner.last_stats.unique == 1
        assert runner.last_stats.executed == 1
        assert len(results) == 1  # identical jobs collapse to one entry


class TestResultCache:
    def test_hit_on_repeat_run(self, tmp_path):
        cold = Runner(workers=1, cache=ResultCache(tmp_path))
        first = cold.run_one("va")
        assert cold.last_stats.executed == 1

        warm = Runner(workers=1, cache=ResultCache(tmp_path))
        second = warm.run_one("va")
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cache_hits == 1
        assert first.summary() == second.summary()

    def test_miss_after_config_change(self, tmp_path):
        Runner(workers=1, cache=ResultCache(tmp_path)).run_one("va")
        changed = Runner(workers=1, cache=ResultCache(tmp_path))
        changed.run([Job("va", GpuConfig().with_memory(
            dc_lines_per_cycle=2.0))])
        assert changed.last_stats.cache_hits == 0
        assert changed.last_stats.executed == 1

    def test_miss_after_code_salt_change(self, tmp_path):
        Runner(workers=1, cache=ResultCache(tmp_path, salt="one")).run_one("va")
        stale = Runner(workers=1, cache=ResultCache(tmp_path, salt="two"))
        stale.run_one("va")
        assert stale.last_stats.executed == 1

    def test_corrupted_entry_falls_back_to_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(workers=1, cache=cache)
        reference = runner.run_one("va")
        entries = list(tmp_path.glob("*.pkl"))
        assert len(entries) == 1
        entries[0].write_bytes(b"definitely not a pickle")

        recovered_cache = ResultCache(tmp_path)
        recovered = Runner(workers=1, cache=recovered_cache)
        result = recovered.run_one("va")
        assert recovered_cache.corrupt == 1
        assert recovered.last_stats.executed == 1
        assert result.summary() == reference.summary()

    def test_wrong_type_entry_treated_as_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(workers=1, cache=cache)
        runner.run_one("va")
        entry = next(tmp_path.glob("*.pkl"))
        entry.write_bytes(pickle.dumps({"not": "a result"}))

        again = ResultCache(tmp_path)
        assert again.load(Job("va")) is None
        assert again.corrupt == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        assert cache.clear() == 1
        assert not list(tmp_path.glob("*.pkl"))

    def test_parallel_run_populates_cache(self, tmp_path):
        pool = Runner(workers=2, cache=ResultCache(tmp_path))
        pool.run(_grid_jobs())
        assert pool.last_stats.executed == len(_grid_jobs())

        warm = Runner(workers=2, cache=ResultCache(tmp_path))
        warm.run(_grid_jobs())
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cache_hits == len(_grid_jobs())


class TestProgressAndStats:
    def test_progress_events_cover_every_unique_job(self, tmp_path):
        events = []
        runner = Runner(workers=1, cache=ResultCache(tmp_path),
                        progress=events.append)
        runner.run([Job("va"), Job("va"),
                    Job("va", GpuConfig(policy=CompactionPolicy.SCC))])
        assert len(events) == 2
        assert {e.status for e in events} == {"executed"}
        assert sorted(e.index for e in events) == [1, 2]
        assert all(e.total == 2 for e in events)

        rerun = Runner(workers=1, cache=ResultCache(tmp_path),
                       progress=events.append)
        rerun.run([Job("va")])
        assert events[-1].status == "cached"

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Runner(workers=0)


class TestInlineFactories:
    def test_inline_factory_runs_and_is_uncached(self, tmp_path):
        from repro.kernels.linalg import vector_add

        cache = ResultCache(tmp_path)
        runner = Runner(workers=2, cache=cache)
        job = Job("va_inline", factory=lambda: vector_add(n=64))
        result = runner.run([job])[job]
        assert isinstance(result, KernelRunResult)
        assert not list(tmp_path.glob("*.pkl"))


class TestDefaultRunner:
    def test_default_runner_is_shared(self):
        assert default_runner() is default_runner()


class TestAllPoliciesThroughRunner:
    def test_registry_name_batches_by_policy(self, tmp_path):
        from repro.kernels.workload import run_workload_all_policies

        runner = Runner(workers=1, cache=ResultCache(tmp_path))
        results = run_workload_all_policies("va", runner=runner)
        assert set(results) == {"ivb", "bcc", "scc"}
        assert runner.last_stats.executed == 3

        warm = Runner(workers=1, cache=ResultCache(tmp_path))
        again = run_workload_all_policies("va", runner=warm)
        assert warm.last_stats.cache_hits == 3
        assert {k: v.total_cycles for k, v in again.items()} == \
            {k: v.total_cycles for k, v in results.items()}
