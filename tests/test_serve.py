"""Service-level tests for the ``repro serve`` job service.

Exercises :class:`repro.serve.JobService` directly (no HTTP): in-flight
dedup proven with an execution-counting fault workload, cancellation of
queued jobs (including primary promotion), journal recovery across a
simulated restart, and the typed admission-control errors.
"""

import asyncio
import time

import pytest

from repro.errors import QueueFullError, RateLimitError
from repro.serve import (
    JobService,
    JobSpec,
    JobState,
    NotCancellableError,
    RateLimiter,
    UnknownJobError,
)

#: Terminal wait budget for locally-run jobs (generous for slow CI).
WAIT = 120.0


def _service(tmp_path, **kwargs):
    kwargs.setdefault("cache", tmp_path / "cache")
    return JobService(tmp_path / "data", **kwargs)


def _count_spec(counter, sleep=0.0, **extra):
    """A fault_count submission: every *execution* appends one line."""
    params = {"counter": str(counter)}
    if sleep:
        params["sleep"] = sleep
    return {"workload": "fault_count", "params": params, **extra}


def _lines(counter):
    try:
        return counter.read_text().splitlines()
    except OSError:
        return []


async def _wait(record, timeout=WAIT):
    deadline = time.monotonic() + timeout
    while record.state not in JobState.TERMINAL:
        assert time.monotonic() < deadline, (
            f"job {record.id} stuck in {record.state}")
        await asyncio.sleep(0.01)
    return record


async def _wait_state(record, state, timeout=WAIT):
    deadline = time.monotonic() + timeout
    while record.state != state:
        assert time.monotonic() < deadline, (
            f"job {record.id} is {record.state}, wanted {state}")
        await asyncio.sleep(0.01)
    return record


class TestDedup:
    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        """Two identical in-flight submissions -> one execution, two
        identical results (the tentpole's core claim, proven by the
        never-cached counting workload)."""
        counter = tmp_path / "count.txt"

        async def scenario():
            service = _service(tmp_path)
            first = service.submit(_count_spec(counter, sleep=0.3))
            await service.start()
            # Catch the primary mid-flight, then submit its duplicate.
            await _wait_state(first, JobState.RUNNING)
            second = service.submit(_count_spec(counter, sleep=0.3))
            assert second.dedup_of == first.id
            await _wait(first)
            await _wait(second)
            await service.drain()
            return service, first, second

        service, first, second = asyncio.run(scenario())
        assert first.state == JobState.DONE
        assert second.state == JobState.DONE
        assert len(_lines(counter)) == 1  # exactly one simulation
        assert first.result == second.result
        assert first.result["buffers_digest"] == second.result["buffers_digest"]
        assert service.counters.get("serve.jobs.submitted") == 2
        assert service.counters.get("serve.jobs.deduped") == 1
        assert service.counters.get("serve.jobs.executed") == 1

    def test_queued_duplicates_collapse_before_dispatch(self, tmp_path):
        counter = tmp_path / "count.txt"

        async def scenario():
            service = _service(tmp_path)
            records = [service.submit(_count_spec(counter))
                       for _ in range(3)]
            await service.start()
            for record in records:
                await _wait(record)
            await service.drain()
            return service, records

        service, records = asyncio.run(scenario())
        assert [r.state for r in records] == [JobState.DONE] * 3
        assert len(_lines(counter)) == 1
        assert records[1].dedup_of == records[0].id
        assert records[2].dedup_of == records[0].id
        assert service.counters.get("serve.jobs.deduped") == 2

    def test_different_specs_do_not_dedup(self, tmp_path):
        a_file, b_file = tmp_path / "a.txt", tmp_path / "b.txt"

        async def scenario():
            service = _service(tmp_path)
            a = service.submit(_count_spec(a_file))
            b = service.submit(_count_spec(b_file))
            assert b.dedup_of is None
            await service.start()
            await _wait(a)
            await _wait(b)
            await service.drain()
            return a, b

        a, b = asyncio.run(scenario())
        assert len(_lines(a_file)) == 1
        assert len(_lines(b_file)) == 1
        # Same kernel, different counter file -> different content keys.
        assert a.key != b.key


class TestCancel:
    def test_cancel_while_queued_never_executes(self, tmp_path):
        counter = tmp_path / "count.txt"

        async def scenario():
            service = _service(tmp_path)
            record = service.submit(_count_spec(counter))
            cancelled = service.cancel(record.id)
            assert cancelled.state == JobState.CANCELLED
            # Start after cancelling: the dispatcher must skip it.
            await service.start()
            await service.drain()
            return service, record

        service, record = asyncio.run(scenario())
        assert record.state == JobState.CANCELLED
        assert _lines(counter) == []  # never simulated
        assert service.counters.get("serve.jobs.cancelled") == 1
        assert service.counters.get("serve.jobs.executed") == 0

    def test_cancel_primary_promotes_subscriber(self, tmp_path):
        counter = tmp_path / "count.txt"

        async def scenario():
            service = _service(tmp_path)
            primary = service.submit(_count_spec(counter))
            subscriber = service.submit(_count_spec(counter))
            assert subscriber.dedup_of == primary.id
            service.cancel(primary.id)
            # The duplicate is still owed a result: it takes over.
            assert subscriber.dedup_of is None
            await service.start()
            await _wait(subscriber)
            await service.drain()
            return primary, subscriber

        primary, subscriber = asyncio.run(scenario())
        assert primary.state == JobState.CANCELLED
        assert subscriber.state == JobState.DONE
        assert len(_lines(counter)) == 1

    def test_cancel_subscriber_leaves_primary(self, tmp_path):
        counter = tmp_path / "count.txt"

        async def scenario():
            service = _service(tmp_path)
            primary = service.submit(_count_spec(counter))
            subscriber = service.submit(_count_spec(counter))
            service.cancel(subscriber.id)
            await service.start()
            await _wait(primary)
            await service.drain()
            return primary, subscriber

        primary, subscriber = asyncio.run(scenario())
        assert primary.state == JobState.DONE
        assert subscriber.state == JobState.CANCELLED
        assert len(_lines(counter)) == 1

    def test_terminal_and_unknown_jobs_not_cancellable(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            record = service.submit({"workload": "va"})
            await service.start()
            await _wait(record)
            with pytest.raises(NotCancellableError):
                service.cancel(record.id)
            with pytest.raises(UnknownJobError):
                service.cancel("j99999-nope")
            await service.drain()

        asyncio.run(scenario())


class TestJournalRecovery:
    def test_unresolved_jobs_requeue_on_restart(self, tmp_path):
        counter = tmp_path / "count.txt"

        async def before():
            service = _service(tmp_path)
            # Submitted but never dispatched: the daemon "crashes" here.
            service.submit(_count_spec(counter))
            service.submit(_count_spec(counter))  # its duplicate

        asyncio.run(before())

        async def after():
            service = _service(tmp_path)
            assert service.counters.get("serve.jobs.recovered") == 2
            records = service.list_jobs()
            assert [r.state for r in records] == [JobState.QUEUED] * 2
            # Dedup linkage is rebuilt from the journal order.
            assert records[1].dedup_of == records[0].id
            await service.start()
            for record in records:
                await _wait(record)
            await service.drain()
            return records

        records = asyncio.run(after())
        assert [r.state for r in records] == [JobState.DONE] * 2
        assert len(_lines(counter)) == 1

    def test_resolved_jobs_survive_restart_with_results(self, tmp_path):
        async def before():
            service = _service(tmp_path)
            await service.start()
            record = service.submit({"workload": "va", "policy": "scc"})
            await _wait(record)
            await service.drain()
            return record

        first = asyncio.run(before())
        assert first.state == JobState.DONE

        reborn = _service(tmp_path)
        record = reborn.get(first.id)
        assert record.state == JobState.DONE
        assert record.result == first.result
        assert reborn.counters.get("serve.jobs.recovered") == 0

    def test_cancelled_jobs_stay_cancelled_after_restart(self, tmp_path):
        async def before():
            service = _service(tmp_path)
            record = service.submit({"workload": "va"})
            service.cancel(record.id)
            return record

        first = asyncio.run(before())
        reborn = _service(tmp_path)
        assert reborn.get(first.id).state == JobState.CANCELLED
        assert len(reborn.list_jobs(state=JobState.QUEUED)) == 0


class TestAdmissionControl:
    def test_queue_full_raises_typed_503(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, queue_limit=1)
            service.submit({"workload": "va"})
            with pytest.raises(QueueFullError) as excinfo:
                service.submit({"workload": "dp"})
            assert excinfo.value.http_status == 503
            # A duplicate of the queued job adds no work: still admitted.
            duplicate = service.submit({"workload": "va"})
            assert duplicate.dedup_of is not None
            assert service.counters.get(
                "serve.jobs.rejected.queue_full") == 1

        asyncio.run(scenario())

    def test_rate_limit_raises_typed_429(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, rate_limit=1.0, rate_burst=1)
            service.submit({"workload": "va"}, client="alice")
            with pytest.raises(RateLimitError) as excinfo:
                service.submit({"workload": "dp"}, client="alice")
            assert excinfo.value.http_status == 429
            # Rate limits are per client identity.
            service.submit({"workload": "dp"}, client="bob")

        asyncio.run(scenario())

    def test_draining_rejects_submissions(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            await service.drain()
            with pytest.raises(QueueFullError):
                service.submit({"workload": "va"})

        asyncio.run(scenario())

    def test_rate_limiter_refills(self):
        limiter = RateLimiter(rate=10.0, burst=1)
        assert limiter.allow("c", now=0.0)
        assert not limiter.allow("c", now=0.01)
        assert limiter.allow("c", now=0.2)  # 0.19s * 10/s > 1 token


class TestSpecValidation:
    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"workload": "no_such_workload"},
        {"workload": "va", "policy": "warp-drive"},
        {"workload": "va", "engine": "jit"},
        {"workload": "va", "telemetry": "firehose"},
        {"workload": "va", "dc_lines_per_cycle": 0},
        {"workload": "va", "max_cycles": -5},
        {"workload": "va", "params": [1, 2]},
        {"workload": "va", "surprise": True},
    ])
    def test_bad_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            JobSpec.from_payload(payload)

    def test_spec_compiles_to_content_keyed_job(self):
        spec = JobSpec.from_payload({
            "workload": "va", "policy": "scc", "engine": "fast",
            "telemetry": "counters", "dc_lines_per_cycle": 2.0,
            "perfect_l3": True, "max_cycles": 1000,
            "params": {"n": 32}})
        job = spec.to_job()
        assert job.key == spec.to_job().key
        assert JobSpec.from_payload(spec.as_dict()) == spec

    def test_timing_split_recorded(self, tmp_path):
        """queue_wait and exec_seconds are separate, both recorded."""
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            record = service.submit({"workload": "va"})
            await _wait(record)
            await service.drain()
            return record

        record = asyncio.run(scenario())
        assert record.queue_wait is not None and record.queue_wait >= 0.0
        assert record.exec_seconds is not None and record.exec_seconds > 0.0
        status = record.as_status()
        assert status["queue_wait_seconds"] == record.queue_wait
        assert status["exec_seconds"] == record.exec_seconds
