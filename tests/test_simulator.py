"""End-to-end tests of the GPU simulator: dispatch, timing, results."""

import numpy as np
import pytest

from repro.core.policy import CompactionPolicy
from repro.gpu import (
    DeadlockError,
    GpuConfig,
    GpuSimulator,
    merge_results,
    total_time_reduction_pct,
)
from repro.isa.builder import KernelBuilder
from repro.isa.types import CmpOp, DType


def _axpy_program(simd_width=16):
    b = KernelBuilder("axpy", simd_width)
    gid = b.global_id()
    xs, ys = b.surface_arg("x"), b.surface_arg("y")
    a = b.scalar_arg("a", DType.F32)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    y = b.vreg(DType.F32)
    b.load(x, addr, xs)
    b.load(y, addr, ys)
    b.mad(y, x, a, y)
    b.store(y, addr, ys)
    return b.finish()


def _divergent_program(simd_width=16, work=8):
    """Half the lanes (strided) do `work` FMAs, the rest do one MOV."""
    b = KernelBuilder("div", simd_width)
    gid = b.global_id()
    ys = b.surface_arg("y")
    lane = b.vreg(DType.I32)
    b.and_(lane, gid, 1)
    f = b.cmp(CmpOp.EQ, lane, 0)
    acc = b.vreg(DType.F32)
    b.mov(acc, 1.0)
    with b.if_(f):
        for _ in range(work):
            b.mad(acc, acc, 1.5, 0.25)
        b.else_()
        b.mov(acc, 2.0)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(acc, addr, ys)
    return b.finish()


class TestFunctionalExecution:
    def test_axpy_result(self):
        prog = _axpy_program()
        n = 256
        x = np.arange(n, dtype=np.float32)
        y = np.ones(n, dtype=np.float32)
        GpuSimulator(GpuConfig()).run(prog, n, buffers={"x": x, "y": y},
                                      scalars={"a": 3.0})
        np.testing.assert_allclose(y, 3.0 * np.arange(n) + 1.0)

    def test_partial_tail_thread(self):
        prog = _axpy_program()
        n = 100  # not a multiple of 16: last thread dispatches 4 lanes
        x = np.arange(n, dtype=np.float32)
        y = np.zeros(n, dtype=np.float32)
        result = GpuSimulator(GpuConfig()).run(
            prog, n, buffers={"x": x, "y": y}, scalars={"a": 1.0})
        np.testing.assert_allclose(y, x)
        assert result.total_cycles > 0

    def test_divergent_branches_correct(self):
        prog = _divergent_program(work=3)
        n = 64
        y = np.zeros(n, dtype=np.float32)
        GpuSimulator(GpuConfig()).run(prog, n, buffers={"y": y})
        acc = np.float32(1.0)
        for _ in range(3):
            acc = acc * np.float32(1.5) + np.float32(0.25)
        np.testing.assert_allclose(y[0::2], acc)
        np.testing.assert_allclose(y[1::2], 2.0)

    def test_missing_buffer_rejected(self):
        prog = _axpy_program()
        with pytest.raises(ValueError, match="missing buffer"):
            GpuSimulator(GpuConfig()).run(prog, 16, buffers={}, scalars={"a": 1.0})

    def test_missing_scalar_rejected(self):
        prog = _axpy_program()
        x = np.zeros(16, dtype=np.float32)
        with pytest.raises(ValueError, match="missing scalar"):
            GpuSimulator(GpuConfig()).run(prog, 16, buffers={"x": x, "y": x.copy()})

    def test_unfinalized_program_rejected(self):
        from repro.isa.program import Program

        with pytest.raises(ValueError, match="finalized"):
            GpuSimulator(GpuConfig()).run(Program("p", 16), 16)


class TestTimingProperties:
    def test_deterministic(self):
        prog = _divergent_program()
        def run():
            y = np.zeros(128, dtype=np.float32)
            return GpuSimulator(GpuConfig()).run(prog, 128, buffers={"y": y})
        assert run().total_cycles == run().total_cycles

    def test_more_work_takes_longer(self):
        prog = _axpy_program()
        def cycles(n):
            x = np.zeros(n, dtype=np.float32)
            y = np.zeros(n, dtype=np.float32)
            return GpuSimulator(GpuConfig()).run(
                prog, n, buffers={"x": x, "y": y}, scalars={"a": 1.0}
            ).total_cycles
        assert cycles(4096) > cycles(256)

    def test_more_eus_faster(self):
        prog = _axpy_program()
        def cycles(num_eus):
            n = 2048
            x = np.zeros(n, dtype=np.float32)
            y = np.zeros(n, dtype=np.float32)
            return GpuSimulator(GpuConfig(num_eus=num_eus)).run(
                prog, n, buffers={"x": x, "y": y}, scalars={"a": 1.0}
            ).total_cycles
        assert cycles(6) < cycles(1)

    def test_policy_ordering_on_divergent_kernel(self):
        prog = _divergent_program(work=12)
        def cycles(policy):
            y = np.zeros(1024, dtype=np.float32)
            return GpuSimulator(GpuConfig(policy=policy)).run(
                prog, 1024, buffers={"y": y}).total_cycles
        ivb = cycles(CompactionPolicy.IVB)
        bcc = cycles(CompactionPolicy.BCC)
        scc = cycles(CompactionPolicy.SCC)
        assert scc <= bcc <= ivb
        assert scc < ivb  # strided divergence must benefit from SCC

    def test_eu_cycles_by_policy_monotone(self):
        prog = _divergent_program()
        y = np.zeros(256, dtype=np.float32)
        result = GpuSimulator(GpuConfig()).run(prog, 256, buffers={"y": y})
        cycles = result.eu_cycles_by_policy()
        assert (cycles[CompactionPolicy.RAW] >= cycles[CompactionPolicy.IVB]
                >= cycles[CompactionPolicy.BCC] >= cycles[CompactionPolicy.SCC])

    def test_max_cycles_guard(self):
        prog = _axpy_program()
        x = np.zeros(4096, dtype=np.float32)
        y = np.zeros(4096, dtype=np.float32)
        config = GpuConfig(max_cycles=10)
        with pytest.raises(DeadlockError, match="max_cycles"):
            GpuSimulator(config).run(prog, 4096, buffers={"x": x, "y": y},
                                     scalars={"a": 1.0})


class TestResultMetrics:
    def _result(self, **config_kwargs):
        prog = _divergent_program()
        y = np.zeros(256, dtype=np.float32)
        return GpuSimulator(GpuConfig(**config_kwargs)).run(
            prog, 256, buffers={"y": y})

    def test_simd_efficiency_below_one(self):
        assert 0.3 < self._result().simd_efficiency < 1.0

    def test_instruction_count_positive(self):
        assert self._result().instructions > 0

    def test_dc_throughput_bounded(self):
        result = self._result()
        assert 0.0 <= result.dc_throughput <= 1.0  # DC1 peak is 1 line/cycle

    def test_summary_keys(self):
        summary = self._result().summary()
        for key in ("total_cycles", "eu_cycles", "simd_efficiency",
                    "l3_hit_rate", "dc_throughput"):
            assert key in summary

    def test_merge_results(self):
        a = self._result()
        b = self._result()
        merged = merge_results([a, b])
        assert merged.total_cycles == a.total_cycles + b.total_cycles
        assert merged.instructions == a.instructions + b.instructions
        assert merged.alu_stats.instructions == (
            a.alu_stats.instructions + b.alu_stats.instructions)

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_results([])

    def test_total_time_reduction(self):
        a = self._result(policy=CompactionPolicy.IVB)
        b = self._result(policy=CompactionPolicy.SCC)
        reduction = total_time_reduction_pct(a, b)
        assert reduction >= 0.0

    def test_reduction_mismatched_kernels_rejected(self):
        a = self._result()
        prog = _axpy_program()
        x = np.zeros(16, dtype=np.float32)
        other = GpuSimulator(GpuConfig()).run(
            prog, 16, buffers={"x": x, "y": x.copy()}, scalars={"a": 1.0})
        with pytest.raises(ValueError):
            total_time_reduction_pct(a, other)


class TestConfig:
    def test_with_policy_copies(self):
        base = GpuConfig()
        scc = base.with_policy(CompactionPolicy.SCC)
        assert base.policy is CompactionPolicy.IVB
        assert scc.policy is CompactionPolicy.SCC

    def test_with_memory_override(self):
        config = GpuConfig().with_memory(dc_lines_per_cycle=2.0)
        assert config.memory.dc_lines_per_cycle == 2.0
        assert GpuConfig().memory.dc_lines_per_cycle == 1.0

    def test_dc1_dc2_presets(self):
        assert GpuConfig.dc1().memory.dc_lines_per_cycle == 1.0
        assert GpuConfig.dc2().memory.dc_lines_per_cycle == 2.0

    def test_perfect_l3_preset(self):
        assert GpuConfig.perfect_l3().memory.perfect_l3

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuConfig(num_eus=0).validate()
