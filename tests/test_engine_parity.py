"""Differential tests of the two execution engines (interp vs fast).

The fast engine (batched functional pass + timing replay) must be
behaviorally indistinguishable from the interleaved interpreter:
identical output buffers, instruction counts, CompactionStats
fingerprints, total cycles (for mask-deterministic kernels), and
identical memory-fault semantics (misalignment checked before range,
first offending enabled lane wins).  These tests pin that equivalence on
seeded random programs, hand-built fault kernels, and registry
workloads.
"""

import random

import numpy as np
import pytest

from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.isa.registers import FlagRef
from repro.isa.types import CmpOp, DType
from repro.kernels import WORKLOAD_REGISTRY
from repro.kernels.workload import run_workload
from repro.verify.differential import _stats_fingerprint
from repro.verify.engines import run_engine_parity, verify_engine_results


def _run_both(program, global_size, make_buffers, scalars=None,
              local_size=None, **config_kwargs):
    """Run *program* under both engines on fresh buffers; return results."""
    out = {}
    for engine in ("interp", "fast"):
        buffers = make_buffers()
        config = GpuConfig(engine=engine, **config_kwargs)
        result = GpuSimulator(config).run(
            program, global_size, local_size=local_size,
            buffers=buffers, scalars=dict(scalars or {}))
        out[engine] = (result, buffers)
    return out["interp"], out["fast"]


def _assert_parity(interp, fast):
    """Full behavioral-identity check between two engine runs."""
    interp_result, interp_buffers = interp
    fast_result, fast_buffers = fast
    for name in interp_buffers:
        np.testing.assert_array_equal(
            interp_buffers[name], fast_buffers[name],
            err_msg=f"buffer {name!r} diverges between engines")
    assert fast_result.instructions == interp_result.instructions
    assert fast_result.total_cycles == interp_result.total_cycles
    assert (_stats_fingerprint(fast_result.alu_stats)
            == _stats_fingerprint(interp_result.alu_stats))
    assert (_stats_fingerprint(fast_result.simd_stats)
            == _stats_fingerprint(interp_result.simd_stats))


def _random_program(seed):
    """Seeded random kernel: ALU mix, divergent control flow, memory ops.

    Deliberately exercises the trickier replay paths — predication,
    IF/ELSE reconvergence, a bounded divergent loop, int shifts beyond
    the 32-bit width (the clamp regression), and gather/scatter with a
    write-back at the end so functional divergence is observable.
    """
    rng = random.Random(seed)
    width = rng.choice((8, 16))
    b = KernelBuilder(f"fuzz{seed}", width)
    surf = b.surface_arg("data")
    gid = b.global_id()
    addr = b.shl(b.vreg(DType.I32), gid, 2)
    x = b.load(b.vreg(DType.F32), addr, surf)
    live_f = [x]
    live_i = [gid]
    for _ in range(rng.randrange(8, 20)):
        roll = rng.random()
        if roll < 0.45:
            op = rng.choice(("add", "sub", "mul", "min_", "max_", "mad"))
            a, c = rng.choice(live_f), rng.choice(live_f)
            if op == "mad":
                r = b.mad(b.vreg(DType.F32), a, c, rng.choice(live_f))
            else:
                r = getattr(b, op)(b.vreg(DType.F32), a, c)
            live_f.append(r)
        elif roll < 0.65:
            op = rng.choice(("and_", "or_", "xor", "add", "shl", "shr"))
            a = rng.choice(live_i)
            c = (rng.choice(live_i) if rng.random() < 0.5
                 else rng.randrange(0, 40))
            live_i.append(getattr(b, op)(b.vreg(DType.I32), a, c))
        elif roll < 0.8:
            flag = b.cmp(rng.choice(list(CmpOp)), rng.choice(live_i),
                         rng.randrange(0, width * 4), flag=FlagRef(1))
            live_f.append(b.sel(b.vreg(DType.F32), flag,
                                rng.choice(live_f), rng.choice(live_f)))
        else:
            flag = b.cmp(CmpOp.LT, gid, rng.randrange(1, width * 4),
                         flag=FlagRef(1))
            live_f.append(b.mul(b.vreg(DType.F32), rng.choice(live_f),
                                1.0009765625, pred=flag))
    # Divergent IF/ELSE region with per-branch stores.
    branch = b.cmp(CmpOp.GE, gid, rng.randrange(1, width * 3),
                   flag=FlagRef(1))
    with b.if_(branch):
        b.store(b.add(b.vreg(DType.F32), rng.choice(live_f), 1.0),
                addr, surf)
        b.else_()
        b.store(b.sub(b.vreg(DType.F32), rng.choice(live_f), 2.0),
                addr, surf)
    # Bounded divergent loop: lanes exit at different trip counts.
    it = b.mov(b.vreg(DType.I32), 0)
    limit = b.and_(b.vreg(DType.I32), gid, 3)
    b.do_()
    b.add(it, it, 1)
    again = b.cmp(CmpOp.LT, it, limit, flag=FlagRef(1))
    b.while_(again)
    b.store(b.cvt(b.vreg(DType.F32), it), addr, surf)
    return b.finish(), width


class TestRandomProgramParity:
    """Seeded random kernels run bit- and cycle-identically on both engines."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_kernel_parity(self, seed):
        program, width = _random_program(seed)
        global_size = width * 18  # multiple EUs, partial last workgroup

        def buffers():
            rng = np.random.default_rng(seed)
            return {"data": rng.standard_normal(
                global_size, dtype=np.float32) + 2.0}

        _assert_parity(*_run_both(program, global_size, buffers))

    @pytest.mark.parametrize("seed", (0, 3, 7))
    @pytest.mark.parametrize("policy", ("raw", "scc"))
    def test_parity_holds_across_policies(self, seed, policy):
        from repro.core.policy import parse_policy

        program, width = _random_program(seed)
        global_size = width * 12

        def buffers():
            rng = np.random.default_rng(seed)
            return {"data": rng.standard_normal(
                global_size, dtype=np.float32) + 2.0}

        _assert_parity(*_run_both(program, global_size, buffers,
                                  policy=parse_policy(policy)))

    def test_partial_tail_thread_parity(self):
        """A ragged NDRange (partial dispatch mask) replays identically."""
        program, width = _random_program(5)
        global_size = width * 7 + 3

        def buffers():
            # Round the surface up so in-range lanes stay in range.
            return {"data": np.linspace(
                1.0, 2.0, width * 8, dtype=np.float32)}

        _assert_parity(*_run_both(program, global_size, buffers))


def _fault_program(width, offsets, dtype=DType.F32, store=False):
    """Kernel that gathers (or scatters) from fixed per-lane offsets."""
    b = KernelBuilder("fault", width)
    surf = b.surface_arg("data")
    gid = b.global_id()
    lane_off = b.vreg(DType.I32)
    # Build the offset vector lane by lane: off = table[lid].
    table = b.surface_arg("offsets")
    b.load(lane_off, b.shl(b.vreg(DType.I32), gid, 2), table)
    if store:
        b.store(b.cvt(b.vreg(DType.F32), gid), lane_off, surf)
    else:
        b.load(b.vreg(dtype), lane_off, surf)
    return b.finish()


def _fault_from_both(width, offsets, store=False):
    """Run the fault kernel under both engines; return raised exceptions."""
    errors = {}
    for engine in ("interp", "fast"):
        buffers = {
            "data": np.ones(width, dtype=np.float32),
            "offsets": np.asarray(offsets, dtype=np.int32),
        }
        config = GpuConfig(engine=engine)
        with pytest.raises((ValueError, IndexError)) as excinfo:
            GpuSimulator(config).run(_fault_program(width, offsets,
                                                    store=store),
                                     width, buffers=buffers)
        errors[engine] = excinfo.value
    return errors["interp"], errors["fast"]


class TestMemoryFaultParity:
    """Gather/scatter error semantics agree exactly between engines."""

    def test_out_of_range_gather(self):
        interp, fast = _fault_from_both(4, [0, 4, 4096, 8])
        assert type(interp) is type(fast) is IndexError
        assert str(interp) == str(fast)
        assert "lane 2" in str(interp)

    def test_misaligned_gather(self):
        interp, fast = _fault_from_both(4, [0, 6, 8, 12])
        assert type(interp) is type(fast) is ValueError
        assert str(interp) == str(fast)
        assert "byte offset 6" in str(interp)

    def test_misalignment_checked_before_range(self):
        # Offset 4097 is both misaligned and out of range: both engines
        # must report the alignment fault, not the range fault.
        interp, fast = _fault_from_both(4, [0, 4097, 4096, 8])
        assert type(interp) is type(fast) is ValueError
        assert str(interp) == str(fast)

    def test_first_offending_lane_wins(self):
        # Lanes 1 and 3 are both out of range: lane 1 must be reported.
        interp, fast = _fault_from_both(4, [0, 4096, 8, 8192])
        assert type(interp) is type(fast) is IndexError
        assert str(interp) == str(fast)
        assert "lane 1" in str(interp)

    def test_negative_offset_out_of_range(self):
        interp, fast = _fault_from_both(4, [0, -4, 8, 12])
        assert type(interp) is type(fast) is IndexError
        assert str(interp) == str(fast)

    def test_scatter_fault_parity(self):
        interp, fast = _fault_from_both(4, [0, 4, 8, 4096], store=True)
        assert type(interp) is type(fast) is IndexError
        assert str(interp) == str(fast)
        assert "writes" in str(interp)


class TestWorkloadParity:
    """Registry workloads agree between engines end to end."""

    @pytest.mark.parametrize("name", ("va", "nested_l2", "bsearch"))
    def test_mask_deterministic_workload(self, name):
        results = {}
        for engine in ("interp", "fast"):
            config = GpuConfig(engine=engine)
            results[engine] = run_workload(WORKLOAD_REGISTRY[name](),
                                           config, verify=True)
        interp, fast = results["interp"], results["fast"]
        assert fast.buffers_digest == interp.buffers_digest
        assert fast.buffers_digest is not None
        assert verify_engine_results(name, interp, fast,
                                     mask_deterministic=True) == []

    def test_mask_nondeterministic_workload_digest_only(self):
        # Level-synchronous BFS races benignly: digests and instruction
        # counts must match, cycles only within tolerance.
        results = {}
        for engine in ("interp", "fast"):
            config = GpuConfig(engine=engine)
            results[engine] = run_workload(WORKLOAD_REGISTRY["bfs"](),
                                           config, verify=True)
        interp, fast = results["interp"], results["fast"]
        assert fast.buffers_digest == interp.buffers_digest
        assert verify_engine_results("bfs", interp, fast,
                                     mask_deterministic=False) == []

    def test_verify_engine_results_flags_divergence(self):
        import dataclasses

        config = GpuConfig()
        result = run_workload(WORKLOAD_REGISTRY["va"](), config, verify=True)
        tampered = dataclasses.replace(
            result, total_cycles=result.total_cycles + 1,
            buffers_digest="0" * 64, instructions=result.instructions + 7)
        violations = verify_engine_results("va", result, tampered,
                                           mask_deterministic=True)
        checks = {v.check for v in violations}
        assert "engine-functional-identity" in checks
        assert "engine-instruction-count" in checks
        assert "engine-total-cycles" in checks

    def test_run_engine_parity_end_to_end(self, tmp_path):
        from repro.runner import Runner

        runner = Runner(workers=1, cache=tmp_path / "cache")
        verdicts = run_engine_parity(["va"], GpuConfig(), runner)
        assert len(verdicts) == 1
        assert verdicts[0].passed, verdicts[0].violations
        assert verdicts[0].workload == "va@engines"
        assert (verdicts[0].metrics["interp"]["total_cycles"]
                == verdicts[0].metrics["fast"]["total_cycles"])
