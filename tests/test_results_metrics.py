"""Tests for the misleading-metric fixes in :mod:`repro.gpu.results`."""

import pytest

from repro.core.policy import CompactionPolicy
from repro.core.stats import CompactionStats
from repro.gpu.results import KernelRunResult, merge_results


def _result(kernel="k", policy=CompactionPolicy.IVB, l3_hits=0, l3_accesses=0,
            llc_hits=0, llc_accesses=0):
    stats = CompactionStats()
    stats.record(0xFFFF, 16)
    return KernelRunResult(
        kernel=kernel,
        policy=policy,
        total_cycles=100,
        instructions=1,
        alu_stats=stats,
        simd_stats=stats,
        l3_hits=l3_hits,
        l3_accesses=l3_accesses,
        llc_hits=llc_hits,
        llc_accesses=llc_accesses,
        dc_lines=0,
        dram_lines=0,
        memory_messages=0,
        lines_requested=0,
        workgroups=1,
    )


class TestHitRates:
    def test_compute_only_kernel_reports_zero_not_perfect(self):
        result = _result()
        assert result.l3_hit_rate == 0.0
        assert result.llc_hit_rate == 0.0
        assert result.summary()["l3_hit_rate"] == 0.0
        assert result.summary()["llc_hit_rate"] == 0.0

    def test_real_rates_unchanged(self):
        result = _result(l3_hits=3, l3_accesses=4, llc_hits=1, llc_accesses=2)
        assert result.l3_hit_rate == pytest.approx(0.75)
        assert result.llc_hit_rate == pytest.approx(0.5)


class TestMergeValidation:
    def test_policy_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different policies"):
            merge_results([_result(policy=CompactionPolicy.IVB),
                           _result(policy=CompactionPolicy.SCC)])

    def test_same_kernel_name_kept_plain(self):
        merged = merge_results([_result(), _result(), _result()])
        assert merged.kernel == "k"

    def test_distinct_kernel_names_joined_in_order(self):
        merged = merge_results([_result(kernel="init"),
                                _result(kernel="solve"),
                                _result(kernel="init")])
        assert merged.kernel == "init+solve"

    def test_counters_still_summed(self):
        merged = merge_results([_result(l3_hits=1, l3_accesses=2),
                                _result(l3_hits=1, l3_accesses=2)])
        assert merged.l3_accesses == 4
        assert merged.l3_hit_rate == pytest.approx(0.5)
        assert merged.total_cycles == 200
