"""Validate that kernels produce exactly the execution masks they claim.

Uses the simulator's trace capture to inspect the real dynamic mask
stream of the micro-benchmarks — the ground truth behind Figure 8 and
Table 2.
"""

from collections import Counter

import pytest

from repro.gpu import GpuConfig, GpuSimulator
from repro.kernels.micro import branch_pattern, nested_divergence, table2_path_masks


def _capture_masks(workload):
    sink = []
    sim = GpuSimulator(GpuConfig(num_eus=1))
    for step in workload.iter_steps():
        sim.run(workload.program, step.global_size, step.local_size,
                workload.buffers, step.scalars, trace_sink=sink)
    return Counter(event.mask for event in sink if event.width == 16)


class TestFig8Masks:
    @pytest.mark.parametrize("pattern", [0xF0F0, 0x00FF, 0xAAAA, 0xFF0F])
    def test_both_arm_masks_appear(self, pattern):
        masks = _capture_masks(branch_pattern(pattern, n=64, loop_iters=2))
        assert pattern in masks
        complement = 0xFFFF & ~pattern
        assert complement in masks

    def test_coherent_pattern_has_no_complement_arm(self):
        masks = _capture_masks(branch_pattern(0xFFFF, n=64, loop_iters=2))
        assert 0x0000 not in masks  # empty else arm is jumped over

    def test_arm_work_balanced(self):
        # Both arms run the same FMA chain, so the two arm masks appear
        # equally often.
        masks = _capture_masks(branch_pattern(0xF0F0, n=64, loop_iters=2))
        assert masks[0xF0F0] == masks[0x0F0F]


class TestTable2Masks:
    @pytest.mark.parametrize("level", [1, 2, 3, 4])
    def test_all_path_masks_observed(self, level):
        masks = _capture_masks(nested_divergence(level, n=64))
        for expected in table2_path_masks(level):
            assert expected in masks, hex(expected)

    def test_leaf_masks_partition_the_warp(self):
        masks = _capture_masks(nested_divergence(2, n=64))
        leaves = table2_path_masks(2)
        union = 0
        for mask in leaves:
            union |= mask
        assert union == 0xFFFF
        # Leaves are pairwise disjoint.
        total = sum(bin(m).count("1") for m in leaves)
        assert total == 16
