"""Tests for the host-side profiler (where the simulator spends time)."""

import json
import time

import pytest

from repro.gpu.config import GpuConfig
from repro.telemetry.hostprof import (
    BASELINE_WORKLOADS,
    BENCH_SCHEMA,
    HostProfiler,
    _subsystem_of,
    main,
    profile_run,
    write_bench_json,
)


class TestSubsystemAttribution:
    def test_repro_files_map_to_their_package(self):
        import repro.eu.eu as eu_mod
        import repro.telemetry.hostprof as hostprof_mod

        assert _subsystem_of(eu_mod.__file__) == "eu"
        assert _subsystem_of(hostprof_mod.__file__) == "telemetry"

    def test_foreign_files_map_to_none(self):
        assert _subsystem_of(json.__file__) is None
        assert _subsystem_of("/nonexistent/place.py") is None


class TestHostProfiler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            HostProfiler(interval=0)

    def test_start_twice_rejected(self):
        profiler = HostProfiler()
        with profiler:
            with pytest.raises(RuntimeError, match="already running"):
                profiler.start()

    def test_samples_busy_work(self):
        profiler = HostProfiler(interval=0.0005)
        with profiler:
            deadline = time.perf_counter() + 0.08
            while time.perf_counter() < deadline:
                sum(range(500))
        assert profiler.samples > 0
        assert profiler.host_seconds > 0.05

    def test_opcode_accounting_is_exact(self):
        profiler = HostProfiler()
        profiler.add_opcode("MAD", 0.25)
        profiler.add_opcode("MAD", 0.25)
        profiler.add_opcode("LOAD", 0.1)
        report = profiler.report()
        assert report["opcodes"]["MAD"] == {"seconds": 0.5, "calls": 2}
        assert list(report["opcodes"]) == ["MAD", "LOAD"]  # by time, desc

    def test_report_shares_sum_to_one(self):
        profiler = HostProfiler(interval=0.0005)
        with profiler:
            deadline = time.perf_counter() + 0.05
            while time.perf_counter() < deadline:
                sum(range(500))
        report = profiler.report()
        shares = [entry["share"] for entry in report["subsystems"].values()]
        assert shares and sum(shares) == pytest.approx(1.0)


class TestProfileRun:
    def test_profiles_a_real_run(self):
        result, report = profile_run("nested_l1", GpuConfig(),
                                     interval=0.0005)
        assert report["workload"] == "nested_l1"
        assert report["total_cycles"] == result.total_cycles
        assert report["cycles_per_second"] > 0
        # The issue loop feeds exact opcode timings.
        assert report["opcodes"]
        assert "eu" in report["subsystems"]

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            profile_run("no_such_kernel")


class TestBenchJson:
    def test_baseline_workloads_are_registered(self):
        from repro.kernels import WORKLOAD_REGISTRY

        assert set(BASELINE_WORKLOADS) <= set(WORKLOAD_REGISTRY)

    def test_write_bench_json_schema(self, tmp_path):
        _, report = profile_run("nested_l1", interval=0.0005)
        path = write_bench_json(tmp_path / "BENCH_test.json", [report],
                                label="test")
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["label"] == "test"
        assert "nested_l1" in payload["workloads"]
        entry = payload["workloads"]["nested_l1"]
        assert {"policy", "host_seconds", "total_cycles",
                "cycles_per_second"} <= set(entry)

    def test_main_writes_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_baseline.json"
        assert main(["--out", str(out), "--workloads", "nested_l1",
                     "--interval", "0.0005"]) == 0
        payload = json.loads(out.read_text())
        assert list(payload["workloads"]) == ["nested_l1"]
        assert "wrote" in capsys.readouterr().err
