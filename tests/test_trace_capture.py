"""Cross-validation of the two evaluation methodologies.

The paper uses execution-driven simulation where possible and trace
profiling elsewhere (Section 5.1).  Here the simulator *captures* its
own instruction-mask stream (the instrumented functional model) and the
trace profiler replays it: the EU-cycle reductions must agree exactly,
proving both paths implement the same cycle model.
"""

import numpy as np
import pytest

from repro.core.policy import CompactionPolicy
from repro.gpu import GpuConfig, GpuSimulator
from repro.kernels import WORKLOAD_REGISTRY
from repro.trace.format import TraceEvent, write_trace, load_trace
from repro.trace.profiler import profile_trace


def _capture(name):
    workload = WORKLOAD_REGISTRY[name]()
    sink = []
    sim = GpuSimulator(GpuConfig())
    results = []
    for step in workload.iter_steps():
        results.append(sim.run(workload.program, step.global_size,
                               step.local_size, workload.buffers,
                               step.scalars, trace_sink=sink))
    from repro.gpu.results import merge_results

    return merge_results(results), sink


class TestCapture:
    @pytest.mark.parametrize("name", ["gnoise", "kmeans", "nested_l2"])
    def test_methodologies_agree_exactly(self, name):
        result, sink = _capture(name)
        profile = profile_trace(name, sink)
        for policy in (CompactionPolicy.BCC, CompactionPolicy.SCC):
            assert profile.stats.reduction_pct(policy) == pytest.approx(
                result.eu_cycle_reduction_pct(policy), abs=1e-9)

    def test_event_count_matches_alu_instructions(self):
        result, sink = _capture("nested_l1")
        assert len(sink) == result.alu_stats.instructions

    def test_events_are_valid(self):
        _result, sink = _capture("gnoise")
        assert all(isinstance(e, TraceEvent) for e in sink)
        assert all(e.width in (8, 16, 32) for e in sink)

    def test_captured_trace_round_trips_to_disk(self, tmp_path):
        _result, sink = _capture("nested_l1")
        path = tmp_path / "captured.trace"
        write_trace(sink, path)
        assert load_trace(path) == sink

    def test_no_sink_no_capture(self):
        workload = WORKLOAD_REGISTRY["nested_l1"]()
        sim = GpuSimulator(GpuConfig())
        step = next(workload.iter_steps())
        result = sim.run(workload.program, step.global_size, step.local_size,
                         workload.buffers, step.scalars)
        assert result.instructions > 0  # plain run unaffected
