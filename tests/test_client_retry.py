"""Transparent-retry tests for :class:`repro.serve.ServeClient`.

A scripted flaky HTTP server (real sockets, stdlib ``http.server``)
answers each request per a script — connection reset, 429/503 with or
without ``Retry-After``, then success — proving the client retries
transient failures with jittered backoff, honors the daemon's
``Retry-After`` hint, never retries deterministic errors, and fails
fast under ``--no-retry`` (``max_retries=0``).
"""

import http.server
import json
import threading

import pytest

from repro.serve.client import ServeClient, ServeClientError


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Answers per the server's script; counts every arrival."""

    def _serve(self):
        server = self.server
        server.hits += 1
        action = server.script.pop(0) if server.script else ("200", None)
        status, retry_after = action
        if status == "reset":
            # Abrupt close with no response -> OSError client-side.
            self.connection.close()
            return
        body = json.dumps({"ok": True, "hits": server.hits}
                          if int(status) < 400 else
                          {"error": f"scripted {status}"}).encode()
        self.send_response(int(status))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *args):  # keep pytest output clean
        pass


@pytest.fixture
def flaky():
    """A scripted server; yields (server, make_client)."""
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                             _FlakyHandler)
    server.script = []
    server.hits = 0
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    sleeps = []

    def make_client(**kwargs):
        kwargs.setdefault("timeout", 5.0)
        client = ServeClient(host="127.0.0.1",
                             port=server.server_address[1], **kwargs)
        client._sleep = sleeps.append  # no real waiting in tests
        client.sleeps = sleeps
        return client

    try:
        yield server, make_client
    finally:
        server.shutdown()
        server.server_close()


class TestTransientRetry:
    def test_503_then_success(self, flaky):
        server, make_client = flaky
        server.script = [("503", None), ("503", None), ("200", None)]
        client = make_client()
        body = client.request("GET", "/healthz")
        assert body["ok"] is True
        assert server.hits == 3
        assert client.retries_attempted == 2

    def test_connection_reset_then_success(self, flaky):
        server, make_client = flaky
        server.script = [("reset", None), ("200", None)]
        client = make_client()
        body = client.request("GET", "/healthz")
        assert body["ok"] is True
        assert client.retries_attempted == 1

    def test_429_honors_retry_after(self, flaky):
        server, make_client = flaky
        server.script = [("429", "7"), ("200", None)]
        client = make_client()
        assert client.request("GET", "/jobs")["ok"] is True
        # The daemon's hint wins over the jitter schedule.
        assert client.sleeps == [7.0]

    def test_exhausted_budget_raises_typed(self, flaky):
        server, make_client = flaky
        server.script = [("503", None)] * 10
        client = make_client(max_retries=2)
        with pytest.raises(ServeClientError) as info:
            client.request("GET", "/healthz")
        assert info.value.status == 503
        assert server.hits == 3  # initial try + 2 retries

    def test_unreachable_exhausts_then_typed(self, flaky):
        server, make_client = flaky
        client = make_client(max_retries=2)
        client.port = 1  # nothing listens here
        with pytest.raises(ServeClientError) as info:
            client.request("GET", "/healthz")
        assert info.value.status == 0
        assert "cannot reach repro serve" in str(info.value)
        assert client.retries_attempted == 2


class TestNoRetry:
    def test_no_retry_fails_fast(self, flaky):
        server, make_client = flaky
        server.script = [("503", None), ("200", None)]
        client = make_client(max_retries=0)
        with pytest.raises(ServeClientError) as info:
            client.request("GET", "/healthz")
        assert info.value.status == 503
        assert server.hits == 1
        assert client.sleeps == []

    def test_per_call_override_beats_client_default(self, flaky):
        server, make_client = flaky
        server.script = [("503", None), ("200", None)]
        client = make_client(max_retries=5)
        with pytest.raises(ServeClientError):
            client.request("GET", "/healthz", retries=0)
        assert server.hits == 1


class TestDeterministicErrorsNeverRetry:
    @pytest.mark.parametrize("status", ["400", "404", "409"])
    def test_client_errors_surface_immediately(self, flaky, status):
        server, make_client = flaky
        server.script = [(status, None), ("200", None)]
        client = make_client()
        with pytest.raises(ServeClientError) as info:
            client.request("GET", "/jobs/nope")
        assert info.value.status == int(status)
        assert server.hits == 1  # no second arrival

    def test_retry_after_surfaces_on_final_error(self, flaky):
        server, make_client = flaky
        server.script = [("503", "3")]
        client = make_client(max_retries=0)
        with pytest.raises(ServeClientError) as info:
            client.request("GET", "/healthz")
        assert info.value.retry_after == 3.0


class TestBackoffShape:
    def test_decorrelated_jitter_bounds(self, flaky):
        """Each backoff draw lands in [base, cap]; sleeps grow from the
        base (first sleep IS the base) and never exceed the cap."""
        server, make_client = flaky
        server.script = [("503", None)] * 6 + [("200", None)]
        client = make_client(max_retries=6, retry_base=0.05, retry_cap=0.4)
        client._rng.seed(42)
        assert client.request("GET", "/healthz")["ok"] is True
        assert client.sleeps[0] == 0.05
        assert all(0.05 <= s <= 0.4 for s in client.sleeps)
