"""Tests for repro.analysis.efficiency on live simulator runs."""

import pytest

from repro.analysis.efficiency import (
    EfficiencyEntry,
    simulator_efficiencies,
    trace_efficiencies,
    utilization_breakdown,
)
from repro.core.stats import CompactionStats
from repro.gpu.config import GpuConfig


class TestSimulatorEfficiencies:
    @pytest.fixture(scope="class")
    def entries(self):
        return simulator_efficiencies(("va", "gnoise", "nested_l2"),
                                      GpuConfig())

    def test_order_preserved(self, entries):
        assert [e.name for e in entries] == ["va", "gnoise", "nested_l2"]

    def test_source_tag(self, entries):
        assert all(e.source == "simulator" for e in entries)

    def test_known_classifications(self, entries):
        by_name = {e.name: e for e in entries}
        assert not by_name["va"].divergent
        assert by_name["gnoise"].divergent
        assert by_name["nested_l2"].divergent

    def test_nested_l2_efficiency_analytic(self, entries):
        # Leaf FMAs run at 4/16 lanes, but the common guard code runs
        # full-width, so efficiency sits between 0.25 and 1.0 -- and the
        # measured value is deterministic.
        by_name = {e.name: e for e in entries}
        eff = by_name["nested_l2"].simd_efficiency
        assert 0.25 < eff < 0.9
        again = simulator_efficiencies(("nested_l2",), GpuConfig())[0]
        assert again.simd_efficiency == eff


class TestTraceEfficiencies:
    def test_default_covers_all_profiles(self):
        from repro.trace.workloads import TRACE_PROFILES

        entries = trace_efficiencies()
        assert len(entries) == len(TRACE_PROFILES)

    def test_entries_reusable_for_breakdown(self):
        entries = trace_efficiencies(["glbench_pro"])
        table = utilization_breakdown(entries)
        assert "glbench_pro" in table


class TestUtilizationBreakdownEdgeCases:
    def test_other_bucket_captures_odd_widths(self):
        stats = CompactionStats()
        stats.record(0xF, 4)  # SIMD4: outside the canonical buckets
        entry = EfficiencyEntry("odd", "test", stats.simd_efficiency, stats)
        row = utilization_breakdown([entry])["odd"]
        assert row["other"] == pytest.approx(1.0)

    def test_mixed_widths_accounted(self):
        stats = CompactionStats()
        stats.record(0x0F, 8)
        stats.record(0x000F, 16)
        entry = EfficiencyEntry("mix", "test", stats.simd_efficiency, stats)
        row = utilization_breakdown([entry])["mix"]
        assert row["1-4/8"] == pytest.approx(0.5)
        assert row["1-4/16"] == pytest.approx(0.5)
        assert sum(row.values()) == pytest.approx(1.0)
