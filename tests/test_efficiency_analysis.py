"""Tests for repro.analysis.efficiency on live simulator runs."""

import pytest

from repro.analysis.efficiency import (
    EfficiencyEntry,
    simulator_efficiencies,
    trace_efficiencies,
    utilization_breakdown,
)
from repro.core.stats import CompactionStats
from repro.gpu.config import GpuConfig


class TestSimulatorEfficiencies:
    @pytest.fixture(scope="class")
    def entries(self):
        return simulator_efficiencies(("va", "gnoise", "nested_l2"),
                                      GpuConfig())

    def test_order_preserved(self, entries):
        assert [e.name for e in entries] == ["va", "gnoise", "nested_l2"]

    def test_source_tag(self, entries):
        assert all(e.source == "simulator" for e in entries)

    def test_known_classifications(self, entries):
        by_name = {e.name: e for e in entries}
        assert not by_name["va"].divergent
        assert by_name["gnoise"].divergent
        assert by_name["nested_l2"].divergent

    def test_nested_l2_efficiency_analytic(self, entries):
        # Leaf FMAs run at 4/16 lanes, but the common guard code runs
        # full-width, so efficiency sits between 0.25 and 1.0 -- and the
        # measured value is deterministic.
        by_name = {e.name: e for e in entries}
        eff = by_name["nested_l2"].simd_efficiency
        assert 0.25 < eff < 0.9
        again = simulator_efficiencies(("nested_l2",), GpuConfig())[0]
        assert again.simd_efficiency == eff


class TestTraceEfficiencies:
    def test_default_covers_all_profiles(self):
        from repro.trace.workloads import TRACE_PROFILES

        entries = trace_efficiencies()
        assert len(entries) == len(TRACE_PROFILES)

    def test_entries_reusable_for_breakdown(self):
        entries = trace_efficiencies(["glbench_pro"])
        table = utilization_breakdown(entries)
        assert "glbench_pro" in table


class TestUtilizationBreakdownEdgeCases:
    def test_other_bucket_captures_odd_widths(self):
        stats = CompactionStats()
        stats.record(0xF, 4)  # SIMD4: outside the canonical buckets
        entry = EfficiencyEntry("odd", "test", stats.simd_efficiency, stats)
        row = utilization_breakdown([entry])["odd"]
        assert row["other"] == pytest.approx(1.0)

    def test_mixed_widths_accounted(self):
        stats = CompactionStats()
        stats.record(0x0F, 8)
        stats.record(0x000F, 16)
        entry = EfficiencyEntry("mix", "test", stats.simd_efficiency, stats)
        row = utilization_breakdown([entry])["mix"]
        assert row["1-4/8"] == pytest.approx(0.5)
        assert row["1-4/16"] == pytest.approx(0.5)
        assert sum(row.values()) == pytest.approx(1.0)

    def test_fully_masked_instructions_accounted_explicitly(self):
        # "0/16" is not a canonical Figure 9 bucket; it must show up as
        # summed "other" mass, exactly, not as a 1-minus-sum residue.
        stats = CompactionStats()
        stats.record(0x0000, 16)
        stats.record(0x0000, 16)
        stats.record(0x1111, 16)
        stats.record(0x00, 8)
        entry = EfficiencyEntry("masked", "test", stats.simd_efficiency, stats)
        row = utilization_breakdown([entry])["masked"]
        assert row["other"] == pytest.approx(0.75)
        assert row["1-4/16"] == pytest.approx(0.25)
        assert sum(row.values()) == pytest.approx(1.0, abs=1e-12)

    def test_canonical_only_row_has_exactly_zero_other(self):
        stats = CompactionStats()
        for mask in (0xFFFF, 0x00FF, 0x0F0F, 0x0001):
            stats.record(mask, 16)
        entry = EfficiencyEntry("canon", "test", stats.simd_efficiency, stats)
        row = utilization_breakdown([entry])["canon"]
        assert row["other"] == 0.0  # exact: a sum of no terms, not a residue

    def test_inconsistent_buckets_raise_instead_of_clamping(self):
        # A bucket-accounting bug (counts exceeding the instruction
        # total) must surface as an error; the old max(0, 1 - sum)
        # residue silently clamped it to an all-plausible row.
        stats = CompactionStats()
        stats.record(0xFFFF, 16)
        stats.instructions = 1
        stats.bucket_counts["13-16/16"] = 3  # corrupt: 3 counts, 1 instr
        entry = EfficiencyEntry("bad", "test", 1.0, stats)
        with pytest.raises(AssertionError, match="sum to"):
            utilization_breakdown([entry])

    def test_empty_stats_report_all_zero_row(self):
        entry = EfficiencyEntry("empty", "test", 1.0, CompactionStats())
        row = utilization_breakdown([entry])["empty"]
        assert set(row.values()) == {0.0}
