"""Exhaustive checks of every KernelBuilder convenience wrapper.

Each wrapper must emit the right opcode, operand order, dtype, and
predication — and its functional semantics must match numpy on a
single-instruction kernel.
"""

import numpy as np
import pytest

from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.isa.opcodes import Opcode
from repro.isa.registers import FlagRef, Imm, RegRef
from repro.isa.types import CmpOp, DType

#: wrapper name -> (opcode, arity, reference fn, input domain)
UNARY_OPS = {
    "mov": (Opcode.MOV, lambda a: a, (-4.0, 4.0)),
    "abs_": (Opcode.ABS, np.abs, (-4.0, 4.0)),
    "floor": (Opcode.FLOOR, np.floor, (-4.0, 4.0)),
    "sqrt": (Opcode.SQRT, np.sqrt, (0.1, 16.0)),
    "rsqrt": (Opcode.RSQRT, lambda a: 1.0 / np.sqrt(a), (0.1, 16.0)),
    "sin": (Opcode.SIN, np.sin, (-3.0, 3.0)),
    "cos": (Opcode.COS, np.cos, (-3.0, 3.0)),
    "exp": (Opcode.EXP, np.exp, (-2.0, 2.0)),
    "log": (Opcode.LOG, np.log, (0.1, 10.0)),
}

BINARY_OPS = {
    "add": (Opcode.ADD, np.add, (-4.0, 4.0)),
    "sub": (Opcode.SUB, np.subtract, (-4.0, 4.0)),
    "mul": (Opcode.MUL, np.multiply, (-4.0, 4.0)),
    "min_": (Opcode.MIN, np.minimum, (-4.0, 4.0)),
    "max_": (Opcode.MAX, np.maximum, (-4.0, 4.0)),
    "div": (Opcode.DIV, np.divide, (0.5, 4.0)),
    "pow_": (Opcode.POW, np.power, (0.5, 2.0)),
}

INT_BINARY_OPS = {
    "and_": (Opcode.AND, np.bitwise_and),
    "or_": (Opcode.OR, np.bitwise_or),
    "xor": (Opcode.XOR, np.bitwise_xor),
}


def _run_unary(method_name, values):
    b = KernelBuilder("u", 16)
    gid = b.global_id()
    src_surf = b.surface_arg("src")
    dst_surf = b.surface_arg("dst")
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    b.load(x, addr, src_surf)
    y = b.vreg(DType.F32)
    getattr(b, method_name)(y, x)
    b.store(y, addr, dst_surf)
    program = b.finish()
    out = np.zeros_like(values)
    GpuSimulator(GpuConfig(num_eus=1)).run(
        program, values.size, buffers={"src": values, "dst": out})
    return out


class TestUnaryWrappers:
    @pytest.mark.parametrize("name", sorted(UNARY_OPS))
    def test_semantics(self, name):
        opcode, ref, (lo, hi) = UNARY_OPS[name]
        values = np.linspace(lo, hi, 32).astype(np.float32)
        out = _run_unary(name, values)
        np.testing.assert_allclose(out, ref(values).astype(np.float32),
                                   rtol=1e-6)

    @pytest.mark.parametrize("name", sorted(UNARY_OPS))
    def test_emits_expected_opcode(self, name):
        opcode, _ref, _dom = UNARY_OPS[name]
        b = KernelBuilder("k", 16)
        getattr(b, name)(b.vreg(), 1.0)
        program = b.finish()
        assert program.instructions[0].opcode is opcode


class TestBinaryWrappers:
    @pytest.mark.parametrize("name", sorted(BINARY_OPS))
    def test_semantics(self, name):
        opcode, ref, (lo, hi) = BINARY_OPS[name]
        rng = np.random.default_rng(1)
        a = rng.uniform(lo, hi, 32).astype(np.float32)
        c = rng.uniform(lo, hi, 32).astype(np.float32)

        b = KernelBuilder("b2", 16)
        gid = b.global_id()
        sa, sc, sd = (b.surface_arg(n) for n in ("a", "c", "d"))
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        ra = b.vreg(DType.F32)
        rc = b.vreg(DType.F32)
        b.load(ra, addr, sa)
        b.load(rc, addr, sc)
        rd = b.vreg(DType.F32)
        getattr(b, name)(rd, ra, rc)
        b.store(rd, addr, sd)
        program = b.finish()
        out = np.zeros(32, dtype=np.float32)
        GpuSimulator(GpuConfig(num_eus=1)).run(
            program, 32, buffers={"a": a, "c": c, "d": out})
        np.testing.assert_allclose(out, ref(a, c).astype(np.float32),
                                   rtol=1e-5)

    @pytest.mark.parametrize("name", sorted(INT_BINARY_OPS))
    def test_int_semantics(self, name):
        opcode, ref = INT_BINARY_OPS[name]
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2**20, 32).astype(np.int32)
        c = rng.integers(0, 2**20, 32).astype(np.int32)
        b = KernelBuilder("bi", 16)
        gid = b.global_id()
        sa, sc, sd = (b.surface_arg(n) for n in ("a", "c", "d"))
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        ra = b.vreg(DType.I32)
        rc = b.vreg(DType.I32)
        b.load(ra, addr, sa)
        b.load(rc, addr, sc)
        rd = b.vreg(DType.I32)
        getattr(b, name)(rd, ra, rc)
        b.store(rd, addr, sd)
        program = b.finish()
        out = np.zeros(32, dtype=np.int32)
        GpuSimulator(GpuConfig(num_eus=1)).run(
            program, 32, buffers={"a": a, "c": c, "d": out})
        np.testing.assert_array_equal(out, ref(a, c))


class TestSpecialWrappers:
    def test_mad_operand_order(self):
        # mad(dst, a, b, c) must compute a*b + c, not any permutation.
        b = KernelBuilder("m", 16)
        dst = b.vreg()
        b.mad(dst, 3.0, 5.0, 7.0)
        inst = b.finish().instructions[0]
        assert inst.opcode is Opcode.MAD
        values = [s.value for s in inst.sources]
        assert values == [3.0, 5.0, 7.0]

    def test_not_emits_not(self):
        b = KernelBuilder("n", 16)
        reg = b.vreg(DType.I32)
        b.not_(reg, reg)
        assert b.finish().instructions[0].opcode is Opcode.NOT

    def test_shifts(self):
        b = KernelBuilder("s", 16)
        reg = b.vreg(DType.I32)
        b.shl(reg, reg, 3)
        b.shr(reg, reg, 3)
        program = b.finish()
        assert program.instructions[0].opcode is Opcode.SHL
        assert program.instructions[1].opcode is Opcode.SHR

    def test_cmp_infers_dtype_from_register(self):
        b = KernelBuilder("c", 16)
        reg = b.vreg(DType.I32)
        b.cmp(CmpOp.LT, reg, 5)
        inst = b.finish().instructions[0]
        assert inst.dtype is DType.I32
        assert isinstance(inst.sources[1], Imm)
        assert inst.sources[1].dtype is DType.I32

    def test_cmp_custom_flag(self):
        b = KernelBuilder("c", 16)
        flag = b.cmp(CmpOp.GE, b.vreg(), 0.0, flag=FlagRef(1))
        assert flag.index == 1
        assert b.finish().instructions[0].flag_dst.index == 1

    def test_sel_uses_pred_as_selector(self):
        b = KernelBuilder("s", 16)
        flag = b.cmp(CmpOp.LT, b.vreg(), 0.0)
        dst = b.vreg()
        b.sel(dst, flag, 1.0, 2.0)
        inst = b.finish().instructions[1]
        assert inst.opcode is Opcode.SEL
        assert inst.pred == flag

    def test_predication_kwarg_attaches_flag(self):
        b = KernelBuilder("p", 16)
        flag = b.cmp(CmpOp.LT, b.vreg(), 0.0)
        b.add(b.vreg(), 1.0, 2.0, pred=~flag)
        inst = b.finish().instructions[1]
        assert inst.pred.negate

    def test_alu_width_override(self):
        b = KernelBuilder("w", 16)
        b.alu(Opcode.MOV, b.vreg(), 0.0, width=8)
        assert b.finish().instructions[0].width == 8

    def test_barrier_emits_barrier(self):
        b = KernelBuilder("b", 16, slm_bytes=64)
        b.barrier()
        assert b.finish().instructions[0].opcode is Opcode.BARRIER

    def test_slm_wrappers(self):
        b = KernelBuilder("slm", 16, slm_bytes=256)
        addr = b.vreg(DType.I32)
        val = b.vreg()
        b.store_slm(val, addr)
        b.load_slm(val, addr)
        program = b.finish()
        assert program.instructions[0].opcode is Opcode.STORE_SLM
        assert program.instructions[1].opcode is Opcode.LOAD_SLM
        assert program.slm_bytes == 256

    def test_cvt_records_src_dtype(self):
        b = KernelBuilder("cv", 16)
        src = b.vreg(DType.I32)
        dst = b.vreg(DType.F32)
        b.cvt(dst, src)
        inst = b.finish().instructions[0]
        assert inst.src_dtype is DType.I32
        assert inst.dtype is DType.F32
