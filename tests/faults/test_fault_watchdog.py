"""Watchdog tests: hung kernels die with typed errors, fast.

Uses the fault-injection workloads (:mod:`repro.kernels.faults`) to
exercise every way a simulation can hang — runaway cycle count, no
forward progress, wall-clock overrun — and checks each is converted into
the right :class:`~repro.errors.SimulationError` subclass instead of
spinning forever.
"""

import time

import pytest

from repro.errors import DeadlockError, JobTimeoutError
from repro.gpu.config import GpuConfig
from repro.kernels import WORKLOAD_REGISTRY, run_workload
from repro.kernels.faults import spin_forever


class TestCycleBudget:
    def test_infinite_loop_trips_max_cycles(self):
        config = GpuConfig(max_cycles=20_000)
        start = time.monotonic()
        with pytest.raises(DeadlockError, match="max_cycles"):
            run_workload(spin_forever(), config)
        assert time.monotonic() - start < 30  # died promptly, not at 20M

    def test_deadlock_importable_from_simulator_module(self):
        # Back-compat: DeadlockError predates repro.errors and used to
        # live in repro.gpu.simulator; both import paths must agree.
        from repro.gpu.simulator import DeadlockError as SimDeadlock

        assert SimDeadlock is DeadlockError
        assert issubclass(DeadlockError, RuntimeError)


class TestWallClock:
    def test_infinite_loop_trips_wall_budget(self):
        start = time.monotonic()
        with pytest.raises(JobTimeoutError, match="wall-clock"):
            run_workload(spin_forever(), GpuConfig(), host_seconds=0.3)
        assert time.monotonic() - start < 10

    def test_budget_checked_between_launch_steps(self):
        # fault_sleep blocks in host code between steps; the per-step
        # deadline check catches the overrun once the sleep returns.
        workload = WORKLOAD_REGISTRY["fault_sleep"](seconds=0.5)
        with pytest.raises(JobTimeoutError):
            run_workload(workload, GpuConfig(), host_seconds=0.2)

    def test_generous_budget_does_not_fire(self):
        result = run_workload(WORKLOAD_REGISTRY["va"](), GpuConfig(),
                              host_seconds=300.0)
        assert result.total_cycles > 0


class TestNoProgressWatchdog:
    def test_stuck_scheduler_trips_watchdog(self, monkeypatch):
        # Force a scheduling deadlock: EUs keep generating events but
        # never issue or retire anything.  The cycle budget alone would
        # grind through 20M cycles; watchdog_cycles converts the stall
        # into a typed error almost immediately.
        from repro.eu.eu import ExecutionUnit

        monkeypatch.setattr(ExecutionUnit, "step", lambda self, now: None)
        monkeypatch.setattr(ExecutionUnit, "next_event",
                            lambda self, now: now + 1)
        config = GpuConfig(watchdog_cycles=500)
        with pytest.raises(DeadlockError, match="watchdog_cycles"):
            run_workload(WORKLOAD_REGISTRY["va"](), config)

    def test_watchdog_disabled_by_zero(self, monkeypatch):
        from repro.eu.eu import ExecutionUnit

        monkeypatch.setattr(ExecutionUnit, "step", lambda self, now: None)
        monkeypatch.setattr(ExecutionUnit, "next_event",
                            lambda self, now: now + 1)
        config = GpuConfig(watchdog_cycles=0, max_cycles=2_000)
        # With the progress watchdog off the cycle budget still backstops.
        with pytest.raises(DeadlockError, match="max_cycles"):
            run_workload(WORKLOAD_REGISTRY["va"](), config)

    def test_watchdog_config_validation(self):
        with pytest.raises(ValueError):
            GpuConfig(watchdog_cycles=-1).validate()
        with pytest.raises(ValueError):
            GpuConfig(max_cycles=0).validate()


class TestFaultWorkloadHygiene:
    def test_fault_workloads_registered_but_grouped_out(self):
        from repro.kernels import DIVERGENT_WORKLOADS, FAULT_WORKLOADS

        assert set(FAULT_WORKLOADS) == {"fault_spin", "fault_sleep",
                                        "fault_crash", "fault_count"}
        assert all(name in WORKLOAD_REGISTRY for name in FAULT_WORKLOADS)
        assert not set(FAULT_WORKLOADS) & set(DIVERGENT_WORKLOADS)

    def test_fault_workloads_excluded_from_efficiency_study(self):
        import inspect

        from repro.analysis import efficiency

        # The default study iterates the registry; it must filter the
        # fault entries or fig03 would hang on fault_spin.
        source = inspect.getsource(efficiency.simulator_efficiencies)
        assert "FAULT_WORKLOADS" in source

    def test_benign_payload_passes_verification(self):
        # fault_sleep with a tiny sleep completes and verifies: the
        # fault workloads' payloads are real kernels, so a surviving
        # retry produces a legitimate result.
        workload = WORKLOAD_REGISTRY["fault_sleep"](seconds=0.01)
        result = run_workload(workload, GpuConfig())
        assert result.total_cycles > 0
