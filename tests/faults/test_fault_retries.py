"""Retry, degradation, and interrupt behaviour of the runner under faults."""

import pytest

from repro.errors import (
    DeadlockError,
    JobTimeoutError,
    VerificationError,
    WorkerCrashError,
)
from repro.gpu.config import GpuConfig
from repro.runner import Job, Runner


def _runner(**kwargs):
    kwargs.setdefault("cache", False)
    kwargs.setdefault("retry_backoff", 0.0)  # tests never sleep
    return Runner(**kwargs)


class TestCrashOnceModes:
    def test_explicit_mode_beats_environment(self, monkeypatch):
        from repro.kernels.faults import crash_once

        monkeypatch.setenv("REPRO_FAULT_MODE", "exit")
        assert "(raise)" in crash_once(mode="raise").description
        assert "(exit)" in crash_once().description  # env fills the default
        monkeypatch.delenv("REPRO_FAULT_MODE")
        assert "(raise)" in crash_once().description


class TestSerialRetry:
    def test_transient_crash_recovers_on_retry(self, tmp_path, monkeypatch):
        marker = tmp_path / "crashed"
        monkeypatch.setenv("REPRO_FAULT_MARKER", str(marker))
        runner = _runner(workers=1, retries=2)
        job = Job("fault_crash")
        results = runner.run([job])
        assert job in results
        assert runner.last_stats.retried == 1
        assert runner.last_stats.failed == 0
        assert marker.exists()  # the first attempt really did crash

    def test_exhausted_retries_become_worker_crash(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_MARKER", raising=False)
        runner = _runner(workers=1, retries=1, strict=False)
        results = runner.run([Job("fault_crash")])  # crashes every attempt
        assert results == {}
        assert runner.last_stats.retried == 1
        assert runner.last_stats.failed == 1
        error = next(iter(runner.last_stats.failures.values()))
        assert isinstance(error, WorkerCrashError)
        assert error.transient
        assert "injected worker crash" in str(error)

    def test_strict_mode_reraises_first_failure(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_MARKER", raising=False)
        runner = _runner(workers=1, retries=0)  # strict is the default
        with pytest.raises(WorkerCrashError):
            runner.run([Job("fault_crash")])

    def test_deterministic_failures_never_retry(self):
        runner = _runner(workers=1, retries=5, strict=False)
        runner.run([Job("fault_spin", GpuConfig(max_cycles=20_000))])
        assert runner.last_stats.retried == 0
        error = next(iter(runner.last_stats.failures.values()))
        assert isinstance(error, DeadlockError)

    def test_timeout_counted_and_not_retried(self):
        runner = _runner(workers=1, retries=5, timeout=0.3, strict=False)
        runner.run([Job("fault_spin")])
        stats = runner.last_stats
        assert stats.retried == 0
        assert stats.timeouts == 1
        assert isinstance(next(iter(stats.failures.values())),
                          JobTimeoutError)

    def test_verification_failure_is_typed_and_final(self, monkeypatch):
        from repro.kernels import WORKLOAD_REGISTRY
        from repro.kernels.linalg import vector_add

        def bad_va(**kwargs):
            workload = vector_add(**kwargs)

            def bad_check(_buffers):
                raise AssertionError("reference mismatch at lane 3")

            workload.check = bad_check
            return workload

        monkeypatch.setitem(WORKLOAD_REGISTRY, "fault_badcheck", bad_va)
        runner = _runner(workers=1, retries=5, strict=False)
        runner.run([Job("fault_badcheck")])
        assert runner.last_stats.retried == 0
        error = next(iter(runner.last_stats.failures.values()))
        assert isinstance(error, VerificationError)
        assert isinstance(error, AssertionError)  # back-compat contract


class TestPoolFaults:
    def test_dead_worker_degrades_to_serial(self, tmp_path, monkeypatch):
        # fault_crash in "exit" mode hard-kills its worker, breaking the
        # pool; the runner must fall back to in-process serial and (the
        # marker now existing) complete every job.
        marker = tmp_path / "killed"
        monkeypatch.setenv("REPRO_FAULT_MARKER", str(marker))
        monkeypatch.setenv("REPRO_FAULT_MODE", "exit")
        runner = _runner(workers=2, retries=2)
        jobs = [Job("fault_crash"), Job("va"), Job("dp")]
        results = runner.run(jobs)
        assert len(results) == 3
        assert runner.last_stats.degraded == 1
        assert runner.last_stats.failed == 0

    def test_transient_raise_retried_within_pool(self, tmp_path,
                                                 monkeypatch):
        marker = tmp_path / "raised"
        monkeypatch.setenv("REPRO_FAULT_MARKER", str(marker))
        monkeypatch.delenv("REPRO_FAULT_MODE", raising=False)
        runner = _runner(workers=2, retries=2)
        jobs = [Job("fault_crash"), Job("va"), Job("dp")]
        results = runner.run(jobs)
        assert len(results) == 3
        assert runner.last_stats.retried == 1
        assert runner.last_stats.degraded == 0

    def test_parallel_equivalence_under_single_worker_failure(
            self, tmp_path, monkeypatch):
        # The satellite contract: a batch that loses one worker mid-run
        # still produces results bit-identical to a clean serial run.
        jobs = [Job("va"), Job("dp"), Job("mvm")]
        serial = _runner(workers=1).run(jobs)

        marker = tmp_path / "equiv"
        monkeypatch.setenv("REPRO_FAULT_MARKER", str(marker))
        monkeypatch.setenv("REPRO_FAULT_MODE", "exit")
        faulty = _runner(workers=2, retries=2)
        with_fault = faulty.run([Job("fault_crash")] + jobs)
        assert faulty.last_stats.degraded == 1

        for job in jobs:
            a, b = serial[job], with_fault[job]
            assert a.summary() == b.summary()
            assert a.eu_cycles_by_policy() == b.eu_cycles_by_policy()

    def test_queued_jobs_do_not_age_against_the_deadline(self):
        # Regression: jobs were all submitted up front with the deadline
        # clock started at submit time, so any job queued behind a full
        # pool for longer than timeout+grace was condemned as overdue —
        # permanently failed and the whole pool killed — without ever
        # running.  The budget must cover execution only, not queueing.
        runner = _runner(workers=2, timeout=1.0, timeout_grace=0.2,
                         retries=0, strict=False)
        jobs = [Job("fault_sleep", params={"seconds": 0.4 + i / 1000})
                for i in range(8)]  # 4 waves: last waits ~3x the deadline
        results = runner.run(jobs)
        assert len(results) == 8
        assert runner.last_stats.timeouts == 0
        assert runner.last_stats.failed == 0

    def test_in_worker_timeout_survives_pool(self):
        # The hung job dies inside its worker (typed error through the
        # future); its healthy sibling completes in the same pool.
        runner = _runner(workers=2, timeout=15.0, retries=0, strict=False)
        spin = Job("fault_spin")
        good = Job("va")
        results = runner.run([spin, good])
        assert good in results and spin not in results
        assert isinstance(runner.last_stats.failures[spin.key],
                          JobTimeoutError)


class TestInterrupt:
    def test_keyboard_interrupt_propagates_with_stats(self):
        seen = []

        def hook(event):
            seen.append(event.status)
            raise KeyboardInterrupt

        runner = _runner(workers=1, progress=hook)
        with pytest.raises(KeyboardInterrupt):
            runner.run([Job("va"), Job("dp"), Job("mvm")])
        # Work done before the interrupt is accounted, not lost.
        assert seen == ["executed"]
        assert runner.last_stats.executed == 1

    def test_fault_jobs_never_cached(self, tmp_path):
        from repro.runner import ResultCache

        # The budget only needs to kill fault_spin; keep generous
        # headroom over va's ~0.3s runtime so a loaded machine doesn't
        # spuriously time the real job out.
        runner = Runner(workers=1, cache=ResultCache(tmp_path),
                        retry_backoff=0.0, timeout=2.0, strict=False)
        runner.run([Job("va"), Job("fault_spin")])
        # va cached; the fault job left nothing behind.
        names = [p.name for p in tmp_path.glob("*/*/*.pkl")]
        assert len(names) == 1 and names[0].startswith("va-")
        assert not Job("fault_spin").cacheable
