"""Crash-safe cache behaviour: atomic writes, quarantine, strict mode."""

import os
import pickle

import pytest

from repro.errors import CacheCorruptionError
from repro.gpu.results import KernelRunResult
from repro.runner import Job, ResultCache, Runner


class TestAtomicWrites:
    def test_no_temp_files_survive_a_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        assert list(tmp_path.glob("*/*/*.pkl"))
        assert not list(tmp_path.glob("*/*/.*.tmp"))

    def test_interrupted_write_leaves_entry_intact(self, tmp_path,
                                                   monkeypatch):
        # First store publishes a good entry; a crash *during* a later
        # store (os.replace never runs) must leave that entry readable.
        cache = ResultCache(tmp_path)
        runner = Runner(workers=1, cache=cache)
        reference = runner.run_one("va")
        entry = next(tmp_path.glob("*/*/*.pkl"))
        good_bytes = entry.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish time")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            cache.store(Job("va"), reference)
        monkeypatch.undo()
        assert entry.read_bytes() == good_bytes
        assert not list(tmp_path.glob("*/*/.*.tmp"))  # temp cleaned up

    def test_clear_sweeps_stale_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        stale = tmp_path / ".leftover.pkl.123.0.tmp"
        stale.write_bytes(b"half a pickle")
        assert cache.clear() == 1
        assert not stale.exists()


class TestQuarantine:
    def _poison(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        entry = next(tmp_path.glob("*/*/*.pkl"))
        entry.write_bytes(b"definitely not a pickle")
        return entry

    def test_corrupt_entry_quarantined_not_deleted(self, tmp_path):
        entry = self._poison(tmp_path)
        cache = ResultCache(tmp_path)
        assert cache.load(Job("va")) is None
        assert cache.corrupt == 1
        assert not entry.exists()
        moved = cache.quarantine_dir / entry.name
        assert moved.exists()  # preserved for post-mortem
        assert cache.quarantined == [moved]

    def test_strict_mode_raises_typed_error(self, tmp_path):
        self._poison(tmp_path)
        cache = ResultCache(tmp_path, strict=True)
        with pytest.raises(CacheCorruptionError, match="quarantined"):
            cache.load(Job("va"))

    def test_strict_mode_from_environment(self, tmp_path, monkeypatch):
        self._poison(tmp_path)
        monkeypatch.setenv("REPRO_STRICT_CACHE", "1")
        with pytest.raises(CacheCorruptionError):
            ResultCache(tmp_path).load(Job("va"))

    def test_wrong_type_quarantined_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(workers=1, cache=cache).run_one("va")
        entry = next(tmp_path.glob("*/*/*.pkl"))
        entry.write_bytes(pickle.dumps({"not": "a result"}))
        again = ResultCache(tmp_path)
        assert again.load(Job("va")) is None
        assert (again.quarantine_dir / entry.name).exists()

    def test_quarantined_entry_resimulates_identically(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(workers=1, cache=cache)
        reference = runner.run_one("va")
        self._poison(tmp_path)

        recovered = Runner(workers=1, cache=ResultCache(tmp_path))
        result = recovered.run_one("va")
        assert isinstance(result, KernelRunResult)
        assert recovered.last_stats.executed == 1
        assert result.summary() == reference.summary()
