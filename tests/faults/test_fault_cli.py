"""CLI exit-code contract: every failure kind exits with its own code
and a one-line stderr diagnosis — never a traceback."""

import pytest

from repro import errors
from repro.cli import main


class TestExitCodeContract:
    def test_codes_are_distinct_per_error_kind(self):
        kinds = [errors.VerificationError, errors.DeadlockError,
                 errors.JobTimeoutError, errors.WorkerCrashError,
                 errors.CacheCorruptionError]
        codes = [kind.exit_code for kind in kinds]
        assert codes == [1, 3, 4, 5, 6]
        assert len(set(codes)) == len(codes)
        assert errors.SimulationError.exit_code == 8  # generic fallback

    def test_exit_code_for(self):
        assert errors.exit_code_for(errors.DeadlockError("x")) == 3
        assert errors.exit_code_for(KeyboardInterrupt()) == 130
        assert errors.exit_code_for(ValueError("x")) == 1

    def test_describe_is_one_line(self):
        error = errors.DeadlockError("stuck\nat cycle   12")
        assert errors.describe(error) == "DeadlockError: stuck at cycle 12"
        assert errors.describe(errors.JobTimeoutError("")) == \
            "JobTimeoutError: (no detail)"


class TestRunCommandExitCodes:
    def test_deadlock_exits_3_with_one_liner(self, capsys):
        rc = main(["run", "fault_spin", "--max-cycles", "20000"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "DeadlockError" in err and "max_cycles" in err
        assert "Traceback" not in err

    def test_timeout_exits_4_with_one_liner(self, capsys):
        rc = main(["run", "fault_spin", "--timeout", "0.3"])
        assert rc == 4
        err = capsys.readouterr().err
        assert "JobTimeoutError" in err
        assert "Traceback" not in err

    def test_verification_failure_exits_1(self, monkeypatch, capsys):
        from repro.kernels import WORKLOAD_REGISTRY
        from repro.kernels.linalg import vector_add

        def bad_va(**kwargs):
            workload = vector_add(**kwargs)
            workload.check = lambda _buffers: (_ for _ in ()).throw(
                AssertionError("reference mismatch at lane 3"))
            return workload

        monkeypatch.setitem(WORKLOAD_REGISTRY, "failcheck", bad_va)
        rc = main(["run", "failcheck"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "verification FAILED" in err
        assert "Traceback" not in err


class TestSweepExitCodes:
    def test_worker_crash_exits_5(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FAULT_MARKER", raising=False)
        monkeypatch.delenv("REPRO_FAULT_MODE", raising=False)
        rc = main(["sweep", "--workloads", "fault_crash",
                   "--policies", "ivb", "--retries", "0", "--no-cache"])
        assert rc == 5
        err = capsys.readouterr().err
        assert "WorkerCrashError" in err and "1 FAILED" in err
        assert "Traceback" not in err

    def test_deadlock_in_grid_exits_3_and_artifact_records_it(
            self, tmp_path, capsys):
        import json

        out = tmp_path / "grid.json"
        rc = main(["sweep", "--workloads", "va,fault_spin",
                   "--policies", "ivb", "--max-cycles", "20000",
                   "--no-cache", "--json", str(out)])
        assert rc == 3
        artifact = json.loads(out.read_text())
        assert len(artifact["results"]) == 1  # va still made it
        (failure,) = artifact["failures"]
        assert failure["workload"] == "fault_spin"
        assert failure["exit_code"] == 3
        assert "DeadlockError" in failure["error"]

    def test_healthy_sweep_exits_0(self, tmp_path, capsys):
        rc = main(["sweep", "--workloads", "va", "--policies", "ivb",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
