"""Checkpoint/resume: interrupted sweeps salvage completed work and
resume to an artifact bit-identical to an uninterrupted run."""

import json

from repro.cli import main
from repro.runner import CheckpointJournal


class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", "gridA")
        assert journal.load() is None  # nothing yet
        journal.append("k1", {"record": {"cycles": 10}})
        journal.append("k2", {"record": {"cycles": 20}})
        loaded = CheckpointJournal(tmp_path / "j.jsonl", "gridA").load()
        assert set(loaded) == {"k1", "k2"}
        assert loaded["k1"]["record"] == {"cycles": 10}

    def test_torn_trailing_write_salvaged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path, "gridA")
        journal.append("k1", {"record": 1})
        with open(path, "a") as fh:
            fh.write('{"key": "k2", "rec')  # killed mid-write
        loaded = CheckpointJournal(path, "gridA").load()
        assert set(loaded) == {"k1"}

    def test_grid_mismatch_ignored_wholesale(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", "gridA")
        journal.append("k1", {"record": 1})
        assert CheckpointJournal(tmp_path / "j.jsonl", "gridB").load() is None

    def test_garbage_header_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("not json at all\n")
        assert CheckpointJournal(path, "gridA").load() is None

    def test_discard_is_idempotent(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", "gridA")
        journal.append("k1", {"record": 1})
        journal.discard()
        journal.discard()
        assert not (tmp_path / "j.jsonl").exists()


class TestSweepResume:
    ARGS = ["sweep", "--workloads", "va,dp", "--policies", "ivb,scc",
            "--no-cache"]

    def test_interrupted_then_resumed_matches_uninterrupted(
            self, tmp_path, monkeypatch, capsys):
        reference = tmp_path / "ref.json"
        assert main(self.ARGS + ["--json", str(reference)]) == 0

        # Interrupt deterministically after the first completed job
        # (stand-in for Ctrl-C mid-sweep), then resume.
        resumed = tmp_path / "resumed.json"
        monkeypatch.setenv("REPRO_FAULT_INTERRUPT_AFTER", "1")
        rc = main(self.ARGS + ["--json", str(resumed)])
        assert rc == 130
        err = capsys.readouterr().err
        assert "1/4 job(s) completed" in err
        assert "--resume" in err
        assert not resumed.exists()  # no partial artifact published
        journal = resumed.with_name(resumed.name + ".journal")
        assert journal.exists()

        monkeypatch.delenv("REPRO_FAULT_INTERRUPT_AFTER")
        assert main(self.ARGS + ["--json", str(resumed), "--resume"]) == 0
        assert "resuming" in capsys.readouterr().err
        assert resumed.read_bytes() == reference.read_bytes()
        assert not journal.exists()  # cleaned up after success

    def test_resume_without_journal_starts_fresh(self, tmp_path, capsys):
        out = tmp_path / "fresh.json"
        rc = main(self.ARGS + ["--json", str(out), "--resume"])
        assert rc == 0
        assert "no matching journal" in capsys.readouterr().err
        assert len(json.loads(out.read_text())["results"]) == 4

    def test_resume_requires_json_path(self, capsys):
        assert main(["sweep", "--workloads", "va", "--resume"]) == 2
        assert "--resume needs --json" in capsys.readouterr().err

    def test_changed_grid_invalidates_journal(self, tmp_path, monkeypatch,
                                              capsys):
        out = tmp_path / "grid.json"
        monkeypatch.setenv("REPRO_FAULT_INTERRUPT_AFTER", "1")
        assert main(self.ARGS + ["--json", str(out)]) == 130
        monkeypatch.delenv("REPRO_FAULT_INTERRUPT_AFTER")
        capsys.readouterr()

        # Same artifact path, different grid: the stale journal must
        # not leak its records into the new sweep.
        rc = main(["sweep", "--workloads", "va", "--policies", "ivb",
                   "--no-cache", "--json", str(out), "--resume"])
        assert rc == 0
        assert "no matching journal" in capsys.readouterr().err
        assert len(json.loads(out.read_text())["results"]) == 1

    def test_mismatched_journal_replaced_on_resume(self, tmp_path,
                                                   monkeypatch, capsys):
        # Regression: --resume over a journal from a *different* grid
        # used to leave the stale file in place, so this run's records
        # were appended under the old header and a second --resume
        # ignored every one of them, redoing all completed work.
        out = tmp_path / "y.json"
        monkeypatch.setenv("REPRO_FAULT_INTERRUPT_AFTER", "1")
        assert main(self.ARGS + ["--json", str(out)]) == 130  # old grid

        args_b = ["sweep", "--workloads", "va,dp", "--policies", "ivb",
                  "--no-cache", "--json", str(out), "--resume"]
        assert main(args_b) == 130  # new grid, interrupted again
        assert "no matching journal" in capsys.readouterr().err

        monkeypatch.delenv("REPRO_FAULT_INTERRUPT_AFTER")
        assert main(args_b) == 0
        assert "resuming, 1/2 job(s)" in capsys.readouterr().err
        assert len(json.loads(out.read_text())["results"]) == 2

    def test_stale_journal_discarded_without_resume_flag(
            self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "x.json"
        monkeypatch.setenv("REPRO_FAULT_INTERRUPT_AFTER", "1")
        assert main(self.ARGS + ["--json", str(out)]) == 130
        monkeypatch.delenv("REPRO_FAULT_INTERRUPT_AFTER")
        journal = out.with_name(out.name + ".journal")
        assert journal.exists()

        # Without --resume the run starts from scratch and the old
        # journal is removed up front.
        assert main(self.ARGS + ["--json", str(out)]) == 0
        assert len(json.loads(out.read_text())["results"]) == 4
        assert not journal.exists()
