"""Package-level hygiene checks: imports, docstrings, __all__ accuracy."""

import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for mod in pkgutil.walk_packages(repro.__path__, "repro."):
        if mod.name.endswith("__main__"):
            continue  # executing it runs the CLI by design
        names.append(mod.name)
    return names


MODULES = _all_modules()


class TestPackageHygiene:
    @pytest.mark.parametrize("name", MODULES)
    def test_module_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", MODULES)
    def test_module_has_docstring(self, name):
        module = importlib.import_module(name)
        assert (module.__doc__ or "").strip(), f"{name} lacks a docstring"

    @pytest.mark.parametrize(
        "name",
        [n for n in MODULES if n.endswith("__init__") or "." not in n
         or importlib.import_module(n).__file__.endswith("__init__.py")],
    )
    def test_package_all_resolves(self, name):
        package = importlib.import_module(name)
        for symbol in getattr(package, "__all__", []):
            assert hasattr(package, symbol), f"{name}.__all__ lists {symbol}"

    def test_version_exposed(self):
        assert repro.__version__

    def test_top_level_api_surface(self):
        for symbol in ("KernelBuilder", "GpuSimulator", "GpuConfig",
                       "CompactionPolicy", "scc_schedule", "bcc_schedule"):
            assert hasattr(repro, symbol)
