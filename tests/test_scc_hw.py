"""Tests for the SCC control-word encoding (Figure 5c/7 hardware view)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scc import scc_schedule
from repro.core.scc_hw import (
    ControlWord,
    control_bits_per_instruction,
    control_stream,
    decode_cycle,
    encode_cycle,
    encode_schedule,
)

masks16 = st.integers(min_value=0, max_value=0xFFFF)
masks32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestRoundTrip:
    @given(masks16)
    def test_encode_decode_simd16(self, mask):
        schedule = scc_schedule(mask, 16)
        for cycle, word in zip(schedule.cycles, encode_schedule(schedule)):
            decoded = decode_cycle(word)
            assert set(decoded) == set(cycle)

    @given(masks32)
    def test_encode_decode_simd32(self, mask):
        schedule = scc_schedule(mask, 32)
        for cycle, word in zip(schedule.cycles, encode_schedule(schedule)):
            assert set(decode_cycle(word)) == set(cycle)

    def test_figure7_mask_words(self):
        words = control_stream(0xAAAA, 16)
        assert len(words) == 2  # the Figure 7 example takes two cycles
        # Every output lane is enabled in both cycles (fully packed).
        for word in words:
            assert all(field is not None for field in word.lane_fields())

    def test_empty_mask_no_words(self):
        assert control_stream(0, 16) == []

    def test_disabled_lanes_encoded_as_zero(self):
        words = control_stream(0x0001, 16)
        assert len(words) == 1
        fields = words[0].lane_fields()
        assert fields[0] == (0, 0)
        assert fields[1:] == [None, None, None]


class TestEncoding:
    def test_duplicate_output_lane_rejected(self):
        from repro.core.scc import LaneSlot

        with pytest.raises(ValueError):
            encode_cycle((LaneSlot(0, 0, 0), LaneSlot(1, 1, 0)), 16)

    def test_bits_per_lane_simd16(self):
        word = ControlWord(width=16, value=0)
        assert word.bits_per_lane == 5  # enable + 2 src + 2 quad

    def test_bits_per_lane_simd32(self):
        word = ControlWord(width=32, value=0)
        assert word.bits_per_lane == 6  # 3 quad bits for 8 quads

    def test_control_bits_budget(self):
        # SIMD16: 4 cycles x 4 lanes x 5 bits.
        assert control_bits_per_instruction(16) == 80
        # SIMD8: 2 cycles x 4 lanes x 4 bits (1 quad bit).
        assert control_bits_per_instruction(8) == 32

    @given(masks16)
    def test_word_fits_declared_bits(self, mask):
        for word in control_stream(mask, 16):
            assert word.value < (1 << (word.bits_per_lane * 4))
