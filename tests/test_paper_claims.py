"""Validation against the paper's reported numbers and shapes.

These tests tie the reproduction to the publication: Table 2's exact
percentages, Figure 8's relative times, the Section 4.1 micro-op
example, the abstract's headline ranges, and the Section 4.3 area
ratios.
"""

import pytest

from repro.core.bcc import bcc_schedule
from repro.core.policy import CompactionPolicy
from repro.experiments.fig08 import PAPER_FIG8_RELATIVE, fig8_analytic, fig8_simulated
from repro.experiments.fig10 import fig10_data, summarize
from repro.experiments.table2 import PAPER_TABLE2, table2_analytic, table2_simulated


class TestTable2Exact:
    """Paper Table 2 percentages are analytic identities of the model."""

    @pytest.mark.parametrize("level", [1, 2, 3, 4])
    def test_analytic_matches_paper(self, level):
        row = table2_analytic()[level - 1]
        ivb, bcc, scc = PAPER_TABLE2[level]
        assert row.ivb_benefit_pct == pytest.approx(ivb, abs=1e-9)
        assert row.bcc_benefit_pct == pytest.approx(bcc, abs=1e-9)
        assert row.scc_benefit_pct == pytest.approx(scc, abs=1e-9)

    def test_simulated_preserves_structure(self):
        rows = table2_simulated(n=256)
        # L1/L2: all benefit from SCC, none from BCC or IVB.
        assert rows[0].bcc_benefit_pct == pytest.approx(0.0, abs=0.5)
        assert rows[0].scc_benefit_pct > 10.0
        assert rows[1].scc_benefit_pct > rows[0].scc_benefit_pct
        # L3: BCC finally contributes (aligned two-quad leaf masks); SCC
        # still adds benefit, boosted by the strided guard instructions
        # at the inner nest levels that only SCC can compress.
        assert rows[2].bcc_benefit_pct > 10.0
        assert rows[2].scc_benefit_pct > 10.0
        # L4: IVB carries the largest share, SCC adds nothing on leaves.
        assert rows[3].ivb_benefit_pct > rows[3].bcc_benefit_pct


class TestFigure8:
    def test_analytic_matches_paper_bars(self):
        for point in fig8_analytic():
            assert point.relative_time == pytest.approx(
                PAPER_FIG8_RELATIVE[point.pattern]), hex(point.pattern)

    def test_simulated_ordering(self):
        points = {p.pattern: p.relative_time for p in fig8_simulated(n=256)}
        # 0x00FF is optimized to (nearly) the coherent time...
        assert points[0x00FF] == pytest.approx(points[0xFFFF], rel=0.10)
        # ...while F0F0/AAAA pay nearly double, and FF0F sits between.
        assert points[0xF0F0] > points[0xFF0F] > points[0x00FF]
        assert points[0xAAAA] > 1.3

    def test_bcc_fixes_f0f0(self):
        points = {p.pattern: p.relative_time
                  for p in fig8_analytic(CompactionPolicy.BCC)}
        assert points[0xF0F0] == pytest.approx(1.0)
        assert points[0xAAAA] == pytest.approx(2.0)  # BCC cannot help

    def test_scc_fixes_aaaa(self):
        points = {p.pattern: p.relative_time
                  for p in fig8_analytic(CompactionPolicy.SCC)}
        assert points[0xAAAA] == pytest.approx(1.0)
        assert points[0xF0F0] == pytest.approx(1.0)


class TestSection41Example:
    """ADD(16) with mask 0xF0F0: quartiles Q0/Q2 suppressed (Section 4.1)."""

    def test_microop_suppression(self):
        schedule = bcc_schedule(0xF0F0, 16)
        issued = [f"ADD.Q{op.quad}" for op in schedule.ops]
        assert issued == ["ADD.Q1", "ADD.Q3"]


class TestAbstractClaims:
    """'BCC and SCC reduce execution cycles by as much as 42% (20% avg)'."""

    @pytest.fixture(scope="class")
    def bars(self):
        # Trace population only: fast, and the paper's trace set is where
        # the 42 % maximum comes from (LuxMark).
        return fig10_data(sim_workloads=(), include_traces=True)

    def test_max_reduction_in_headline_range(self, bars):
        stats = summarize(bars)
        assert 30.0 <= stats["max_scc"] <= 45.0

    def test_average_reduction_near_20pct(self, bars):
        stats = summarize(bars)
        assert 12.0 <= stats["avg_scc"] <= 28.0

    def test_scc_dominates_bcc_everywhere(self, bars):
        for bar in bars:
            assert bar.scc_pct >= bar.bcc_pct - 1e-9

    def test_no_negative_benefit(self, bars):
        for bar in bars:
            assert bar.bcc_pct >= 0.0
