"""Tests for the analysis helpers and the register-file area model."""

import pytest

from repro.analysis import (
    FIG9_BUCKET_ORDER,
    classify,
    format_series,
    format_table,
    pct,
    reduction_pct,
    trace_efficiencies,
    utilization_breakdown,
)
from repro.analysis.efficiency import EfficiencyEntry
from repro.area import (
    RegFileConfig,
    area,
    baseline_grf,
    bcc_grf,
    interwarp_grf,
    overhead_pct,
    scc_grf,
)
from repro.core.stats import CompactionStats


def _entry(name, masks, width=16):
    stats = CompactionStats()
    for mask in masks:
        stats.record(mask, width)
    return EfficiencyEntry(name=name, source="test",
                           simd_efficiency=stats.simd_efficiency, stats=stats)


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.500" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])


class TestFormatSeries:
    def test_bars_scale(self):
        out = format_series("s", ["a", "b"], [1.0, 2.0], unit="%")
        assert "series s (%)" in out
        assert out.count("#") > 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", ["a"], [1.0, 2.0])


class TestPctHelpers:
    def test_pct(self):
        assert pct(1, 2) == 50.0
        assert pct(1, 0) == 0.0

    def test_reduction(self):
        assert reduction_pct(4, 3) == 25.0
        assert reduction_pct(0, 3) is None


class TestClassify:
    def test_split(self):
        coherent = _entry("c", [0xFFFF] * 10)
        divergent = _entry("d", [0x000F] * 10)
        div, coh = classify([coherent, divergent])
        assert [e.name for e in div] == ["d"]
        assert [e.name for e in coh] == ["c"]


class TestUtilizationBreakdown:
    def test_fractions_sum_to_one(self):
        entry = _entry("x", [0xFFFF, 0x00FF, 0x000F, 0x0001])
        table = utilization_breakdown([entry])
        row = table["x"]
        assert set(FIG9_BUCKET_ORDER) <= set(row)
        assert sum(row.values()) == pytest.approx(1.0)

    def test_bucket_placement(self):
        entry = _entry("x", [0x0001])
        assert utilization_breakdown([entry])["x"]["1-4/16"] == 1.0


class TestTraceEfficiencies:
    def test_subset(self):
        entries = trace_efficiencies(["luxmark_sky", "glbench_pro"])
        assert [e.name for e in entries] == ["luxmark_sky", "glbench_pro"]
        assert all(e.source == "trace" for e in entries)
        assert all(e.divergent for e in entries)


class TestAreaModel:
    def test_bcc_overhead_matches_paper(self):
        # Paper Section 4.3: BCC register file is ~10 % over baseline.
        assert overhead_pct(bcc_grf()) == pytest.approx(10.0, abs=1.0)

    def test_interwarp_overhead_above_40pct(self):
        # Paper: 8-banked per-lane file is "higher than 40 %".
        assert overhead_pct(interwarp_grf()) > 40.0

    def test_scc_file_is_smaller(self):
        # Paper: the SCC file is wider but shorter than the baseline.
        assert overhead_pct(scc_grf()) < 0.0

    def test_total_bits_preserved(self):
        bits = baseline_grf().total_bits
        for cfg in (bcc_grf(), scc_grf(), interwarp_grf()):
            assert cfg.total_bits == bits

    def test_area_monotone_in_banks(self):
        one = RegFileConfig("a", 64, 128, banks=1)
        two = RegFileConfig("b", 64, 128, banks=2)
        assert area(two) > area(one)

    def test_ports_cost_area(self):
        one = RegFileConfig("a", 256, 128, 1, ports=1)
        two = RegFileConfig("b", 256, 128, 1, ports=2)
        assert area(two) > area(one)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            RegFileConfig("bad", 0, 128, 1)

    def test_overhead_pct_custom_base(self):
        assert overhead_pct(baseline_grf(), baseline_grf()) == 0.0
