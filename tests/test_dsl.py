"""Tests for the Python kernel DSL: tracing, lowering, checkers, stress.

Covers the full pipeline — expression tracing, lowering to
:class:`repro.isa.Program`, derived launches and bounds guards, the
synthesized numpy reference checkers — plus the seeded divergence-stress
generator and its integration with the registry, the runner cache, the
verify harness, and the ``repro kernels`` CLI.
"""

import numpy as np
import pytest

from repro import dsl
from repro.cli import main
from repro.dsl.kernels import DSL_KERNELS, dsl_axpy, dsl_clip
from repro.dsl.lower import GUARD_PARAM
from repro.dsl.stress import (
    parse_stress_name,
    stress_batch,
    stress_name,
    stress_workload,
)
from repro.errors import BuildError, exit_code_for
from repro.gpu.config import GpuConfig
from repro.isa.asm import assemble, program_to_text
from repro.isa.opcodes import Opcode
from repro.kernels import (
    DIVERGENT_WORKLOADS,
    DSL_WORKLOADS,
    WORKLOAD_REGISTRY,
    run_workload,
)
from repro.kernels.workload import digest_buffers

AXPY_GOLDEN = """\
kernel dsl_axpy simd16 slm=0
gid @r2
param x: surface
param y: surface
param a: scalar_f32 @r0

    shl.i32 r4, r2, 2:i32
    load.f32 r8, r4, @surf0
    load.f32 r10, r4, @surf1
    mad.f32 r6, r0, r8, r10
    store.f32 r4, r6, @surf1
    eot
"""


class TestLowering:
    def test_axpy_golden(self):
        """The canonical kernel lowers to exactly the hand-written ideal."""
        assert program_to_text(dsl_axpy.program()) == AXPY_GOLDEN

    def test_mad_fusion_and_address_cse(self):
        opcodes = [i.opcode for i in dsl_axpy.program().instructions]
        assert opcodes.count(Opcode.MAD) == 1  # a*x+y fused
        assert Opcode.MUL not in opcodes and Opcode.ADD not in opcodes
        assert opcodes.count(Opcode.SHL) == 1  # x[i]/y[i] share the address

    def test_lowering_is_deterministic(self):
        assert program_to_text(dsl_clip.program()) == \
            program_to_text(dsl_clip.program())

    @pytest.mark.parametrize("name", sorted(DSL_KERNELS))
    def test_programs_round_trip_bit_identically(self, name):
        program = DSL_KERNELS[name].program()
        rebuilt = assemble(program_to_text(program))
        assert rebuilt.instructions == program.instructions
        assert [p.name for p in rebuilt.params] == \
            [p.name for p in program.params]
        assert (rebuilt.simd_width, rebuilt.gid_reg, rebuilt.lid_reg) == \
            (program.simd_width, program.gid_reg, program.lid_reg)

    def test_stress_programs_round_trip_bit_identically(self):
        for name in stress_batch(8):
            program = WORKLOAD_REGISTRY[name]().program
            rebuilt = assemble(program_to_text(program))
            assert rebuilt.instructions == program.instructions, name


class TestLaunchDerivation:
    def test_unaligned_size_gets_padded_guarded_launch(self):
        workload = dsl_clip()  # n=500, SIMD16 -> padded to 512
        (step,) = workload.steps
        assert step.global_size == 512
        assert step.scalars[GUARD_PARAM] == 500
        assert GUARD_PARAM in [p.name for p in workload.program.params]
        opcodes = [i.opcode for i in workload.program.instructions]
        assert Opcode.IF in opcodes and Opcode.ENDIF in opcodes

    def test_aligned_size_has_no_guard(self):
        workload = dsl_axpy()  # n=512 is already a SIMD16 multiple
        (step,) = workload.steps
        assert step.global_size == 512
        assert GUARD_PARAM not in step.scalars
        assert GUARD_PARAM not in [p.name for p in workload.program.params]

    def test_guard_leaves_padding_lanes_untouched(self):
        workload = dsl_clip()
        run_workload(workload)  # raises on checker mismatch
        # The checker itself only covers indices the reference wrote;
        # the tail beyond n must still be pristine zeros.
        assert not workload.buffers["y"][500:].any()


class TestCheckers:
    @pytest.mark.parametrize("name", sorted(DSL_KERNELS))
    def test_examples_pass_their_synthesized_checker(self, name):
        run_workload(DSL_KERNELS[name]())

    def test_checker_detects_tampering(self):
        workload = dsl_axpy()
        run_workload(workload, verify=False)
        workload.buffers["y"][3] += 1.0
        with pytest.raises(AssertionError, match="buffer 'y'"):
            workload.verify()

    def test_scalar_override_flows_into_launch_and_checker(self):
        workload = dsl_axpy(a=3.0)
        (step,) = workload.steps
        assert step.scalars["a"] == 3.0
        run_workload(workload)

    def test_seed_override_changes_data(self):
        assert not np.array_equal(dsl_axpy(seed=1).buffers["x"],
                                  dsl_axpy(seed=2).buffers["x"])

    def test_unknown_override_rejected(self):
        with pytest.raises(BuildError, match="no parameter"):
            dsl_axpy(bogus=1)

    def test_category_is_derived_from_the_trace(self):
        assert dsl_axpy().category == "coherent"
        assert dsl_clip().category == "divergent"


class TestReferenceSemantics:
    """The synthesized checker must mirror interp edge cases exactly."""

    def test_integer_division_by_zero_yields_zero(self):
        @dsl.kernel(n=64, name="_div0")
        def div0(k, x=dsl.In("i32"), y=dsl.Out("i32")):
            i = k.gid
            y[i] = x[i] / (x[i] & 3)

        run_workload(div0())

    def test_shift_amounts_clamp_like_hardware(self):
        @dsl.kernel(n=64, name="_shifts")
        def shifts(k, x=dsl.In("i32"), y=dsl.Out("i32")):
            i = k.gid
            y[i] = (x[i] << (x[i] & 63)) ^ (x[i] >> (x[i] & 63))

        run_workload(shifts())

    def test_scatter_collisions_resolve_highest_lane_wins(self):
        @dsl.kernel(n=64, name="_scatter")
        def scatter(k, x=dsl.In("i32"), y=dsl.Out("i32")):
            y[x[k.gid] & 7] = k.gid

        run_workload(scatter())

    def test_divergent_gather_leaves_disabled_lanes_alone(self):
        @dsl.kernel(n=64, name="_gather")
        def gather(k, x=dsl.In("f32"), y=dsl.InOut("f32")):
            i = k.gid
            with k.if_(k.lane < 5):
                y[i] = x[(i * 3 + 1) & 63] + y[i]

        run_workload(gather())


class TestBuildErrors:
    def test_exit_code(self):
        assert exit_code_for(BuildError("boom")) == 9

    def test_context_carries_kernel_and_instruction(self):
        err = BuildError("bad operand", kernel="k1", instruction_index=7)
        assert "kernel 'k1'" in str(err)
        assert "instruction 7" in str(err)
        assert (err.kernel, err.instruction_index) == ("k1", 7)

    def test_builder_rejects_bad_simd_width(self):
        from repro.isa.builder import KernelBuilder

        with pytest.raises(BuildError, match="SIMD width"):
            KernelBuilder("k", simd_width=7)

    def test_else_outside_if(self):
        @dsl.kernel(n=16)
        def bad(k, y=dsl.Out("f32")):
            y[k.gid] = 1.0
            k.else_()

        with pytest.raises(BuildError, match="else_"):
            bad()

    def test_break_outside_loop(self):
        @dsl.kernel(n=16)
        def bad(k, y=dsl.Out("f32")):
            y[k.gid] = 1.0
            k.break_if(k.lane < 2)

        with pytest.raises(BuildError, match="break_if"):
            bad()

    def test_store_to_readonly_buffer(self):
        @dsl.kernel(n=16)
        def bad(k, x=dsl.In("f32")):
            x[k.gid] = 1.0

        with pytest.raises(BuildError, match="declared In"):
            bad()

    def test_kernel_without_stores(self):
        @dsl.kernel(n=16)
        def bad(k, x=dsl.In("f32")):
            k.var(x[k.gid])

        with pytest.raises(BuildError, match="never stores"):
            bad()

    def test_literal_var_needs_dtype(self):
        @dsl.kernel(n=16)
        def bad(k, y=dsl.Out("f32")):
            y[k.gid] = k.var(0)

        with pytest.raises(BuildError, match="explicit dtype"):
            bad()

    def test_condition_is_not_a_python_bool(self):
        @dsl.kernel(n=16)
        def bad(k, y=dsl.Out("f32")):
            if k.lane < 2:  # must be k.if_(...)
                y[k.gid] = 1.0

        with pytest.raises(BuildError, match="k.if_"):
            bad()


class TestStressGenerator:
    def test_batch_names_are_distinct(self):
        names = stress_batch(20)
        assert len(set(names)) == 20
        assert all(parse_stress_name(n) is not None for n in names)

    def test_name_round_trip(self):
        name = stress_name(seed=7, depth=3, entropy=80, trip=2, mem=1)
        assert name == "stress_s7_d3_e80_t2_m1"
        assert parse_stress_name(name) == {
            "seed": 7, "depth": 3, "entropy": 80, "trip": 2, "mem": 1}
        assert parse_stress_name("stress_bogus") is None
        assert parse_stress_name("va") is None

    def test_parameter_validation(self):
        with pytest.raises(BuildError, match="power of two"):
            stress_workload(n=100)
        with pytest.raises(BuildError, match="entropy"):
            stress_workload(entropy=101)
        with pytest.raises(BuildError, match="depth"):
            stress_workload(depth=9)

    def test_rebuilds_are_identical(self):
        name = stress_name(seed=11, depth=3, entropy=60, trip=2, mem=1)
        first, second = (WORKLOAD_REGISTRY[name]() for _ in range(2))
        assert program_to_text(first.program) == \
            program_to_text(second.program)
        for buf in first.buffers:
            np.testing.assert_array_equal(first.buffers[buf],
                                          second.buffers[buf])

    def test_twenty_scenarios_pass_and_produce_distinct_results(self):
        digests = set()
        for name in stress_batch(20):
            workload = WORKLOAD_REGISTRY[name]()
            run_workload(workload)  # checker raises on any mismatch
            digests.add(digest_buffers(workload.buffers))
        assert len(digests) == 20

    def test_stress_batch_bit_identical_across_policies_and_engines(self):
        """The paper's core invariant: compaction is timing-only.

        Every generated kernel must produce bit-identical buffers under
        raw/ivb/bcc/scc and under both execution engines; cycle counts
        must be ordered scc <= bcc <= ivb <= raw.  ``run_verify`` checks
        all of that and engine parity per workload.
        """
        from repro.runner import Runner
        from repro.verify import run_verify

        names = stress_batch(20)
        report = run_verify(names, base_config=GpuConfig(),
                            runner=Runner(workers=1, cache=False),
                            fuzz_iterations=0, engine_parity=True)
        failed = [v.workload for v in report.workloads if not v.passed]
        assert not failed, f"verification failures: {failed}"
        assert report.exit_code() == 0
        assert len(report.workloads) == 2 * len(names)  # policies + parity


class TestRegistryIntegration:
    def test_dsl_kernels_are_registered(self):
        for name in DSL_WORKLOADS:
            assert name in WORKLOAD_REGISTRY
            assert WORKLOAD_REGISTRY[name]().name == name

    def test_dsl_kernels_stay_out_of_paper_groups(self):
        assert not set(DSL_WORKLOADS) & set(DIVERGENT_WORKLOADS)

    def test_dynamic_stress_lookup(self):
        name = stress_name(seed=5, depth=1, entropy=10, trip=0, mem=0)
        assert name in WORKLOAD_REGISTRY
        assert WORKLOAD_REGISTRY[name]().name == name
        assert WORKLOAD_REGISTRY.get("stress_bogus") is None
        assert "stress_bogus" not in WORKLOAD_REGISTRY

    def test_dynamic_names_never_pollute_iteration(self):
        size = len(WORKLOAD_REGISTRY)
        name = stress_name(seed=99, depth=2, entropy=40, trip=1, mem=1)
        WORKLOAD_REGISTRY[name]  # dynamic resolution must not memoize
        assert len(WORKLOAD_REGISTRY) == size
        assert name not in list(WORKLOAD_REGISTRY)

    def test_stress_factory_accepts_overrides(self):
        name = stress_name(seed=5, depth=1, entropy=10, trip=0, mem=0)
        workload = WORKLOAD_REGISTRY[name](seed=6)
        assert workload.name == stress_name(seed=6, depth=1, entropy=10,
                                            trip=0, mem=0)

    def test_stress_jobs_are_cacheable(self):
        from repro.runner import Job

        name = stress_name(seed=5, depth=1, entropy=10, trip=0, mem=0)
        assert Job(name, GpuConfig()).cacheable
        assert not Job("fault_spin", GpuConfig()).cacheable


class TestKernelsCommand:
    def test_listing_shows_both_frontends(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        axpy_row = next(l for l in out.splitlines() if "dsl_axpy" in l)
        va_row = next(l for l in out.splitlines()
                      if l.startswith("va "))
        assert "dsl" in axpy_row
        assert "asm" in va_row

    def test_inspect_with_asm(self, capsys):
        assert main(["kernels", "dsl_axpy", "--asm"]) == 0
        out = capsys.readouterr().out
        assert "frontend       dsl" in out
        assert "mad.f32" in out

    def test_inspect_dynamic_stress_name(self, capsys):
        assert main(["kernels", "stress_s1_d1_e10_t0_m0"]) == 0
        out = capsys.readouterr().out
        assert "stress_s1_d1_e10_t0_m0" in out

    def test_inspect_json(self, capsys):
        import json

        assert main(["kernels", "dsl_axpy", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["frontend"] == "dsl"
        assert info["instructions"] == 6
        assert "asm" in info

    def test_unknown_name(self, capsys):
        assert main(["kernels", "nonexistent"]) == 2

    def test_verify_accepts_stress_flag(self, capsys):
        assert main(["verify", "--stress", "2", "--fuzz", "0",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "stress_s0_d1_e0_t0_m0" in out

    def test_run_accepts_dynamic_stress_name(self, capsys):
        assert main(["run", "stress_s1_d1_e10_t0_m0",
                     "--policy", "scc"]) == 0
        assert "total_cycles" in capsys.readouterr().out
