"""Tests for the workload framework itself (steps, verification, sweeps)."""

import numpy as np
import pytest

from repro.core.policy import CompactionPolicy
from repro.gpu import GpuConfig
from repro.isa.builder import KernelBuilder
from repro.isa.types import DType
from repro.kernels.workload import (
    LaunchStep,
    Workload,
    run_workload,
    run_workload_all_policies,
)


def _store_gid_program():
    b = KernelBuilder("store_gid", 16)
    gid = b.global_id()
    out = b.surface_arg("out")
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(gid, addr, out)
    return b.finish()


def _simple_workload(n=64, steps=None, check=None, max_steps=10_000):
    return Workload(
        name="simple",
        program=_store_gid_program(),
        buffers={"out": np.zeros(n, dtype=np.int32)},
        steps=steps if steps is not None else [LaunchStep(global_size=n)],
        check=check,
        max_steps=max_steps,
    )


class TestStaticSteps:
    def test_single_launch(self):
        workload = _simple_workload()
        result = run_workload(workload, GpuConfig())
        assert result.workgroups >= 1
        np.testing.assert_array_equal(workload.buffers["out"], np.arange(64))

    def test_multiple_static_steps_accumulate(self):
        workload = _simple_workload(
            steps=[LaunchStep(global_size=64), LaunchStep(global_size=64)])
        result = run_workload(workload, GpuConfig())
        single = run_workload(_simple_workload(), GpuConfig())
        assert result.instructions == 2 * single.instructions


class TestDynamicSteps:
    def test_host_loop_terminates_on_none(self):
        calls = []

        def steps(buffers, index):
            calls.append(index)
            if index >= 3:
                return None
            return LaunchStep(global_size=64)

        run_workload(_simple_workload(steps=steps), GpuConfig())
        assert calls == [0, 1, 2, 3]

    def test_runaway_host_loop_guarded(self):
        workload = _simple_workload(
            steps=lambda buffers, index: LaunchStep(global_size=64),
            max_steps=5)
        with pytest.raises(RuntimeError, match="max_steps"):
            run_workload(workload, GpuConfig())

    def test_zero_launches_rejected(self):
        workload = _simple_workload(steps=lambda buffers, index: None)
        with pytest.raises(RuntimeError, match="no launches"):
            run_workload(workload, GpuConfig())


class TestVerification:
    def test_check_called(self):
        seen = {}

        def check(buffers):
            seen["called"] = True

        run_workload(_simple_workload(check=check), GpuConfig())
        assert seen["called"]

    def test_verify_false_skips_check(self):
        def check(buffers):
            raise AssertionError("must not run")

        run_workload(_simple_workload(check=check), GpuConfig(), verify=False)

    def test_failing_check_propagates(self):
        def check(buffers):
            raise AssertionError("wrong answer")

        with pytest.raises(AssertionError, match="wrong answer"):
            run_workload(_simple_workload(check=check), GpuConfig())


class TestPolicySweep:
    def test_all_policies_run_fresh_instances(self):
        instances = []

        def factory():
            workload = _simple_workload()
            instances.append(workload)
            return workload

        results = run_workload_all_policies(factory)
        assert set(results) == {"ivb", "bcc", "scc"}
        assert len(instances) == 3  # one pristine instance per policy

    def test_custom_policy_list(self):
        results = run_workload_all_policies(
            _simple_workload, policies=(CompactionPolicy.RAW,))
        assert set(results) == {"raw"}
