"""Tests for the EXPERIMENTS.md generator (benchmarks/collect_results.py)."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "benchmarks" / "collect_results.py"


def _run():
    return subprocess.run(
        [sys.executable, str(SCRIPT)], capture_output=True, text=True)


class TestCollectResults:
    def test_produces_markdown(self):
        proc = _run()
        assert proc.stdout.startswith("# EXPERIMENTS")
        assert "## Figure 8" in proc.stdout
        assert "## Table 2" in proc.stdout

    def test_embeds_available_results(self):
        results_dir = REPO / "benchmarks" / "results"
        if not (results_dir / "test_area_regfile.txt").exists():
            import pytest

            pytest.skip("area bench results not generated yet")
        proc = _run()
        assert "interwarp-8bank" in proc.stdout

    def test_reports_missing_files(self, tmp_path):
        # Copy the script next to an empty results dir: every section
        # should degrade gracefully and the exit code flag it.
        script = tmp_path / "collect_results.py"
        script.write_text(SCRIPT.read_text())
        (tmp_path / "results").mkdir()
        proc = subprocess.run([sys.executable, str(script)],
                              capture_output=True, text=True)
        assert proc.returncode == 1
        assert "missing" in proc.stdout or "missing" in proc.stderr

    def test_tolerates_malformed_results(self, tmp_path):
        # An interrupted benchmark run leaves empty/truncated/binary
        # result files; the generator must warn and skip, not crash,
        # and still embed the sections that are intact.
        script = tmp_path / "collect_results.py"
        script.write_text(SCRIPT.read_text())
        results = tmp_path / "results"
        results.mkdir()
        (results / "test_area_regfile.txt").write_text("valid area table\n")
        (results / "test_fig08_ivb_microbench.txt").write_text("")  # empty
        (results / "test_table2_nesting.txt").write_bytes(
            b"\xff\xfe garbage \x00")  # undecodable
        proc = subprocess.run([sys.executable, str(script)],
                              capture_output=True, text=True)
        assert proc.returncode == 1
        assert "valid area table" in proc.stdout  # intact section embedded
        assert "test_fig08_ivb_microbench.txt: empty" in proc.stderr
        assert "test_table2_nesting.txt: unreadable" in proc.stderr
        assert "Traceback" not in proc.stderr
