"""Memory-divergence metric tests (the paper's second efficiency axis).

The paper distinguishes *compute* divergence (masked lanes) from
*memory* divergence (distinct cache-line requests per SIMD memory
instruction).  The workload suite spans both axes deliberately; these
tests pin the metric's behaviour on representative kernels.
"""

import numpy as np
import pytest

from repro.gpu import GpuConfig
from repro.kernels import run_workload, vector_add
from repro.kernels.raytracing import ambient_occlusion, primary_rays
from repro.kernels.signal import aes_round


class TestMemoryDivergenceMetric:
    def test_coalesced_kernel_near_one_line(self):
        # va's loads are unit-stride: 16 lanes cover one 64-byte line.
        result = run_workload(vector_add(n=512), GpuConfig())
        assert result.memory_divergence <= 1.3

    def test_gathered_kernel_divergent(self):
        # AES S-box gathers hit scattered table lines.
        result = run_workload(aes_round(blocks=256), GpuConfig())
        assert result.memory_divergence > 2.0

    def test_raytracer_bvh_fetches_highly_divergent(self):
        # Line-sized nodes in per-ray order: up to 16 lines per fetch.
        result = run_workload(primary_rays("bl", width_px=16), GpuConfig())
        assert result.memory_divergence > 4.0

    def test_simd8_caps_lines_at_eight(self):
        result = run_workload(
            ambient_occlusion("al", width_px=12, simd_width=8, ao_samples=2),
            GpuConfig())
        assert result.memory_divergence <= 8.0

    def test_compaction_does_not_change_memory_divergence(self):
        # The paper's claim: intra-warp compaction "intrinsically does
        # not create additional memory divergence".
        from repro.core.policy import CompactionPolicy

        divergences = {}
        for policy in (CompactionPolicy.IVB, CompactionPolicy.SCC):
            result = run_workload(
                primary_rays("al", width_px=16),
                GpuConfig(policy=policy))
            divergences[policy] = result.memory_divergence
        assert divergences[CompactionPolicy.SCC] == pytest.approx(
            divergences[CompactionPolicy.IVB])


class TestDeepNesting:
    def test_mask_stack_handles_deep_structures(self):
        from repro.eu.maskstack import MaskStack

        ms = MaskStack(16)
        masks = [0xFFFF]
        for depth in range(10):
            flag = 0xFFFF >> (depth + 1)
            ms.do_if(flag, target=0, target_is_else=False)
            masks.append(ms.current)
        assert ms.depth == 10
        for _ in range(10):
            ms.do_endif()
        assert ms.current == 0xFFFF
        assert ms.depth == 0

    def test_nested_loops_with_breaks(self):
        from repro.eu.maskstack import MaskStack

        ms = MaskStack(16)
        ms.do_do(100)           # outer loop
        ms.do_break(0x000F)     # lanes 0-3 leave the outer loop
        ms.do_do(100)           # inner loop (remaining lanes)
        ms.do_break(0x00F0)     # lanes 4-7 leave the inner loop
        assert ms.current == 0xFF00
        ms.do_while(0x0000, 1)  # inner exits: inner breakers rejoin
        assert ms.current == 0xFFF0
        ms.do_while(0x0000, 1)  # outer exits: outer breakers rejoin
        assert ms.current == 0xFFFF
