"""Timing-model correlation against closed-form expectations.

The paper correlated GPGenSim's EU model with hardware micro-benchmarks
to within 2 %.  We have no hardware, but the timing model has analytic
consequences that simple kernels must exhibit; these tests pin them:

* a dependent FMA chain is paced by occupancy + result latency;
* independent FMAs are paced by pipe occupancy alone (4 cycles per
  SIMD16 instruction on the 4-wide FPU);
* BCC-compressed instructions are paced by the issue stage once quads
  shrink below the issue period.
"""

import numpy as np
import pytest

from repro.core.policy import CompactionPolicy
from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.isa.opcodes import Opcode
from repro.isa.types import DType


def _run_single_thread(program, simd_width=16):
    out = np.zeros(simd_width, dtype=np.float32)
    config = GpuConfig(num_eus=1, threads_per_eu=1)
    result = GpuSimulator(config).run(program, simd_width,
                                      buffers={"out": out})
    return result


def _chain_kernel(k, independent=False, pred=None):
    b = KernelBuilder("chain", 16)
    gid = b.global_id()
    out = b.surface_arg("out")
    regs = [b.vreg(DType.F32) for _ in range(4)]
    for reg in regs:
        b.mov(reg, 1.0)
    for i in range(k):
        reg = regs[i % 4] if independent else regs[0]
        b.mad(reg, reg, 1.0001, 0.25, pred=pred)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(regs[0], addr, out)
    return b.finish()


class TestClosedFormPacing:
    def test_dependent_chain_paced_by_latency(self):
        # Spacing per dependent MAD: occupancy(4) + latency(5), rounded
        # up to the next arbitration boundary -> 10 cycles.
        k = 64
        cycles = _run_single_thread(_chain_kernel(k)).total_cycles
        expected = 10 * k
        assert expected * 0.9 <= cycles <= expected * 1.3

    def test_independent_stream_paced_by_occupancy(self):
        # Four-register rotation removes the dependence: the FPU accepts
        # a new SIMD16 instruction every 4 cycles.
        k = 64
        cycles = _run_single_thread(_chain_kernel(k, independent=True)).total_cycles
        expected = 4 * k
        assert expected * 0.9 <= cycles <= expected * 1.4

    def test_dependent_vs_independent_ratio(self):
        k = 64
        dep = _run_single_thread(_chain_kernel(k)).total_cycles
        ind = _run_single_thread(_chain_kernel(k, independent=True)).total_cycles
        assert dep / ind == pytest.approx(10 / 4, rel=0.25)

    def test_simd8_halves_occupancy(self):
        def kernel(width):
            b = KernelBuilder("w", width)
            gid = b.global_id()
            out = b.surface_arg("out")
            regs = [b.vreg(DType.F32) for _ in range(4)]
            for reg in regs:
                b.mov(reg, 1.0)
            for i in range(64):
                b.mad(regs[i % 4], regs[i % 4], 1.0001, 0.25)
            addr = b.vreg(DType.I32)
            b.shl(addr, gid, 2)
            b.store(regs[0], addr, out)
            return b.finish()

        c16 = _run_single_thread(kernel(16), 16).total_cycles
        c8 = _run_single_thread(kernel(8), 8).total_cycles
        # SIMD8 occupies the pipe 2 cycles/instr, but the issue stage
        # allows only one instruction per 2 cycles from a single thread,
        # so both run at the 2-cycle floor... SIMD16 at 4.
        assert c16 / c8 == pytest.approx(2.0, rel=0.3)

    def test_bcc_reaches_issue_floor(self):
        # Mask 0x000F under BCC: 1 quad cycle per MAD, but a lone thread
        # can only issue every other cycle -> 2 cycles per instruction.
        k = 64
        program = _chain_kernel(k, independent=True)
        # Build the same kernel but predicated to a single quad.
        b = KernelBuilder("pred", 16)
        gid = b.global_id()
        out = b.surface_arg("out")
        lane = b.vreg(DType.I32)
        b.and_(lane, gid, 15)
        from repro.isa.types import CmpOp

        flag = b.cmp(CmpOp.LT, lane, 4)
        regs = [b.vreg(DType.F32) for _ in range(4)]
        for reg in regs:
            b.mov(reg, 1.0)
        for i in range(k):
            b.mad(regs[i % 4], regs[i % 4], 1.0001, 0.25, pred=flag)
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        b.store(regs[0], addr, out)
        masked = b.finish()

        out_buf = np.zeros(16, dtype=np.float32)
        config = GpuConfig(num_eus=1, threads_per_eu=1,
                           policy=CompactionPolicy.BCC)
        cycles = GpuSimulator(config).run(masked, 16,
                                          buffers={"out": out_buf}).total_cycles
        # Issue floor: one instruction per issue period (2 cycles).
        expected = 2 * k
        assert expected * 0.8 <= cycles <= expected * 1.6

    def test_issue_width_four_breaks_the_floor(self):
        # With two instructions per pass from the same... still distinct
        # threads required: add a second thread via two SIMD16 slices.
        program = _chain_kernel(64, independent=True)
        out = np.zeros(32, dtype=np.float32)
        config = GpuConfig(num_eus=1, threads_per_eu=2,
                           policy=CompactionPolicy.IVB)
        two_threads = GpuSimulator(config).run(
            program, 32, buffers={"out": out}).total_cycles
        out = np.zeros(16, dtype=np.float32)
        config1 = GpuConfig(num_eus=1, threads_per_eu=1,
                            policy=CompactionPolicy.IVB)
        one_thread = GpuSimulator(config1).run(
            program, 16, buffers={"out": out}).total_cycles
        # Twice the work on two threads costs ~2x one thread's time when
        # occupancy-bound (the pipe is already saturated by one thread).
        assert two_threads == pytest.approx(2 * one_thread, rel=0.25)
