"""Tests for the policy dispatcher and the compaction statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import (
    POLICY_ORDER,
    CompactionPolicy,
    cycles_all_policies,
    execution_cycles,
    parse_policy,
)
from repro.core.stats import (
    CompactionStats,
    is_divergent,
    utilization_bucket,
)

masks16 = st.integers(min_value=0, max_value=0xFFFF)
widths = st.sampled_from([8, 16])


class TestExecutionCycles:
    def test_raw_ignores_mask(self):
        assert execution_cycles(0x0001, 16, CompactionPolicy.RAW) == 4

    def test_ivb_half_rewrite(self):
        assert execution_cycles(0x00FF, 16, CompactionPolicy.IVB) == 2

    def test_bcc_skips_empty_quads(self):
        assert execution_cycles(0xF0F0, 16, CompactionPolicy.BCC) == 2

    def test_scc_optimal(self):
        assert execution_cycles(0xAAAA, 16, CompactionPolicy.SCC) == 2

    def test_min_cycles_floor(self):
        assert execution_cycles(0, 16, CompactionPolicy.SCC, min_cycles=1) == 1
        assert execution_cycles(0, 16, CompactionPolicy.SCC, min_cycles=0) == 0

    @given(masks16, widths)
    def test_policy_monotonicity(self, mask, width):
        mask &= (1 << width) - 1
        cycles = cycles_all_policies(mask, width)
        assert (
            cycles[CompactionPolicy.RAW]
            >= cycles[CompactionPolicy.IVB]
            >= cycles[CompactionPolicy.BCC]
            >= cycles[CompactionPolicy.SCC]
        )

    @given(masks16)
    def test_full_mask_no_policy_helps(self, mask):
        cycles = cycles_all_policies(0xFFFF, 16)
        assert len(set(cycles.values())) == 1


class TestParsePolicy:
    @pytest.mark.parametrize("name,expected", [
        ("scc", CompactionPolicy.SCC),
        ("BCC", CompactionPolicy.BCC),
        ("Ivb", CompactionPolicy.IVB),
        ("raw", CompactionPolicy.RAW),
    ])
    def test_valid(self, name, expected):
        assert parse_policy(name) is expected

    def test_invalid(self):
        with pytest.raises(ValueError, match="unknown compaction policy"):
            parse_policy("tbc")


class TestUtilizationBucket:
    @pytest.mark.parametrize("mask,width,label", [
        (0x0001, 16, "1-4/16"),
        (0x00FF, 16, "5-8/16"),
        (0x0FFF, 16, "9-12/16"),
        (0xFFFF, 16, "13-16/16"),
        (0x03, 8, "1-4/8"),
        (0xFF, 8, "5-8/8"),
        (0x0, 16, "0/16"),
        (0xF, 4, "4/4"),
    ])
    def test_labels(self, mask, width, label):
        assert utilization_bucket(mask, width) == label


class TestCompactionStats:
    def test_simd_efficiency_empty_stream(self):
        assert CompactionStats().simd_efficiency == 1.0

    def test_simd_efficiency_half_enabled(self):
        stats = CompactionStats()
        stats.record(0x00FF, 16)
        assert stats.simd_efficiency == 0.5

    def test_cycles_accumulate_all_policies(self):
        stats = CompactionStats(min_cycles=1)
        stats.record(0xF0F0, 16)
        stats.record(0xAAAA, 16)
        assert stats.cycles[CompactionPolicy.RAW] == 8
        assert stats.cycles[CompactionPolicy.IVB] == 8
        assert stats.cycles[CompactionPolicy.BCC] == 6  # 2 + 4
        assert stats.cycles[CompactionPolicy.SCC] == 4  # 2 + 2

    def test_reduction_pct(self):
        stats = CompactionStats(min_cycles=1)
        stats.record(0xF0F0, 16)
        assert stats.reduction_pct(CompactionPolicy.BCC) == pytest.approx(50.0)
        assert stats.reduction_pct(CompactionPolicy.SCC) == pytest.approx(50.0)

    def test_reduction_pct_empty(self):
        assert CompactionStats().reduction_pct(CompactionPolicy.SCC) == 0.0

    def test_bucket_fractions(self):
        stats = CompactionStats()
        stats.record(0x1, 16)
        stats.record(0x1, 16)
        stats.record(0xFFFF, 16)
        fractions = stats.bucket_fractions()
        assert fractions["1-4/16"] == pytest.approx(2 / 3)
        assert fractions["13-16/16"] == pytest.approx(1 / 3)

    def test_record_stream(self):
        stats = CompactionStats()
        stats.record_stream([(0xF, 16), (0xFF, 16)])
        assert stats.instructions == 2

    def test_merge(self):
        a = CompactionStats()
        a.record(0xF0F0, 16)
        b = CompactionStats()
        b.record(0xAAAA, 16)
        a.merge(b)
        assert a.instructions == 2
        assert a.cycles[CompactionPolicy.SCC] == 4

    def test_merge_min_cycles_mismatch(self):
        a = CompactionStats(min_cycles=1)
        b = CompactionStats(min_cycles=0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_rf_access_savings(self):
        stats = CompactionStats()
        stats.record(0xF0F0, 16, num_src=2, num_dst=1)
        # Half the quads suppressed -> half the accesses saved.
        assert stats.rf_access_savings_pct() == pytest.approx(50.0)

    def test_summary_keys(self):
        stats = CompactionStats()
        stats.record(0xFF, 16)
        summary = stats.summary()
        for key in ("instructions", "simd_efficiency", "cycles_ivb",
                    "bcc_reduction_pct", "scc_reduction_pct"):
            assert key in summary

    @given(st.lists(masks16, min_size=1, max_size=50))
    def test_scc_reduction_never_negative(self, masks):
        stats = CompactionStats(min_cycles=1)
        for mask in masks:
            stats.record(mask, 16)
        assert stats.reduction_pct(CompactionPolicy.SCC) >= 0.0
        assert stats.reduction_pct(CompactionPolicy.SCC) >= stats.reduction_pct(
            CompactionPolicy.BCC
        )


class TestIsDivergent:
    def test_threshold(self):
        assert is_divergent(0.94)
        assert not is_divergent(0.95)
        assert not is_divergent(1.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            is_divergent(1.5)
