"""Shared fixtures for the fast test suite.

The experiment harnesses route their simulations through the shared
:mod:`repro.runner` engine.  During tests, that engine's on-disk cache
is redirected into a session-scoped temporary directory so the suite
never writes outside pytest's tmp tree — and repeated simulations of the
same (workload, config) pair across test modules are served from the
warm cache instead of being re-run.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_default_runner(tmp_path_factory):
    from repro.runner import ResultCache, Runner, set_default_runner

    cache = ResultCache(tmp_path_factory.mktemp("repro-result-cache"))
    previous = set_default_runner(Runner(workers=1, cache=cache))
    yield
    set_default_runner(previous)
