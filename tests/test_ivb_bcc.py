"""Unit tests for the IVB half-mask rewrite and Basic Cycle Compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bcc import (
    BccSchedule,
    QuadOp,
    baseline_register_accesses,
    bcc_compressible_cycles,
    bcc_cycles,
    bcc_register_accesses,
    bcc_schedule,
    is_bcc_friendly,
)
from repro.core.ivb import (
    baseline_cycles,
    ivb_applicable,
    ivb_cycles,
    ivb_effective,
)
from repro.core.quads import active_quad_count, num_quads, optimal_cycles, popcount

masks16 = st.integers(min_value=0, max_value=0xFFFF)


class TestIvbApplicable:
    @pytest.mark.parametrize("mask", [0x00FF, 0xFF00, 0x0001, 0x8000, 0x00F0])
    def test_half_empty_fires(self, mask):
        assert ivb_applicable(mask, 16)

    @pytest.mark.parametrize("mask", [0xFFFF, 0xF0F0, 0x0101, 0xAAAA, 0x8001])
    def test_both_halves_used_does_not_fire(self, mask):
        assert not ivb_applicable(mask, 16)

    def test_empty_mask_does_not_fire(self):
        assert not ivb_applicable(0, 16)

    def test_simd8_never_rewritten(self):
        assert not ivb_applicable(0x0F, 8)


class TestIvbEffective:
    def test_lower_half_kept(self):
        assert ivb_effective(0x00FF, 16) == (8, 0xFF)

    def test_upper_half_shifted_down(self):
        assert ivb_effective(0xAB00, 16) == (8, 0xAB)

    def test_untouched(self):
        assert ivb_effective(0xF0F0, 16) == (16, 0xF0F0)

    @given(masks16)
    def test_population_preserved(self, mask):
        _w, eff = ivb_effective(mask, 16)
        assert popcount(eff) == popcount(mask)


class TestIvbCycles:
    def test_paper_fig8_00ff(self):
        # SIMD16 with 0x00FF executes in two cycles, same as SIMD8.
        assert ivb_cycles(0x00FF, 16) == 2

    def test_f0f0_not_optimized(self):
        assert ivb_cycles(0xF0F0, 16) == 4

    def test_dtype_factor_scales(self):
        assert ivb_cycles(0x00FF, 16, dtype_factor=2) == 4

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            ivb_cycles(0xFFFF, 16, dtype_factor=0)

    @given(masks16)
    def test_never_worse_than_baseline(self, mask):
        assert ivb_cycles(mask, 16) <= baseline_cycles(mask, 16)


class TestBccSchedule:
    def test_paper_section_4_1_example(self):
        # ADD(16) with exec mask 0xF0F0: Q0 and Q2 suppressed.
        schedule = bcc_schedule(0xF0F0, 16)
        assert [op.quad for op in schedule.ops] == [1, 3]
        assert schedule.suppressed == (0, 2)
        assert schedule.cycles == 2
        assert schedule.fetches_saved == 2

    def test_full_mask_runs_all_quads(self):
        schedule = bcc_schedule(0xFFFF, 16)
        assert schedule.cycles == 4
        assert schedule.suppressed == ()

    def test_empty_mask_runs_nothing(self):
        schedule = bcc_schedule(0, 16)
        assert schedule.cycles == 0
        assert schedule.suppressed == (0, 1, 2, 3)

    def test_lane_enables_match_mask(self):
        schedule = bcc_schedule(0x0F21, 16)
        enables = {op.quad: op.lane_enable for op in schedule.ops}
        assert enables == {0: 0x1, 1: 0x2, 2: 0xF}

    def test_quadop_validation(self):
        with pytest.raises(ValueError):
            QuadOp(quad=-1, lane_enable=0xF)
        with pytest.raises(ValueError):
            QuadOp(quad=0, lane_enable=0x10)

    @given(masks16)
    def test_ops_plus_suppressed_cover_all_quads(self, mask):
        schedule = bcc_schedule(mask, 16)
        quads = sorted([op.quad for op in schedule.ops] + list(schedule.suppressed))
        assert quads == [0, 1, 2, 3]


class TestBccCycles:
    @given(masks16)
    def test_equals_active_quads(self, mask):
        assert bcc_cycles(mask, 16) == active_quad_count(mask, 16)

    @given(masks16)
    def test_never_worse_than_ivb(self, mask):
        assert bcc_cycles(mask, 16) <= ivb_cycles(mask, 16)

    @given(masks16)
    def test_never_better_than_optimal(self, mask):
        assert bcc_cycles(mask, 16) >= optimal_cycles(mask, 16)

    def test_compressible_cycles(self):
        assert bcc_compressible_cycles(0xF0F0, 16) == 2
        assert bcc_compressible_cycles(0xFFFF, 16) == 0


class TestRegisterAccessAccounting:
    def test_baseline_simd16_three_operand(self):
        # 4 quads x (2 src + 1 dst) half-register accesses.
        assert baseline_register_accesses(16, num_src=2, num_dst=1) == 12

    def test_bcc_suppresses_fetches(self):
        assert bcc_register_accesses(0xF0F0, 16, num_src=2, num_dst=1) == 6

    def test_negative_operand_counts_rejected(self):
        with pytest.raises(ValueError):
            bcc_register_accesses(0xF, 16, num_src=-1)


class TestBccFriendly:
    @pytest.mark.parametrize("mask", [0xF0F0, 0x000F, 0xFFFF, 0x0])
    def test_friendly_masks(self, mask):
        assert is_bcc_friendly(mask, 16)

    @pytest.mark.parametrize("mask", [0xAAAA, 0x1111, 0x0101])
    def test_unfriendly_masks(self, mask):
        assert not is_bcc_friendly(mask, 16)
