"""Tests for the experiment harness modules (small configurations).

The full-size experiments run under ``pytest benchmarks/``; these tests
exercise the same code paths on reduced workload sets so regressions in
the harnesses are caught by the fast suite.
"""

import pytest

from repro.core.policy import CompactionPolicy
from repro.experiments import area, fig03, fig08, fig09, fig10, fig11, fig12, table2
from repro.gpu.config import GpuConfig
from repro.kernels.raytracing import ambient_occlusion


class TestFig03:
    @pytest.fixture(scope="class")
    def data(self):
        return fig03.fig3_data(sim_workloads=("va", "gnoise"),
                               include_traces=False)

    def test_sorted_descending(self, data):
        values = [e.simd_efficiency for e in data.entries]
        assert values == sorted(values, reverse=True)

    def test_partition(self, data):
        assert {e.name for e in data.coherent} == {"va"}
        assert {e.name for e in data.divergent} == {"gnoise"}

    def test_render(self, data):
        out = fig03.render(data)
        assert "SIMD efficiency" in out
        assert "va" in out and "gnoise" in out

    def test_traces_only(self):
        data = fig03.fig3_data(sim_workloads=None, include_traces=True)
        assert len(data.entries) >= 17
        assert not data.coherent  # all synthetic traces are divergent


class TestFig08:
    def test_analytic_under_scc_flattens_everything_except_nothing(self):
        points = fig08.fig8_analytic(CompactionPolicy.SCC)
        assert all(p.relative_time == pytest.approx(1.0) for p in points)

    def test_raw_policy_worst_case(self):
        points = {p.pattern: p.relative_time
                  for p in fig08.fig8_analytic(CompactionPolicy.RAW)}
        assert points[0x00FF] == pytest.approx(2.0)  # no half rewrite

    def test_render_mentions_patterns(self):
        out = fig08.render(fig08.fig8_analytic(), "t")
        assert "0xF0F0" in out


class TestTable2:
    def test_row_totals_bounded(self):
        for row in table2.table2_analytic():
            assert 0.0 <= row.total_pct <= 100.0

    def test_simd32_scaling(self):
        # At SIMD32 the IVB rewrite never fires (it is SIMD16-specific),
        # so the L4 benefit moves entirely into BCC.
        rows = table2.table2_analytic(width=32)
        assert rows[3].ivb_benefit_pct == 0.0
        assert rows[3].bcc_benefit_pct > 50.0

    def test_render_format(self):
        out = table2.render(table2.table2_analytic(), "T")
        assert "L4" in out and "IVB" in out


class TestFig09:
    def test_small_subset(self):
        table = fig09.fig9_data(sim_workloads=("gnoise",),
                                include_traces=False)
        assert "gnoise" in table
        row = table["gnoise"]
        assert sum(row.values()) == pytest.approx(1.0)

    def test_render(self):
        table = fig09.fig9_data(sim_workloads=("gnoise",),
                                include_traces=False)
        assert "1-4/16" in fig09.render(table)


class TestFig10:
    def test_small_subset(self):
        bars = fig10.fig10_data(sim_workloads=("gnoise",),
                                include_traces=False)
        assert len(bars) == 1
        assert bars[0].scc_pct >= bars[0].bcc_pct

    def test_summarize_empty(self):
        stats = fig10.summarize([])
        assert stats["max_scc"] == 0.0

    def test_render_contains_footer(self):
        bars = fig10.fig10_data(sim_workloads=(), include_traces=True)
        out = fig10.render(bars)
        assert "average SCC reduction" in out


class TestFig11:
    def test_single_workload(self):
        factories = {
            "RT-AO-AL8": lambda: ambient_occlusion(
                "al", width_px=8, simd_width=8, ao_samples=2),
        }
        rows = fig11.fig11_data(factories)
        assert len(rows) == 1
        row = rows[0]
        assert row.scc_eu >= row.bcc_eu
        assert row.dc_throughput_base >= 0.0

    def test_render(self):
        factories = {
            "RT-AO-AL8": lambda: ambient_occlusion(
                "al", width_px=8, simd_width=8, ao_samples=2),
        }
        out = fig11.render(fig11.fig11_data(factories))
        assert "RT-AO-AL8" in out


class TestFig12:
    def test_single_kernel(self):
        from repro.kernels.rodinia import hotspot

        rows = fig12.fig12_data({"hotspot": lambda: hotspot(dim=16,
                                                            iterations=1)})
        assert len(rows) == 1
        assert rows[0].scc_eu >= rows[0].bcc_eu

    def test_rodinia_names(self):
        assert set(fig12.RODINIA_NAMES) == {
            "bfs", "hotspot", "lavamd", "nw", "particlefilter"}


class TestAreaExperiment:
    def test_rows_and_render(self):
        rows = area.area_data()
        assert [r.config.name for r in rows] == [
            "baseline", "bcc", "scc", "interwarp-8bank"]
        out = area.render(rows)
        assert "+10.0%" in out
