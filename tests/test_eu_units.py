"""Unit tests for EU components: GRF, mask stack, scoreboard, pipes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eu.grf import RegisterFile
from repro.eu.maskstack import MaskStack
from repro.eu.pipes import ExecPipe, PipeSet
from repro.eu.scoreboard import Scoreboard
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import FlagRef, RegRef
from repro.isa.types import DType

masks16 = st.integers(min_value=0, max_value=0xFFFF)


class TestRegisterFile:
    def test_read_after_write(self):
        grf = RegisterFile()
        ref = RegRef(4, DType.F32)
        grf.write(ref, 16, np.arange(16, dtype=np.float32), 0xFFFF)
        np.testing.assert_array_equal(grf.read(ref, 16), np.arange(16))

    def test_masked_write_preserves_disabled_lanes(self):
        grf = RegisterFile()
        ref = RegRef(0, DType.F32)
        grf.write(ref, 16, np.full(16, 1.0, np.float32), 0xFFFF)
        grf.write(ref, 16, np.full(16, 2.0, np.float32), 0x00FF)
        values = grf.read(ref, 16)
        np.testing.assert_array_equal(values[:8], 2.0)
        np.testing.assert_array_equal(values[8:], 1.0)

    def test_int_float_aliasing(self):
        grf = RegisterFile()
        grf.write(RegRef(2, DType.I32), 8, np.zeros(8, np.int32), 0xFF)
        grf.write(RegRef(2, DType.F32), 8, np.full(8, 1.0, np.float32), 0xFF)
        ints = grf.read(RegRef(2, DType.I32), 8)
        assert ints[0] == np.float32(1.0).view(np.int32)

    def test_simd16_spans_two_registers(self):
        grf = RegisterFile()
        grf.write(RegRef(10, DType.F32), 16, np.arange(16, dtype=np.float32), 0xFFFF)
        upper = grf.read(RegRef(11, DType.F32), 8)
        np.testing.assert_array_equal(upper, np.arange(8, 16))

    def test_f64_lanes(self):
        grf = RegisterFile()
        ref = RegRef(0, DType.F64)
        grf.write(ref, 8, np.arange(8, dtype=np.float64), 0xFF)
        np.testing.assert_array_equal(grf.read(ref, 8), np.arange(8))

    def test_read_returns_copy(self):
        grf = RegisterFile()
        ref = RegRef(0, DType.F32)
        values = grf.read(ref, 8)
        values[:] = 99.0
        np.testing.assert_array_equal(grf.read(ref, 8), 0.0)

    def test_overflow_guard(self):
        grf = RegisterFile()
        with pytest.raises(ValueError):
            grf.read(RegRef(127, DType.F32), 16)

    def test_broadcast(self):
        grf = RegisterFile()
        ref = RegRef(5, DType.I32)
        grf.broadcast(ref, 16, 7)
        np.testing.assert_array_equal(grf.read(ref, 16), 7)


class TestMaskStackIf:
    def test_if_splits_lanes(self):
        ms = MaskStack(16)
        jump = ms.do_if(0x00FF, target=5, target_is_else=False)
        assert jump is None
        assert ms.current == 0x00FF

    def test_endif_restores(self):
        ms = MaskStack(16)
        ms.do_if(0x00FF, 5, False)
        ms.do_endif()
        assert ms.current == 0xFFFF

    def test_else_switches_to_complement(self):
        ms = MaskStack(16)
        ms.do_if(0x00FF, 5, True)
        jump = ms.do_else(target=9)
        assert jump is None
        assert ms.current == 0xFF00

    def test_empty_then_jumps(self):
        ms = MaskStack(16)
        jump = ms.do_if(0x0000, target=7, target_is_else=False)
        assert jump == 7

    def test_empty_then_with_else_activates_else_lanes(self):
        ms = MaskStack(16)
        jump = ms.do_if(0x0000, target=3, target_is_else=True)
        assert jump == 3
        assert ms.current == 0xFFFF  # all lanes take the else arm

    def test_empty_else_jumps_to_endif(self):
        ms = MaskStack(16)
        ms.do_if(0xFFFF, 5, True)
        assert ms.do_else(target=9) == 9

    def test_dispatch_mask_bounds_else(self):
        ms = MaskStack(16, dispatch_mask=0x00FF)
        ms.do_if(0x000F, 5, True)
        ms.do_else(9)
        assert ms.current == 0x00F0  # never beyond the dispatch mask

    def test_nested_ifs(self):
        ms = MaskStack(16)
        ms.do_if(0x00FF, 5, False)
        ms.do_if(0x000F, 9, False)
        assert ms.current == 0x000F
        ms.do_endif()
        assert ms.current == 0x00FF
        ms.do_endif()
        assert ms.current == 0xFFFF

    def test_else_twice_rejected(self):
        ms = MaskStack(16)
        ms.do_if(0x00FF, 5, True)
        ms.do_else(9)
        with pytest.raises(RuntimeError):
            ms.do_else(9)

    def test_endif_without_if(self):
        ms = MaskStack(16)
        with pytest.raises(RuntimeError):
            ms.do_endif()


class TestMaskStackLoop:
    def test_while_continues_with_surviving_lanes(self):
        ms = MaskStack(16)
        ms.do_do(target=9)
        jump = ms.do_while(0x00FF, back_target=1)
        assert jump == 1
        assert ms.current == 0x00FF

    def test_while_exit_restores_entry_mask(self):
        ms = MaskStack(16)
        ms.do_do(9)
        ms.do_while(0x000F, 1)  # iterate with fewer lanes
        jump = ms.do_while(0x0000, 1)  # everyone done
        assert jump is None
        assert ms.current == 0xFFFF

    def test_do_with_empty_mask_skips_loop(self):
        ms = MaskStack(16)
        ms.do_if(0x0, 1, False)  # empties the mask (pretend no jump taken)
        assert ms.current == 0
        assert ms.do_do(target=42) == 42

    def test_break_removes_lanes(self):
        ms = MaskStack(16)
        ms.do_do(9)
        ms.do_break(0x000F)
        assert ms.current == 0xFFF0

    def test_break_lanes_return_after_loop(self):
        ms = MaskStack(16)
        ms.do_do(9)
        ms.do_break(0x00FF)
        ms.do_while(0x0000, 1)
        assert ms.current == 0xFFFF

    def test_break_inside_if_not_resurrected_by_endif(self):
        # The classic SIMT pitfall: lanes that break inside an IF must
        # stay off when the ENDIF restores the pre-IF mask.
        ms = MaskStack(16)
        ms.do_do(9)
        ms.do_if(0x00FF, 5, False)
        ms.do_break(0x000F)  # lanes 0-3 break
        ms.do_endif()
        assert ms.current == 0xFFF0

    def test_break_strips_else_arm_too(self):
        ms = MaskStack(16)
        ms.do_do(9)
        ms.do_if(0x00FF, 5, True)
        ms.do_break(0x0F00 & 0x00FF)  # no-op: lanes not in current mask
        ms.do_break(0x000F)
        ms.do_else(9)
        assert ms.current == 0xFF00  # else lanes unaffected

    def test_break_outside_loop_rejected(self):
        ms = MaskStack(16)
        with pytest.raises(RuntimeError):
            ms.do_break(0xF)

    def test_while_with_open_if_rejected(self):
        ms = MaskStack(16)
        ms.do_do(9)
        ms.do_if(0x00FF, 5, False)
        with pytest.raises(RuntimeError):
            ms.do_while(0xF, 1)

    @given(masks16, masks16)
    def test_if_partition_invariant(self, dispatch, flag):
        ms = MaskStack(16, dispatch_mask=dispatch)
        entry = ms.current
        jumped_to_else = ms.do_if(flag, 5, True) is not None
        taken = 0 if jumped_to_else else ms.current
        if jumped_to_else:
            # The hardware jumped straight into the else arm; the frame
            # is already in its else state.
            not_taken = ms.current
        else:
            ms.do_else(9)
            not_taken = ms.current
        ms.do_endif()
        assert taken | not_taken == entry
        assert taken & not_taken == 0
        assert ms.current == entry


class TestScoreboard:
    def _inst(self):
        return Instruction(opcode=Opcode.ADD, width=16, dst=RegRef(4),
                           sources=(RegRef(0), RegRef(2)))

    def test_ready_when_empty(self):
        assert Scoreboard().is_ready(self._inst(), 0)

    def test_raw_dependency(self):
        sb = Scoreboard()
        sb.mark_write([0], 10)
        inst = self._inst()
        assert not sb.is_ready(inst, 5)
        assert sb.is_ready(inst, 10)

    def test_waw_dependency(self):
        sb = Scoreboard()
        sb.mark_write([4], 8)
        assert sb.ready_at(self._inst()) == 8

    def test_flag_dependency(self):
        sb = Scoreboard()
        sb.mark_flag_write(0, 6)
        inst = Instruction(opcode=Opcode.IF, width=16, pred=FlagRef(0))
        assert sb.ready_at(inst) == 6

    def test_record_sets_write(self):
        sb = Scoreboard()
        sb.record(self._inst(), 12)
        assert sb.ready_at(self._inst()) == 12

    def test_monotone_mark(self):
        sb = Scoreboard()
        sb.mark_write([0], 10)
        sb.mark_write([0], 5)  # earlier completion must not regress
        assert sb.pending_max() == 10


class TestPipes:
    def test_issue_occupies(self):
        pipe = ExecPipe("fpu")
        drain = pipe.issue(0, 4)
        assert drain == 4
        assert not pipe.can_accept(2)
        assert pipe.can_accept(4)

    def test_issue_while_busy_rejected(self):
        pipe = ExecPipe("fpu")
        pipe.issue(0, 4)
        with pytest.raises(RuntimeError):
            pipe.issue(2, 1)

    def test_zero_occupancy_rejected(self):
        with pytest.raises(ValueError):
            ExecPipe("fpu").issue(0, 0)

    def test_busy_cycles_accumulate(self):
        pipe = ExecPipe("fpu")
        pipe.issue(0, 4)
        pipe.issue(4, 2)
        assert pipe.busy_cycles == 6

    def test_pipeset_routing(self):
        pipes = PipeSet()
        assert pipes.for_opcode(Opcode.ADD) is pipes.fpu
        assert pipes.for_opcode(Opcode.SQRT) is pipes.em
        assert pipes.for_opcode(Opcode.LOAD) is pipes.send
        with pytest.raises(ValueError):
            pipes.for_opcode(Opcode.IF)
