"""Tests for the textual assembler (serialize + parse + round trip)."""

import numpy as np
import pytest

from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.asm import AsmError, assemble, program_to_text
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, RegRef
from repro.kernels import WORKLOAD_REGISTRY

EXAMPLE = """\
kernel axpy simd16 slm=0
gid @r0
param x: surface
param y: surface
param a: scalar_f32 @r4

    shl.i32 r2, r0, 2:i32
    load.f32 r6, r2, @surf0
    load.f32 r8, r2, @surf1
    mad.f32 r8, r6, r4, r8
    store.f32 r2, r8, @surf1
    eot
"""


def _semantically_equal(a, b) -> bool:
    """Instruction equality up to register-span-equivalent dtypes."""
    if (a.opcode, a.width, a.dtype, a.pred, a.flag_dst, a.cmp_op,
            a.surface, a.src_dtype, a.target) != (
            b.opcode, b.width, b.dtype, b.pred, b.flag_dst, b.cmp_op,
            b.surface, b.src_dtype, b.target):
        return False
    if (a.dst is None) != (b.dst is None):
        return False
    if a.dst is not None and a.dst.reg != b.dst.reg:
        return False
    if len(a.sources) != len(b.sources):
        return False
    for sa, sb in zip(a.sources, b.sources):
        if isinstance(sa, RegRef) != isinstance(sb, RegRef):
            return False
        if isinstance(sa, RegRef):
            if sa.reg != sb.reg or sa.dtype.size != sb.dtype.size:
                return False
        else:
            if float(sa.value) != float(sb.value):
                return False
    return True


class TestAssemble:
    def test_example_parses(self):
        program = assemble(EXAMPLE)
        assert program.name == "axpy"
        assert program.simd_width == 16
        assert program.gid_reg == 0
        assert [p.name for p in program.params] == ["x", "y", "a"]
        assert program.instructions[-1].opcode is Opcode.EOT

    def test_assembled_program_runs(self):
        program = assemble(EXAMPLE)
        n = 128
        x = np.arange(n, dtype=np.float32)
        y = np.ones(n, dtype=np.float32)
        GpuSimulator(GpuConfig()).run(program, n, buffers={"x": x, "y": y},
                                      scalars={"a": 2.0})
        np.testing.assert_allclose(y, 2.0 * x + 1.0)

    def test_comments_and_blank_lines(self):
        text = EXAMPLE.replace("    eot", "    ; trailing comment\n    eot")
        assert assemble(text).finalized

    def test_predicated_instruction(self):
        text = """\
kernel p simd16
    cmp.lt.f32 f0, r2, 1.0:f32
    (f0) mov.f32 r4, 2.0:f32
    (~f0) mov.f32 r4, 3.0:f32
    eot
"""
        program = assemble(text)
        assert program.instructions[1].pred.index == 0
        assert program.instructions[2].pred.negate

    def test_control_flow_targets_resolved(self):
        text = """\
kernel c simd16
    cmp.lt.f32 f0, r2, 1.0:f32
    if f0
    else
    endif
    eot
"""
        program = assemble(text)
        assert program.instructions[1].target == 3  # past ELSE
        assert program.instructions[2].target == 3  # ENDIF

    def test_cvt_dtypes(self):
        text = "kernel c simd16\n    cvt.f32.i32 r2, r4\n    eot\n"
        inst = assemble(text).instructions[0]
        assert inst.src_dtype.label == "i32"
        assert inst.dtype.label == "f32"


class TestAssembleErrors:
    def test_missing_header(self):
        with pytest.raises(AsmError, match="kernel header"):
            assemble("    eot\n")

    def test_unknown_opcode(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            assemble("kernel k simd16\n    frobnicate.f32 r0, r1\n    eot\n")

    def test_bad_operand(self):
        with pytest.raises(AsmError, match="cannot parse operand"):
            assemble("kernel k simd16\n    mov.f32 r0, banana\n    eot\n")

    def test_scalar_param_without_reg(self):
        with pytest.raises(AsmError, match="register"):
            assemble("kernel k simd16\nparam a: scalar_f32\n    eot\n")

    def test_validation_error_carries_line(self):
        with pytest.raises(AsmError, match="line 2"):
            assemble("kernel k simd16\n    add.f32 r0, r2\n    eot\n")


class TestRoundTrip:
    @pytest.mark.parametrize("name", [
        "va", "gnoise", "bsearch", "bsort", "nested_l3", "mca", "scla",
        "rt_ao_al8",
    ])
    def test_workload_programs_round_trip(self, name):
        original = WORKLOAD_REGISTRY[name]().program
        text = program_to_text(original)
        rebuilt = assemble(text)
        assert rebuilt.simd_width == original.simd_width
        assert rebuilt.slm_bytes == original.slm_bytes
        assert rebuilt.gid_reg == original.gid_reg
        assert rebuilt.lid_reg == original.lid_reg
        assert len(rebuilt.instructions) == len(original.instructions)
        for a, b in zip(original.instructions, rebuilt.instructions):
            assert _semantically_equal(a, b), f"{a} != {b}"

    def test_round_tripped_kernel_produces_same_results(self):
        workload = WORKLOAD_REGISTRY["gnoise"]()
        rebuilt = assemble(program_to_text(workload.program))
        out_a = np.zeros(256, dtype=np.float32)
        out_b = np.zeros(256, dtype=np.float32)
        sim = GpuSimulator(GpuConfig())
        ra = sim.run(workload.program, 256, buffers={"out": out_a})
        rb = sim.run(rebuilt, 256, buffers={"out": out_b})
        np.testing.assert_array_equal(out_a, out_b)
        assert ra.total_cycles == rb.total_cycles

    def test_serialize_unfinalized_rejected(self):
        from repro.isa.program import Program

        with pytest.raises(ValueError, match="finalized"):
            program_to_text(Program("p", 16))


class TestBitIdentity:
    """Round trips must reproduce programs *bit-identically*, width
    overrides included — the ``.wN`` mnemonic suffix exists for this."""

    def test_width_override_carries_suffix(self):
        from repro.isa.builder import KernelBuilder

        b = KernelBuilder("w", simd_width=16)
        r = b.temp()
        b.alu(Opcode.MOV, r, 1.0, width=8)
        b.add(r, r, 2.0)
        program = b.finish()
        text = program_to_text(program)
        assert "mov.f32.w8" in text
        assert ".w16" not in text  # program-width instructions stay bare
        assert assemble(text).instructions == program.instructions

    @pytest.mark.parametrize("width", [1, 4, 8])
    def test_every_narrow_width_round_trips(self, width):
        from repro.isa.builder import KernelBuilder

        b = KernelBuilder("w", simd_width=16)
        r = b.temp()
        b.alu(Opcode.ADD, r, r, 1.5, width=width)
        program = b.finish()
        rebuilt = assemble(program_to_text(program))
        assert rebuilt.instructions == program.instructions
        assert rebuilt.instructions[0].width == width
