"""Worker-lifecycle regression tests for :class:`repro.serve.ServeWorker`.

Two bugs this file pins down (both must FAIL on the pre-fix worker):

* ``--max-jobs`` counted only *completed* jobs, so a worker whose jobs
  all failed (or were all fenced drops) never exited — it polled
  forever.  The cap now runs on the ``executed`` odometer: every job
  run (or served from cache) to a conclusion counts exactly once.
* ``_post_result`` dropped a fully-computed result on ANY non-409
  transport failure — one daemon blip and minutes of simulation went
  in the bin.  The worker now keeps heartbeating and retries the post
  (bounded) until it lands, it is fenced out, the job turns terminal
  elsewhere, or the budget runs dry.

The max-jobs tests drive the real ``run()`` loop against an in-process
scripted fake client; the post-retry tests drive ``_post_result``
against a real flaky HTTP server (the ``tests/test_client_retry.py``
pattern) through a real :class:`ServeClient` with its own transparent
retry disabled, so only the *worker-level* policy is under test.
"""

import http.server
import json
import threading

import pytest

from repro.errors import CacheMissError, DeadlockError
from repro.serve import ChaosHooks, ServeWorker
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.worker import RETRY_POST_STATUSES


# -- satellite 1: the --max-jobs odometer --------------------------------


class FakeClient:
    """Scripted duck-typed stand-in for :class:`ServeClient`.

    ``lease()`` pops one pre-scripted grant per call (empty once the
    script runs dry) and counts every poll; posts are recorded, never
    transported.  The fleet cache always misses.
    """

    def __init__(self, grants):
        self.grants = list(grants)
        self.lease_calls = 0
        self.failures_posted = []
        self.results_posted = []

    def lease(self, worker, max_jobs=1, wait=0.0):
        self.lease_calls += 1
        if self.grants:
            return {"leases": [self.grants.pop(0)]}
        return {"leases": []}

    def heartbeat(self, job_id, worker, fence):
        return {"id": job_id, "state": "running"}

    def cache_fetch(self, key, salt=None):
        raise CacheMissError(f"no entry for {key!r}")

    def cache_publish(self, key, blob, worker="", job_id=""):
        return {"key": key, "stored": True}

    def post_result(self, job_id, worker, fence, result,
                    exec_seconds=0.0, cache=None, cached=False):
        self.results_posted.append(job_id)
        self.cached_flags = getattr(self, "cached_flags", []) + [cached]
        return {"id": job_id, "state": "done"}

    def post_failure(self, job_id, worker, fence, error,
                     exit_code=None, transient=False):
        self.failures_posted.append(job_id)
        return {"id": job_id, "state": "queued"}


def _grant(n, fence=1):
    return {"id": f"j{n}", "spec": {"workload": "va"}, "fence": fence,
            "lease_ttl": 30.0, "assignments": 1}


def _worker(client, **kwargs):
    kwargs.setdefault("max_jobs", 2)
    kwargs.setdefault("poll_wait", 0.0)
    kwargs.setdefault("heartbeat_interval", 60.0)  # never fires in-test
    kwargs.setdefault("idle_exit", 0.0)  # pre-fix termination backstop
    kwargs.setdefault("chaos", ChaosHooks(""))
    logs = []
    worker = ServeWorker(client, name="wtest", log=logs.append, **kwargs)
    worker.logs = logs
    return worker


class TestMaxJobsOdometer:
    def test_all_failing_jobs_still_honor_max_jobs(self, monkeypatch):
        """THE regression: two leased jobs, both failing in simulation.
        The worker must exit via --max-jobs after the second, without a
        third lease poll.  Pre-fix (cap on ``completed``) it kept
        polling until the idle backstop and never logged the cap."""
        client = FakeClient([_grant(1), _grant(2)])
        worker = _worker(client, max_jobs=2)
        monkeypatch.setattr(
            ServeWorker, "_simulate",
            lambda self, spec: (_ for _ in ()).throw(
                DeadlockError("no runnable warp")))
        assert worker.run() == 0
        assert worker.executed == 2
        assert worker.failed == 2
        assert worker.completed == 0
        assert client.lease_calls == 2  # exited at the cap, no third poll
        assert client.failures_posted == ["j1", "j2"]
        assert any("executed 2 job(s)" in line for line in worker.logs)
        assert not any("idle" in line for line in worker.logs)

    def test_mixed_outcomes_count_once_each(self, monkeypatch):
        """One success + one failure reaches a cap of 2: the odometer
        counts every concluded job exactly once, whatever became of
        its post."""
        client = FakeClient([_grant(1), _grant(2)])
        worker = _worker(client, max_jobs=2)
        outcomes = iter(["ok", "fail"])

        def simulate(self, spec):
            if next(outcomes) == "fail":
                raise DeadlockError("no runnable warp")
            from repro.kernels import WORKLOAD_REGISTRY, run_workload
            workload = WORKLOAD_REGISTRY[spec.workload]()
            return run_workload(workload, spec.to_config()), 0.01

        monkeypatch.setattr(ServeWorker, "_simulate", simulate)
        assert worker.run() == 0
        assert worker.executed == 2
        assert worker.completed == 1
        assert worker.failed == 1
        assert client.lease_calls == 2

    def test_cache_served_jobs_count_toward_cap(self, monkeypatch):
        """A job served from the fleet cache never simulates but is
        still one executed job for the cap."""
        from repro.kernels import WORKLOAD_REGISTRY, run_workload
        from repro.serve.jobs import JobSpec, result_blob, result_from_blob

        spec = JobSpec.from_payload({"workload": "va"})
        result = run_workload(WORKLOAD_REGISTRY["va"](), spec.to_config())
        blob = result_blob(result)

        client = FakeClient([_grant(1)])
        client.cache_fetch = lambda key, salt=None: blob
        worker = _worker(client, max_jobs=1)
        monkeypatch.setattr(
            ServeWorker, "_simulate",
            lambda self, spec: (_ for _ in ()).throw(
                AssertionError("must not simulate on a cache hit")))
        assert worker.run() == 0
        assert worker.executed == 1
        assert worker.cache_hits == 1
        assert worker.completed == 1
        assert client.results_posted == ["j1"]
        # The post carries the cache-serve marker, so the daemon books
        # it under serve.jobs.cache_hits, not serve.jobs.executed.
        assert client.cached_flags == [True]
        # Sanity: the blob the fake served really is a full result.
        assert (result_from_blob(blob).buffers_digest
                == result.buffers_digest)

    def test_no_cache_fetch_opt_out_always_simulates(self, monkeypatch):
        """``--no-cache-fetch`` (fetch_cache=False): the worker never
        probes the store, even when an entry exists."""
        client = FakeClient([_grant(1)])

        def unexpected_fetch(key, salt=None):
            raise AssertionError("must not probe the cache when opted out")

        client.cache_fetch = unexpected_fetch
        worker = _worker(client, max_jobs=1, fetch_cache=False)
        simulated = []

        def simulate(self, spec):
            simulated.append(spec.workload)
            from repro.kernels import WORKLOAD_REGISTRY, run_workload
            workload = WORKLOAD_REGISTRY[spec.workload]()
            return run_workload(workload, spec.to_config()), 0.01

        monkeypatch.setattr(ServeWorker, "_simulate", simulate)
        assert worker.run() == 0
        assert simulated == ["va"]
        assert worker.cache_hits == 0
        assert worker.completed == 1


# -- satellite 2: result-post retry --------------------------------------


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Answers per the server's script; counts every arrival."""

    def _serve(self):
        server = self.server
        server.hits += 1
        status = server.script.pop(0) if server.script else "200"
        if status == "reset":
            self.connection.close()
            return
        body = json.dumps({"id": "j1", "state": "done"}
                          if int(status) < 400 else
                          {"error": f"scripted {status}"}).encode()
        self.send_response(int(status))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *args):  # keep pytest output clean
        pass


@pytest.fixture
def flaky():
    """A scripted server; yields (server, make_worker)."""
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                             _FlakyHandler)
    server.script = []
    server.hits = 0
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def make_worker(**kwargs):
        # max_retries=0: the client's transparent retry is OFF, so
        # every re-post observed by the server is the *worker's* doing.
        client = ServeClient(host="127.0.0.1",
                             port=server.server_address[1],
                             timeout=5.0, max_retries=0)
        kwargs.setdefault("result_post_retries", 4)
        kwargs.setdefault("chaos", ChaosHooks(""))
        logs = []
        worker = ServeWorker(client, name="wtest", log=logs.append,
                             **kwargs)
        worker.logs = logs
        sleeps = []
        worker._sleep = sleeps.append  # no real waiting in tests
        worker.sleeps = sleeps
        return worker

    try:
        yield server, make_worker
    finally:
        server.shutdown()
        server.server_close()


PAYLOAD = {"schema": 1, "workload": "va", "buffers_digest": "d" * 64}


class TestResultPostRetry:
    def test_transient_failures_retry_until_delivered(self, flaky):
        """THE regression: a computed result must survive daemon blips.
        Two transport failures then success — pre-fix the first error
        dropped the result (failed=1, one hit); now it lands."""
        server, make_worker = flaky
        server.script = ["reset", "500", "200"]
        worker = make_worker()
        assert worker._post_result("j1", 1, PAYLOAD, 0.5) is True
        assert server.hits == 3
        assert worker.completed == 1
        assert worker.failed == 0
        assert len(worker.sleeps) == 2  # backed off between re-posts

    def test_backoff_decays_and_respects_budget(self, flaky):
        """All-transient script: the worker posts 1 + budget times with
        doubling (capped) backoff, then gives the result up as lost."""
        server, make_worker = flaky
        server.script = ["503"] * 10
        worker = make_worker(result_post_retries=3)
        assert worker._post_result("j1", 1, PAYLOAD, 0.5) is False
        assert server.hits == 4  # initial + 3 retries
        assert worker.failed == 1
        assert worker.completed == 0
        assert worker.sleeps == [0.2, 0.4, 0.8]
        assert any("result lost" in line for line in worker.logs)

    def test_fence_rejection_drops_immediately(self, flaky):
        """409 is deterministic — the job moved on; no retry burned."""
        server, make_worker = flaky
        server.script = ["409", "200"]
        worker = make_worker()
        assert worker._post_result("j1", 1, PAYLOAD, 0.5) is False
        assert server.hits == 1
        assert worker.fenced_drops == 1
        assert worker.sleeps == []

    def test_salt_skew_reposts_once_without_blob(self, flaky):
        """412 condemns only the cache blob: the worker strips it and
        the very next post (same JSON payload) succeeds."""
        server, make_worker = flaky
        server.script = ["412", "200"]
        worker = make_worker()
        blob = {"encoding": "pickle+base64", "salt": "s", "digest": "d",
                "size": 3, "data": "AAAA"}
        assert worker._post_result("j1", 1, PAYLOAD, 0.5,
                                   cache=blob) is True
        assert server.hits == 2
        assert worker.completed == 1
        assert worker.sleeps == []  # not a backoff retry

    def test_retry_statuses_cover_transport_loss(self):
        """Status 0 (unreachable / reset) must stay retryable — it is
        exactly the daemon-restart window satellite 2 is about."""
        assert 0 in RETRY_POST_STATUSES
        assert 409 not in RETRY_POST_STATUSES
        assert 412 not in RETRY_POST_STATUSES
