"""Tests for the dynamic-energy model (Section 4.3 discussion)."""

import pytest

from repro.core.policy import CompactionPolicy
from repro.core.stats import CompactionStats
from repro.energy import (
    EnergyBreakdown,
    energy_all_policies,
    energy_breakdown,
    energy_savings_pct,
)


def _divergent_stats(masks=(0xF0F0, 0xAAAA, 0x00FF, 0x1111), copies=50):
    stats = CompactionStats()
    for mask in masks * copies:
        stats.record(mask, 16)
    return stats


def _coherent_stats(copies=100):
    stats = CompactionStats()
    for _ in range(copies):
        stats.record(0xFFFF, 16)
    return stats


class TestEnergyBreakdown:
    def test_components_positive(self):
        breakdown = energy_breakdown(_divergent_stats(), CompactionPolicy.BCC)
        assert breakdown.alu > 0
        assert breakdown.register_file > 0
        assert breakdown.control > 0
        assert breakdown.crossbar == 0.0  # BCC has no crossbars

    def test_scc_pays_crossbar(self):
        breakdown = energy_breakdown(_divergent_stats(), CompactionPolicy.SCC)
        assert breakdown.crossbar > 0.0

    def test_total_is_sum(self):
        breakdown = energy_breakdown(_divergent_stats(), CompactionPolicy.IVB)
        assert breakdown.total == pytest.approx(
            breakdown.alu + breakdown.register_file + breakdown.crossbar
            + breakdown.control)

    def test_as_dict_keys(self):
        d = energy_breakdown(_divergent_stats(), CompactionPolicy.RAW).as_dict()
        assert set(d) == {"alu", "register_file", "crossbar", "control", "total"}


class TestPaperSection43Claims:
    def test_bcc_saves_energy_on_divergent_code(self):
        # "BCC is expected to provide both a performance advantage and
        # energy savings given its simple control logic."
        assert energy_savings_pct(_divergent_stats(), CompactionPolicy.BCC) > 10.0

    def test_bcc_saves_rf_energy_specifically(self):
        stats = _divergent_stats()
        ivb = energy_breakdown(stats, CompactionPolicy.IVB)
        bcc = energy_breakdown(stats, CompactionPolicy.BCC)
        assert bcc.register_file < ivb.register_file

    def test_scc_keeps_baseline_fetch_energy(self):
        # Paper Section 4.2: no operand-fetch bandwidth savings for SCC.
        stats = _divergent_stats()
        scc = energy_breakdown(stats, CompactionPolicy.SCC)
        ivb = energy_breakdown(stats, CompactionPolicy.IVB)
        assert scc.register_file == ivb.register_file

    def test_scc_alu_energy_lowest(self):
        stats = _divergent_stats()
        energies = energy_all_policies(stats)
        assert energies[CompactionPolicy.SCC].alu <= min(
            energies[p].alu for p in CompactionPolicy)

    def test_scc_control_higher_than_bcc(self):
        stats = _divergent_stats()
        assert (energy_breakdown(stats, CompactionPolicy.SCC).control
                > energy_breakdown(stats, CompactionPolicy.BCC).control)

    def test_coherent_code_no_savings(self):
        stats = _coherent_stats()
        assert energy_savings_pct(stats, CompactionPolicy.BCC) == pytest.approx(
            0.0, abs=2.0)
        # SCC on coherent code is a slight net loss (control overhead).
        assert energy_savings_pct(stats, CompactionPolicy.SCC) <= 0.0

    def test_empty_stats(self):
        assert energy_savings_pct(CompactionStats(), CompactionPolicy.SCC) == 0.0


class TestSwizzleAccounting:
    def test_swizzle_counter_feeds_crossbar_energy(self):
        no_swizzle = CompactionStats()
        no_swizzle.record(0xF0F0, 16)  # BCC-friendly: zero swizzles
        assert no_swizzle.scc_swizzles == 0
        swizzled = CompactionStats()
        swizzled.record(0xAAAA, 16)
        assert swizzled.scc_swizzles > 0
        assert energy_breakdown(swizzled, CompactionPolicy.SCC).crossbar > 0

    def test_swizzles_merge(self):
        a = CompactionStats()
        a.record(0xAAAA, 16)
        b = CompactionStats()
        b.record(0xAAAA, 16)
        a.merge(b)
        assert a.scc_swizzles == 2 * b.scc_swizzles
