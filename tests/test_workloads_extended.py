"""Functional verification of the extended workload suite.

Covers the Table 1 stand-ins added beyond the initial set: solvers
(Gauss, LU, Trd, FW, Path), signal/media (DCT8, FWHT, DWTH, SCnv,
Bsort, AES), and search/learning (Bsearch, BP, HMM, SRD).  Every test
runs the workload's host-reference check via ``run_workload``.
"""

import numpy as np
import pytest

from repro.gpu import GpuConfig
from repro.kernels import WORKLOAD_REGISTRY, run_workload
from repro.kernels.learn import backprop_layer, binary_search, hmm_viterbi, srad
from repro.kernels.signal import (
    aes_round,
    bitonic_sort,
    convolution,
    dct8,
    fwht,
    haar_dwt,
)
from repro.kernels.solvers import (
    floyd_warshall,
    gauss,
    lu_decompose,
    pathfinder,
    tridiagonal,
)

CONFIG = GpuConfig()


def _run(workload):
    return run_workload(workload, CONFIG, verify=True)


class TestSolvers:
    def test_gauss(self):
        result = _run(gauss(dim=16))
        assert result.workgroups > 0

    def test_gauss_divergence_from_shrinking_launches(self):
        result = _run(gauss(dim=16))
        assert result.simd_efficiency < 1.0

    def test_lu(self):
        result = _run(lu_decompose(dim=14))
        # The multiplier-column branch guarantees divergence.
        assert result.simd_efficiency < 0.95

    def test_tridiagonal_coherent(self):
        result = _run(tridiagonal(systems=64, size=8))
        assert result.simd_efficiency > 0.99

    def test_floyd_warshall(self):
        result = _run(floyd_warshall(num_vertices=12))
        assert result.simd_efficiency < 1.0

    def test_pathfinder(self):
        result = _run(pathfinder(cols=128, rows=4))
        assert result.instructions > 0


class TestSignal:
    def test_dct8(self):
        result = _run(dct8(blocks=64))
        assert result.simd_efficiency > 0.99

    def test_fwht(self):
        result = _run(fwht(groups=64))
        assert result.simd_efficiency > 0.99

    def test_haar_dwt(self):
        result = _run(haar_dwt(n=256, levels=3))
        assert result.simd_efficiency > 0.99

    def test_convolution(self):
        result = _run(convolution(n=256))
        assert result.simd_efficiency > 0.99

    def test_bitonic_sort(self):
        result = _run(bitonic_sort(n=128))
        # Half the lanes idle during every compare-and-swap pass.
        assert 0.4 < result.simd_efficiency < 0.8

    def test_bitonic_sort_requires_power_of_two(self):
        with pytest.raises(ValueError):
            bitonic_sort(n=100)

    def test_aes_memory_divergent(self):
        result = _run(aes_round(blocks=256))
        assert result.simd_efficiency > 0.99  # coherent control...
        assert result.memory_divergence > 2.0  # ...but divergent gathers


class TestLearn:
    def test_binary_search(self):
        result = _run(binary_search(num_keys=256, table_size=256))
        assert result.simd_efficiency < 1.0

    def test_backprop(self):
        result = _run(backprop_layer(neurons=128, inputs=12))
        assert result.simd_efficiency < 1.0

    def test_hmm(self):
        result = _run(hmm_viterbi(sequences=64, timesteps=6))
        assert result.simd_efficiency < 1.0

    def test_srad(self):
        result = _run(srad(dim=24))
        assert result.simd_efficiency < 1.0


class TestExtendedRegistry:
    def test_registry_covers_new_workloads(self):
        for name in ("gauss", "lu", "trd", "fw", "pathfinder", "dct8",
                     "fwht", "dwth", "scnv", "bsort", "aes", "bsearch",
                     "bp", "hmm", "srad"):
            assert name in WORKLOAD_REGISTRY

    def test_registry_size(self):
        assert len(WORKLOAD_REGISTRY) >= 50

    def test_categories_consistent(self):
        coherent_expected = {"trd", "dct8", "fwht", "dwth", "scnv", "aes"}
        for name in coherent_expected:
            assert WORKLOAD_REGISTRY[name]().category == "coherent", name


class TestGraphics:
    def test_fragment_shade_verifies(self):
        from repro.kernels.graphics import fragment_shade

        result = _run(fragment_shade(width_px=24, num_tris=8))
        # Edge-straddling warps give genuine fragment-quad divergence.
        assert result.simd_efficiency < 0.9

    def test_fragment_shade_registered(self):
        assert "glfrag" in WORKLOAD_REGISTRY

    def test_too_many_triangles_rejected(self):
        from repro.kernels.graphics import fragment_shade

        with pytest.raises(ValueError, match="31"):
            fragment_shade(num_tris=40)
