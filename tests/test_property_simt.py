"""Property-based differential testing of SIMT control flow.

Hypothesis generates random structured programs (nested if/else,
data-dependent loops with per-lane trip counts, predicated arithmetic);
each is executed three ways:

1. on the cycle-level simulator under the IVB baseline,
2. on the simulator under SCC (compaction must be functionally
   transparent — it only reorders lanes inside the ALU), and
3. by a scalar per-lane golden interpreter written directly in numpy.

All three must agree exactly, and the policies' ALU cycle counts must
be monotone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import CompactionPolicy
from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.isa.registers import FlagRef
from repro.isa.types import CmpOp, DType

WIDTH = 16
N_ITEMS = 64


@dataclass(frozen=True)
class Fma:
    mul: float
    add: float


@dataclass(frozen=True)
class Branch:
    bit: int  # condition: (gid >> bit) & 1 == 1
    then_ops: Tuple["Node", ...]
    else_ops: Tuple["Node", ...]


@dataclass(frozen=True)
class ValueBranch:
    threshold: float  # condition: acc < threshold
    then_ops: Tuple["Node", ...]
    else_ops: Tuple["Node", ...]


@dataclass(frozen=True)
class Loop:
    trip_mask: int  # per-lane trips: (gid & trip_mask) + 1
    body: Tuple["Node", ...]


Node = Union[Fma, Branch, ValueBranch, Loop]

_coeff = st.sampled_from([0.5, 1.0, 1.25, -0.75])
_addend = st.sampled_from([-1.0, 0.25, 1.0, 2.0])
_fma = st.builds(Fma, _coeff, _addend)


def _blocks(children):
    return st.lists(children, min_size=1, max_size=3).map(tuple)


_node = st.recursive(
    _fma,
    lambda children: st.one_of(
        st.builds(Branch, st.integers(0, 3), _blocks(children),
                  _blocks(children)),
        st.builds(ValueBranch, st.sampled_from([-0.5, 0.0, 1.0, 5.0]),
                  _blocks(children), _blocks(children)),
        st.builds(Loop, st.sampled_from([1, 3, 7]), _blocks(children)),
    ),
    max_leaves=8,
)
_programs = _blocks(_node)


class _Emitter:
    """Compile an AST into a kernel; also count emitted loops for flags."""

    def __init__(self, ops: Tuple[Node, ...]):
        self.b = KernelBuilder("prop", WIDTH)
        b = self.b
        self.gid = b.global_id()
        self.out_surf = b.surface_arg("out")
        self.acc = b.vreg(DType.F32)
        b.mov(self.acc, 1.0)
        self.tmp_i = b.vreg(DType.I32)
        self.trip = b.vreg(DType.I32)
        self.counter_pool = [b.vreg(DType.I32) for _ in range(8)]
        self.depth = 0
        self._emit_block(ops)
        addr = b.vreg(DType.I32)
        b.shl(addr, self.gid, 2)
        b.store(self.acc, addr, self.out_surf)
        self.program = b.finish()

    def _emit_block(self, ops: Tuple[Node, ...]) -> None:
        for op in ops:
            self._emit(op)

    def _emit(self, op: Node) -> None:
        b = self.b
        if isinstance(op, Fma):
            b.mad(self.acc, self.acc, op.mul, op.add)
        elif isinstance(op, Branch):
            b.shr(self.tmp_i, self.gid, op.bit)
            b.and_(self.tmp_i, self.tmp_i, 1)
            flag = b.cmp(CmpOp.NE, self.tmp_i, 0)
            with b.if_(flag):
                self._emit_block(op.then_ops)
                b.else_()
                self._emit_block(op.else_ops)
        elif isinstance(op, ValueBranch):
            flag = b.cmp(CmpOp.LT, self.acc, op.threshold)
            with b.if_(flag):
                self._emit_block(op.then_ops)
                b.else_()
                self._emit_block(op.else_ops)
        elif isinstance(op, Loop):
            if self.depth >= len(self.counter_pool):
                return  # depth cap: skip over-nested loops
            counter = self.counter_pool[self.depth]
            self.depth += 1
            b.and_(self.trip, self.gid, op.trip_mask)
            trips = b.vreg(DType.I32)
            b.add(trips, self.trip, 1)
            b.mov(counter, 0)
            b.do_()
            self._emit_block(op.body)
            b.add(counter, counter, 1)
            flag = b.cmp(CmpOp.LT, counter, trips, flag=FlagRef(1))
            b.while_(flag)
            self.depth -= 1
        else:  # pragma: no cover
            raise TypeError(op)


def _golden(ops: Tuple[Node, ...], gid: int) -> np.float32:
    """Scalar per-lane interpreter (the reference semantics)."""
    acc = np.float32(1.0)

    # Track loop depth the same way the emitter caps it.
    def run_with_depth(block, depth):
        nonlocal acc
        for op in block:
            if isinstance(op, Fma):
                acc = np.float32(acc * np.float32(op.mul) + np.float32(op.add))
            elif isinstance(op, Branch):
                taken = (gid >> op.bit) & 1
                run_with_depth(op.then_ops if taken else op.else_ops, depth)
            elif isinstance(op, ValueBranch):
                run_with_depth(op.then_ops if acc < np.float32(op.threshold)
                               else op.else_ops, depth)
            elif isinstance(op, Loop):
                if depth >= 8:
                    continue
                trips = (gid & op.trip_mask) + 1
                for _ in range(trips):
                    run_with_depth(op.body, depth + 1)

    run_with_depth(ops, 0)
    return acc


def _run_on_simulator(program, policy) -> Tuple[np.ndarray, dict]:
    out = np.zeros(N_ITEMS, dtype=np.float32)
    config = GpuConfig(num_eus=2, policy=policy)
    result = GpuSimulator(config).run(program, N_ITEMS, buffers={"out": out})
    return out, result.alu_stats.cycles


@settings(max_examples=30, deadline=None)
@given(_programs)
def test_simulator_matches_golden_interpreter(ops):
    program = _Emitter(ops).program
    out, _cycles = _run_on_simulator(program, CompactionPolicy.IVB)
    expected = np.array([_golden(ops, g) for g in range(N_ITEMS)],
                        dtype=np.float32)
    with np.errstate(all="ignore"):
        np.testing.assert_array_equal(out, expected)


@settings(max_examples=20, deadline=None)
@given(_programs)
def test_compaction_is_functionally_transparent(ops):
    program = _Emitter(ops).program
    out_ivb, _ = _run_on_simulator(program, CompactionPolicy.IVB)
    out_scc, _ = _run_on_simulator(program, CompactionPolicy.SCC)
    np.testing.assert_array_equal(out_ivb, out_scc)


@settings(max_examples=20, deadline=None)
@given(_programs)
def test_policy_cycles_monotone_on_random_programs(ops):
    program = _Emitter(ops).program
    _out, cycles = _run_on_simulator(program, CompactionPolicy.IVB)
    assert (cycles[CompactionPolicy.RAW] >= cycles[CompactionPolicy.IVB]
            >= cycles[CompactionPolicy.BCC] >= cycles[CompactionPolicy.SCC])
