"""Tests for the memory subsystem: caches, ports, SLM, hierarchy."""

import pytest

from repro.memory.cache import Cache, CacheStats, lines_for_access
from repro.memory.hierarchy import MemoryHierarchy, MemoryParams
from repro.memory.ports import BandwidthPort
from repro.memory.slm import SlmAllocation, SlmTiming


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache("t", 1024, 4)
        assert not cache.access(("s", 0))
        assert cache.access(("s", 0))

    def test_distinct_surfaces_do_not_alias(self):
        cache = Cache("t", 1024, 4)
        cache.access((0, 5))
        assert not cache.access((1, 5))

    def test_lru_eviction(self):
        cache = Cache("t", 2 * 64, 2)  # one set, two ways
        a, b, c = ("s", 0), ("s", 1), ("s", 2)
        # Force all into the same set by picking a single-set cache.
        assert cache.num_sets == 1
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a most recent
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)

    def test_perfect_cache_always_hits(self):
        cache = Cache("t", 64, 1, perfect=True)
        assert cache.access(("s", 12345))
        assert cache.stats.misses == 0

    def test_stats(self):
        cache = Cache("t", 1024, 4)
        cache.access(("s", 0))
        cache.access(("s", 0))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_empty_hit_rate(self):
        assert CacheStats().hit_rate == 1.0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("t", 100, 3)  # lines not divisible by assoc
        with pytest.raises(ValueError):
            Cache("t", 0, 1)

    def test_invalidate_all(self):
        cache = Cache("t", 1024, 4)
        cache.access(("s", 0))
        cache.invalidate_all()
        assert not cache.contains(("s", 0))


class TestLinesForAccess:
    def test_coalesced(self):
        # 16 consecutive 4-byte accesses fit one 64-byte line.
        offsets = [4 * i for i in range(16)]
        assert lines_for_access(offsets, 4) == (0,)

    def test_divergent(self):
        offsets = [128 * i for i in range(4)]
        assert lines_for_access(offsets, 4) == (0, 2, 4, 6)

    def test_straddling_access(self):
        assert lines_for_access([62], 4) == (0, 1)


class TestBandwidthPort:
    def test_serialization(self):
        port = BandwidthPort("dc", 1.0)
        assert port.grant(0) == 0.0
        assert port.grant(0) == 1.0
        assert port.grant(0) == 2.0

    def test_dc2_double_rate(self):
        port = BandwidthPort("dc", 2.0)
        assert port.grant(0) == 0.0
        assert port.grant(0) == 0.5

    def test_idle_port_starts_at_request_time(self):
        port = BandwidthPort("dc", 1.0)
        assert port.grant(100) == 100.0

    def test_throughput(self):
        port = BandwidthPort("dc", 1.0)
        for _ in range(10):
            port.grant(0)
        assert port.throughput(20) == 0.5

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            BandwidthPort("dc", 0.0)

    def test_reset(self):
        port = BandwidthPort("dc", 1.0)
        port.grant(5)
        port.reset()
        assert port.lines_transferred == 0
        assert port.grant(0) == 0.0


class TestSlmTiming:
    def test_conflict_free(self):
        slm = SlmTiming(latency=5, num_banks=16)
        offsets = [4 * i for i in range(16)]  # one word per bank
        assert slm.access_cycles(offsets, 0xFFFF) == 5

    def test_same_word_broadcast_free(self):
        slm = SlmTiming(latency=5, num_banks=16)
        offsets = [0] * 16
        assert slm.access_cycles(offsets, 0xFFFF) == 5

    def test_bank_conflicts_serialize(self):
        slm = SlmTiming(latency=5, num_banks=16)
        offsets = [64 * i for i in range(4)]  # all hit bank 0, distinct words
        assert slm.access_cycles(offsets, 0xF) == 5 + 3

    def test_disabled_lanes_ignored(self):
        slm = SlmTiming(latency=5, num_banks=16)
        offsets = [0, 64, 128, 192]
        assert slm.access_cycles(offsets, 0x1) == 5

    def test_conflict_accounting(self):
        slm = SlmTiming()
        slm.access_cycles([0, 64], 0x3)
        assert slm.conflict_cycles == 1

    def test_allocation_padding(self):
        assert SlmAllocation(5).data.size == 8
        assert SlmAllocation(0).data.size >= 4


class TestMemoryHierarchy:
    def _hierarchy(self, **kwargs):
        return MemoryHierarchy(MemoryParams(**kwargs))

    def test_l3_hit_latency(self):
        mem = self._hierarchy()
        mem.access(0, [(0, 0)])  # cold miss to warm the line
        done = mem.access(1000, [(0, 0)])
        assert done == 1000 + mem.params.l3_latency

    def test_miss_chains_latencies(self):
        mem = self._hierarchy()
        done = mem.access(0, [(0, 0)])
        params = mem.params
        expected = params.l3_latency + params.llc_latency + params.dram_latency
        assert done == expected

    def test_llc_hit_cheaper_than_dram(self):
        mem = self._hierarchy(l3_size=64 * 64, llc_size=2 * 1024 * 1024)
        # Touch enough lines to evict from tiny L3 while staying in LLC.
        for i in range(200):
            mem.access(0, [(0, i)])
        miss_l3 = mem.access(10_000, [(0, 0)])
        assert miss_l3 == 10_000 + mem.params.l3_latency + mem.params.llc_latency

    def test_dc_bandwidth_serializes_lines(self):
        # Warm the lines so the data-cluster port is the only constraint.
        lines = [(0, 0), (0, 100), (0, 200), (0, 300)]
        mem = self._hierarchy(dc_lines_per_cycle=1.0)
        mem.access(0, lines)
        mem.reset_ports()
        done_one = mem.access(1000, [(0, 0)])
        mem.reset_ports()
        done_four = mem.access(1000, lines)
        assert done_four == done_one + 3  # three extra port slots

    def test_dc2_faster_for_divergent_access(self):
        lines = [(0, i * 10) for i in range(8)]
        slow = self._hierarchy(dc_lines_per_cycle=1.0)
        fast = self._hierarchy(dc_lines_per_cycle=2.0)
        for mem in (slow, fast):
            mem.access(0, lines)  # warm the caches
            mem.reset_ports()
        assert fast.access(1000, lines) < slow.access(1000, lines)

    def test_perfect_l3_never_misses(self):
        mem = self._hierarchy(perfect_l3=True)
        done = mem.access(0, [(0, 999)])
        assert done == mem.params.l3_latency
        assert mem.l3.stats.misses == 0

    def test_memory_divergence_metric(self):
        mem = self._hierarchy()
        mem.access(0, [(0, 0)])
        mem.access(0, [(0, 1), (0, 2), (0, 3)])
        assert mem.memory_divergence() == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryParams(l3_latency=0).validate()
        with pytest.raises(ValueError):
            MemoryParams(dc_lines_per_cycle=0).validate()

    def test_reset_ports(self):
        mem = self._hierarchy()
        mem.access(0, [(0, 0)])
        mem.reset_ports()
        assert mem.data_cluster.lines_transferred == 0
