"""Tests for workgroup dispatch, SLM sharing, and barriers."""

import numpy as np
import pytest

from repro.gpu import GpuConfig, GpuSimulator
from repro.gpu.dispatch import bind_surfaces
from repro.isa.builder import KernelBuilder
from repro.isa.types import CmpOp, DType


def _slm_exchange_program(local_size=32, simd_width=16):
    """Each work-item writes its lid to SLM; after a barrier it reads its
    neighbour's slot (lid XOR 1) and stores the value to memory."""
    b = KernelBuilder("slm_xchg", simd_width, slm_bytes=local_size * 4)
    gid = b.global_id()
    lid = b.local_id()
    out = b.surface_arg("out")
    slm_addr = b.vreg(DType.I32)
    b.shl(slm_addr, lid, 2)
    b.store_slm(lid, slm_addr)
    b.barrier()
    partner = b.vreg(DType.I32)
    b.xor(partner, lid, 1)
    b.shl(partner, partner, 2)
    got = b.vreg(DType.I32)
    b.load_slm(got, partner)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(got, addr, out)
    return b.finish()


class TestWorkgroups:
    def test_slm_exchange_across_threads(self):
        # local_size=32 at SIMD16 -> two threads per workgroup must
        # exchange through SLM, proving the barrier orders their stores.
        prog = _slm_exchange_program(local_size=32)
        n = 128
        out = np.zeros(n, dtype=np.int32)
        GpuSimulator(GpuConfig()).run(prog, n, local_size=32,
                                      buffers={"out": out})
        lids = np.arange(n) % 32
        np.testing.assert_array_equal(out, lids ^ 1)

    def test_workgroup_too_large_rejected(self):
        prog = _slm_exchange_program(local_size=32)
        out = np.zeros(256, dtype=np.int32)
        config = GpuConfig(threads_per_eu=1)
        with pytest.raises(ValueError, match="threads"):
            GpuSimulator(config).run(prog, 256, local_size=32,
                                     buffers={"out": out})

    def test_local_size_must_divide_simd(self):
        prog = _slm_exchange_program()
        out = np.zeros(64, dtype=np.int32)
        with pytest.raises(ValueError, match="multiple"):
            GpuSimulator(GpuConfig()).run(prog, 64, local_size=24,
                                          buffers={"out": out})

    def test_workgroup_count(self):
        prog = _slm_exchange_program(local_size=32)
        out = np.zeros(160, dtype=np.int32)
        result = GpuSimulator(GpuConfig()).run(prog, 160, local_size=32,
                                               buffers={"out": out})
        assert result.workgroups == 5

    def test_many_workgroups_round_robin_over_eus(self):
        prog = _slm_exchange_program(local_size=32)
        n = 32 * 24
        out = np.zeros(n, dtype=np.int32)
        result = GpuSimulator(GpuConfig(num_eus=6)).run(
            prog, n, local_size=32, buffers={"out": out})
        assert result.workgroups == 24
        lids = np.arange(n) % 32
        np.testing.assert_array_equal(out, lids ^ 1)


class TestLocalIds:
    def test_lid_resets_per_workgroup(self):
        b = KernelBuilder("lid", 16)
        gid = b.global_id()
        lid = b.local_id()
        out = b.surface_arg("out")
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        b.store(lid, addr, out)
        prog = b.finish()
        n = 96
        out = np.zeros(n, dtype=np.int32)
        GpuSimulator(GpuConfig()).run(prog, n, local_size=32,
                                      buffers={"out": out})
        np.testing.assert_array_equal(out, np.arange(n) % 32)


class TestBindSurfaces:
    def test_order_follows_declaration(self):
        b = KernelBuilder("k", 16)
        b.surface_arg("b")
        b.surface_arg("a")
        prog = b.finish()
        buf_a = np.zeros(4, dtype=np.float32)
        buf_b = np.ones(4, dtype=np.float32)
        surfaces = bind_surfaces(prog, {"a": buf_a, "b": buf_b})
        assert surfaces[0].view(np.float32)[0] == 1.0  # "b" first

    def test_non_array_rejected(self):
        b = KernelBuilder("k", 16)
        b.surface_arg("x")
        prog = b.finish()
        with pytest.raises(TypeError):
            bind_surfaces(prog, {"x": [1, 2, 3]})

    def test_non_contiguous_rejected(self):
        b = KernelBuilder("k", 16)
        b.surface_arg("x")
        prog = b.finish()
        arr = np.zeros((8, 8), dtype=np.float32)[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            bind_surfaces(prog, {"x": arr})

    def test_writes_visible_to_caller(self):
        b = KernelBuilder("k", 16)
        gid = b.global_id()
        out = b.surface_arg("out")
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        b.store(gid, addr, out)
        prog = b.finish()
        out_buf = np.zeros(16, dtype=np.int32)
        GpuSimulator(GpuConfig()).run(prog, 16, buffers={"out": out_buf})
        np.testing.assert_array_equal(out_buf, np.arange(16))


class TestBarrierDivergenceInteraction:
    def test_barrier_with_unequal_arrival_times(self):
        # One thread of the workgroup does heavy EM work before the
        # barrier; the barrier must still release everyone.
        b = KernelBuilder("skew", 16, slm_bytes=64)
        gid = b.global_id()
        lid = b.local_id()
        out = b.surface_arg("out")
        heavy = b.cmp(CmpOp.LT, lid, 16)  # first thread only
        val = b.vreg(DType.F32)
        b.mov(val, 2.0)
        with b.if_(heavy):
            for _ in range(8):
                b.sqrt(val, val)
        b.barrier()
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        b.store(val, addr, out)
        prog = b.finish()
        n = 64
        out = np.zeros(n, dtype=np.float32)
        result = GpuSimulator(GpuConfig()).run(prog, n, local_size=32,
                                               buffers={"out": out})
        assert result.total_cycles > 0
        assert (out[np.arange(n) % 32 >= 16] == 2.0).all()
