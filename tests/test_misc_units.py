"""Additional unit coverage: arbiter policy, pipe utilization, GRF edge
cases, thread state, and the hierarchy's DRAM port behaviour."""

import numpy as np
import pytest

from repro.core.policy import CompactionPolicy
from repro.eu.grf import RegisterFile
from repro.eu.thread import EUThread, ThreadState
from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.isa.registers import RegRef
from repro.isa.types import DType
from repro.memory.hierarchy import MemoryHierarchy, MemoryParams


def _counter_program(work=32):
    b = KernelBuilder("ctr", 16)
    gid = b.global_id()
    out = b.surface_arg("out")
    acc = b.vreg(DType.F32)
    b.mov(acc, 1.0)
    for _ in range(work):
        b.mad(acc, acc, 1.0001, 0.5)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(acc, addr, out)
    return b.finish()


class TestArbiterPolicies:
    def _run(self, arbiter):
        prog = _counter_program()
        out = np.zeros(512, dtype=np.float32)
        config = GpuConfig(arbiter=arbiter)
        return GpuSimulator(config).run(prog, 512, buffers={"out": out}), out

    def test_both_policies_functionally_identical(self):
        _ra, out_a = self._run("rotating")
        _rb, out_b = self._run("fixed")
        np.testing.assert_array_equal(out_a, out_b)

    def test_both_policies_complete(self):
        ra, _ = self._run("rotating")
        rb, _ = self._run("fixed")
        assert ra.total_cycles > 0 and rb.total_cycles > 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="arbiter"):
            GpuConfig(arbiter="lottery").validate()


class TestPipeUtilization:
    def test_fpu_dominates_compute_kernel(self):
        prog = _counter_program()
        out = np.zeros(512, dtype=np.float32)
        result = GpuSimulator(GpuConfig()).run(prog, 512, buffers={"out": out})
        util = result.pipe_utilization()
        assert util["fpu"] > util["em"]
        assert util["fpu"] > util["send"]

    def test_scc_lowers_fpu_occupancy_on_divergent_kernel(self):
        from repro.kernels.micro import predicated_pattern
        from repro.kernels.workload import run_workload

        ivb = run_workload(predicated_pattern(0x1111, n=512),
                           GpuConfig(policy=CompactionPolicy.IVB))
        scc = run_workload(predicated_pattern(0x1111, n=512),
                           GpuConfig(policy=CompactionPolicy.SCC))
        assert scc.fpu_busy_cycles < ivb.fpu_busy_cycles

    def test_empty_result_division_guard(self):
        from repro.gpu.results import KernelRunResult
        from repro.core.stats import CompactionStats

        result = KernelRunResult(
            kernel="x", policy=CompactionPolicy.IVB, total_cycles=0,
            instructions=0, alu_stats=CompactionStats(),
            simd_stats=CompactionStats(), l3_hits=0, l3_accesses=0,
            llc_hits=0, llc_accesses=0, dc_lines=0, dram_lines=0,
            memory_messages=0, lines_requested=0, workgroups=0)
        assert result.pipe_utilization() == {"fpu": 0.0, "em": 0.0, "send": 0.0}


class TestGrfEdgeCases:
    def test_simd32_spans_four_registers(self):
        grf = RegisterFile()
        ref = RegRef(8, DType.F32)
        grf.write(ref, 32, np.arange(32, dtype=np.float32), (1 << 32) - 1)
        np.testing.assert_array_equal(grf.read(RegRef(11, DType.F32), 8),
                                      np.arange(24, 32))

    def test_f64_simd16_spans_four_registers(self):
        grf = RegisterFile()
        ref = RegRef(0, DType.F64)
        grf.write(ref, 16, np.arange(16, dtype=np.float64), 0xFFFF)
        np.testing.assert_array_equal(grf.read(ref, 16), np.arange(16))

    def test_partial_f64_write(self):
        grf = RegisterFile()
        ref = RegRef(0, DType.F64)
        grf.write(ref, 8, np.full(8, 1.5, np.float64), 0xFF)
        grf.write(ref, 8, np.full(8, 9.0, np.float64), 0x0F)
        values = grf.read(ref, 8)
        np.testing.assert_array_equal(values[:4], 9.0)
        np.testing.assert_array_equal(values[4:], 1.5)


class TestThreadState:
    def _thread(self):
        return EUThread(thread_id=0, program=_counter_program(),
                        dispatch_mask=0xFFFF)

    def test_initial_state(self):
        thread = self._thread()
        assert thread.state is ThreadState.ACTIVE
        assert thread.pc == 0
        assert not thread.done

    def test_advance_fallthrough_and_jump(self):
        thread = self._thread()
        thread.advance(None)
        assert thread.pc == 1
        thread.advance(5)
        assert thread.pc == 5

    def test_invalid_jump_rejected(self):
        thread = self._thread()
        with pytest.raises(RuntimeError, match="invalid pc"):
            thread.advance(10_000)

    def test_pred_mask_negation(self):
        thread = self._thread()
        thread.flags[0] = 0x00FF
        from repro.isa.instruction import Instruction
        from repro.isa.opcodes import Opcode
        from repro.isa.registers import FlagRef

        inst = Instruction(opcode=Opcode.IF, width=16, pred=FlagRef(0))
        assert thread.pred_mask(inst) == 0x00FF
        inst_neg = Instruction(opcode=Opcode.IF, width=16,
                               pred=FlagRef(0, negate=True))
        assert thread.pred_mask(inst_neg) == 0xFF00


class TestDramPort:
    def test_dram_bandwidth_serializes_misses(self):
        params = MemoryParams(dram_lines_per_cycle=0.25)
        mem = MemoryHierarchy(params)
        # Two cold lines: second DRAM transfer waits for the port.
        first = mem.access(0, [(0, 0)])
        second = mem.access(0, [(0, 100)])
        assert second > first

    def test_dram_lines_counted(self):
        mem = MemoryHierarchy(MemoryParams())
        mem.access(0, [(0, 0), (0, 10)])
        assert mem.dram.lines_transferred == 2
        mem.access(100_000, [(0, 0)])  # now cached somewhere
        assert mem.dram.lines_transferred == 2
