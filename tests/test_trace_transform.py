"""Tests for trace transformations (widen/narrow/subsample)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quads import popcount
from repro.trace import (
    TraceEvent,
    narrow_trace,
    profile_trace,
    subsample_trace,
    trace_events,
    widen_trace,
)

masks16 = st.integers(min_value=0, max_value=0xFFFF)


class TestWiden:
    def test_pairs_fuse(self):
        events = [TraceEvent(16, 0x00FF), TraceEvent(16, 0xFF00)]
        wide = list(widen_trace(events, 2))
        assert wide == [TraceEvent(32, 0xFF0000FF)]

    def test_tail_group_padded(self):
        wide = list(widen_trace([TraceEvent(16, 0x000F)], 2))
        assert wide == [TraceEvent(32, 0x000F)]

    def test_factor_one_identity(self):
        events = [TraceEvent(16, 0xAAAA)]
        assert list(widen_trace(events, 1)) == events

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            list(widen_trace([], 3))

    def test_unsupported_fused_width(self):
        with pytest.raises(ValueError):
            list(widen_trace([TraceEvent(32, 0x1)], 2))  # SIMD64 unsupported

    def test_shapes_fuse_independently(self):
        events = [TraceEvent(16, 0x1), TraceEvent(8, 0x1),
                  TraceEvent(16, 0x2), TraceEvent(8, 0x2)]
        wide = sorted(widen_trace(events, 2), key=lambda e: e.width)
        assert wide[0].width == 16 and wide[0].mask == 0x201
        assert wide[1].width == 32 and wide[1].mask == 0x20001

    @given(st.lists(masks16, min_size=1, max_size=20))
    def test_active_lanes_preserved(self, masks):
        events = [TraceEvent(16, m) for m in masks]
        total = sum(popcount(m) for m in masks)
        widened = list(widen_trace(events, 2))
        assert sum(popcount(e.mask) for e in widened) == total


class TestNarrow:
    def test_split(self):
        narrow = list(narrow_trace([TraceEvent(32, 0xFF0000FF)], 2))
        assert narrow == [TraceEvent(16, 0x00FF), TraceEvent(16, 0xFF00)]

    def test_round_trip_full_groups(self):
        events = [TraceEvent(16, 0x1234), TraceEvent(16, 0xABCD)]
        assert list(narrow_trace(widen_trace(events, 2), 2)) == events

    def test_indivisible_width(self):
        with pytest.raises(ValueError):
            list(narrow_trace([TraceEvent(4, 0xF)], 8))


class TestSubsample:
    def test_keep_every_two(self):
        events = [TraceEvent(16, m) for m in (1, 2, 3, 4, 5)]
        kept = list(subsample_trace(events, 2))
        assert [e.mask for e in kept] == [1, 3, 5]

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            list(subsample_trace([], 0))


class TestConclusionClaim:
    def test_wider_machines_gain_more(self):
        """Paper conclusion: intra-warp compaction benefit grows with
        SIMD width on the same divergence behaviour."""
        base = list(trace_events("luxmark_sky"))
        reductions = []
        for factor in (1, 2, 4):
            profile = profile_trace("w", widen_trace(base, factor))
            reductions.append(profile.scc_reduction_pct)
        assert reductions[0] < reductions[1] < reductions[2]
