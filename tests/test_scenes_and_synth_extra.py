"""Extra coverage: ray-tracing scenes, node packing, synth edge cases."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels.raytracing.scenes import SCENES, build_scene, scene_names
from repro.kernels.raytracing.tracer import NODE_BYTES, pack_nodes
from repro.trace.synth import PatternFamily, SyntheticProfile, generate_trace_list


class TestScenes:
    def test_four_scenes(self):
        assert set(scene_names()) == {"conf", "al", "bl", "wm"}

    @pytest.mark.parametrize("name", sorted(SCENES))
    def test_scene_arrays_consistent(self, name):
        spec = SCENES[name]
        scene = build_scene(spec)
        for key in ("cx", "cy", "cz", "cr"):
            assert scene[key].shape == (spec.num_spheres,)
            assert scene[key].dtype == np.float32
        assert (scene["cr"] > 0).all()
        assert (scene["cz"] >= spec.depth_near).all()
        assert (scene["cz"] <= spec.depth_far).all()

    def test_scene_generation_deterministic(self):
        a = build_scene(SCENES["bl"])
        b = build_scene(SCENES["bl"])
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_scenes_differ(self):
        a = build_scene(SCENES["al"])
        b = build_scene(SCENES["wm"])
        assert not np.array_equal(a["cx"][:12], b["cx"][:12])


class TestNodePacking:
    def test_line_sized_nodes(self):
        assert NODE_BYTES == 64  # one node per cache line (BVH-like)

    def test_layout(self):
        scene = build_scene(SCENES["conf"])
        nodes = pack_nodes(scene).reshape(-1, NODE_BYTES // 4)
        np.testing.assert_array_equal(nodes[:, 0], scene["cx"])
        np.testing.assert_array_equal(nodes[:, 1], scene["cy"])
        np.testing.assert_array_equal(nodes[:, 2], scene["cz"])
        np.testing.assert_array_equal(nodes[:, 3], scene["cr"])
        np.testing.assert_array_equal(nodes[:, 4:], 0.0)  # padding


class TestSynthEdgeCases:
    def _profile(self, **overrides):
        base = dict(
            name="edge",
            num_instructions=50,
            width_mix=((16, 1.0),),
            active_histogram=((4, 1.0),),
            pattern_weights=((PatternFamily.SCATTERED, 1.0),),
            seed=3,
        )
        base.update(overrides)
        return SyntheticProfile(**base)

    def test_zero_active_clamped_to_one(self):
        events = generate_trace_list(
            self._profile(active_histogram=((0, 1.0),)))
        assert all(bin(e.mask).count("1") == 1 for e in events)

    def test_active_above_width_clipped(self):
        events = generate_trace_list(
            self._profile(width_mix=((8, 1.0),),
                          active_histogram=((16, 1.0),)))
        assert all(e.mask == 0xFF for e in events)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            self._profile(width_mix=((12, 1.0),))

    def test_name_affects_stream(self):
        a = generate_trace_list(self._profile(name="a"))
        b = generate_trace_list(self._profile(name="b"))
        assert a != b  # the name seeds the generator alongside `seed`

    @given(st.integers(min_value=1, max_value=16))
    def test_every_active_count_generates(self, active):
        events = generate_trace_list(
            self._profile(active_histogram=((active, 1.0),),
                          num_instructions=10))
        assert all(bin(e.mask).count("1") == active for e in events)
