"""Register-footprint checks (paper Section 5.3's SIMD8-vs-SIMD16 note).

The paper explains that the compiler emits SIMD8 ray-tracing kernels
because SIMD16 instructions pair registers: "SIMD8 kernels have access
to all 128 registers while SIMD16 kernels have only 64" operand pairs.
Our builder reproduces the mechanism — the same kernel's register
footprint roughly doubles at SIMD16 — and the GRF allocator enforces
the 128-register budget.
"""

import pytest

from repro.isa.builder import KernelBuilder
from repro.isa.registers import NUM_GRF_REGS
from repro.isa.types import DType
from repro.kernels.raytracing import ambient_occlusion


class TestFootprintScaling:
    def test_same_kernel_doubles_at_simd16(self):
        ao8 = ambient_occlusion("al", width_px=8, simd_width=8,
                                ao_samples=2).program
        ao16 = ambient_occlusion("al", width_px=8, simd_width=16,
                                 ao_samples=2).program
        assert ao16.num_regs == pytest.approx(2 * ao8.num_regs, abs=4)

    def test_footprint_within_grf(self):
        for width in (8, 16):
            program = ambient_occlusion("al", width_px=8, simd_width=width,
                                        ao_samples=2).program
            assert program.num_regs <= NUM_GRF_REGS

    def test_allocator_budget_is_width_dependent(self):
        def fill(width):
            b = KernelBuilder("fill", width)
            count = 0
            try:
                while True:
                    b.vreg(DType.F32)
                    count += 1
            except ValueError:
                return count

        # SIMD8 F32 vregs take one register, SIMD16 two: half the budget.
        assert fill(8) == NUM_GRF_REGS
        assert fill(16) == NUM_GRF_REGS // 2
        assert fill(32) == NUM_GRF_REGS // 4

    def test_f64_halves_the_budget_again(self):
        b = KernelBuilder("f64", 16)
        count = 0
        try:
            while True:
                b.vreg(DType.F64)
                count += 1
        except ValueError:
            pass
        assert count == NUM_GRF_REGS // 4


class TestSimd32Pressure:
    def test_ao_kernel_cannot_build_at_simd32(self):
        """The paper's register-pressure story, mechanically enforced:
        the AO ray tracer's footprint exceeds the GRF at SIMD32."""
        with pytest.raises(ValueError, match="exhausted"):
            ambient_occlusion("bl", width_px=8, simd_width=32, ao_samples=2)
