"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.trace.format import TraceEvent, write_trace


class TestMaskCommand:
    def test_f0f0(self, capsys):
        assert main(["mask", "F0F0"]) == 0
        out = capsys.readouterr().out
        assert "0xF0F0" in out
        assert "suppressed quads: [0, 2]" in out

    def test_figure7_mask(self, capsys):
        assert main(["mask", "AAAA"]) == 0
        out = capsys.readouterr().out
        assert "2 cycles, 4 swizzles" in out

    def test_simd8(self, capsys):
        assert main(["mask", "0F", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "SIMD8" in out


class TestListCommand:
    def test_lists_workloads_and_traces(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out
        assert "luxmark_sky" in out
        assert "simulator" in out and "trace" in out


class TestRunCommand:
    def test_run_small_workload(self, capsys):
        assert main(["run", "va", "--policy", "scc"]) == 0
        out = capsys.readouterr().out
        assert "total_cycles" in out
        assert "EU-cycle reduction" in out

    def test_unknown_workload(self, capsys):
        assert main(["run", "nonexistent"]) == 2

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            main(["run", "va", "--policy", "tbc"])

    def test_json_payload_matches_serve_schema(self, tmp_path, capsys):
        """`run --json` emits the daemon's typed result payload."""
        import json

        out_path = tmp_path / "result.json"
        assert main(["run", "va", "--policy", "scc",
                     "--json", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        from repro.serve.jobs import RESULT_SCHEMA

        assert payload["schema"] == RESULT_SCHEMA
        assert payload["workload"] == "va"
        assert payload["policy"] == "scc"
        assert len(payload["buffers_digest"]) == 64
        assert set(payload["fingerprints"]) == {"alu", "simd"}

        capsys.readouterr()
        assert main(["run", "va", "--policy", "scc", "--json", "-"]) == 0
        streamed = json.loads(capsys.readouterr().out)
        assert streamed == payload  # deterministic and path-independent


class TestRunVerificationFailure:
    @staticmethod
    def _failing_workload():
        from repro.kernels.linalg import vector_add

        workload = vector_add(n=64)

        def bad_check(_buffers):
            raise AssertionError("reference mismatch at lane 3")

        workload.check = bad_check
        return workload

    def test_clean_message_and_nonzero_exit(self, monkeypatch, capsys):
        from repro.kernels import WORKLOAD_REGISTRY

        monkeypatch.setitem(WORKLOAD_REGISTRY, "failcheck",
                            self._failing_workload)
        assert main(["run", "failcheck"]) == 1
        err = capsys.readouterr().err
        assert "verification FAILED" in err
        assert "failcheck" in err
        assert "reference mismatch at lane 3" in err
        assert "Traceback" not in err

    def test_no_verify_bypasses_check(self, monkeypatch, capsys):
        from repro.kernels import WORKLOAD_REGISTRY

        monkeypatch.setitem(WORKLOAD_REGISTRY, "failcheck",
                            self._failing_workload)
        assert main(["run", "failcheck", "--no-verify"]) == 0


class TestRunTelemetry:
    def test_counters_appear_in_summary(self, capsys):
        assert main(["run", "nested_l2", "--policy", "scc",
                     "--telemetry", "counters"]) == 0
        out = capsys.readouterr().out
        assert "telemetry.issue.total" in out
        assert "telemetry.compaction.quads_executed" in out

    def test_off_by_default(self, capsys):
        assert main(["run", "va"]) == 0
        assert "telemetry." not in capsys.readouterr().out

    def test_trace_out_writes_valid_trace(self, tmp_path, capsys):
        import json

        from repro.telemetry.chrome_trace import validate_chrome_trace

        path = tmp_path / "t.json"
        assert main(["run", "nested_l3", "--policy", "bcc",
                     "--trace-out", str(path)]) == 0
        err = capsys.readouterr().err
        assert "trace event(s)" in err and "Perfetto" in err
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) > 0
        assert trace["otherData"]["kernel"] == "nested_l3"
        assert trace["otherData"]["policy"] == "bcc"
        names = {event["name"] for event in trace["traceEvents"]}
        assert "quad_exec" in names and "quad_skip" in names

    def test_profile_prints_host_report(self, capsys):
        assert main(["run", "va", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "host profile" in out
        assert "cycles/s" in out

    def test_profile_out_writes_bench_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "bench.json"
        assert main(["run", "va", "--profile-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["label"] == "run:va"
        assert "va" in payload["workloads"]


class TestSweepCommand:
    def test_grid_table_and_stats(self, tmp_path, capsys):
        rc = main(["sweep", "--workloads", "va", "--policies", "ivb,scc",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "sweep results" in captured.out
        assert "2 unique" in captured.err

    def test_json_artifact(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "sweep.json"
        rc = main(["sweep", "--workloads", "va", "--policies", "ivb",
                   "--dc", "1.0,2.0", "--cache-dir", str(tmp_path / "cache"),
                   "--json", str(out_path)])
        assert rc == 0
        artifact = json.loads(out_path.read_text())
        assert artifact["grid"]["workloads"] == ["va"]
        assert len(artifact["results"]) == 2
        assert artifact["failures"] == []
        assert {r["dc_lines_per_cycle"] for r in artifact["results"]} == {1.0, 2.0}

    def test_json_artifact_is_deterministic(self, tmp_path, capsys):
        # The artifact must be byte-stable across runs (cold vs. warm
        # cache, serial vs. resumed) so interrupted sweeps can be
        # verified against uninterrupted ones.
        args = ["sweep", "--workloads", "va", "--policies", "ivb",
                "--cache-dir", str(tmp_path / "cache")]
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(args + ["--json", str(out_a)]) == 0
        assert main(args + ["--json", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_cache_reused_across_invocations(self, tmp_path, capsys):
        args = ["sweep", "--workloads", "va", "--policies", "ivb",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 cached, 0 executed" in capsys.readouterr().err

    def test_unknown_workload(self, tmp_path, capsys):
        rc = main(["sweep", "--workloads", "nonexistent",
                   "--cache-dir", str(tmp_path)])
        assert rc == 2

    def test_bad_policy_reported_cleanly(self, tmp_path, capsys):
        rc = main(["sweep", "--workloads", "va", "--policies", "ivb,sccc",
                   "--cache-dir", str(tmp_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "bad sweep grid" in err
        assert "sccc" in err

    def test_bad_dc_value_reported_cleanly(self, tmp_path, capsys):
        rc = main(["sweep", "--workloads", "va", "--dc", "1.0,fast",
                   "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "bad sweep grid" in capsys.readouterr().err

    def test_workload_groups_resolve(self):
        from repro.cli import _sweep_workloads
        from repro.kernels import WORKLOAD_REGISTRY

        names = _sweep_workloads("rodinia,va")
        assert names[:5] == ["bfs", "hotspot", "lavamd", "nw",
                             "particlefilter"]
        assert "va" in names
        assert all(name in WORKLOAD_REGISTRY for name in names)

    def test_groups_exclude_fault_workloads(self):
        from repro.cli import _sweep_workloads
        from repro.kernels import FAULT_WORKLOADS

        assert FAULT_WORKLOADS  # the harness exists...
        for group in ("all", "divergent", "rodinia"):
            names = _sweep_workloads(group)
            assert not set(names) & set(FAULT_WORKLOADS)
        # ...but explicit naming still works
        assert _sweep_workloads("fault_spin") == ["fault_spin"]


class TestSweepTelemetry:
    def test_trace_dir_writes_one_trace_per_point(self, tmp_path, capsys):
        import json

        from repro.telemetry.chrome_trace import validate_chrome_trace

        trace_dir = tmp_path / "traces"
        rc = main(["sweep", "--workloads", "va", "--policies", "bcc,scc",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--trace-dir", str(trace_dir)])
        assert rc == 0
        assert "wrote 2 Chrome trace(s)" in capsys.readouterr().err
        written = sorted(p.name for p in trace_dir.glob("*.json"))
        assert written == ["va_bcc_dc1.json", "va_scc_dc1.json"]
        for path in trace_dir.glob("*.json"):
            assert validate_chrome_trace(json.loads(path.read_text())) > 0

    def test_telemetry_level_changes_cache_key(self, tmp_path, capsys):
        args = ["sweep", "--workloads", "va", "--policies", "ivb",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        # Same grid at a different telemetry level must not hit the
        # plain run's cache entry (it carries no telemetry payload).
        assert main(args + ["--telemetry", "counters"]) == 0
        assert "0 cached, 1 executed" in capsys.readouterr().err

    def test_summary_reports_throughput(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "va", "--policies", "ivb",
                     "--cache-dir", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "simulating at" in err and "cycles/s" in err


class TestProfileCommand:
    def test_builtin_trace(self, capsys):
        assert main(["profile", "glbench_pro"]) == 0
        out = capsys.readouterr().out
        assert "scc_reduction_pct" in out

    def test_trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        write_trace([TraceEvent(16, 0xF0F0)] * 10, path)
        assert main(["profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "simd_efficiency" in out

    def test_missing_trace(self, capsys):
        assert main(["profile", "no_such_trace"]) == 2


class TestExperimentCommand:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "75.0%" in out  # the L2 SCC benefit

    def test_fig08(self, capsys):
        assert main(["experiment", "fig08"]) == 0
        out = capsys.readouterr().out
        assert "0xAAAA" in out

    def test_area(self, capsys):
        assert main(["experiment", "area"]) == 0
        out = capsys.readouterr().out
        assert "interwarp-8bank" in out

    def test_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2


class TestProfileWiden:
    def test_widen_grows_reduction(self, capsys):
        assert main(["profile", "luxmark_sky"]) == 0
        base_out = capsys.readouterr().out
        assert main(["profile", "luxmark_sky", "--widen", "4"]) == 0
        wide_out = capsys.readouterr().out

        def scc(text):
            for line in text.splitlines():
                if line.startswith("scc_reduction_pct"):
                    return float(line.split()[-1])
            raise AssertionError("no scc_reduction_pct in output")

        assert scc(wide_out) > scc(base_out)
        assert "widened x4" in wide_out
