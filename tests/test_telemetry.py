"""Tests for the telemetry subsystem: counters, events, collection,
Chrome-trace export, and the zero-overhead-when-disabled contract."""

import dataclasses
import json
import time

import numpy as np
import pytest

from repro.core.policy import CompactionPolicy
from repro.gpu.config import GpuConfig
from repro.kernels import WORKLOAD_REGISTRY
from repro.kernels.workload import run_workload
from repro.telemetry import (
    CounterRegistry,
    Event,
    TelemetryCollector,
    TelemetryResult,
    chrome_trace_dict,
    export_chrome_trace,
    make_collector,
    validate_chrome_trace,
)


def _run(name, policy=CompactionPolicy.SCC, level="off", **cfg):
    config = GpuConfig(policy=policy, **cfg)
    if level != "off":
        config = config.with_telemetry(level)
    return run_workload(WORKLOAD_REGISTRY[name](), config)


class TestCounterRegistry:
    def test_incr_and_get(self):
        reg = CounterRegistry()
        reg.incr("a")
        reg.incr("a", 2.5)
        assert reg.get("a") == 3.5
        assert reg.get("missing") == 0.0

    def test_timer(self):
        reg = CounterRegistry()
        with reg.timer("phase"):
            pass
        assert reg.get("phase.calls") == 1
        assert reg.get("phase.seconds") >= 0.0

    def test_merge_with_prefix(self):
        a, b = CounterRegistry(), CounterRegistry()
        a.incr("x", 1)
        b.incr("x", 2)
        a.merge(b)
        assert a.get("x") == 3
        c = CounterRegistry()
        c.merge(b, prefix="eu0")
        assert c.get("eu0.x") == 2

    def test_merged_and_sorted_dict(self):
        parts = []
        for value in (1, 2, 3):
            reg = CounterRegistry()
            reg.incr("n", value)
            parts.append(reg)
        merged = CounterRegistry.merged(parts)
        assert merged.get("n") == 6
        merged.incr("a")
        assert list(merged.as_dict()) == ["a", "n"]


class TestCollector:
    def test_off_level_returns_none(self):
        assert make_collector(GpuConfig()) is None

    def test_unknown_level_rejected(self):
        config = dataclasses.replace(GpuConfig(), telemetry="verbose")
        with pytest.raises(ValueError, match="unknown telemetry level"):
            make_collector(config)
        with pytest.raises(ValueError, match="telemetry"):
            config.validate()

    def test_counters_level_collects_no_events(self):
        collector = make_collector(GpuConfig().with_telemetry("counters"))
        assert not collector.tracing
        collector.instant("gpu/dispatch", "wg_dispatch", 3)
        collector.span("gpu/mem", "mem_message", 3, 10)
        assert collector.events == []

    def test_result_merges_per_eu_counters(self):
        collector = TelemetryCollector("counters", num_eus=4)
        for eu_id in range(4):
            collector.eu(eu_id).counters.incr("issue.alu", eu_id + 1)
        collector.counters.incr("dispatch.workgroups", 2)
        result = collector.result(total_cycles=100)
        assert result.counters["issue.alu"] == 10
        assert result.counters["dispatch.workgroups"] == 2
        assert result.total_cycles == 100

    def test_result_events_sorted(self):
        collector = TelemetryCollector("trace", num_eus=1)
        collector.instant("gpu/a", "late", 50)
        collector.instant("gpu/a", "early", 10)
        result = collector.result(total_cycles=60)
        assert [e.name for e in result.events] == ["early", "late"]


class TestTelemetryResultMerge:
    def test_events_shifted_by_cumulative_cycles(self):
        first = TelemetryResult("trace", {"n": 1.0},
                                [Event("i", "gpu/a", "x", 5)], 100)
        second = TelemetryResult("trace", {"n": 2.0},
                                 [Event("i", "gpu/a", "y", 7)], 50)
        merged = TelemetryResult.merge([first, second])
        assert merged.counters == {"n": 3.0}
        assert [(e.name, e.ts) for e in merged.events] == [("x", 5), ("y", 107)]
        assert merged.total_cycles == 150

    def test_level_mismatch_rejected(self):
        with pytest.raises(ValueError, match="levels"):
            TelemetryResult.merge([TelemetryResult("trace"),
                                   TelemetryResult("counters")])


class TestInstrumentedRuns:
    def test_summaries_bit_identical_with_and_without_telemetry(self):
        # Fresh workload instances per run: buffers are mutated in place.
        baseline = _run("nested_l3", level="off")
        traced = _run("nested_l3", level="trace")
        assert baseline.telemetry is None
        assert traced.telemetry is not None
        assert baseline.summary() == traced.summary()
        assert baseline.total_cycles == traced.total_cycles

    def test_summary_attaches_counters_on_request(self):
        result = _run("va", level="counters")
        base = result.summary()
        extended = result.summary(telemetry=True)
        assert all(extended[k] == v for k, v in base.items())
        assert extended["telemetry.issue.total"] == result.instructions
        assert not any(k.startswith("telemetry.") for k in base)

    def test_counter_level_skips_events(self):
        result = _run("nested_l2", level="counters")
        assert result.telemetry.events == []
        assert result.telemetry.counters["issue.total"] > 0

    def test_bcc_per_quad_events(self):
        result = _run("nested_l3", policy=CompactionPolicy.BCC, level="trace")
        names = {e.name for e in result.telemetry.events}
        assert {"quad_exec", "quad_skip"} <= names
        counters = result.telemetry.counters
        assert counters["compaction.quads_executed"] > 0
        assert counters["compaction.quads_skipped"] > 0
        skips = [e for e in result.telemetry.events if e.name == "quad_skip"]
        assert all(e.args["policy"] == "bcc" for e in skips)

    def test_scc_swizzle_events(self):
        result = _run("nested_l3", policy=CompactionPolicy.SCC, level="trace")
        events = result.telemetry.events
        swizzles = [e for e in events if e.name == "swizzle"]
        assert len(swizzles) == result.telemetry.counters["compaction.swizzles"]
        assert all({"out_lane", "quad", "src_lane"} <= set(e.args)
                   for e in swizzles)
        assert any(e.name == "quad_skip" and e.args["policy"] == "scc"
                   for e in events)

    def test_stall_and_occupancy_events(self):
        result = _run("nested_l2", level="trace")
        events = result.telemetry.events
        assert any(e.name.startswith("stall_") for e in events)
        occupancy = [e for e in events if e.name == "active_lanes"]
        assert occupancy and all(e.ph == "C" for e in occupancy)

    def test_multi_launch_merge_offsets_events(self):
        # bfs launches one kernel per frontier level; merged telemetry
        # must cover the summed cycle range with monotonic track times.
        result = _run("bfs", level="trace")
        telemetry = result.telemetry
        assert telemetry.total_cycles == result.total_cycles
        assert max(e.ts for e in telemetry.events) <= telemetry.total_cycles
        last = {}
        for event in telemetry.events:
            assert event.ts >= last.get(event.track, 0)
            last[event.track] = event.ts

    def test_issue_counters_match_instruction_count(self):
        result = _run("va", level="counters")
        assert result.telemetry.counters["issue.total"] == result.instructions
        assert (result.telemetry.counters["threads.retired"]
                == result.telemetry.counters["threads.dispatched"])


class TestChromeTrace:
    def test_export_validates_and_contains_quad_decisions(self, tmp_path):
        result = _run("nested_l3", policy=CompactionPolicy.BCC, level="trace")
        path = tmp_path / "trace.json"
        count = export_chrome_trace(result.telemetry, path,
                                    kernel="nested_l3", policy="bcc")
        assert count == validate_chrome_trace(path)
        payload = json.loads(path.read_text())
        assert payload["otherData"]["kernel"] == "nested_l3"
        names = {r["name"] for r in payload["traceEvents"]}
        assert {"quad_exec", "quad_skip", "active_lanes",
                "process_name", "thread_name"} <= names

    def test_eu_processes_and_gpu_process(self):
        result = _run("va", level="trace")
        payload = chrome_trace_dict(result.telemetry)
        meta = [r for r in payload["traceEvents"]
                if r["ph"] == "M" and r["name"] == "process_name"]
        labels = {r["args"]["name"] for r in meta}
        assert "GPU" in labels
        assert any(label.startswith("EU") for label in labels)

    def test_span_records_have_duration(self):
        result = _run("va", level="trace")
        payload = chrome_trace_dict(result.telemetry)
        spans = [r for r in payload["traceEvents"] if r["ph"] == "X"]
        assert spans and all(r["dur"] >= 1 for r in spans)

    def test_export_without_telemetry_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no telemetry"):
            export_chrome_trace(None, tmp_path / "trace.json")

    def test_validator_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="missing required key 'ts'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "i"}]})
        with pytest.raises(ValueError, match="missing 'dur'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                                  "pid": 0, "tid": 0}]})

    def test_validator_rejects_time_travel(self):
        events = [{"name": "a", "ph": "i", "ts": 10, "pid": 0, "tid": 0},
                  {"name": "b", "ph": "i", "ts": 5, "pid": 0, "tid": 0}]
        with pytest.raises(ValueError, match="monotonicity"):
            validate_chrome_trace({"traceEvents": events})


class TestDisabledPathOverhead:
    def test_disabled_run_never_constructs_a_collector(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("collector constructed with telemetry off")

        monkeypatch.setattr(TelemetryCollector, "__init__", boom)
        result = _run("nested_l1", level="off")
        assert result.telemetry is None

    def test_disabled_guard_overhead_under_five_percent(self):
        # No pre-telemetry build exists to diff against, so bound the
        # overhead from first principles: the disabled path adds only
        # `self.telemetry is not None` style guards.  Measure the cost
        # of one guard, multiply by a generous guards-per-instruction
        # allowance, and require the total to stay under 5% of the
        # measured run time.
        start = time.perf_counter()
        result = _run("nested_l2", level="off")
        run_seconds = time.perf_counter() - start

        class Probe:
            telemetry = None
            hostprof = None

        probe = Probe()
        trials = 200_000
        start = time.perf_counter()
        hits = 0
        for _ in range(trials):
            if probe.telemetry is not None:
                hits += 1
            if probe.hostprof is not None:
                hits += 1
        guard_seconds = (time.perf_counter() - start) / (2 * trials)
        assert hits == 0

        guards_per_instruction = 8  # actual sites: <= 4 on any issue path
        overhead = guard_seconds * guards_per_instruction * result.instructions
        assert overhead < 0.05 * run_seconds, (
            f"guard overhead {overhead:.4f}s exceeds 5% of {run_seconds:.4f}s")


class TestRunnerIntegration:
    def test_telemetry_level_joins_cache_key(self):
        from repro.runner import Job

        plain = Job("va", GpuConfig())
        counters = Job("va", GpuConfig().with_telemetry("counters"))
        traced = Job("va", GpuConfig().with_telemetry("trace"))
        assert len({plain.key, counters.key, traced.key}) == 3

    def test_telemetry_survives_cache_round_trip(self, tmp_path):
        from repro.runner import Job, ResultCache, Runner

        config = GpuConfig(policy=CompactionPolicy.SCC).with_telemetry("trace")
        runner = Runner(workers=1, cache=ResultCache(tmp_path),
                        retry_backoff=0.0)
        first = runner.run_one("nested_l1", config)
        again = runner.run_one("nested_l1", config)
        assert runner.last_stats.cache_hits == 1
        assert again.telemetry is not None
        assert again.telemetry.counters == first.telemetry.counters
        assert len(again.telemetry.events) == len(first.telemetry.events)

    def test_run_stats_throughput_accounting(self, tmp_path):
        from repro.runner import Runner

        runner = Runner(workers=1, cache=False, retry_backoff=0.0)
        result = runner.run_one("nested_l1")
        stats = runner.last_stats
        assert stats.host_seconds > 0
        assert stats.total_cycles == result.total_cycles
        assert stats.cycles_per_second == pytest.approx(
            stats.total_cycles / stats.host_seconds)
