"""Tests for Launch/WorkgroupInstance internals (repro.gpu.dispatch)."""

import numpy as np
import pytest

from repro.core.stats import CompactionStats
from repro.eu.eu import ExecutionUnit
from repro.gpu.config import GpuConfig
from repro.gpu.dispatch import Launch, WorkgroupInstance, bind_surfaces
from repro.isa.builder import KernelBuilder
from repro.isa.types import DType
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.slm import SlmTiming


def _program(simd_width=16):
    b = KernelBuilder("k", simd_width)
    gid = b.global_id()
    lid = b.local_id()
    out = b.surface_arg("out")
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(lid, addr, out)
    return b.finish()


def _launch(global_size, local_size=None, config=None):
    config = config or GpuConfig()
    program = _program()
    out = np.zeros(max(global_size, 16), dtype=np.int32)
    surfaces = bind_surfaces(program, {"out": out})
    return Launch(program, global_size, local_size, surfaces, {}, config)


def _eus(config, n=None):
    hierarchy = MemoryHierarchy(config.memory)
    stats = CompactionStats()
    return [ExecutionUnit(i, config, hierarchy, stats, CompactionStats())
            for i in range(n or config.num_eus)]


class TestLaunchGeometry:
    def test_default_local_size(self):
        config = GpuConfig(threads_per_eu=6)
        launch = _launch(1000, config=config)
        assert launch.local_size == 16 * 6
        assert launch.threads_per_wg == 6

    def test_workgroup_count_rounds_up(self):
        launch = _launch(100, local_size=32)
        assert launch.num_workgroups == 4  # ceil(100 / 32)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            _launch(0)

    def test_non_multiple_local_size_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            _launch(64, local_size=20)


class TestDispatchMechanics:
    def test_fills_all_eus_first_pass(self):
        config = GpuConfig(num_eus=3, threads_per_eu=6)
        launch = _launch(16 * 6 * 10, local_size=16 * 6, config=config)
        eus = _eus(config)
        placed = launch.dispatch(eus, now=0)
        assert placed == 3  # one full workgroup per EU
        assert all(eu.free_slots() == 0 for eu in eus)

    def test_no_dispatch_without_room(self):
        config = GpuConfig(num_eus=1, threads_per_eu=6)
        launch = _launch(16 * 6 * 4, local_size=16 * 6, config=config)
        eus = _eus(config)
        assert launch.dispatch(eus, 0) == 1
        assert launch.dispatch(eus, 1) == 0  # EU is full

    def test_partial_tail_thread_mask(self):
        config = GpuConfig(num_eus=1)
        launch = _launch(20, local_size=32, config=config)
        eus = _eus(config)
        launch.dispatch(eus, 0)
        instance = launch.instances[0]
        # 20 items: one full SIMD16 thread + one 4-lane tail thread.
        assert len(instance.threads) == 2
        assert instance.threads[0].masks.dispatch_mask == 0xFFFF
        assert instance.threads[1].masks.dispatch_mask == 0x000F

    def test_thread_ids_unique(self):
        config = GpuConfig(num_eus=2, threads_per_eu=6)
        launch = _launch(16 * 12, local_size=16 * 6, config=config)
        eus = _eus(config)
        launch.dispatch(eus, 0)
        ids = [t.thread_id for wg in launch.instances for t in wg.threads]
        assert len(ids) == len(set(ids))

    def test_dispatch_latency_applied(self):
        config = GpuConfig(num_eus=1, dispatch_latency=25)
        launch = _launch(16, config=config)
        eus = _eus(config)
        launch.dispatch(eus, now=100)
        thread = launch.instances[0].threads[0]
        assert thread.stall_until == 125


class TestWorkgroupBarrierBookkeeping:
    def _instance(self, num_threads=3):
        program = _program()
        instance = WorkgroupInstance(0, [], None, SlmTiming())
        from repro.eu.thread import EUThread

        for i in range(num_threads):
            instance.threads.append(
                EUThread(i, program, 0xFFFF, workgroup=instance))
        return instance

    def test_barrier_releases_when_all_arrive(self):
        instance = self._instance(3)
        from repro.eu.thread import ThreadState

        for thread in instance.threads[:2]:
            thread.state = ThreadState.AT_BARRIER
            instance.arrive_barrier(thread, now=10, release_latency=2)
        assert all(t.state is ThreadState.AT_BARRIER
                   for t in instance.threads[:2])
        last = instance.threads[2]
        last.state = ThreadState.AT_BARRIER
        instance.arrive_barrier(last, now=20, release_latency=2)
        assert all(t.state is ThreadState.ACTIVE for t in instance.threads)
        assert all(t.stall_until == 22 for t in instance.threads)

    def test_thread_exit_unblocks_barrier(self):
        # Two threads wait at a barrier; the third finishes (EOT) without
        # reaching it -- the barrier must release the remaining two.
        instance = self._instance(3)
        from repro.eu.thread import ThreadState

        for thread in instance.threads[:2]:
            thread.state = ThreadState.AT_BARRIER
            instance.arrive_barrier(thread, now=5, release_latency=1)
        instance.threads[2].state = ThreadState.DONE
        instance.thread_done(now=9)
        assert all(t.state is ThreadState.ACTIVE
                   for t in instance.threads[:2])

    def test_done_property(self):
        instance = self._instance(2)
        assert not instance.done
        instance.thread_done(0)
        instance.thread_done(0)
        assert instance.done
