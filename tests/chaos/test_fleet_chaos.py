"""Chaos harness for the multi-host worker fleet.

Real processes, real SIGKILL: every scenario here runs a ``repro
serve`` daemon and ``repro worker`` subprocesses, injects one fault —
a worker killed mid-job, a partitioned worker whose heartbeats vanish,
a duplicated result post, the daemon itself crashing mid-fleet — and
asserts the fleet's contract:

* every surviving result is bit-identical to a foreground run;
* no job executes more times than its assignment count (and never
  more than the reassignment bound);
* zombie completions are fence-rejected, never silently merged.
"""

import time

from fleet_harness import Daemon, start_worker, wait_for

#: Worst-case terminal wait (slow CI).
WAIT = 120.0


def _count_spec(counter, sleep=0.0):
    params = {"counter": str(counter)}
    if sleep:
        params["sleep"] = sleep
    return {"workload": "fault_count", "params": params}


def _tally(counter):
    try:
        return counter.read_text().splitlines()
    except OSError:
        return []


def _foreground_payload(spec_body):
    """The result a plain in-process run produces for *spec_body* —
    the bit-identity reference every chaos survivor must match."""
    import json

    from repro.kernels import WORKLOAD_REGISTRY, run_workload
    from repro.serve.jobs import JobSpec, result_payload

    spec = JobSpec.from_payload(spec_body)
    workload = WORKLOAD_REGISTRY[spec.workload](**dict(spec.params))
    result = run_workload(workload, spec.to_config(), verify=spec.verify)
    # Round-trip through JSON exactly like a worker's HTTP post does.
    return json.loads(json.dumps(result_payload(spec, result)))


class TestWorkerKill9:
    def test_kill9_mid_job_reassigns_and_completes_exactly_once(
            self, daemon, tmp_path):
        """SIGKILL a worker mid-simulation: the lease expires, a peer
        picks the job up, and the tally shows exactly one execution
        per assignment — at-least-once work, exactly-once completion."""
        client = daemon.client()
        counter = tmp_path / "tally.txt"
        job = client.submit(_count_spec(counter, sleep=3.0))
        victim = daemon.worker("w1")
        # Wait for w1's tally line, not just the lease: fault_count
        # appends its pid *before* sleeping, so one line means w1 is
        # past the cache probe and inside the 3-second window.
        wait_for(lambda: len(_tally(counter)) == 1,
                 message="w1 to start executing the job")
        victim.kill()  # SIGKILL, mid-sleep
        victim.wait(timeout=30.0)
        daemon.worker("w2")
        final = client.watch(job["id"], timeout=WAIT)
        assert final["state"] == "done"
        assert final["worker"] == "w2"
        assert final["assignments"] == 2
        pids = _tally(counter)
        assert len(pids) == 2  # one execution per assignment, no more
        assert len(set(pids)) == 2  # by two different processes
        counters = client.metrics()["counters"]
        assert counters["serve.leases.expired"] >= 1
        assert counters["serve.leases.reassigned"] >= 1

    def test_crash_after_execution_result_is_bit_identical(
            self, daemon, tmp_path):
        """A worker that dies *between* executing and posting
        (die-before-result) forces a re-execution on a peer; the
        surviving result must equal a foreground run bit for bit."""
        spec_body = {"workload": "va"}
        client = daemon.client()
        job = client.submit(spec_body)
        daemon.worker("w1", chaos="die-before-result")
        daemon.worker("w2")  # the survivor
        final = client.watch(job["id"], timeout=WAIT)
        assert final["state"] == "done"
        assert final["worker"] == "w2"
        body = client.result(job["id"])
        assert body["result"] == _foreground_payload(spec_body)


class TestZombieWorker:
    def test_partitioned_workers_late_result_is_fence_rejected(
            self, daemon, tmp_path):
        """drop-heartbeats: the worker stays alive but silent, loses
        its lease mid-run, and its eventual post must bounce off the
        fence — the reassigned run's result is the one that lands."""
        client = daemon.client()
        counter = tmp_path / "tally.txt"
        job = client.submit(_count_spec(counter, sleep=5.0))
        daemon.worker("w1", chaos="drop-heartbeats")
        wait_for(lambda: client.status(job["id"]).get("worker") == "w1",
                 message="w1 to lease the job")
        daemon.worker("w2")
        final = client.watch(job["id"], timeout=WAIT)
        assert final["state"] == "done"
        assert final["worker"] == "w2"
        # The zombie eventually posts (its sleep ends) and is bounced.
        wait_for(lambda: client.metrics()["counters"].get(
            "serve.leases.fence_rejected", 0) >= 1,
            message="the zombie's late post to be fence-rejected")
        assert client.status(job["id"])["worker"] == "w2"  # unclobbered
        assert len(_tally(counter)) == 2


class TestDuplicateResultPost:
    def test_duplicate_post_is_answered_idempotently(self, daemon,
                                                     tmp_path):
        """dup-result: the worker posts its result twice (a retry whose
        first response was lost); the daemon resolves the job once and
        answers the echo without a fence rejection."""
        client = daemon.client()
        counter = tmp_path / "tally.txt"
        job = client.submit(_count_spec(counter))
        daemon.worker("w1", chaos="dup-result")
        final = client.watch(job["id"], timeout=WAIT)
        assert final["state"] == "done"
        assert final["worker"] == "w1"
        counters = client.metrics()["counters"]
        assert counters["serve.work.duplicate_results"] == 1.0
        assert counters.get("serve.leases.fence_rejected", 0) == 0
        assert counters["serve.jobs.executed"] == 1.0
        assert len(_tally(counter)) == 1


class TestDaemonCrash:
    def test_daemon_kill9_mid_fleet_worker_finishes_across_restart(
            self, tmp_path):
        """SIGKILL the *daemon* while a worker is mid-job, restart it
        on the same journal: the lease is replayed, the worker (which
        retried through the outage) posts under its original fence,
        and the job completes without ever being re-executed."""
        daemon = Daemon(tmp_path, "--no-local-exec", "--lease-ttl", "10")
        daemon.start()
        worker = None
        try:
            client = daemon.client()
            counter = tmp_path / "tally.txt"
            job = client.submit(_count_spec(counter, sleep=6.0))

            worker = start_worker(daemon.port, "w1",
                                  log=tmp_path / "w1.log")
            wait_for(lambda: client.status(job["id"]).get("worker") == "w1",
                     message="w1 to lease the job")
            daemon.kill9()
            time.sleep(1.0)  # the fleet runs ownerless for a moment
            daemon.restart()
            client = daemon.client()
            assert client.metrics()["counters"][
                "serve.leases.restored"] == 1.0
            final = client.watch(job["id"], timeout=WAIT)
            assert final["state"] == "done"
            assert final["worker"] == "w1"
            assert final["assignments"] == 1  # never reassigned
            assert len(_tally(counter)) == 1  # never re-executed
        finally:
            if worker is not None and worker.poll() is None:
                worker.kill()
                worker.wait(timeout=30.0)
            if daemon.proc.poll() is None:
                daemon.terminate()


class TestCachePublishCrash:
    def test_die_after_publish_serves_reassigned_run_from_cache(
            self, daemon, tmp_path):
        """SIGKILL the worker in the window between its cache publish
        and its result post (die-after-publish): the lease expires, the
        job is reassigned, and the second worker must serve the
        *published* result instead of re-executing — the tally shows
        exactly ONE execution across both assignments.  A daemon
        restart plus resubmission of the same spec is then a cache hit
        too: still one tally line, zero new simulations."""
        client = daemon.client()
        counter = tmp_path / "tally.txt"
        spec_body = _count_spec(counter)
        job = client.submit(spec_body)
        daemon.worker("w1", chaos="die-after-publish")
        # w1 executes, publishes, dies before posting.
        wait_for(lambda: client.metrics()["counters"].get(
            "serve.cache.published", 0) >= 1,
            message="w1 to publish its result into the fleet cache")
        assert len(_tally(counter)) == 1  # executed exactly once so far
        daemon.worker("w2")
        final = client.watch(job["id"], timeout=WAIT)
        assert final["state"] == "done"
        assert final["worker"] == "w2"
        assert final["assignments"] == 2
        assert len(_tally(counter)) == 1  # w2 served, never re-executed
        assert final["cache_hit"] is True
        counters = client.metrics()["counters"]
        assert counters["serve.cache.fetch_hits"] >= 1
        # w1's real execution died before its post, and w2's post is
        # marked as a cache serve: nothing books under jobs.executed.
        assert counters.get("serve.jobs.executed", 0) == 0
        assert counters.get("serve.jobs.cache_hits", 0) == 1

        # Daemon restart + resubmission: the store outlives the daemon.
        daemon.kill9()
        daemon.restart()
        client = daemon.client()
        again = client.submit(spec_body)
        assert again["id"] != job["id"]
        final = client.watch(again["id"], timeout=WAIT)
        assert final["state"] == "done"
        assert len(_tally(counter)) == 1  # STILL one execution, ever
        assert client.metrics()["counters"]["serve.cache.fetch_hits"] >= 1

    def test_cache_served_result_is_bit_identical(self, daemon, tmp_path):
        """The result the second worker serves from the fleet cache
        must equal a foreground run bit for bit — same contract as a
        re-execution, without the execution."""
        spec_body = {"workload": "va", "policy": "bcc"}
        client = daemon.client()
        job = client.submit(spec_body)
        daemon.worker("w1", chaos="die-after-publish")
        wait_for(lambda: client.metrics()["counters"].get(
            "serve.cache.published", 0) >= 1,
            message="w1 to publish its result into the fleet cache")
        daemon.worker("w2")
        final = client.watch(job["id"], timeout=WAIT)
        assert final["state"] == "done"
        assert final["worker"] == "w2"
        assert client.metrics()["counters"]["serve.cache.fetch_hits"] >= 1
        body = client.result(job["id"])
        assert body["result"] == _foreground_payload(spec_body)
