"""Process-level fixtures for the fleet chaos harness.

Runs the real thing: a ``repro serve`` daemon and ``repro worker``
processes as subprocesses of the test, so ``kill -9`` means actual
SIGKILL mid-simulation — no mocks, no monkeypatching.  Faults are
injected via the worker's ``$REPRO_WORKER_CHAOS`` hooks and plain
``os.kill``.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src")

#: Generous terminal-wait budget (slow CI boxes).
WAIT = 120.0


def _env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra or {})
    return env


class Daemon:
    """One ``repro serve`` subprocess bound to an OS-assigned port."""

    def __init__(self, tmp_path: Path, *flags: str):
        self.data_dir = tmp_path / "serve-data"
        self.cache_dir = tmp_path / "serve-cache"
        self.log = tmp_path / f"serve-{int(time.time()*1e6)}.log"
        self.flags = list(flags)
        self.port = 0
        self.proc = None

    def start(self):
        assert self.proc is None or self.proc.poll() is not None
        cmd = [sys.executable, "-m", "repro", "serve",
               "--port", str(self.port),
               "--data-dir", str(self.data_dir),
               "--cache-dir", str(self.cache_dir)] + self.flags
        self.log.touch()
        with open(self.log, "ab") as log:
            self.proc = subprocess.Popen(cmd, env=_env(), stderr=log,
                                         stdout=subprocess.DEVNULL)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            match = re.search(rb"listening on http://[^:]+:(\d+)",
                              self.log.read_bytes())
            if match:
                self.port = int(match.group(1))
                return self
            assert self.proc.poll() is None, (
                f"daemon died on startup:\n{self.log.read_text()}")
            time.sleep(0.05)
        raise AssertionError(f"daemon never came up:\n{self.log.read_text()}")

    def client(self, **kwargs):
        from repro.serve.client import ServeClient

        kwargs.setdefault("max_retries", 5)
        client = ServeClient(port=self.port, **kwargs)
        client.wait_ready(timeout=30.0)
        return client

    def kill9(self):
        """SIGKILL: the crash the journal + lease restore must survive."""
        self.proc.kill()
        self.proc.wait(timeout=30.0)

    def terminate(self, timeout=WAIT) -> int:
        if self.proc.poll() is None:
            self.proc.terminate()
        return self.proc.wait(timeout=timeout)

    def restart(self):
        """Same data dir, same port: a daemon reboot, not a new daemon."""
        return self.start()


def start_worker(port: int, name: str, *flags: str, chaos: str = "",
                 log: Path = None) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro", "worker",
           "--port", str(port), "--name", name,
           "--poll-wait", "1", "--max-retries", "6"] + list(flags)
    extra = {"REPRO_WORKER_CHAOS": chaos} if chaos else {}
    stderr = open(log, "ab") if log else subprocess.DEVNULL
    return subprocess.Popen(cmd, env=_env(extra), stderr=stderr,
                            stdout=subprocess.DEVNULL)


def wait_for(predicate, timeout=WAIT, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")
