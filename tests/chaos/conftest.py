"""Fixtures for the fleet chaos harness (see fleet_harness.py)."""

import pytest
from fleet_harness import Daemon, start_worker


@pytest.fixture
def daemon(tmp_path):
    """A fleet-coordinator daemon (no local execution, fast leases)."""
    handle = Daemon(tmp_path, "--no-local-exec", "--lease-ttl", "2")
    handle.start()
    spawned = []

    def worker(name, *flags, chaos=""):
        proc = start_worker(handle.port, name, *flags, chaos=chaos,
                            log=tmp_path / f"{name}.log")
        spawned.append(proc)
        return proc

    handle.worker = worker
    try:
        yield handle
    finally:
        for proc in spawned:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        if handle.proc.poll() is None:
            handle.terminate()
