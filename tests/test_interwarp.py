"""Tests for the idealized inter-warp (TBC-class) baseline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.interwarp import (
    InterWarpComparison,
    baseline_memory_lines,
    compare_on_groups,
    groups_from_trace,
    ideal_compacted_warps,
    intra_warp_cycles,
    lane_occupancy,
    tbc_compacted_warps,
    tbc_cycles,
    tbc_memory_lines,
)
from repro.core.policy import CompactionPolicy
from repro.trace.format import TraceEvent

mask_lists = st.lists(st.integers(min_value=0, max_value=0xFFFF),
                      min_size=1, max_size=6)


class TestLaneOccupancy:
    def test_counts(self):
        occ = lane_occupancy([0x0003, 0x0001], 16)
        assert occ[0] == 2 and occ[1] == 1 and occ[2] == 0


class TestCompactedWarps:
    def test_complementary_masks_merge_into_one(self):
        # Two warps with complementary halves: TBC packs them into one.
        assert tbc_compacted_warps([0x00FF, 0xFF00], 16) == 1

    def test_identical_patterns_defeat_tbc(self):
        # The paper's SCC motivation: lane positions are preserved, so
        # 0xAAAA repeated across warps cannot be compacted at all.
        masks = [0xAAAA] * 4
        assert tbc_compacted_warps(masks, 16) == 4
        assert ideal_compacted_warps(masks, 16) == 2

    def test_empty_group(self):
        assert tbc_compacted_warps([0, 0], 16) == 0

    @given(mask_lists)
    def test_tbc_between_ideal_and_warp_count(self, masks):
        tbc = tbc_compacted_warps(masks, 16)
        ideal = ideal_compacted_warps(masks, 16)
        nonempty = sum(1 for m in masks if m)
        assert ideal <= tbc <= max(nonempty, ideal)

    @given(mask_lists)
    def test_ideal_is_ceiling_of_total(self, masks):
        total = sum(bin(m).count("1") for m in masks)
        assert ideal_compacted_warps(masks, 16) == -(-total // 16)


class TestCycleModels:
    def test_tbc_cycles_full_width_per_warp(self):
        assert tbc_cycles([0x00FF, 0xFF00], 16) == 4  # one SIMD16 warp

    def test_intra_warp_cycles_scc(self):
        assert intra_warp_cycles([0x00FF, 0xFF00], 16,
                                 CompactionPolicy.SCC) == 4  # 2 + 2

    @given(mask_lists)
    def test_tbc_beats_or_ties_bcc_on_aligned_free_groups(self, masks):
        # TBC's idealized cycles can never exceed the no-compaction IVB
        # baseline cycles by more than the empty-warp floor.
        ivb = intra_warp_cycles(masks, 16, CompactionPolicy.IVB)
        assert tbc_cycles(masks, 16) <= ivb + sum(1 for m in masks if m == 0)


class TestMemoryLines:
    def test_no_mixing_no_increase(self):
        # A single warp cannot mix with anyone.
        assert tbc_memory_lines([0x00FF], 16) == baseline_memory_lines(
            [0x00FF], 16)

    def test_mixing_increases_lines(self):
        # Complementary warps merge into one issued warp that touches
        # both source warps' lines: 2 lines where the baseline needed 2
        # warps x 1 line each -- but in half the issue slots.
        masks = [0x00FF, 0xFF00]
        assert tbc_memory_lines(masks, 16) == 2
        assert baseline_memory_lines(masks, 16) == 2

    def test_partial_merge_inflates_per_warp_lines(self):
        # Four quarter-full warps with the same lanes (no compaction
        # possible) keep their lines; but four quarter-full warps with
        # disjoint lanes compact to one warp touching 4 line groups.
        disjoint = [0x000F, 0x00F0, 0x0F00, 0xF000]
        assert tbc_compacted_warps(disjoint, 16) == 1
        assert tbc_memory_lines(disjoint, 16) == 4
        assert baseline_memory_lines(disjoint, 16) == 4


class TestComparison:
    def _diverse_groups(self):
        return [
            ([0x00FF, 0xFF00], 16),        # TBC-friendly
            ([0xAAAA, 0xAAAA], 16),        # SCC-only
            ([0xF0F0, 0x0F0F], 16),        # both help
            ([0xFFFF, 0xFFFF], 16),        # coherent
            ([0x0003, 0x0300, 0x0030], 16),
        ]

    def test_ordering_of_reductions(self):
        comparison = compare_on_groups(self._diverse_groups())
        assert comparison.ideal_reduction_pct >= comparison.tbc_reduction_pct - 1e-9
        assert comparison.scc_reduction_pct >= comparison.bcc_reduction_pct

    def test_tbc_inflates_memory_lines(self):
        comparison = compare_on_groups(self._diverse_groups())
        assert comparison.tbc_lines >= 0
        assert comparison.memory_divergence_increase_pct >= 0.0

    def test_benefit_share(self):
        comparison = compare_on_groups(self._diverse_groups())
        assert 0.0 < comparison.scc_benefit_share_of_tbc <= 2.0

    def test_empty_comparison(self):
        comparison = InterWarpComparison()
        assert comparison.scc_reduction_pct == 0.0
        assert comparison.memory_divergence_increase_pct == 0.0


class TestGroupsFromTrace:
    def test_grouping_by_width(self):
        events = [TraceEvent(16, 0xF)] * 3 + [TraceEvent(8, 0x3)] * 2
        groups = list(groups_from_trace(events, group_size=2))
        sizes = sorted((len(masks), width) for masks, width in groups)
        assert sizes == [(1, 16), (2, 8), (2, 16)]

    def test_bad_group_size(self):
        with pytest.raises(ValueError):
            list(groups_from_trace([], group_size=0))

    def test_paper_claim_on_synthetic_traces(self):
        """SCC captures the bulk of idealized TBC's benefit on the
        LuxMark-class traces while adding zero memory divergence."""
        from repro.trace.workloads import trace_events

        comparison = compare_on_groups(
            groups_from_trace(trace_events("luxmark_sky"), group_size=4))
        assert comparison.scc_reduction_pct > 0.55 * comparison.tbc_reduction_pct
        assert comparison.memory_divergence_increase_pct > 10.0
