"""Crash-tolerance tests for the serve journal (``ServeJournal``).

A daemon killed mid-append leaves a truncated trailing line; a bad
disk or an overeager editor can corrupt a line in the middle.  Either
way :meth:`ServeJournal.load` must salvage every intact record, log +
skip the damage, and quarantine the bad bytes to a sidecar for
post-mortem — never raise, never drop good events.
"""

import asyncio
import json
import logging

from repro.serve import JobService, JobState
from repro.serve.journal import ServeJournal


def _journal(tmp_path):
    journal = ServeJournal(tmp_path / "journal.jsonl")
    for n in range(3):
        journal.append("submit", f"j{n}", spec={"workload": "va"},
                       key=f"k{n}", submitted_at=float(n))
    return journal


class TestTruncatedTail:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        """Truncating mid-record (kill -9 during append) loses only
        the torn record."""
        journal = _journal(tmp_path)
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-20])  # tear the last record
        events = journal.load()
        assert [e["id"] for e in events] == ["j0", "j1"]
        assert journal.quarantined == 1

    def test_quarantine_sidecar_preserves_bad_bytes(self, tmp_path):
        journal = _journal(tmp_path)
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-20])
        journal.load()
        sidecar = journal.quarantine_path.read_bytes()
        assert b"line 4" in sidecar  # header + 3 records -> line 4
        assert raw[:-20].splitlines()[-1] in sidecar

    def test_load_logs_a_warning(self, tmp_path, caplog):
        journal = _journal(tmp_path)
        journal.path.write_bytes(journal.path.read_bytes()[:-5])
        with caplog.at_level(logging.WARNING, "repro.serve.journal"):
            journal.load()
        assert any("quarantin" in rec.message for rec in caplog.records)


class TestCorruptMiddle:
    def test_garbled_middle_line_salvages_rest(self, tmp_path):
        """Records *after* the corruption survive too — load keeps
        going instead of stopping at the first bad line."""
        journal = _journal(tmp_path)
        lines = journal.path.read_bytes().splitlines()
        lines[2] = b"\xff\xfe not json at all \x00"
        journal.path.write_bytes(b"\n".join(lines) + b"\n")
        events = journal.load()
        assert [e["id"] for e in events] == ["j0", "j2"]
        assert journal.quarantined == 1

    def test_multiple_bad_lines_all_quarantined(self, tmp_path):
        journal = _journal(tmp_path)
        lines = journal.path.read_bytes().splitlines()
        lines[1] = b"{truncated"
        lines[3] = b"\x00\x01\x02"
        journal.path.write_bytes(b"\n".join(lines) + b"\n")
        events = journal.load()
        assert [e["id"] for e in events] == ["j1"]
        assert journal.quarantined == 2

    def test_garbled_header_quarantines_everything(self, tmp_path):
        journal = _journal(tmp_path)
        lines = journal.path.read_bytes().splitlines()
        lines[0] = b"\xffgarbage"
        journal.path.write_bytes(b"\n".join(lines) + b"\n")
        assert journal.load() == []
        assert journal.quarantined == 1

    def test_blank_lines_are_not_quarantined(self, tmp_path):
        journal = _journal(tmp_path)
        with open(journal.path, "ab") as fh:
            fh.write(b"\n\n")
        events = journal.load()
        assert len(events) == 3
        assert journal.quarantined == 0


class TestServiceRecoveryThroughDamage:
    def test_daemon_restart_with_torn_tail_recovers_intact_jobs(
            self, tmp_path):
        """End to end: jobs journaled before the tear re-enter the
        queue; the torn record is quarantined, not fatal."""
        async def first_run():
            service = JobService(tmp_path / "data", cache=tmp_path / "cache",
                                 local_exec=False)
            for n in range(2):
                service.submit({"workload": "fault_count",
                                "params": {"counter": str(tmp_path / f"c{n}")}})
            return service

        service = asyncio.run(first_run())
        path = service.journal.path
        # Simulate kill -9 mid-append of a third submission.
        with open(path, "ab") as fh:
            fh.write(b'{"event": "submit", "id": "j00003-dead", "spe')

        async def restart():
            return JobService(tmp_path / "data", cache=tmp_path / "cache",
                              local_exec=False)

        reborn = asyncio.run(restart())
        states = {r.id: r.state for r in reborn.list_jobs()}
        assert len(states) == 2
        assert all(s == JobState.QUEUED for s in states.values())
        assert reborn.journal.quarantined == 1
        assert reborn.journal.quarantine_path.exists()
