"""Regression tests for EU arbitration and SEND statistics accounting."""

import numpy as np

from repro.core.stats import CompactionStats
from repro.eu.eu import ExecutionUnit
from repro.eu.thread import EUThread
from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.memory.hierarchy import MemoryHierarchy, MemoryParams
from repro.isa.types import DType


def _independent_movs(count: int = 4):
    """Program of *count* MOVs to distinct registers (never scoreboarded)."""
    b = KernelBuilder("arb", 16)
    for _ in range(count):
        b.mov(b.vreg(DType.F32), 1.5)
    return b.finish()


def _eu(**config_kwargs):
    config = GpuConfig(num_eus=1, **config_kwargs)
    return ExecutionUnit(0, config, MemoryHierarchy(MemoryParams()),
                         CompactionStats(), CompactionStats())


class TestRotatingArbiterStarvation:
    """The rotating pointer must advance past the slot that *issued*.

    Rotating past the head of the arbitration order instead demotes a
    stalled head thread to lowest priority every pass — the threads
    behind it can then starve it indefinitely.
    """

    def test_pointer_rotates_past_issuing_slot_not_order_head(self):
        eu = _eu()
        stalled = EUThread(0, _independent_movs(), 0xFFFF, start_cycle=100)
        ready = EUThread(1, _independent_movs(), 0xFFFF)
        eu.threads[0] = stalled
        eu.threads[3] = ready

        eu.step(0)  # slot 0 is dispatch-stalled; slot 3 issues

        assert ready.instructions_executed == 1
        assert stalled.instructions_executed == 0
        # Rotate past slot 3 (the issuer).  The buggy arbiter rotated
        # past order[0] == 0, putting the stalled head dead last.
        assert eu._rr == 4

    def test_stalled_head_keeps_priority_once_ready(self):
        eu = _eu(issue_width=1)
        stalled = EUThread(0, _independent_movs(), 0xFFFF, start_cycle=100)
        ready = EUThread(1, _independent_movs(), 0xFFFF)
        eu.threads[0] = stalled
        eu.threads[3] = ready

        eu.step(0)
        stalled.stall_until = 0  # the head thread becomes ready

        # Next contended pass (cycle 4: the first MOV drains the FPU
        # pipe for 4 quad cycles): the head must beat the slot-3 thread
        # that issued last pass.  Under the buggy rotation slot 3 stayed
        # ahead of slot 0 and won every subsequent pass.
        eu.step(4)
        assert stalled.instructions_executed == 1
        assert ready.instructions_executed == 1


class TestSendRfAccounting:
    def test_send_records_actual_operand_counts(self):
        # 3 loads (1 address read + 1 result write) and 2 stores
        # (value + address reads, no writeback): each moves 2 operands
        # over SIMD16's 4 quads = 8 half-register accesses.  The old
        # code recorded every SEND with the ALU default 2 src + 1 dst,
        # inflating each to 12.
        b = KernelBuilder("sendk", 16)
        gid = b.global_id()
        src = b.surface_arg("src")
        out = b.surface_arg("out")
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        val = b.vreg(DType.F32)
        for _ in range(3):
            b.load(val, addr, src)
        for _ in range(2):
            b.store(val, addr, out)
        program = b.finish()

        n = 16  # one SIMD16 thread, fully enabled
        buffers = {"src": np.ones(n, np.float32),
                   "out": np.zeros(n, np.float32)}
        result = GpuSimulator(GpuConfig(num_eus=1)).run(
            program, n, buffers=buffers)

        sends = result.simd_stats.instructions - result.alu_stats.instructions
        assert sends == 5
        send_rf_baseline = (result.simd_stats.rf_accesses_baseline
                            - result.alu_stats.rf_accesses_baseline)
        send_rf_bcc = (result.simd_stats.rf_accesses_bcc
                       - result.alu_stats.rf_accesses_bcc)
        assert send_rf_baseline == 8 * sends
        assert send_rf_bcc == 8 * sends  # full mask: all 4 quads active
