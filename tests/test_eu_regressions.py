"""Regression tests for EU arbitration and SEND statistics accounting."""

import numpy as np
import pytest

from repro.core.stats import CompactionStats
from repro.eu.eu import ExecutionUnit
from repro.eu.thread import EUThread
from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.memory.hierarchy import MemoryHierarchy, MemoryParams
from repro.isa.types import DType


def _independent_movs(count: int = 4):
    """Program of *count* MOVs to distinct registers (never scoreboarded)."""
    b = KernelBuilder("arb", 16)
    for _ in range(count):
        b.mov(b.vreg(DType.F32), 1.5)
    return b.finish()


def _eu(**config_kwargs):
    config = GpuConfig(num_eus=1, **config_kwargs)
    return ExecutionUnit(0, config, MemoryHierarchy(MemoryParams()),
                         CompactionStats(), CompactionStats())


class TestRotatingArbiterStarvation:
    """The rotating pointer must advance past the slot that *issued*.

    Rotating past the head of the arbitration order instead demotes a
    stalled head thread to lowest priority every pass — the threads
    behind it can then starve it indefinitely.
    """

    def test_pointer_rotates_past_issuing_slot_not_order_head(self):
        eu = _eu()
        stalled = EUThread(0, _independent_movs(), 0xFFFF, start_cycle=100)
        ready = EUThread(1, _independent_movs(), 0xFFFF)
        eu.threads[0] = stalled
        eu.threads[3] = ready

        eu.step(0)  # slot 0 is dispatch-stalled; slot 3 issues

        assert ready.instructions_executed == 1
        assert stalled.instructions_executed == 0
        # Rotate past slot 3 (the issuer).  The buggy arbiter rotated
        # past order[0] == 0, putting the stalled head dead last.
        assert eu._rr == 4

    def test_stalled_head_keeps_priority_once_ready(self):
        eu = _eu(issue_width=1)
        stalled = EUThread(0, _independent_movs(), 0xFFFF, start_cycle=100)
        ready = EUThread(1, _independent_movs(), 0xFFFF)
        eu.threads[0] = stalled
        eu.threads[3] = ready

        eu.step(0)
        stalled.stall_until = 0  # the head thread becomes ready

        # Next contended pass (cycle 4: the first MOV drains the FPU
        # pipe for 4 quad cycles): the head must beat the slot-3 thread
        # that issued last pass.  Under the buggy rotation slot 3 stayed
        # ahead of slot 0 and won every subsequent pass.
        eu.step(4)
        assert stalled.instructions_executed == 1
        assert ready.instructions_executed == 1


class TestSendRfAccounting:
    def test_send_records_actual_operand_counts(self):
        # 3 loads (1 address read + 1 result write) and 2 stores
        # (value + address reads, no writeback): each moves 2 operands
        # over SIMD16's 4 quads = 8 half-register accesses.  The old
        # code recorded every SEND with the ALU default 2 src + 1 dst,
        # inflating each to 12.
        b = KernelBuilder("sendk", 16)
        gid = b.global_id()
        src = b.surface_arg("src")
        out = b.surface_arg("out")
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        val = b.vreg(DType.F32)
        for _ in range(3):
            b.load(val, addr, src)
        for _ in range(2):
            b.store(val, addr, out)
        program = b.finish()

        n = 16  # one SIMD16 thread, fully enabled
        buffers = {"src": np.ones(n, np.float32),
                   "out": np.zeros(n, np.float32)}
        result = GpuSimulator(GpuConfig(num_eus=1)).run(
            program, n, buffers=buffers)

        sends = result.simd_stats.instructions - result.alu_stats.instructions
        assert sends == 5
        send_rf_baseline = (result.simd_stats.rf_accesses_baseline
                            - result.alu_stats.rf_accesses_baseline)
        send_rf_bcc = (result.simd_stats.rf_accesses_bcc
                       - result.alu_stats.rf_accesses_bcc)
        assert send_rf_baseline == 8 * sends
        assert send_rf_bcc == 8 * sends  # full mask: all 4 quads active


class TestSendStoreOccupancy:
    """Regression: stores must hold the SEND pipe for their data payload.

    A SIMD16 store moves its address payload (2 GRF registers of I32)
    *and* its data payload (2 registers of F32) out of the register
    file; the old occupancy charged only the address, so back-to-back
    stores issued twice as fast as the RF port allows and the fig09
    SEND-utilization split undercounted store traffic.
    """

    def test_store_occupancy_includes_data_payload(self):
        from repro.eu.eu import _send_occupancy
        from repro.isa.opcodes import Opcode

        b = KernelBuilder("occ", 16)
        surf = b.surface_arg("data")
        gid = b.global_id()
        addr = b.shl(b.vreg(DType.I32), gid, 2)
        val = b.mov(b.vreg(DType.F32), 1.0)
        b.store(val, addr, surf)
        b.load(b.vreg(DType.F32), addr, surf)
        program = b.finish()

        load = next(i for i in program.instructions
                    if i.opcode is Opcode.LOAD)
        store = next(i for i in program.instructions
                     if i.opcode is Opcode.STORE)
        addr_regs = len(addr.regs(16))
        data_regs = len(val.regs(16))
        assert _send_occupancy(load) == addr_regs
        assert _send_occupancy(store) == addr_regs + data_regs

    def test_send_pipe_busy_cycles_charge_store_payload(self):
        # End-to-end: one SIMD16 thread, one load and one store.  The
        # SEND pipe must be busy for 2 (load address) + 4 (store address
        # + data) cycles; the pre-fix occupancy yielded 4 total.
        b = KernelBuilder("occ2", 16)
        surf = b.surface_arg("data")
        gid = b.global_id()
        addr = b.shl(b.vreg(DType.I32), gid, 2)
        x = b.load(b.vreg(DType.F32), addr, surf)
        b.store(b.add(b.vreg(DType.F32), x, 1.0), addr, surf)
        program = b.finish()

        buffers = {"data": np.ones(16, np.float32)}
        result = GpuSimulator(GpuConfig(num_eus=1)).run(
            program, 16, buffers=buffers)
        assert result.send_busy_cycles == 6
        np.testing.assert_array_equal(buffers["data"], 2.0)


def _random_alu_program(rng):
    """Random SIMD8 dependency chain across the FPU and EM pipes."""
    b = KernelBuilder(f"ne{rng.randrange(1 << 30)}", 8)
    regs = [b.mov(b.vreg(DType.F32), 1.5)]
    for _ in range(rng.randrange(4, 10)):
        if rng.random() < 0.3:
            regs.append(b.sqrt(b.vreg(DType.F32), rng.choice(regs)))
        else:
            regs.append(b.add(b.vreg(DType.F32), rng.choice(regs),
                              rng.choice(regs)))
    return b.finish()


class TestNextEventBruteForce:
    """`next_event` pinned against stepping every cycle.

    The event accelerator is only allowed to *skip* cycles the EU
    provably cannot issue on.  For random dependency chains, staggered
    dispatch times, and every issue period 1..4, the issue history
    (cycle, cumulative instructions) of an EU driven via ``next_event``
    hops must be identical to the same EU stepped at every single
    cycle — a floor that is ever too high would delay an issue and
    diverge the histories.
    """

    @staticmethod
    def _drive(seed, issue_period, event_driven):
        import random

        rng = random.Random(seed)
        config = GpuConfig(num_eus=1, issue_period=issue_period)
        eu = ExecutionUnit(0, config, MemoryHierarchy(MemoryParams()),
                           CompactionStats(), CompactionStats())
        num_threads = rng.randrange(2, 5)
        programs = [_random_alu_program(rng) for _ in range(num_threads)]
        for i, program in enumerate(programs):
            eu.add_thread(EUThread(i, program, 0xFF,
                                   start_cycle=rng.randrange(0, 7)))
        history = []
        issued = 0
        now = 0
        for _ in range(100_000):
            eu.step(now)
            if eu.instructions_issued != issued:
                issued = eu.instructions_issued
                history.append((now, issued))
            if eu.threads_retired == num_threads:
                return history
            now = eu.next_event(now) if event_driven else now + 1
        raise AssertionError("EU failed to drain within the horizon")

    @pytest.mark.parametrize("issue_period", (1, 2, 3, 4))
    @pytest.mark.parametrize("seed", range(6))
    def test_event_hops_match_cycle_scan(self, seed, issue_period):
        brute = self._drive(seed, issue_period, event_driven=False)
        hops = self._drive(seed, issue_period, event_driven=True)
        assert hops == brute

    @pytest.mark.parametrize("issue_period", (1, 3))
    def test_next_event_is_aligned_and_future(self, issue_period):
        eu = ExecutionUnit(0, GpuConfig(num_eus=1,
                                        issue_period=issue_period),
                           MemoryHierarchy(MemoryParams()),
                           CompactionStats(), CompactionStats())
        eu.add_thread(EUThread(0, _independent_movs(), 0xFFFF,
                               start_cycle=17))
        for now in range(0, 24):
            nxt = eu.next_event(now)
            assert nxt > now
            assert nxt % issue_period == 0
