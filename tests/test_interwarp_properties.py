"""Property tests for the TBC-class inter-warp compaction schedule."""

from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.interwarp import (
    ideal_compacted_warps,
    tbc_compacted_warps,
    tbc_memory_lines,
    tbc_schedule,
)
from repro.core.quads import popcount

mask_groups = st.lists(st.integers(min_value=0, max_value=0xFFFF),
                       min_size=1, max_size=8)


class TestScheduleProperties:
    @given(mask_groups)
    def test_thread_conservation(self, masks):
        """Compaction must neither drop nor duplicate threads."""
        schedule = tbc_schedule(masks, 16)
        total_in = sum(popcount(m) for m in masks)
        total_out = sum(popcount(mask) for mask, _src in schedule)
        assert total_out == total_in

    @given(mask_groups)
    def test_lane_conservation(self, masks):
        """Per lane position, exactly as many output slots as inputs
        (home lanes are preserved -- the defining TBC constraint)."""
        schedule = tbc_schedule(masks, 16)
        for lane in range(16):
            in_count = sum((m >> lane) & 1 for m in masks)
            out_count = sum((mask >> lane) & 1 for mask, _s in schedule)
            if in_count == 0:
                assert out_count == 0
        for lane in range(16):
            in_count = sum((m >> lane) & 1 for m in masks)
            out_count = sum((mask >> lane) & 1 for mask, _s in schedule)
            assert out_count == in_count

    @given(mask_groups)
    def test_warp_count_matches_occupancy_bound(self, masks):
        schedule = tbc_schedule(masks, 16)
        assert len(schedule) == tbc_compacted_warps(masks, 16)

    @given(mask_groups)
    def test_first_warp_is_densest(self, masks):
        """Greedy per-lane filling makes compacted warp masks
        monotonically non-increasing in population."""
        schedule = tbc_schedule(masks, 16)
        pops = [popcount(mask) for mask, _src in schedule]
        assert pops == sorted(pops, reverse=True)

    @given(mask_groups)
    def test_sources_bounded_by_group_size(self, masks):
        for _mask, sources in tbc_schedule(masks, 16):
            assert 1 <= sources <= len(masks)

    @given(mask_groups)
    def test_memory_lines_bounded(self, masks):
        """Each compacted warp touches between 1 and group-size line
        groups; totals stay within [issued, total_threads] bounds."""
        lines = tbc_memory_lines(masks, 16)
        issued = tbc_compacted_warps(masks, 16)
        nonempty = sum(1 for m in masks if m)
        assert issued <= lines <= issued * max(nonempty, 1)

    @given(mask_groups)
    def test_ideal_never_above_tbc(self, masks):
        assert ideal_compacted_warps(masks, 16) <= max(
            tbc_compacted_warps(masks, 16),
            ideal_compacted_warps(masks, 16))

    @given(mask_groups)
    def test_single_warp_group_is_identity(self, masks):
        schedule = tbc_schedule(masks[:1], 16)
        if masks[0] == 0:
            assert schedule == []
        else:
            assert schedule == [(masks[0], 1)]
