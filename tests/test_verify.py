"""Tests for the cross-policy differential verification harness."""

import json

import pytest

from repro.cli import main
from repro.core.policy import POLICY_ORDER, CompactionPolicy
from repro.core.stats import CompactionStats
from repro.errors import DeadlockError, JobTimeoutError
from repro.gpu.config import GpuConfig
from repro.gpu.results import KernelRunResult
from repro.runner import Runner
from repro.verify import (
    ARTIFACT_SCHEMA,
    PropertyReport,
    VerifyReport,
    Violation,
    WorkloadVerdict,
    error_verdict,
    run_differential,
    verifiable_workloads,
    verify_workload_results,
)


def _stats(events=((0xF0F0, 16),)):
    stats = CompactionStats(min_cycles=1)
    for mask, width in events:
        stats.record(mask, width)
    return stats


def _result(policy, total_cycles=100, digest="d" * 64, stats=None,
            instructions=None, **overrides):
    stats = stats if stats is not None else _stats()
    fields = dict(
        kernel="k", policy=policy, total_cycles=total_cycles,
        instructions=(instructions if instructions is not None
                      else stats.instructions),
        alu_stats=stats, simd_stats=stats, l3_hits=0, l3_accesses=0,
        llc_hits=0, llc_accesses=0, dc_lines=0, dram_lines=0,
        memory_messages=0, lines_requested=0, workgroups=1,
        buffers_digest=digest)
    fields.update(overrides)
    return KernelRunResult(**fields)


def _clean_results(**per_policy_overrides):
    """Four consistent policy runs (timed cycles properly ordered)."""
    cycles = {CompactionPolicy.RAW: 400, CompactionPolicy.IVB: 300,
              CompactionPolicy.BCC: 200, CompactionPolicy.SCC: 100}
    results = {}
    for policy in POLICY_ORDER:
        kwargs = {"total_cycles": cycles[policy],
                  **per_policy_overrides.get(policy.value, {})}
        results[policy] = _result(policy, **kwargs)
    return results


class TestVerifyWorkloadResults:
    def test_clean_results_pass(self):
        assert verify_workload_results("w", _clean_results()) == []

    def test_missing_policy_run(self):
        results = _clean_results()
        del results[CompactionPolicy.SCC]
        (violation,) = verify_workload_results("w", results)
        assert violation.check == "missing-run"
        assert "scc" in violation.message

    def test_differing_buffer_digests(self):
        results = _clean_results(scc={"digest": "e" * 64})
        checks = {v.check for v in verify_workload_results("w", results)}
        assert "functional-identity" in checks

    def test_missing_digest_flagged(self):
        results = _clean_results(bcc={"digest": None})
        checks = {v.check for v in verify_workload_results("w", results)}
        assert "functional-identity" in checks

    def test_differing_instruction_counts(self):
        results = _clean_results(ivb={"instructions": 999})
        checks = {v.check for v in verify_workload_results("w", results)}
        assert "instruction-count" in checks

    def test_differing_stats_fingerprints(self):
        divergent = _stats(((0x000F, 16),))  # efficiency 0.25, not 0.5
        results = _clean_results(scc={"stats": divergent})
        checks = {v.check for v in verify_workload_results("w", results)}
        assert "stats-identity" in checks
        assert "simd-efficiency" in checks

    def test_mask_nondeterministic_relaxes_stats_only(self):
        divergent = _stats(((0x00FF, 16),))  # same count, different mask
        results = _clean_results(scc={"stats": divergent})
        violations = verify_workload_results("w", results,
                                             mask_deterministic=False)
        assert violations == []
        # But functional identity is never relaxed.
        results = _clean_results(scc={"digest": "e" * 64})
        checks = {v.check for v in verify_workload_results(
            "w", results, mask_deterministic=False)}
        assert "functional-identity" in checks

    def test_wrong_policy_label(self):
        results = _clean_results()
        results[CompactionPolicy.SCC] = _result(
            CompactionPolicy.BCC, total_cycles=100)
        checks = {v.check for v in verify_workload_results("w", results)}
        assert "policy-label" in checks

    def test_timed_ordering_violation(self):
        results = _clean_results(scc={"total_cycles": 250})  # > BCC's 200
        (violation,) = verify_workload_results("w", results)
        assert violation.check == "timed-cycle-ordering"
        assert "scc=250" in violation.message

    def test_timed_tolerance_absorbs_interleaving_noise(self):
        results = _clean_results(scc={"total_cycles": 201})
        assert verify_workload_results("w", results) != []
        assert verify_workload_results("w", results,
                                       timed_tolerance=0.01) == []


class TestReportAndArtifact:
    def test_exit_codes(self):
        clean = VerifyReport(workloads=[WorkloadVerdict("a")])
        assert clean.passed and clean.exit_code() == 0

        bad = VerifyReport(workloads=[WorkloadVerdict(
            "a", violations=[Violation("a", "c", "m")])])
        assert not bad.passed and bad.exit_code() == 1

        err = VerifyReport(workloads=[
            error_verdict("a", JobTimeoutError("too slow"))])
        assert not err.passed and err.exit_code() == 4
        assert error_verdict("b", DeadlockError("stuck")).error_exit == 3

    def test_violations_trump_error_exit(self):
        report = VerifyReport(workloads=[
            error_verdict("a", JobTimeoutError("slow")),
            WorkloadVerdict("b", violations=[Violation("b", "c", "m")]),
        ])
        assert report.exit_code() == 1

    def test_artifact_schema_and_counts(self):
        report = VerifyReport(
            workloads=[WorkloadVerdict("a"),
                       WorkloadVerdict("b", violations=[
                           Violation("b", "chk", "msg")])],
            properties=[PropertyReport("p", cases=10, seed=3)])
        artifact = json.loads(json.dumps(report.as_artifact()))
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["passed"] is False
        assert artifact["exit_code"] == 1
        assert artifact["counts"] == {
            "workloads": 2, "workloads_passed": 1, "violations": 1,
            "errors": 0, "property_cases": 10}
        assert artifact["workloads"][1]["violations"][0]["check"] == "chk"
        assert artifact["properties"][0]["seed"] == 3

    def test_summary_lines_name_every_violation(self):
        report = VerifyReport(workloads=[
            WorkloadVerdict("a", violations=[Violation("a", "chk", "boom")]),
            error_verdict("b", DeadlockError("stuck")),
        ])
        text = "\n".join(report.summary_lines())
        assert "VIOLATION [a] chk: boom" in text
        assert "ERROR [b]" in text


class TestRunDifferential:
    def test_registry_excludes_faults(self):
        names = verifiable_workloads()
        assert "va" in names and "bfs" in names
        assert not any(name.startswith("fault_") for name in names)

    def test_live_differential_on_small_workload(self):
        runner = Runner(workers=1, cache=False)
        (verdict,) = run_differential(["va"], GpuConfig(), runner)
        assert verdict.workload == "va"
        assert verdict.passed, verdict.violations
        digests = {metrics["buffers_digest"]
                   for metrics in verdict.metrics.values()}
        assert len(digests) == 1 and None not in digests
        assert set(verdict.metrics) == {"raw", "ivb", "bcc", "scc"}

    def test_failing_workload_yields_error_verdict(self):
        runner = Runner(workers=1, cache=False, timeout=0.001, retries=0)
        (verdict,) = run_differential(["mm"], GpuConfig(), runner)
        assert not verdict.passed
        assert verdict.error is not None
        assert verdict.error_exit == 4


class TestVerifyCli:
    def test_unknown_workload_is_usage_error(self, capsys):
        assert main(["verify", "--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_fault_workload_rejected(self, capsys):
        from repro.kernels import FAULT_WORKLOADS

        fault = sorted(FAULT_WORKLOADS)[0]
        assert main(["verify", "--workloads", fault]) == 2
        assert "fault-injection" in capsys.readouterr().err

    def test_negative_fuzz_rejected(self, capsys):
        assert main(["verify", "--workloads", "va", "--fuzz", "-1"]) == 2

    def test_verify_passes_and_writes_artifact(self, tmp_path, capsys):
        artifact_path = tmp_path / "verify.json"
        code = main(["verify", "--workloads", "va", "--fuzz", "25",
                     "--no-cache", "--json", str(artifact_path)])
        captured = capsys.readouterr()
        assert code == 0
        artifact = json.loads(artifact_path.read_text())
        assert artifact["passed"] is True
        # One cross-policy verdict plus the interp-vs-fast parity verdict.
        assert artifact["counts"]["workloads"] == 2
        names = [w["workload"] for w in artifact["workloads"]]
        assert names == ["va", "va@engines"]
        assert {p["name"] for p in artifact["properties"]} >= {
            "cycle-model", "unswizzle-inversion", "crossbar-roundtrip",
            "sim-vs-profiler"}
        assert "2/2 workload(s) passed" in captured.err
        assert "cross-policy differential verification" in captured.out
        assert "engine parity" in captured.out
