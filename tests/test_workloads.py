"""Functional verification of the workload suite (small problem sizes).

Every workload's device results are checked against its host reference
inside ``run_workload(verify=True)``, so each test here certifies both
that the kernel executes and that it computes the right answer.
"""

import numpy as np
import pytest

from repro.gpu import GpuConfig
from repro.kernels import (
    WORKLOAD_REGISTRY,
    bfs,
    binomial_option,
    black_scholes,
    box_filter,
    dot_product,
    eigenvalue,
    gaussian_noise,
    hotspot,
    kmeans_assign,
    knn,
    lavamd,
    matrix_multiply,
    matrix_vector,
    mersenne_mix,
    monte_carlo_asian,
    nw,
    particlefilter,
    run_workload,
    scan_reduce,
    sobel,
    transpose,
    vector_add,
)
from repro.kernels.raytracing import ambient_occlusion, primary_rays

CONFIG = GpuConfig()


def _run(workload):
    return run_workload(workload, CONFIG, verify=True)


class TestCoherentWorkloads:
    def test_vector_add(self):
        result = _run(vector_add(n=512))
        assert result.simd_efficiency > 0.99

    def test_dot_product(self):
        result = _run(dot_product(n=512))
        assert result.simd_efficiency > 0.99

    def test_matrix_vector(self):
        result = _run(matrix_vector(rows=64, cols=32))
        assert result.simd_efficiency > 0.99

    def test_transpose(self):
        result = _run(transpose(dim=32))
        assert result.simd_efficiency > 0.99

    def test_matrix_multiply(self):
        result = _run(matrix_multiply(dim=16))
        assert result.simd_efficiency > 0.99

    def test_black_scholes(self):
        result = _run(black_scholes(n=256))
        assert result.simd_efficiency > 0.99

    def test_binomial(self):
        result = _run(binomial_option(n=128, depth=8))
        assert result.simd_efficiency > 0.99

    def test_box_filter(self):
        result = _run(box_filter(dim=24))
        assert result.simd_efficiency > 0.95

    def test_mersenne(self):
        result = _run(mersenne_mix(n=256, rounds=8))
        assert result.simd_efficiency > 0.99


class TestDivergentWorkloads:
    def test_monte_carlo_asian(self):
        result = _run(monte_carlo_asian(n=256, max_steps=12))
        assert result.simd_efficiency < 1.0

    def test_sobel(self):
        result = _run(sobel(dim=24))
        assert result.simd_efficiency < 1.0

    def test_gaussian_noise(self):
        result = _run(gaussian_noise(n=256))
        assert result.simd_efficiency < 0.95

    def test_kmeans(self):
        result = _run(kmeans_assign(num_points=256, num_clusters=4))
        assert result.simd_efficiency < 1.0

    def test_knn(self):
        result = _run(knn(num_points=64, num_queries=64))
        assert result.instructions > 0

    def test_eigenvalue(self):
        result = _run(eigenvalue(matrix_dim=8, bisect_iters=16))
        assert result.simd_efficiency < 1.0

    def test_scan_reduce(self):
        result = _run(scan_reduce(n=256, local_size=64))
        assert result.simd_efficiency < 0.95


class TestRodiniaWorkloads:
    def test_bfs(self):
        result = _run(bfs(num_nodes=256, avg_degree=4))
        assert result.simd_efficiency < 0.6  # frontier sparsity

    def test_hotspot(self):
        result = _run(hotspot(dim=24, iterations=2))
        assert result.simd_efficiency < 1.0

    def test_lavamd(self):
        result = _run(lavamd(num_particles=128, max_neighbors=12))
        assert result.simd_efficiency < 0.7

    def test_nw(self):
        result = _run(nw(dim=24))
        assert result.simd_efficiency < 0.95

    def test_particlefilter(self):
        result = _run(particlefilter(num_particles=128))
        assert result.instructions > 0


class TestRayTracingWorkloads:
    def test_primary_rays(self):
        result = _run(primary_rays("conf", width_px=16))
        assert result.simd_efficiency < 1.0

    def test_primary_rays_scene_variation(self):
        dense = _run(primary_rays("conf", width_px=16))
        sparse = _run(primary_rays("wm", width_px=16))
        assert dense.kernel != sparse.kernel

    def test_ambient_occlusion_simd8(self):
        result = _run(ambient_occlusion("al", width_px=12, simd_width=8,
                                        ao_samples=2))
        assert result.simd_efficiency < 0.9

    def test_ambient_occlusion_simd16(self):
        result = _run(ambient_occlusion("al", width_px=12, simd_width=16,
                                        ao_samples=2))
        assert result.simd_efficiency < 0.9

    def test_simd16_less_efficient_than_simd8(self):
        # Paper: wider SIMD suffers more from divergence.
        r8 = _run(ambient_occlusion("bl", width_px=12, simd_width=8,
                                    ao_samples=2))
        r16 = _run(ambient_occlusion("bl", width_px=12, simd_width=16,
                                     ao_samples=2))
        assert r16.simd_efficiency < r8.simd_efficiency


class TestRegistry:
    def test_registry_complete(self):
        assert len(WORKLOAD_REGISTRY) >= 30

    def test_factories_return_fresh_instances(self):
        a = WORKLOAD_REGISTRY["va"]()
        b = WORKLOAD_REGISTRY["va"]()
        assert a.buffers["c"] is not b.buffers["c"]

    def test_workload_names_match_keys(self):
        for name in ("va", "bfs", "hotspot", "mca"):
            assert WORKLOAD_REGISTRY[name]().name == name

    def test_check_detects_corruption(self):
        workload = vector_add(n=64)
        _run(workload)
        workload.buffers["c"][0] += 1.0
        with pytest.raises(AssertionError):
            workload.verify()
