"""Tests for the trace package: format, profiler, synthesis, workloads."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import CompactionPolicy
from repro.core.quads import popcount
from repro.trace import (
    EXPECTED_SCC_REDUCTION_BANDS,
    TRACE_PROFILES,
    PatternFamily,
    SyntheticProfile,
    TraceEvent,
    generate_trace_list,
    load_trace,
    profile_many,
    profile_trace,
    trace_events,
    trace_names,
    write_trace,
)


class TestTraceEvent:
    def test_valid(self):
        TraceEvent(16, 0xF0F0)

    def test_mask_must_fit_width(self):
        with pytest.raises(ValueError):
            TraceEvent(8, 0x100)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            TraceEvent(7, 0)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            TraceEvent(16, 0xF, dtype_factor=0)


class TestTraceFormat:
    def test_round_trip(self):
        events = [TraceEvent(16, 0xF0F0), TraceEvent(8, 0x0F, 2)]
        buffer = io.StringIO()
        count = write_trace(events, buffer)
        assert count == 2
        buffer.seek(0)
        assert load_trace(buffer) == events

    def test_round_trip_via_file(self, tmp_path):
        events = [TraceEvent(16, mask) for mask in (0, 0xFFFF, 0xAAAA)]
        path = tmp_path / "trace.txt"
        write_trace(events, path)
        assert load_trace(path) == events

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n16 f0f0 1\n  # another\n8 0f\n"
        events = load_trace(io.StringIO(text))
        assert events == [TraceEvent(16, 0xF0F0), TraceEvent(8, 0x0F)]

    def test_malformed_line(self):
        with pytest.raises(ValueError, match="line 1"):
            load_trace(io.StringIO("16\n"))

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=50))
    @settings(max_examples=25)
    def test_round_trip_property(self, masks):
        events = [TraceEvent(16, mask) for mask in masks]
        buffer = io.StringIO()
        write_trace(events, buffer)
        buffer.seek(0)
        assert load_trace(buffer) == events


class TestProfiler:
    def test_f0f0_profile(self):
        profile = profile_trace("t", [TraceEvent(16, 0xF0F0)] * 10)
        assert profile.simd_efficiency == 0.5
        assert profile.bcc_reduction_pct == pytest.approx(50.0)
        assert profile.scc_reduction_pct == pytest.approx(50.0)
        assert profile.scc_additional_pct == pytest.approx(0.0)

    def test_strided_needs_scc(self):
        profile = profile_trace("t", [TraceEvent(16, 0x1111)] * 10)
        assert profile.bcc_reduction_pct == pytest.approx(0.0)
        assert profile.scc_reduction_pct == pytest.approx(75.0)

    def test_divergence_classification(self):
        coherent = profile_trace("c", [TraceEvent(16, 0xFFFF)] * 10)
        divergent = profile_trace("d", [TraceEvent(16, 0x00FF)] * 10)
        assert not coherent.divergent
        assert divergent.divergent

    def test_profile_many_preserves_order(self):
        profiles = profile_many({
            "b": [TraceEvent(16, 0xFFFF)],
            "a": [TraceEvent(16, 0x000F)],
        })
        assert list(profiles) == ["b", "a"]

    def test_summary(self):
        summary = profile_trace("t", [TraceEvent(16, 0x00FF)]).summary()
        assert summary["divergent"] == 1.0


class TestSynthesis:
    def _profile(self, family, active=4, width=16, n=200):
        return SyntheticProfile(
            name="p",
            num_instructions=n,
            width_mix=((width, 1.0),),
            active_histogram=((active, 1.0),),
            pattern_weights=((family, 1.0),),
            seed=7,
        )

    @pytest.mark.parametrize("family", list(PatternFamily))
    def test_active_counts_respected(self, family):
        events = generate_trace_list(self._profile(family))
        for event in events:
            assert popcount(event.mask) == 4

    def test_deterministic(self):
        profile = self._profile(PatternFamily.SCATTERED)
        assert generate_trace_list(profile) == generate_trace_list(profile)

    def test_quad_aligned_is_bcc_friendly(self):
        from repro.core.bcc import is_bcc_friendly

        events = generate_trace_list(self._profile(PatternFamily.QUAD_ALIGNED))
        assert all(is_bcc_friendly(e.mask, e.width) for e in events)

    def test_full_mask_shortcut(self):
        events = generate_trace_list(self._profile(PatternFamily.SCATTERED,
                                                   active=16))
        assert all(e.mask == 0xFFFF for e in events)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticProfile("p", 0, ((16, 1.0),), ((4, 1.0),),
                             ((PatternFamily.SCATTERED, 1.0),))

    def test_strided_pattern_hurts_bcc(self):
        strided = profile_trace(
            "s", generate_trace_list(self._profile(PatternFamily.STRIDED)))
        aligned = profile_trace(
            "a", generate_trace_list(self._profile(PatternFamily.QUAD_ALIGNED)))
        assert strided.bcc_reduction_pct < aligned.bcc_reduction_pct
        # Stride-4 masks give SCC 75 %; stride-2 masks confine lanes to
        # one half, firing the IVB rewrite first, so the mix lands lower.
        assert 60.0 < strided.scc_reduction_pct <= 75.0


class TestCalibratedWorkloads:
    def test_all_profiles_have_bands(self):
        assert set(TRACE_PROFILES) == set(EXPECTED_SCC_REDUCTION_BANDS)

    def test_names(self):
        names = trace_names()
        assert "luxmark_sky" in names and "fd_politicians" in names

    @pytest.mark.parametrize("name", sorted(TRACE_PROFILES))
    def test_scc_reduction_in_paper_band(self, name):
        profile = profile_trace(name, trace_events(name))
        lo, hi = EXPECTED_SCC_REDUCTION_BANDS[name]
        assert lo <= profile.scc_reduction_pct <= hi, (
            f"{name}: SCC reduction {profile.scc_reduction_pct:.1f}% "
            f"outside paper band [{lo}, {hi}]"
        )

    @pytest.mark.parametrize("name", sorted(TRACE_PROFILES))
    def test_all_traces_divergent(self, name):
        profile = profile_trace(name, trace_events(name))
        assert profile.divergent

    def test_scc_subsumes_bcc_everywhere(self):
        for name in TRACE_PROFILES:
            profile = profile_trace(name, trace_events(name))
            assert profile.scc_reduction_pct >= profile.bcc_reduction_pct

    def test_luxmark_is_simd8(self):
        events = generate_trace_list(TRACE_PROFILES["luxmark_sky"])
        assert {e.width for e in events} == {8}

    def test_glbench_scc_dominated(self):
        # Paper: GLBench benefit comes mostly from SCC.
        profile = profile_trace("glbench_egypt", trace_events("glbench_egypt"))
        assert profile.scc_additional_pct > profile.bcc_reduction_pct
