"""Unit and property tests for Swizzled Cycle Compression (paper Fig. 6/7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bcc import bcc_cycles
from repro.core.quads import optimal_cycles, popcount
from repro.core.scc import (
    LaneSlot,
    scc_additional_savings,
    scc_cycles,
    scc_schedule,
    swizzle_settings_for_cycle,
)

masks16 = st.integers(min_value=0, max_value=0xFFFF)
masks8 = st.integers(min_value=0, max_value=0xFF)
masks32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestLaneSlot:
    def test_swizzled_flag(self):
        assert not LaneSlot(quad=1, src_lane=2, out_lane=2).swizzled
        assert LaneSlot(quad=1, src_lane=2, out_lane=0).swizzled

    def test_global_lane(self):
        assert LaneSlot(quad=2, src_lane=3, out_lane=0).global_lane == 11


class TestSccCycles:
    @pytest.mark.parametrize(
        "mask,expected",
        [(0x0000, 0), (0x0001, 1), (0xAAAA, 2), (0x1111, 1), (0xFFFF, 4),
         (0x5555, 2), (0x0101, 1), (0xF0F0, 2)],
    )
    def test_known_masks(self, mask, expected):
        assert scc_cycles(mask, 16) == expected

    @given(masks16)
    def test_equals_optimal(self, mask):
        assert scc_cycles(mask, 16) == optimal_cycles(mask, 16)

    def test_dtype_factor(self):
        assert scc_cycles(0xAAAA, 16, dtype_factor=2) == 4


class TestPaperFigure7Example:
    """The worked example of paper Figure 7: mask 0101 0101 0101 0101."""

    MASK = 0b0101_0101_0101_0101  # lanes 0 and 2 of every quad

    def test_two_cycles(self):
        schedule = scc_schedule(self.MASK, 16)
        assert schedule.cycle_count == 2  # 8 active lanes / 4

    def test_not_bcc_only(self):
        schedule = scc_schedule(self.MASK, 16)
        assert not schedule.bcc_only  # BCC alone would need 4 cycles
        assert bcc_cycles(self.MASK, 16) == 4

    def test_four_swizzles_total(self):
        # Figure 7 shows two swizzles per cycle (L1->L0-type moves are
        # from surplus lanes 0 and 2 into empty slots 1 and 3).
        schedule = scc_schedule(self.MASK, 16)
        assert schedule.swizzle_count == 4

    def test_every_cycle_fully_packed(self):
        schedule = scc_schedule(self.MASK, 16)
        for cycle in schedule.cycles:
            assert len(cycle) == 4

    def test_covers_exactly_active_lanes(self):
        schedule = scc_schedule(self.MASK, 16)
        expected = [l for l in range(16) if (self.MASK >> l) & 1]
        assert sorted(schedule.covered_lanes()) == expected


class TestSccScheduleInvariants:
    @given(masks16)
    def test_partition_of_active_lanes_simd16(self, mask):
        schedule = scc_schedule(mask, 16)
        covered = sorted(schedule.covered_lanes())
        assert covered == [l for l in range(16) if (mask >> l) & 1]

    @given(masks8)
    def test_partition_of_active_lanes_simd8(self, mask):
        schedule = scc_schedule(mask, 8)
        covered = sorted(schedule.covered_lanes())
        assert covered == [l for l in range(8) if (mask >> l) & 1]

    @given(masks32)
    def test_partition_of_active_lanes_simd32(self, mask):
        schedule = scc_schedule(mask, 32)
        covered = sorted(schedule.covered_lanes())
        assert covered == [l for l in range(32) if (mask >> l) & 1]

    @given(masks16)
    def test_cycle_count_is_optimal(self, mask):
        assert scc_schedule(mask, 16).cycle_count == optimal_cycles(mask, 16)

    @given(masks16)
    def test_no_output_slot_driven_twice(self, mask):
        for cycle in scc_schedule(mask, 16).cycles:
            outs = [slot.out_lane for slot in cycle]
            assert len(outs) == len(set(outs))

    @given(masks16)
    def test_at_most_four_slots_per_cycle(self, mask):
        for cycle in scc_schedule(mask, 16).cycles:
            assert len(cycle) <= 4

    @given(masks16)
    def test_bcc_only_flag_consistency(self, mask):
        schedule = scc_schedule(mask, 16)
        if schedule.bcc_only:
            assert bcc_cycles(mask, 16) == optimal_cycles(mask, 16)
            assert schedule.swizzle_count == 0

    @given(masks16)
    def test_unswizzle_is_inverse(self, mask):
        schedule = scc_schedule(mask, 16)
        for cycle, unswizzle in zip(schedule.cycles, schedule.unswizzle_settings()):
            routed = {out: (q, lane) for out, q, lane in unswizzle}
            for slot in cycle:
                assert routed[slot.out_lane] == (slot.quad, slot.src_lane)

    @given(masks16)
    def test_deterministic(self, mask):
        assert scc_schedule(mask, 16) == scc_schedule(mask, 16)


class TestSccAdditionalSavings:
    @given(masks16)
    def test_definition(self, mask):
        assert scc_additional_savings(mask, 16) == (
            bcc_cycles(mask, 16) - scc_cycles(mask, 16)
        )

    def test_strided_mask_saves_beyond_bcc(self):
        # 0x1111 (one lane per quad): BCC 4 cycles, SCC 1 cycle.
        assert scc_additional_savings(0x1111, 16) == 3


class TestSwizzleSettings:
    def test_settings_for_packed_cycle(self):
        schedule = scc_schedule(0b0101_0101_0101_0101, 16)
        settings = swizzle_settings_for_cycle(schedule.cycles[0])
        assert len(settings) == 4
        assert all(s is not None for s in settings)

    def test_disabled_slots_are_none(self):
        schedule = scc_schedule(0x0001, 16)
        settings = swizzle_settings_for_cycle(schedule.cycles[0])
        assert settings[0] == (0, 0)
        assert settings[1:] == [None, None, None]

    def test_duplicate_out_lane_rejected(self):
        bad = (LaneSlot(0, 0, 0), LaneSlot(1, 1, 0))
        with pytest.raises(ValueError):
            swizzle_settings_for_cycle(bad)


class TestEmptyMask:
    def test_zero_cycles(self):
        schedule = scc_schedule(0, 16)
        assert schedule.cycle_count == 0
        assert schedule.cycles == ()
        assert schedule.bcc_only
