"""Tests for the ISA layer: types, opcodes, registers, instructions."""

import numpy as np
import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import ALU_OPCODES, Opcode, Pipe
from repro.isa.registers import NUM_GRF_REGS, FlagRef, Imm, RegRef, as_operand
from repro.isa.types import GRF_REG_BYTES, CmpOp, DType


class TestDType:
    def test_sizes(self):
        assert DType.F32.size == 4
        assert DType.F64.size == 8

    def test_dtype_factor(self):
        assert DType.F32.dtype_factor == 1
        assert DType.I32.dtype_factor == 1
        assert DType.F64.dtype_factor == 2
        assert DType.I64.dtype_factor == 2

    def test_regs_for_width_simd16_f32(self):
        # The paper's ADD(16) example: each operand spans a register pair.
        assert DType.F32.regs_for_width(16) == 2

    def test_regs_for_width_simd8_f32(self):
        assert DType.F32.regs_for_width(8) == 1

    def test_regs_for_width_simd16_f64(self):
        assert DType.F64.regs_for_width(16) == 4

    def test_regs_for_width_subregister(self):
        assert DType.F32.regs_for_width(1) == 1

    def test_bad_width(self):
        with pytest.raises(ValueError):
            DType.F32.regs_for_width(0)

    def test_is_float(self):
        assert DType.F32.is_float and DType.F64.is_float
        assert not DType.I32.is_float


class TestCmpOp:
    @pytest.mark.parametrize("op,a,b,expected", [
        (CmpOp.EQ, 1, 1, True), (CmpOp.NE, 1, 1, False),
        (CmpOp.LT, 1, 2, True), (CmpOp.LE, 2, 2, True),
        (CmpOp.GT, 3, 2, True), (CmpOp.GE, 1, 2, False),
    ])
    def test_apply_scalar(self, op, a, b, expected):
        result = op.apply(np.array([a]), np.array([b]))
        assert bool(result[0]) is expected


class TestOpcode:
    def test_pipes(self):
        assert Opcode.ADD.pipe is Pipe.FPU
        assert Opcode.SQRT.pipe is Pipe.EM
        assert Opcode.LOAD.pipe is Pipe.SEND
        assert Opcode.IF.pipe is Pipe.CTRL

    def test_enum_members_are_distinct(self):
        # Guards against tuple-value aliasing (ADD vs SUB share metadata).
        assert Opcode.ADD is not Opcode.SUB
        assert len({op.name for op in Opcode}) == len(list(Opcode))

    def test_memory_classification(self):
        assert Opcode.LOAD.is_memory
        assert Opcode.STORE_SLM.is_memory and Opcode.STORE_SLM.is_slm
        assert not Opcode.BARRIER.is_memory

    def test_writes_dst(self):
        assert Opcode.ADD.writes_dst
        assert Opcode.LOAD.writes_dst
        assert not Opcode.STORE.writes_dst
        assert not Opcode.CMP.writes_dst
        assert not Opcode.IF.writes_dst

    def test_alu_opcodes_cover_fpu_and_em(self):
        pipes = {op.pipe for op in ALU_OPCODES}
        assert pipes == {Pipe.FPU, Pipe.EM}


class TestRegRef:
    def test_range_check(self):
        with pytest.raises(ValueError):
            RegRef(NUM_GRF_REGS)

    def test_span_simd16(self):
        assert RegRef(8, DType.F32).span(16) == 2

    def test_regs_iteration(self):
        assert list(RegRef(8, DType.F32).regs(16)) == [8, 9]

    def test_regs_overflow(self):
        with pytest.raises(ValueError):
            RegRef(127, DType.F32).regs(16)

    def test_with_dtype(self):
        ref = RegRef(4, DType.F32).with_dtype(DType.I32)
        assert ref.reg == 4 and ref.dtype is DType.I32


class TestFlagRef:
    def test_invert(self):
        flag = FlagRef(0)
        assert (~flag).negate
        assert ~~flag == flag

    def test_range(self):
        with pytest.raises(ValueError):
            FlagRef(2)


class TestAsOperand:
    def test_passthrough_regref(self):
        ref = RegRef(3)
        assert as_operand(ref, DType.F32) is ref

    def test_number_to_imm(self):
        imm = as_operand(2.5, DType.F32)
        assert isinstance(imm, Imm) and imm.value == 2.5

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_operand(True, DType.I32)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_operand("r3", DType.F32)


def _add16(mask_sources=None):
    return Instruction(
        opcode=Opcode.ADD,
        width=16,
        dtype=DType.F32,
        dst=RegRef(12),
        sources=mask_sources or (RegRef(8), RegRef(10)),
    )


class TestInstructionValidate:
    def test_valid_add(self):
        _add16().validate()

    def test_wrong_source_count(self):
        inst = Instruction(opcode=Opcode.ADD, width=16, dst=RegRef(0),
                           sources=(RegRef(1),))
        with pytest.raises(ValueError, match="expects 2 sources"):
            inst.validate()

    def test_missing_dst(self):
        inst = Instruction(opcode=Opcode.ADD, width=16,
                           sources=(RegRef(1), RegRef(2)))
        with pytest.raises(ValueError, match="requires a destination"):
            inst.validate()

    def test_cmp_requires_flag(self):
        inst = Instruction(opcode=Opcode.CMP, width=16, cmp_op=CmpOp.LT,
                           sources=(RegRef(1), RegRef(2)))
        with pytest.raises(ValueError, match="flag"):
            inst.validate()

    def test_cmp_rejects_negated_flag_dst(self):
        inst = Instruction(opcode=Opcode.CMP, width=16, cmp_op=CmpOp.LT,
                           flag_dst=FlagRef(0, negate=True),
                           sources=(RegRef(1), RegRef(2)))
        with pytest.raises(ValueError, match="negated"):
            inst.validate()

    def test_if_requires_pred(self):
        inst = Instruction(opcode=Opcode.IF, width=16)
        with pytest.raises(ValueError, match="predicate"):
            inst.validate()

    def test_load_requires_surface(self):
        inst = Instruction(opcode=Opcode.LOAD, width=16, dst=RegRef(0),
                           sources=(RegRef(2),))
        with pytest.raises(ValueError, match="surface"):
            inst.validate()

    def test_memory_rejects_immediates(self):
        inst = Instruction(opcode=Opcode.STORE, width=16, surface=0,
                           sources=(Imm(0, DType.I32), RegRef(2)))
        with pytest.raises(ValueError, match="registers"):
            inst.validate()

    def test_cvt_requires_src_dtype(self):
        inst = Instruction(opcode=Opcode.CVT, width=16, dst=RegRef(0),
                           sources=(RegRef(2),))
        with pytest.raises(ValueError, match="src_dtype"):
            inst.validate()


class TestInstructionFootprint:
    def test_reads_spans_pairs_at_simd16(self):
        inst = _add16()
        assert sorted(inst.reads()) == [8, 9, 10, 11]

    def test_writes(self):
        assert _add16().writes() == [12, 13]

    def test_reads_cached_identity(self):
        inst = _add16()
        assert inst.reads() is inst.reads()

    def test_explicit_width_not_cached(self):
        inst = _add16()
        assert sorted(inst.reads(8)) == [8, 10]

    def test_store_has_no_writes(self):
        inst = Instruction(opcode=Opcode.STORE, width=16, surface=0,
                           sources=(RegRef(2, DType.I32), RegRef(4)))
        assert inst.writes() == []

    def test_dtype_factor_property(self):
        inst = Instruction(opcode=Opcode.ADD, width=16, dtype=DType.F64,
                           dst=RegRef(0), sources=(RegRef(4), RegRef(8)))
        assert inst.dtype_factor == 2

    def test_str_contains_opcode(self):
        assert "ADD(16)" in str(_add16())
