"""HTTP-layer tests for the ``repro serve`` daemon.

Boots the real asyncio server (ephemeral port) in a background thread
and drives it with the real :class:`repro.serve.ServeClient` — the same
path the CLI and the CI smoke job use.  Covers the route surface, the
typed error mapping (400/404/405/409/429/503), the Chrome-trace
endpoint, and daemon-vs-foreground result bit-identity.
"""

import asyncio
import threading

import pytest

from repro.gpu.config import GpuConfig
from repro.kernels import WORKLOAD_REGISTRY, run_workload
from repro.serve import JobSpec, ServeClient, ServeClientError, result_payload
from repro.serve.http import serve_forever
from repro.serve.service import JobService
from repro.telemetry.chrome_trace import validate_chrome_trace


class DaemonHandle:
    """One live daemon: its service, port, and a way to stop it."""

    def __init__(self, service, port, loop, stop, thread):
        self.service = service
        self.port = port
        self._loop = loop
        self._stop = stop
        self._thread = thread

    def client(self, client_id="pytest"):
        return ServeClient(port=self.port, client_id=client_id)

    def shutdown(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "daemon failed to drain"


@pytest.fixture()
def daemon(tmp_path):
    """A real daemon on an ephemeral port, drained at teardown."""
    box = {}
    started = threading.Event()

    def run():
        async def main():
            service = JobService(tmp_path / "data", cache=tmp_path / "cache")
            stop = asyncio.Event()
            box.update(service=service, stop=stop,
                       loop=asyncio.get_running_loop())

            def ready(bound):
                box["port"] = bound[1]
                started.set()

            await serve_forever(service, "127.0.0.1", 0, ready=ready,
                                install_signals=False, stop=stop)

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "daemon did not start"
    handle = DaemonHandle(box["service"], box["port"], box["loop"],
                          box["stop"], thread)
    yield handle
    handle.shutdown()


class TestRoutes:
    def test_health_and_metrics(self, daemon):
        client = daemon.client()
        health = client.health()
        assert health["ok"] is True
        assert health["draining"] is False
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["workers"] == 1
        assert "counters" in metrics and "cache" in metrics

    def test_submit_watch_result_roundtrip(self, daemon):
        client = daemon.client()
        status = client.submit({"workload": "va", "policy": "scc"})
        assert status["state"] in ("queued", "running")
        final = client.watch(status["id"], timeout=120)
        assert final["state"] == "done"
        assert final["cache_hit"] is False
        body = client.result(status["id"])
        result = body["result"]
        assert result["workload"] == "va"
        assert result["policy"] == "scc"
        assert result["total_cycles"] > 0
        assert len(result["buffers_digest"]) == 64
        assert set(result["fingerprints"]) == {"alu", "simd"}
        listing = client.jobs(state="done")
        assert any(job["id"] == status["id"] for job in listing["jobs"])

    def test_duplicate_submissions_share_one_execution(self, daemon):
        client = daemon.client()
        first = client.submit({"workload": "dp"})
        second = client.submit({"workload": "dp"})
        assert second["dedup_of"] == first["id"]
        one = client.watch(first["id"], timeout=120)
        two = client.watch(second["id"], timeout=120)
        assert one["state"] == two["state"] == "done"
        assert (client.result(first["id"])["result"]
                == client.result(second["id"])["result"])
        counters = client.metrics()["counters"]
        assert counters.get("serve.jobs.deduped") == 1
        assert counters.get("serve.jobs.executed") == 1

    def test_repeat_submission_after_completion_hits_cache(self, daemon):
        client = daemon.client()
        first = client.submit({"workload": "mvm"})
        client.watch(first["id"], timeout=120)
        again = client.submit({"workload": "mvm"})
        final = client.watch(again["id"], timeout=120)
        assert final["dedup_of"] is None  # not in flight anymore
        assert final["cache_hit"] is True
        assert client.metrics()["counters"].get("serve.jobs.cache_hits") == 1

    def test_trace_endpoint_serves_valid_chrome_trace(self, daemon):
        client = daemon.client()
        status = client.submit({"workload": "va", "telemetry": "trace"})
        client.watch(status["id"], timeout=120)
        trace = client.trace(status["id"])
        assert validate_chrome_trace(trace) > 0  # raises if malformed
        assert trace["traceEvents"]

    def test_result_bit_identical_to_foreground_run(self, daemon, tmp_path):
        """The e2e acceptance check: daemon result JSON == repro run."""
        spec = {"workload": "gnoise", "policy": "bcc"}
        client = daemon.client()
        status = client.submit(spec)
        client.watch(status["id"], timeout=120)
        served = client.result(status["id"])["result"]

        parsed = JobSpec.from_payload(spec)
        result = run_workload(WORKLOAD_REGISTRY["gnoise"](),
                              parsed.to_config(), verify=True)
        assert served == result_payload(parsed, result)


class TestErrorMapping:
    def test_bad_spec_is_400(self, daemon):
        with pytest.raises(ServeClientError) as excinfo:
            daemon.client().submit({"workload": "no_such_workload"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeClientError) as excinfo:
            daemon.client().submit({"workload": "va", "surprise": 1})
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, daemon):
        client = daemon.client()
        for probe in (client.status, client.result, client.trace,
                      client.cancel):
            with pytest.raises(ServeClientError) as excinfo:
                probe("j00000-missing")
            assert excinfo.value.status == 404

    def test_result_before_completion_is_409(self, daemon):
        client = daemon.client()
        # Submit-then-cancel leaves a terminal job with no result.
        status = client.submit({"workload": "fault_count"})
        try:
            client.cancel(status["id"])
        except ServeClientError:
            pass  # already dispatched: fine, it will finish instead
        else:
            with pytest.raises(ServeClientError) as excinfo:
                client.result(status["id"])
            assert excinfo.value.status == 409

    def test_trace_missing_is_404(self, daemon):
        client = daemon.client()
        status = client.submit({"workload": "va"})  # telemetry off
        client.watch(status["id"], timeout=120)
        with pytest.raises(ServeClientError) as excinfo:
            client.trace(status["id"])
        assert excinfo.value.status == 404

    def test_unknown_route_and_method(self, daemon):
        client = daemon.client()
        with pytest.raises(ServeClientError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeClientError) as excinfo:
            client.request("PUT", "/jobs")
        assert excinfo.value.status == 405

    def test_unreachable_daemon_is_typed(self):
        client = ServeClient(port=1, timeout=0.5)
        with pytest.raises(ServeClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert excinfo.value.exit_code == 7


class TestCacheEndpoints:
    """The fleet-shared cache over HTTP: GET/POST /cache/{key}."""

    def test_fetch_miss_is_typed_404(self, daemon):
        from repro.errors import CacheMissError
        from repro.runner import code_salt

        client = daemon.client()
        with pytest.raises(CacheMissError) as excinfo:
            client.cache_fetch("va|nope|nope", salt=code_salt())
        assert excinfo.value.http_status == 404

    def test_local_run_is_fetchable_by_key(self, daemon):
        """A job the daemon executed locally lands in the same store
        the fleet endpoints serve: content key in, verified blob out,
        percent-encoded round trip included (keys contain '|')."""
        from repro.runner import code_salt
        from repro.serve.jobs import result_from_blob

        client = daemon.client()
        spec_body = {"workload": "va", "policy": "scc"}
        status = client.submit(spec_body)
        client.watch(status["id"], timeout=120)
        key = JobSpec.from_payload(spec_body).to_job().key
        assert "|" in key  # the encoding actually gets exercised
        body = client.cache_fetch(key, salt=code_salt())
        assert body["key"] == key
        served = result_from_blob(body)
        digest = client.result(status["id"])["result"]["buffers_digest"]
        assert served.buffers_digest == digest

    def test_fetch_salt_skew_is_412(self, daemon):
        client = daemon.client()
        status = client.submit({"workload": "va"})
        client.watch(status["id"], timeout=120)
        key = JobSpec.from_payload({"workload": "va"}).to_job().key
        with pytest.raises(ServeClientError) as excinfo:
            client.cache_fetch(key, salt="someone-elses-simulator")
        assert excinfo.value.status == 412

    def test_publish_then_fetch_round_trip(self, daemon):
        from repro.runner import code_salt
        from repro.serve.jobs import result_blob, result_from_blob

        client = daemon.client()
        spec = JobSpec.from_payload({"workload": "dp", "policy": "bcc"})
        workload = WORKLOAD_REGISTRY[spec.workload]()
        result = run_workload(workload, spec.to_config(), verify=True)
        key = spec.to_job().key
        blob = result_blob(result)
        body = client.cache_publish(key, blob, worker="wtest")
        assert body["stored"] is True
        assert body["digest"] == result.buffers_digest
        again = client.cache_publish(key, blob, worker="wtest")
        assert again["stored"] is False and again["reason"] == "exists"
        served = result_from_blob(client.cache_fetch(key,
                                                     salt=code_salt()))
        assert served.buffers_digest == result.buffers_digest
        counters = client.metrics()["counters"]
        assert counters["serve.cache.published"] == 1
        assert counters["serve.cache.fetch_hits"] == 1

    def test_publish_salt_skew_is_412_and_stores_nothing(self, daemon):
        from repro.errors import CacheMissError
        from repro.runner import code_salt
        from repro.serve.jobs import result_blob

        client = daemon.client()
        spec = JobSpec.from_payload({"workload": "mvm"})
        result = run_workload(WORKLOAD_REGISTRY["mvm"](), spec.to_config())
        blob = dict(result_blob(result), salt="stale-build")
        with pytest.raises(ServeClientError) as excinfo:
            client.cache_publish(spec.to_job().key, blob)
        assert excinfo.value.status == 412
        with pytest.raises(CacheMissError):
            client.cache_fetch(spec.to_job().key, salt=code_salt())

    def test_publish_malformed_blob_is_400(self, daemon):
        client = daemon.client()
        with pytest.raises(ServeClientError) as excinfo:
            client.cache_publish("va|x|y", {"encoding": "gzip",
                                            "salt": "s", "data": "AA"})
        assert excinfo.value.status == 400

    def test_cache_route_method_gate(self, daemon):
        client = daemon.client()
        with pytest.raises(ServeClientError) as excinfo:
            client.request("DELETE", "/cache/whatever")
        assert excinfo.value.status == 405
