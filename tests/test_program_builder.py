"""Tests for Program finalization and the KernelBuilder DSL."""

import pytest

from repro.isa.builder import KernelBuilder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import ParamKind, Program
from repro.isa.registers import NUM_GRF_REGS, FlagRef, RegRef
from repro.isa.types import CmpOp, DType


def _raw_program(instructions):
    return Program(name="t", simd_width=16, instructions=instructions)


def _ctrl(opcode, pred=None):
    return Instruction(opcode=opcode, width=16, pred=pred)


class TestProgramFinalize:
    def test_missing_eot(self):
        prog = _raw_program([_ctrl(Opcode.ENDIF)])
        with pytest.raises(ValueError, match="EOT"):
            prog.finalize()

    def test_if_endif_targets(self):
        f = FlagRef(0)
        prog = _raw_program([
            _ctrl(Opcode.IF, f), _ctrl(Opcode.ENDIF), _ctrl(Opcode.EOT),
        ]).finalize()
        assert prog.instructions[0].target == 1  # jump to ENDIF

    def test_if_else_endif_targets(self):
        f = FlagRef(0)
        prog = _raw_program([
            _ctrl(Opcode.IF, f),      # 0
            _ctrl(Opcode.ELSE),       # 1
            _ctrl(Opcode.ENDIF),      # 2
            _ctrl(Opcode.EOT),        # 3
        ]).finalize()
        assert prog.instructions[0].target == 2  # ELSE + 1
        assert prog.instructions[1].target == 2  # ENDIF

    def test_do_while_targets(self):
        f = FlagRef(0)
        prog = _raw_program([
            _ctrl(Opcode.DO),               # 0
            _ctrl(Opcode.BREAK, f),         # 1
            _ctrl(Opcode.WHILE, f),         # 2
            _ctrl(Opcode.EOT),              # 3
        ]).finalize()
        assert prog.instructions[2].target == 1  # back to DO+1
        assert prog.instructions[0].target == 3  # past WHILE
        assert prog.instructions[1].target == 3  # BREAK exits past WHILE

    def test_else_without_if(self):
        with pytest.raises(ValueError, match="ELSE"):
            _raw_program([_ctrl(Opcode.ELSE), _ctrl(Opcode.EOT)]).finalize()

    def test_endif_without_if(self):
        with pytest.raises(ValueError, match="ENDIF"):
            _raw_program([_ctrl(Opcode.ENDIF), _ctrl(Opcode.EOT)]).finalize()

    def test_duplicate_else(self):
        f = FlagRef(0)
        prog = _raw_program([
            _ctrl(Opcode.IF, f), _ctrl(Opcode.ELSE), _ctrl(Opcode.ELSE),
            _ctrl(Opcode.ENDIF), _ctrl(Opcode.EOT),
        ])
        with pytest.raises(ValueError, match="duplicate ELSE"):
            prog.finalize()

    def test_unterminated_if(self):
        f = FlagRef(0)
        prog = _raw_program([_ctrl(Opcode.IF, f), _ctrl(Opcode.EOT)])
        with pytest.raises(ValueError, match="unterminated IF"):
            prog.finalize()

    def test_while_without_do(self):
        f = FlagRef(0)
        prog = _raw_program([_ctrl(Opcode.WHILE, f), _ctrl(Opcode.EOT)])
        with pytest.raises(ValueError, match="WHILE"):
            prog.finalize()

    def test_break_outside_loop(self):
        f = FlagRef(0)
        prog = _raw_program([_ctrl(Opcode.BREAK, f), _ctrl(Opcode.EOT)])
        with pytest.raises(ValueError, match="BREAK"):
            prog.finalize()

    def test_unterminated_do(self):
        prog = _raw_program([_ctrl(Opcode.DO), _ctrl(Opcode.EOT)])
        with pytest.raises(ValueError, match="unterminated DO"):
            prog.finalize()


class TestBuilderBasics:
    def test_finish_appends_eot_and_finalizes(self):
        b = KernelBuilder("k", 16)
        prog = b.finish()
        assert prog.finalized
        assert prog.instructions[-1].opcode is Opcode.EOT

    def test_double_finish_rejected(self):
        b = KernelBuilder("k", 16)
        b.finish()
        with pytest.raises(ValueError):
            b.finish()

    def test_emit_after_finish_rejected(self):
        b = KernelBuilder("k", 16)
        b.finish()
        with pytest.raises(ValueError):
            b.mov(RegRef(0), 1.0)

    def test_bad_simd_width(self):
        with pytest.raises(ValueError):
            KernelBuilder("k", 12)

    def test_vreg_spans_accumulate(self):
        b = KernelBuilder("k", 16)
        r0 = b.vreg(DType.F32)
        r1 = b.vreg(DType.F32)
        assert r1.reg == r0.reg + 2  # SIMD16 F32 spans two registers

    def test_grf_exhaustion(self):
        b = KernelBuilder("k", 16)
        with pytest.raises(ValueError, match="exhausted"):
            for _ in range(NUM_GRF_REGS):
                b.vreg(DType.F32)

    def test_global_id_allocated_once(self):
        b = KernelBuilder("k", 16)
        assert b.global_id() == b.global_id()

    def test_gid_lid_regs_recorded(self):
        b = KernelBuilder("k", 16)
        gid = b.global_id()
        lid = b.local_id()
        prog = b.finish()
        assert prog.gid_reg == gid.reg
        assert prog.lid_reg == lid.reg

    def test_lid_absent_when_unused(self):
        b = KernelBuilder("k", 16)
        assert b.finish().lid_reg is None


class TestBuilderArgs:
    def test_scalar_arg_kinds(self):
        b = KernelBuilder("k", 16)
        b.scalar_arg("f", DType.F32)
        b.scalar_arg("i", DType.I32)
        prog = b.finish()
        kinds = {p.name: p.kind for p in prog.params}
        assert kinds["f"] is ParamKind.SCALAR_F32
        assert kinds["i"] is ParamKind.SCALAR_I32

    def test_surface_indices_in_order(self):
        b = KernelBuilder("k", 16)
        assert b.surface_arg("a") == 0
        assert b.surface_arg("b") == 1
        prog = b.finish()
        assert [p.name for p in prog.surface_params()] == ["a", "b"]

    def test_duplicate_param_name(self):
        b = KernelBuilder("k", 16)
        b.surface_arg("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.scalar_arg("x")


class TestBuilderControlFlow:
    def test_if_context_manager(self):
        b = KernelBuilder("k", 16)
        f = b.cmp(CmpOp.LT, b.vreg(), 0.0)
        with b.if_(f):
            b.mov(b.vreg(), 1.0)
        prog = b.finish()
        opcodes = [i.opcode for i in prog.instructions]
        assert Opcode.IF in opcodes and Opcode.ENDIF in opcodes

    def test_if_else_context(self):
        b = KernelBuilder("k", 16)
        f = b.cmp(CmpOp.LT, b.vreg(), 0.0)
        with b.if_(f):
            b.mov(b.vreg(), 1.0)
            b.else_()
            b.mov(b.vreg(), 2.0)
        prog = b.finish()
        opcodes = [i.opcode for i in prog.instructions]
        assert opcodes.count(Opcode.ELSE) == 1
        assert opcodes.index(Opcode.ELSE) < opcodes.index(Opcode.ENDIF)

    def test_do_while_loop(self):
        b = KernelBuilder("k", 16)
        counter = b.vreg(DType.I32)
        b.mov(counter, 0)
        b.do_()
        b.add(counter, counter, 1)
        f = b.cmp(CmpOp.LT, counter, 4)
        b.while_(f)
        prog = b.finish()
        assert prog.finalized

    def test_num_regs_footprint(self):
        b = KernelBuilder("k", 16)
        r = b.vreg(DType.F32)
        b.mov(r, 0.0)
        prog = b.finish()
        assert prog.num_regs == r.reg + 2

    def test_disassembly_lists_all_instructions(self):
        b = KernelBuilder("k", 16)
        b.mov(b.vreg(), 0.0)
        prog = b.finish()
        listing = prog.disassemble()
        assert "MOV(16)" in listing and "EOT" in listing

    def test_opcode_histogram(self):
        b = KernelBuilder("k", 16)
        b.mov(b.vreg(), 0.0)
        b.mov(b.vreg(), 1.0)
        prog = b.finish()
        hist = prog.dynamic_opcode_histogram()
        assert hist[Opcode.MOV] == 2
        assert hist[Opcode.EOT] == 1
