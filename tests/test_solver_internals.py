"""Additional solver-workload internals: launch schedules and tails.

The iterative solvers (Gauss, LU, NW, FW, PathFinder, bitonic sort) all
drive the simulator through multi-launch host loops with shrinking or
sweeping geometry; these tests pin the schedules themselves, separate
from the numerical checks that run in the main workload tests.
"""

import numpy as np
import pytest

from repro.kernels.rodinia.nw import nw
from repro.kernels.signal import bitonic_sort
from repro.kernels.solvers import floyd_warshall, gauss, pathfinder


def _steps_of(workload):
    return list(workload.iter_steps())


class TestLaunchSchedules:
    def test_gauss_shrinking_launches(self):
        dim = 10
        steps = _steps_of(gauss(dim=dim))
        assert len(steps) == dim - 1
        sizes = [s.global_size for s in steps]
        # (rows x cols) shrinks every pivot: strictly decreasing.
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == (dim - 1) * dim
        assert sizes[-1] == 1 * 2

    def test_fw_constant_launches(self):
        n = 8
        steps = _steps_of(floyd_warshall(num_vertices=n))
        assert len(steps) == n
        assert all(s.global_size == n * n for s in steps)
        assert [s.scalars["k"] for s in steps] == list(range(n))

    def test_pathfinder_row_sweep(self):
        steps = _steps_of(pathfinder(cols=64, rows=5))
        assert [s.scalars["row"] for s in steps] == [1, 2, 3, 4]

    def test_nw_diagonal_sweep_covers_matrix(self):
        dim = 10
        steps = _steps_of(nw(dim=dim))
        assert len(steps) == 2 * dim - 3
        # Launch sizes grow with the diagonal index (i in [1, d-1]).
        assert [s.global_size for s in steps] == [d - 1 for d in
                                                  range(2, 2 * dim - 1)]

    def test_bitonic_pass_count(self):
        n = 64  # log2(64)=6 -> 6*7/2 = 21 passes
        steps = _steps_of(bitonic_sort(n=n))
        assert len(steps) == 21
        # Final pass has stride 1 and full size.
        assert steps[-1].scalars["dist"] == 1
        assert steps[-1].scalars["size"] == n


class TestHostLoopsAreRestartable:
    def test_iter_steps_can_run_twice_for_static_schedules(self):
        workload = floyd_warshall(num_vertices=6)
        first = [s.scalars["k"] for s in workload.iter_steps()]
        second = [s.scalars["k"] for s in workload.iter_steps()]
        assert first == second

    def test_gauss_schedule_independent_of_buffers(self):
        workload = gauss(dim=8)
        before = [s.global_size for s in workload.iter_steps()]
        workload.buffers["A"][:] = 0.0  # schedule must not depend on data
        after = [s.global_size for s in workload.iter_steps()]
        assert before == after
