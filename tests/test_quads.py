"""Unit tests for repro.core.quads (mask and quad utilities)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.quads import (
    QUAD_WIDTH,
    VALID_SIMD_WIDTHS,
    active_lanes,
    active_quad_count,
    active_quads,
    clamp_mask,
    format_mask,
    lane_of_quad,
    lanes_by_position,
    mask_from_lanes,
    num_quads,
    optimal_cycles,
    popcount,
    quad_masks,
    split_halves,
    validate_width,
)

masks16 = st.integers(min_value=0, max_value=0xFFFF)
masks8 = st.integers(min_value=0, max_value=0xFF)


class TestValidateWidth:
    @pytest.mark.parametrize("width", VALID_SIMD_WIDTHS)
    def test_valid_widths_accepted(self, width):
        validate_width(width)  # must not raise

    @pytest.mark.parametrize("width", [0, 2, 3, 5, 12, 17, 64, -8])
    def test_invalid_widths_rejected(self, width):
        with pytest.raises(ValueError):
            validate_width(width)


class TestClampMask:
    def test_in_range_unchanged(self):
        assert clamp_mask(0xF0F0, 16) == 0xF0F0

    def test_high_bits_dropped(self):
        assert clamp_mask(0x1FFFF, 16) == 0xFFFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            clamp_mask(-1, 16)


class TestPopcount:
    @pytest.mark.parametrize(
        "mask,expected", [(0, 0), (1, 1), (0xF, 4), (0xF0F0, 8), (0xFFFF, 16)]
    )
    def test_known_values(self, mask, expected):
        assert popcount(mask) == expected

    @given(masks16)
    def test_matches_bin_count(self, mask):
        assert popcount(mask) == bin(mask).count("1")


class TestActiveLanes:
    def test_empty(self):
        assert active_lanes(0, 16) == []

    def test_pattern(self):
        assert active_lanes(0b1010, 8) == [1, 3]

    @given(masks16)
    def test_round_trip_with_mask_from_lanes(self, mask):
        assert mask_from_lanes(active_lanes(mask, 16), 16) == mask


class TestNumQuads:
    @pytest.mark.parametrize("width,expected", [(1, 1), (4, 1), (8, 2), (16, 4), (32, 8)])
    def test_values(self, width, expected):
        assert num_quads(width) == expected


class TestQuadMasks:
    def test_paper_example(self):
        assert quad_masks(0xF0F0, 16) == [0x0, 0xF, 0x0, 0xF]

    def test_simd8(self):
        assert quad_masks(0b1111_0001, 8) == [0x1, 0xF]

    @given(masks16)
    def test_reassembly(self, mask):
        parts = quad_masks(mask, 16)
        rebuilt = sum(qm << (QUAD_WIDTH * q) for q, qm in enumerate(parts))
        assert rebuilt == mask


class TestActiveQuads:
    def test_indices(self):
        assert active_quads(0xF0F0, 16) == [1, 3]

    def test_count_agrees_with_list(self):
        assert active_quad_count(0xF0F0, 16) == 2

    @given(masks16)
    def test_count_matches(self, mask):
        assert active_quad_count(mask, 16) == len(active_quads(mask, 16))


class TestOptimalCycles:
    @pytest.mark.parametrize(
        "mask,width,expected",
        [(0, 16, 0), (0x1, 16, 1), (0xF, 16, 1), (0x1F, 16, 2),
         (0xFFFF, 16, 4), (0xAAAA, 16, 2), (0xFF, 8, 2), (0x3, 8, 1)],
    )
    def test_values(self, mask, width, expected):
        assert optimal_cycles(mask, width) == expected

    @given(masks16)
    def test_ceiling_formula(self, mask):
        expected = -(-popcount(mask) // 4)
        assert optimal_cycles(mask, 16) == expected


class TestLaneOfQuad:
    def test_mapping(self):
        assert lane_of_quad(2, 3) == 11

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            lane_of_quad(0, 4)


class TestLanesByPosition:
    def test_docstring_case(self):
        assert lanes_by_position(0b0101_0101, 8) == [[0, 1], [], [0, 1], []]

    @given(masks16)
    def test_total_lanes_preserved(self, mask):
        queues = lanes_by_position(mask, 16)
        assert sum(len(q) for q in queues) == popcount(mask)

    @given(masks16)
    def test_queue_membership_correct(self, mask):
        queues = lanes_by_position(mask, 16)
        for n, queue in enumerate(queues):
            for q in queue:
                assert (mask >> (q * 4 + n)) & 1


class TestMaskFromLanes:
    def test_basic(self):
        assert mask_from_lanes([0, 4, 8, 12], 16) == 0x1111

    def test_out_of_range_lane(self):
        with pytest.raises(ValueError):
            mask_from_lanes([16], 16)


class TestSplitHalves:
    def test_f0f0(self):
        assert split_halves(0xF0F0, 16) == (0xF0, 0xF0)

    def test_lower_only(self):
        assert split_halves(0x00FF, 16) == (0xFF, 0x00)

    def test_simd1_rejected(self):
        with pytest.raises(ValueError):
            split_halves(1, 1)


class TestFormatMask:
    def test_hex_and_bits(self):
        out = format_mask(0xF0F0, 16)
        assert out.startswith("0xF0F0")
        assert "XXXX....XXXX...." in out

    def test_simd8_width(self):
        assert format_mask(0x0F, 8).startswith("0x0F")
