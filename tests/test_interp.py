"""Tests for the EU functional interpreter."""

import numpy as np
import pytest

from repro.eu.grf import RegisterFile
from repro.eu.interp import eval_operand, execute_alu, gather, scatter
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import FlagRef, Imm, RegRef
from repro.isa.types import CmpOp, DType

FULL16 = 0xFFFF


def _exec(opcode, dst, sources, grf, flags=None, mask=FULL16, dtype=DType.F32,
          cmp_op=None, flag_dst=None, src_dtype=None, selector=0):
    inst = Instruction(
        opcode=opcode, width=16, dtype=dtype, dst=dst, sources=tuple(sources),
        cmp_op=cmp_op, flag_dst=flag_dst, src_dtype=src_dtype,
        pred=FlagRef(0) if opcode is Opcode.SEL else None,
    )
    flags = flags if flags is not None else [0, 0]
    execute_alu(inst, mask, grf, flags, selector)
    return flags


@pytest.fixture
def grf():
    grf = RegisterFile()
    grf.write(RegRef(0, DType.F32), 16, np.arange(16, dtype=np.float32), FULL16)
    grf.write(RegRef(2, DType.F32), 16, np.full(16, 2.0, np.float32), FULL16)
    return grf


class TestEvalOperand:
    def test_register(self, grf):
        values = eval_operand(RegRef(0, DType.F32), 16, grf, DType.F32)
        np.testing.assert_array_equal(values, np.arange(16))

    def test_immediate_broadcast(self, grf):
        values = eval_operand(Imm(3.5, DType.F32), 16, grf, DType.F32)
        np.testing.assert_array_equal(values, 3.5)

    def test_dtype_conversion(self, grf):
        values = eval_operand(RegRef(0, DType.F32), 16, grf, DType.I32)
        assert values.dtype == np.int32


class TestArithmetic:
    def test_add(self, grf):
        dst = RegRef(10, DType.F32)
        _exec(Opcode.ADD, dst, [RegRef(0), RegRef(2)], grf)
        np.testing.assert_array_equal(grf.read(dst, 16), np.arange(16) + 2.0)

    def test_mad(self, grf):
        dst = RegRef(10, DType.F32)
        _exec(Opcode.MAD, dst, [RegRef(0), Imm(2.0), Imm(1.0)], grf)
        np.testing.assert_array_equal(grf.read(dst, 16), np.arange(16) * 2.0 + 1.0)

    def test_masked_write(self, grf):
        dst = RegRef(10, DType.F32)
        grf.write(dst, 16, np.full(16, -1.0, np.float32), FULL16)
        _exec(Opcode.MOV, dst, [Imm(5.0)], grf, mask=0x00FF)
        values = grf.read(dst, 16)
        np.testing.assert_array_equal(values[:8], 5.0)
        np.testing.assert_array_equal(values[8:], -1.0)

    def test_div_by_zero_float_is_inf(self, grf):
        dst = RegRef(10, DType.F32)
        _exec(Opcode.DIV, dst, [Imm(1.0), Imm(0.0)], grf)
        assert np.isinf(grf.read(dst, 16)).all()

    def test_int_div_by_zero_is_zero(self, grf):
        dst = RegRef(10, DType.I32)
        _exec(Opcode.DIV, dst, [Imm(7, DType.I32), Imm(0, DType.I32)], grf,
              dtype=DType.I32)
        np.testing.assert_array_equal(grf.read(dst, 16), 0)

    def test_int_div_truncates(self, grf):
        dst = RegRef(10, DType.I32)
        _exec(Opcode.DIV, dst, [Imm(7, DType.I32), Imm(2, DType.I32)], grf,
              dtype=DType.I32)
        np.testing.assert_array_equal(grf.read(dst, 16), 3)

    def test_shift_clamped(self, grf):
        dst = RegRef(10, DType.I32)
        _exec(Opcode.SHL, dst, [Imm(1, DType.I32), Imm(40, DType.I32)], grf,
              dtype=DType.I32)
        # Shift amounts clamp to 31: result is 1 << 31 wrapped to int32 min.
        assert grf.read(dst, 16)[0] == np.int32(-2**31)

    def test_i64_shl_beyond_31_not_truncated(self, grf):
        # Regression: the clamp ceiling must follow the operand width.
        # A fixed [0, 31] clamp silently turned this 40-bit shift into a
        # 31-bit one (and the int64 intermediate kept it from wrapping).
        dst = RegRef(10, DType.I64)
        _exec(Opcode.SHL, dst, [Imm(1, DType.I64), Imm(40, DType.I64)], grf,
              dtype=DType.I64)
        np.testing.assert_array_equal(grf.read(dst, 16), np.int64(1) << 40)

    def test_i64_shr_beyond_31_not_truncated(self, grf):
        dst = RegRef(10, DType.I64)
        _exec(Opcode.SHR, dst, [Imm(1 << 45, DType.I64), Imm(40, DType.I64)],
              grf, dtype=DType.I64)
        np.testing.assert_array_equal(grf.read(dst, 16), 32)

    def test_i64_shift_clamps_at_63(self, grf):
        dst = RegRef(10, DType.I64)
        _exec(Opcode.SHR, dst, [Imm(-1, DType.I64), Imm(200, DType.I64)],
              grf, dtype=DType.I64)
        # Arithmetic shift of -1 by the clamped 63 stays -1.
        np.testing.assert_array_equal(grf.read(dst, 16), -1)

    def test_min_max(self, grf):
        dst = RegRef(10, DType.F32)
        _exec(Opcode.MIN, dst, [RegRef(0), Imm(4.0)], grf)
        assert grf.read(dst, 16).max() == 4.0
        _exec(Opcode.MAX, dst, [RegRef(0), Imm(4.0)], grf)
        assert grf.read(dst, 16).min() == 4.0

    def test_em_functions(self, grf):
        dst = RegRef(10, DType.F32)
        _exec(Opcode.SQRT, dst, [Imm(9.0)], grf)
        np.testing.assert_allclose(grf.read(dst, 16), 3.0)
        _exec(Opcode.EXP, dst, [Imm(0.0)], grf)
        np.testing.assert_allclose(grf.read(dst, 16), 1.0)
        _exec(Opcode.RSQRT, dst, [Imm(4.0)], grf)
        np.testing.assert_allclose(grf.read(dst, 16), 0.5)

    def test_bitwise(self, grf):
        dst = RegRef(10, DType.I32)
        _exec(Opcode.AND, dst, [Imm(0b1100, DType.I32), Imm(0b1010, DType.I32)],
              grf, dtype=DType.I32)
        np.testing.assert_array_equal(grf.read(dst, 16), 0b1000)
        _exec(Opcode.XOR, dst, [Imm(0b1100, DType.I32), Imm(0b1010, DType.I32)],
              grf, dtype=DType.I32)
        np.testing.assert_array_equal(grf.read(dst, 16), 0b0110)

    def test_cvt_f32_to_i32(self, grf):
        dst = RegRef(10, DType.I32)
        _exec(Opcode.CVT, dst, [RegRef(0, DType.F32)], grf, dtype=DType.I32,
              src_dtype=DType.F32)
        np.testing.assert_array_equal(grf.read(dst, 16), np.arange(16))


class TestCmpAndSel:
    def test_cmp_writes_flag_bits(self, grf):
        flags = _exec(Opcode.CMP, None, [RegRef(0), Imm(8.0)], grf,
                      cmp_op=CmpOp.LT, flag_dst=FlagRef(0))
        assert flags[0] == 0x00FF  # lanes 0-7 have values < 8

    def test_cmp_only_updates_enabled_lanes(self, grf):
        flags = [0xFFFF, 0]
        _exec(Opcode.CMP, None, [RegRef(0), Imm(-1.0)], grf, flags=flags,
              cmp_op=CmpOp.LT, mask=0x000F, flag_dst=FlagRef(0))
        # Lanes 0-3 updated (all false); lanes 4-15 keep old bits.
        assert flags[0] == 0xFFF0

    def test_sel_uses_selector_not_mask(self, grf):
        dst = RegRef(10, DType.F32)
        _exec(Opcode.SEL, dst, [Imm(1.0), Imm(2.0)], grf, selector=0x00FF)
        values = grf.read(dst, 16)
        np.testing.assert_array_equal(values[:8], 1.0)
        np.testing.assert_array_equal(values[8:], 2.0)


class TestGatherScatter:
    def test_gather_roundtrip(self):
        surface = np.arange(64, dtype=np.float32).view(np.uint8)
        offsets = np.array([4 * i for i in range(16)], dtype=np.int32)
        values = gather(surface, offsets, FULL16, DType.F32)
        np.testing.assert_array_equal(values, np.arange(16))

    def test_gather_disabled_lanes_zero(self):
        surface = np.arange(64, dtype=np.float32).view(np.uint8)
        offsets = np.zeros(16, dtype=np.int32)
        values = gather(surface, offsets, 0x0001, DType.F32)
        assert values[0] == 0.0 and (values[1:] == 0.0).all()

    def test_gather_out_of_bounds(self):
        surface = np.zeros(16, dtype=np.float32).view(np.uint8)
        offsets = np.full(16, 1 << 20, dtype=np.int32)
        with pytest.raises(IndexError):
            gather(surface, offsets, FULL16, DType.F32)

    def test_gather_misaligned(self):
        surface = np.zeros(16, dtype=np.float32).view(np.uint8)
        offsets = np.full(16, 2, dtype=np.int32)
        with pytest.raises(ValueError, match="misaligned"):
            gather(surface, offsets, FULL16, DType.F32)

    def test_scatter_applies_values(self):
        backing = np.zeros(32, dtype=np.float32)
        surface = backing.view(np.uint8)
        offsets = np.array([4 * i for i in range(16)], dtype=np.int32)
        scatter(surface, offsets, np.arange(16, dtype=np.float32), FULL16, DType.F32)
        np.testing.assert_array_equal(backing[:16], np.arange(16))

    def test_scatter_conflict_highest_lane_wins(self):
        backing = np.zeros(4, dtype=np.float32)
        offsets = np.zeros(16, dtype=np.int32)
        scatter(backing.view(np.uint8), offsets,
                np.arange(16, dtype=np.float32), FULL16, DType.F32)
        assert backing[0] == 15.0

    def test_scatter_respects_mask(self):
        backing = np.zeros(16, dtype=np.float32)
        offsets = np.array([4 * i for i in range(16)], dtype=np.int32)
        scatter(backing.view(np.uint8), offsets,
                np.full(16, 7.0, np.float32), 0x0003, DType.F32)
        assert backing[0] == 7.0 and backing[1] == 7.0 and backing[2] == 0.0

    def test_scatter_conflict_under_partial_mask(self):
        # Duplicate offsets with some of the colliding lanes disabled:
        # the winner is the highest *enabled* lane, not the highest lane.
        backing = np.zeros(4, dtype=np.float32)
        offsets = np.zeros(16, dtype=np.int32)
        scatter(backing.view(np.uint8), offsets,
                np.arange(16, dtype=np.float32), 0x000B, DType.F32)
        assert backing[0] == 3.0  # lanes 0,1,3 enabled; lane 3 wins

    def test_bad_offsets_in_disabled_lanes_ignored(self):
        surface = np.arange(16, dtype=np.float32).view(np.uint8)
        offsets = np.array([0, -4, 2, 1 << 20] + [0] * 12, dtype=np.int32)
        values = gather(surface, offsets, 0x0001, DType.F32)
        assert values[0] == 0.0
        scatter(surface, offsets, np.full(16, 9.0, np.float32),
                0x0001, DType.F32)

    def test_error_reports_first_bad_lane(self):
        surface = np.zeros(16, dtype=np.float32).view(np.uint8)
        offsets = np.array([0, 4, 996, 1000] + [0] * 12, dtype=np.int32)
        with pytest.raises(IndexError,
                           match=r"lane 2 reads byte offset 996"):
            gather(surface, offsets, FULL16, DType.F32)

    def test_alignment_checked_before_range(self):
        # A misaligned offset that is also out of range reports the
        # alignment fault, matching the lane-at-a-time reference order.
        surface = np.zeros(16, dtype=np.float32).view(np.uint8)
        offsets = np.array([998] + [0] * 15, dtype=np.int32)
        with pytest.raises(ValueError,
                           match=r"misaligned f32 access at byte offset 998"):
            gather(surface, offsets, FULL16, DType.F32)

    def test_negative_offset_is_out_of_range(self):
        surface = np.zeros(16, dtype=np.float32).view(np.uint8)
        offsets = np.array([0, -4] + [0] * 14, dtype=np.int32)
        with pytest.raises(IndexError,
                           match=r"lane 1 reads byte offset -4"):
            gather(surface, offsets, FULL16, DType.F32)

    def test_scatter_error_says_writes(self):
        surface = np.zeros(16, dtype=np.float32).view(np.uint8)
        offsets = np.full(16, 1 << 20, dtype=np.int32)
        with pytest.raises(IndexError, match=r"lane 0 writes"):
            scatter(surface, offsets, np.zeros(16, np.float32),
                    FULL16, DType.F32)
