"""Issue-stage behaviour tests: dual issue, pipe contention, EM overlap."""

import numpy as np
import pytest

from repro.gpu import GpuConfig, GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.isa.types import DType


def _program(ops: str, chain: bool, count: int = 24):
    """Kernel of `count` FPU ("fpu") or EM ("em") ops, dependent or not."""
    b = KernelBuilder("issue", 16)
    gid = b.global_id()
    out = b.surface_arg("out")
    regs = [b.vreg(DType.F32) for _ in range(4)]
    for reg in regs:
        b.mov(reg, 1.5)
    for i in range(count):
        dst = regs[0] if chain else regs[i % 4]
        src = regs[0] if chain else regs[i % 4]
        if ops == "fpu":
            b.mad(dst, src, 1.0001, 0.25)
        else:
            b.sqrt(dst, src)
    acc = regs[0]
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(acc, addr, out)
    return b.finish()


def _cycles(program, n=96, **config_kwargs):
    out = np.zeros(n, dtype=np.float32)
    config = GpuConfig(num_eus=1, **config_kwargs)
    return GpuSimulator(config).run(program, n, buffers={"out": out}).total_cycles


class TestIssueBandwidth:
    def test_independent_ops_faster_than_dependent_chain(self):
        independent = _cycles(_program("fpu", chain=False))
        dependent = _cycles(_program("fpu", chain=True))
        assert independent <= dependent

    def test_single_issue_slower_than_dual(self):
        program = _program("fpu", chain=False)
        dual = _cycles(program, issue_width=2)
        single = _cycles(program, issue_width=1)
        assert single >= dual

    def test_fpu_and_em_pipes_overlap(self):
        # A mix of FPU and EM work can dual-issue onto both pipes; the
        # mixed kernel must not cost the sum of the two pure kernels.
        fpu_only = _cycles(_program("fpu", chain=False, count=24))
        em_only = _cycles(_program("em", chain=False, count=24))

        b = KernelBuilder("mixed", 16)
        gid = b.global_id()
        out = b.surface_arg("out")
        regs = [b.vreg(DType.F32) for _ in range(4)]
        for reg in regs:
            b.mov(reg, 1.5)
        for i in range(24):
            b.mad(regs[i % 2], regs[i % 2], 1.0001, 0.25)
            b.sqrt(regs[2 + i % 2], regs[2 + i % 2])
        addr = b.vreg(DType.I32)
        b.shl(addr, gid, 2)
        b.store(regs[0], addr, out)
        mixed = _cycles(b.finish())
        assert mixed < fpu_only + em_only

    def test_more_threads_hide_latency(self):
        # The same total work finishes sooner when spread over more
        # hardware threads (latency hiding, paper Section 2.2).
        program = _program("em", chain=True, count=16)
        few = _cycles(program, n=96, threads_per_eu=2)
        many = _cycles(program, n=96, threads_per_eu=6)
        assert many <= few


class TestSendPipeOccupancy:
    def test_wider_loads_occupy_send_longer(self):
        def load_kernel(width):
            b = KernelBuilder("lk", width)
            gid = b.global_id()
            src = b.surface_arg("src")
            out = b.surface_arg("out")
            addr = b.vreg(DType.I32)
            b.shl(addr, gid, 2)
            val = b.vreg(DType.F32)
            for _ in range(8):
                b.load(val, addr, src)
            b.store(val, addr, out)
            return b.finish()

        def send_busy(width):
            n = 64
            src = np.ones(n, dtype=np.float32)
            out = np.zeros(n, dtype=np.float32)
            result = GpuSimulator(GpuConfig(num_eus=1)).run(
                load_kernel(width), n, buffers={"src": src, "out": out})
            return result.send_busy_cycles / result.memory_messages

        # SIMD16 moves two registers per message, SIMD8 one.
        assert send_busy(16) == pytest.approx(2 * send_busy(8), rel=0.2)
