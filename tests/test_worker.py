"""Lease-semantics tests for the multi-host worker fleet.

Exercises the service's fleet layer directly (no HTTP, no processes)
with an injected clock: lease grant/renew/expiry clock edges, fence
rejection of a zombie's late posts, the bounded-reassignment backstop
(-> typed :class:`WorkerCrashError`), journal-replayed lease state
across a daemon restart, and the fleet metrics / degraded-health view.
"""

import asyncio

import pytest

from repro.errors import FenceRejectedError, WorkerCrashError
from repro.serve import JobService, JobState

TTL = 30.0


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _fleet(tmp_path, clock=None, **kwargs):
    """A coordinator-only service with a deterministic clock."""
    kwargs.setdefault("cache", tmp_path / "cache")
    kwargs.setdefault("local_exec", False)
    kwargs.setdefault("lease_ttl", TTL)
    service = JobService(tmp_path / "data", **kwargs)
    if clock is not None:
        service._now = clock
    return service


def _lease_one(service, worker):
    """Grant one lease synchronously (lease() is a coroutine)."""
    grants = asyncio.run(service.lease(worker, max_jobs=1, wait=0.0))
    assert grants, f"no grant for {worker}"
    return grants[0]


def _payload(job_id="x"):
    """complete_remote only validates shape; content is the worker's."""
    return {"schema": 1, "workload": "va", "buffers_digest": f"d-{job_id}"}


class TestLeaseGrant:
    def test_grant_carries_fence_and_marks_running(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        assert grant["id"] == record.id
        assert grant["fence"] == 1
        assert grant["lease_ttl"] == TTL
        assert grant["deadline"] == clock.now + TTL
        assert grant["assignments"] == 1
        assert record.state == JobState.RUNNING
        assert record.worker == "w1"
        assert record.fence == 1

    def test_fence_tokens_strictly_increase(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        for policy in ("ivb", "bcc", "scc"):
            service.submit({"workload": "va", "policy": policy})
        fences = [_lease_one(service, f"w{n}")["fence"] for n in range(3)]
        assert fences == [1, 2, 3]

    def test_empty_queue_returns_no_grants(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        assert asyncio.run(service.lease("w1", wait=0.0)) == []

    def test_dedup_subscriber_follows_lease_state(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        first = service.submit({"workload": "va"})
        second = service.submit({"workload": "va"})
        assert second.dedup_of == first.id
        _lease_one(service, "w1")
        assert second.state == JobState.RUNNING
        service.complete_remote(first.id, "w1", 1, _payload())
        assert first.state == JobState.DONE
        assert second.state == JobState.DONE
        assert second.result == first.result


class TestExpiryClockEdges:
    def test_lease_at_exact_deadline_still_holds(self, tmp_path):
        """now == deadline is NOT expired (strict >): the worker gets
        the whole TTL, to the last tick."""
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        _lease_one(service, "w1")
        clock.advance(TTL)  # exactly at the deadline
        assert service.expire_leases() == 0
        assert record.state == JobState.RUNNING
        assert service.health_status() == "ok"

    def test_one_tick_past_deadline_reassigns(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        _lease_one(service, "w1")
        clock.advance(TTL + 0.001)
        # Expired-but-not-yet-swept is the degraded health window.
        assert service.health_status() == "degraded"
        assert service.expire_leases() == 1
        assert service.health_status() == "ok"
        assert record.state == JobState.QUEUED
        assert record.worker is None and record.fence is None
        assert service.counters.get("serve.leases.expired") == 1
        assert service.counters.get("serve.leases.reassigned") == 1

    def test_heartbeat_pushes_deadline_out(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        clock.advance(TTL - 1.0)
        body = service.heartbeat(record.id, "w1", grant["fence"])
        assert body["deadline"] == clock.now + TTL
        assert body["renewals"] == 1
        clock.advance(TTL - 1.0)  # past the *original* deadline
        assert service.expire_leases() == 0
        assert record.state == JobState.RUNNING

    def test_heartbeat_after_expiry_is_fence_rejected(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        clock.advance(TTL + 1.0)
        service.expire_leases()
        with pytest.raises(FenceRejectedError):
            service.heartbeat(record.id, "w1", grant["fence"])
        assert service.counters.get("serve.leases.fence_rejected") == 1


class TestZombieFencing:
    def test_zombies_late_result_is_rejected(self, tmp_path):
        """The tentpole acceptance case: w1 stalls past its lease, the
        job is reassigned to w2, and w1's late post must NOT clobber
        anything — 409, counted, journaled."""
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        stale = _lease_one(service, "w1")
        clock.advance(TTL + 1.0)
        service.expire_leases()
        fresh = _lease_one(service, "w2")
        assert fresh["fence"] > stale["fence"]
        with pytest.raises(FenceRejectedError):
            service.complete_remote(record.id, "w1", stale["fence"],
                                    _payload())
        # The job is untouched, still w2's.
        assert record.state == JobState.RUNNING
        assert record.worker == "w2"
        service.complete_remote(record.id, "w2", fresh["fence"], _payload())
        assert record.state == JobState.DONE
        assert record.worker == "w2"
        assert service.counters.get("serve.leases.fence_rejected") == 1

    def test_zombie_rejected_even_after_resolution(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        stale = _lease_one(service, "w1")
        clock.advance(TTL + 1.0)
        service.expire_leases()
        fresh = _lease_one(service, "w2")
        service.complete_remote(record.id, "w2", fresh["fence"], _payload())
        with pytest.raises(FenceRejectedError):
            service.complete_remote(record.id, "w1", stale["fence"],
                                    _payload())
        assert record.resolved_fence == fresh["fence"]

    def test_wrong_worker_same_fence_is_rejected(self, tmp_path):
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        with pytest.raises(FenceRejectedError):
            service.complete_remote(record.id, "imposter", grant["fence"],
                                    _payload())

    def test_duplicate_result_same_fence_is_idempotent(self, tmp_path):
        """At-least-once posting: a worker that retried a result post
        whose first response was lost gets a friendly answer, and the
        job resolves exactly once."""
        service = _fleet(tmp_path, FakeClock())
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        service.complete_remote(record.id, "w1", grant["fence"], _payload())
        finished_at = record.finished_at
        again = service.complete_remote(record.id, "w1", grant["fence"],
                                        _payload())
        assert again is record
        assert record.finished_at == finished_at  # not re-resolved
        assert service.counters.get("serve.work.duplicate_results") == 1
        assert service.counters.get("serve.jobs.executed") == 1


class TestReassignmentBound:
    def test_cap_fails_job_as_worker_crash(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock, max_assignments=2)
        record = service.submit({"workload": "va"})
        for n in range(2):
            _lease_one(service, f"w{n}")
            clock.advance(TTL + 1.0)
            service.expire_leases()
        assert record.state == JobState.FAILED
        assert record.exit_code == WorkerCrashError.exit_code  # 5
        assert "lost its worker 2 time(s)" in record.error
        assert "assignment bound 2" in record.error

    def test_transient_failure_counts_toward_cap(self, tmp_path):
        service = _fleet(tmp_path, FakeClock(), max_assignments=2)
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        service.fail_remote(record.id, "w1", grant["fence"],
                            "WorkerCrashError: boom", transient=True)
        assert record.state == JobState.QUEUED  # one strike left
        grant = _lease_one(service, "w2")
        service.fail_remote(record.id, "w2", grant["fence"],
                            "WorkerCrashError: boom again", transient=True)
        assert record.state == JobState.FAILED
        assert record.exit_code == WorkerCrashError.exit_code

    def test_deterministic_failure_resolves_immediately(self, tmp_path):
        """A typed simulation failure (deadlock, verification...) is the
        job's real answer — no requeue, worker's exit code preserved."""
        service = _fleet(tmp_path, FakeClock(), max_assignments=3)
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        service.fail_remote(record.id, "w1", grant["fence"],
                            "DeadlockError: no runnable warp",
                            exit_code=3, transient=False)
        assert record.state == JobState.FAILED
        assert record.exit_code == 3
        assert record.assignments == 1


class TestRestartRecovery:
    def test_live_lease_survives_daemon_restart(self, tmp_path):
        """A worker mid-job keeps its lease across a daemon crash: the
        journal replays grant+renewals, and the worker's eventual
        result post lands under the same fence."""
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        service.heartbeat(record.id, "w1", grant["fence"])
        reborn = _fleet(tmp_path, clock)  # same data dir = restart
        again = reborn.get(record.id)
        assert again.state == JobState.RUNNING
        assert again.worker == "w1"
        assert again.fence == grant["fence"]
        lease = reborn.leases.get(record.id)
        assert lease is not None and lease.worker == "w1"
        assert reborn.counters.get("serve.leases.restored") == 1
        # ... and the worker finishes as if nothing happened.
        reborn.complete_remote(record.id, "w1", grant["fence"], _payload())
        assert reborn.get(record.id).state == JobState.DONE

    def test_restored_fence_counter_stays_monotonic(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        service.submit({"workload": "va"})
        service.submit({"workload": "va", "policy": "bcc"})
        stale = _lease_one(service, "w1")
        reborn = _fleet(tmp_path, clock)
        fresh = _lease_one(reborn, "w2")
        assert fresh["fence"] > stale["fence"]

    def test_dead_workers_restored_lease_expires_normally(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        _lease_one(service, "w1")
        clock.advance(5.0)
        reborn = _fleet(tmp_path, clock)
        assert reborn.get(record.id).state == JobState.RUNNING
        clock.advance(TTL)  # now > restored deadline
        assert reborn.expire_leases() == 1
        assert reborn.get(record.id).state == JobState.QUEUED

    def test_fence_rejection_survives_restart(self, tmp_path):
        """Even if the daemon restarts between reassignment and the
        zombie's late post, the replayed fence state still rejects it."""
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        record = service.submit({"workload": "va"})
        stale = _lease_one(service, "w1")
        clock.advance(TTL + 1.0)
        service.expire_leases()
        fresh = _lease_one(service, "w2")
        reborn = _fleet(tmp_path, clock)
        with pytest.raises(FenceRejectedError):
            reborn.complete_remote(record.id, "w1", stale["fence"],
                                   _payload())
        reborn.complete_remote(record.id, "w2", fresh["fence"], _payload())
        assert reborn.get(record.id).state == JobState.DONE


class TestFleetMetrics:
    def test_fleet_view_tracks_workers_and_leases(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        clock.advance(3.0)
        asyncio.run(service.lease("w2", wait=0.0))  # polls, gets nothing
        body = service.metrics()
        fleet = body["fleet"]
        assert fleet["workers_active"] == 2
        assert fleet["leases_active"] == 1
        assert fleet["local_exec"] is False
        assert fleet["workers"]["w1"]["last_heartbeat_age"] == 3.0
        assert fleet["workers"]["w1"]["leases_granted"] == 1
        assert fleet["workers"]["w2"]["last_heartbeat_age"] == 0.0
        assert body["counters"]["serve.workers.active"] == 2.0
        assert body["counters"]["serve.leases.granted"] == 1.0
        service.complete_remote(grant["id"], "w1", grant["fence"],
                                _payload())
        assert service.metrics()["fleet"]["workers"]["w1"]["completed"] == 1

    def test_expired_unswept_lease_reports_degraded(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        service.submit({"workload": "va"})
        _lease_one(service, "w1")
        clock.advance(TTL + 5.0)
        body = service.metrics()
        assert body["fleet"]["leases_expired_pending"] == 1
        assert service.health_status() == "degraded"


class TestWorkerRetirement:
    """Worker names default to ``<hostname>-<pid>``: every restart is a
    "new" worker, so the bookkeeping table must retire silent entries
    or grow one dead row per restart forever (the pre-fix bug)."""

    def test_silent_workers_retired_after_horizon(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        service.submit({"workload": "va"})
        grant = _lease_one(service, "w1")
        service.complete_remote(grant["id"], "w1", grant["fence"],
                                _payload())
        asyncio.run(service.lease("w2", wait=0.0))  # polled once, then died
        assert set(service.metrics()["fleet"]["workers"]) == {"w1", "w2"}
        clock.advance(service.worker_retire_horizon + 1.0)
        service.expire_leases()
        fleet = service.metrics()["fleet"]
        assert fleet["workers"] == {}
        assert fleet["workers_known"] == 0
        assert fleet["workers_retired"] == 2
        # Fleet-lifetime throughput survives the bookkeeping cleanup.
        assert fleet["retired_totals"] == {"leases_granted": 1,
                                           "completed": 1, "failed": 0}
        assert service.counters.get("serve.workers.retired") == 2

    def test_table_stays_bounded_under_worker_churn(self, tmp_path):
        """A crash-looping host mints a fresh name per restart; the
        table must track only the recent generation, not all of them."""
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        step = service.worker_retire_horizon / 4.0
        for generation in range(20):
            service.submit({"workload": "va", "params": {"n": 64 + generation}})
            grant = _lease_one(service, f"host-{1000 + generation}")
            service.complete_remote(grant["id"],
                                    f"host-{1000 + generation}",
                                    grant["fence"], _payload(grant["id"]))
            clock.advance(step)
            service.expire_leases()
        fleet = service.metrics()["fleet"]
        assert len(fleet["workers"]) <= 5  # bounded by the horizon window
        assert (fleet["workers_retired"]
                + len(fleet["workers"])) == 20
        assert fleet["retired_totals"]["completed"] == fleet[
            "workers_retired"]

    def test_contact_within_horizon_defers_retirement(self, tmp_path):
        clock = FakeClock()
        service = _fleet(tmp_path, clock)
        asyncio.run(service.lease("w1", wait=0.0))
        clock.advance(service.worker_retire_horizon - 1.0)
        service.expire_leases()
        fleet = service.metrics()["fleet"]
        assert "w1" in fleet["workers"]
        assert fleet["workers"]["w1"]["active"] is False  # silent, kept
        assert fleet["workers_retired"] == 0

    def test_lease_holder_is_never_retired(self):
        """Silence is judged by lease expiry, not retirement: a worker
        still holding a live lease keeps its bookkeeping entry however
        stale its last contact looks."""
        from repro.serve import LeaseTable

        table = LeaseTable()
        table.grant("j1", "w1", ttl=10_000.0, now=0.0)
        table.touch("w2", 0.0)
        gone = table.retire_idle(now=500.0, horizon=100.0)
        assert [info.name for info in gone] == ["w2"]
        assert "w1" in table.workers
        assert table.retired == 1

    def test_retire_horizon_must_exceed_active_horizon(self, tmp_path):
        with pytest.raises(ValueError):
            _fleet(tmp_path, FakeClock(), worker_retire_horizon=1.0)


class TestLocalExecGate:
    def test_coordinator_never_runs_jobs_itself(self, tmp_path):
        """local_exec=False: the dispatcher leaves the queue to the
        fleet even while the service is running."""
        async def scenario():
            service = _fleet(tmp_path)
            record = service.submit({"workload": "fault_count",
                                     "params": {"counter":
                                                str(tmp_path / "c.txt")}})
            await service.start()
            await asyncio.sleep(0.3)
            state = record.state
            await service.drain()
            return state

        assert asyncio.run(scenario()) == JobState.QUEUED
        assert not (tmp_path / "c.txt").exists()
