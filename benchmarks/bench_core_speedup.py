"""Tracks the two-phase core's wall-clock win over the interpreter.

Times a small workload subset under both engines (fresh instances,
best-of-N process time, verification off), asserts functional identity
via output digests, and regenerates
``benchmarks/results/BENCH_core_speedup.json``.  The committed artifact
for the full baseline trio is produced by
``python -m repro.telemetry.corebench``; this bench keeps the recipe
executable and the schema honest in CI.
"""

import json
from pathlib import Path

from repro.telemetry.corebench import check_artifact, collect

RESULTS = Path(__file__).parent / "results" / "BENCH_core_speedup.json"


def test_core_speedup(benchmark, emit):
    payload = benchmark.pedantic(
        lambda: collect(("va", "nested_l2"), repeats=2),
        rounds=1, iterations=1)

    assert check_artifact(payload) == []
    lines = []
    for name, row in payload["workloads"].items():
        # Digest equality is asserted inside collect(); re-assert the
        # recorded flag so the artifact can't silently drop it.
        assert row["digests_match"]
        # CPU-time speedup is noise-tolerant; anything near 1x means the
        # fast engine regressed structurally.
        assert row["speedup_vs_interp"] > 1.5, (name, row)
        lines.append(f"{name:12s} interp {row['interp_seconds']:8.3f}s   "
                     f"fast {row['fast_seconds']:8.3f}s   "
                     f"{row['speedup_vs_interp']:6.2f}x")
    emit("core engine speedup (interp vs fast)\n" + "\n".join(lines))

    RESULTS.parent.mkdir(exist_ok=True)
    committed = json.loads(RESULTS.read_text()) if RESULTS.is_file() else None
    if committed is not None:
        # Don't clobber a fuller committed artifact with the CI subset;
        # just require it to be schema-valid.
        assert check_artifact(committed) == []
    else:
        RESULTS.write_text(json.dumps(payload, indent=2, sort_keys=True)
                           + "\n")
