"""Regenerates paper Figure 12: Rodinia total-time vs EU-cycle reduction.

Expected shape: EU-cycle reductions around 10-25 %, but total-time
benefits smaller than for ray tracing; BFS (memory-stall dominated)
barely moves even though its EU cycles shrink the most, and a perfect
L3 does not rescue lavaMD (imbalance-bound).
"""

from repro.experiments import fig12


def test_fig12_rodinia(benchmark, emit):
    rows = benchmark.pedantic(fig12.fig12_data, rounds=1, iterations=1)
    emit(fig12.render(rows))

    by_name = {r.name: r for r in rows}
    assert set(by_name) == set(fig12.RODINIA_NAMES)
    for row in rows:
        assert row.scc_eu >= row.bcc_eu - 1e-9, row.name
        # Total-time gain does not exceed the EU-cycle gain (plus slack).
        assert row.scc_total <= row.scc_eu + 5.0, row.name
    # BFS: large EU-cycle reduction, little total-time benefit (memory).
    bfs = by_name["bfs"]
    assert bfs.scc_eu > 15.0
    assert bfs.scc_total < bfs.scc_eu * 0.6
    # On average the EU benefit exceeds the realized total-time benefit.
    avg_eu = sum(r.scc_eu for r in rows) / len(rows)
    avg_total = sum(r.scc_total for r in rows) / len(rows)
    assert avg_eu > avg_total
