"""Ablation: register-file access savings from BCC (energy proxy).

Paper Section 4.1: "the corresponding operand fetches/write-backs for
the unissued micro-ops are also not required, which in turn offers
register file access energy savings."  We count half-register GRF
accesses with and without BCC suppression across the divergent trace
population — the access reduction tracks the cycle reduction.
"""

from repro.analysis.report import format_table
from repro.trace.profiler import profile_trace
from repro.trace.workloads import TRACE_PROFILES, trace_events


def _collect():
    rows = []
    for name in sorted(TRACE_PROFILES):
        profile = profile_trace(name, trace_events(name))
        stats = profile.stats
        rows.append((
            name,
            stats.rf_accesses_baseline,
            stats.rf_accesses_bcc,
            stats.rf_access_savings_pct(),
            profile.bcc_reduction_pct,
        ))
    return rows


def test_ablation_rf_energy(benchmark, emit):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    emit(format_table(
        ["trace", "baseline RF accesses", "BCC RF accesses",
         "access savings", "BCC cycle reduction"],
        [[n, b, c, f"{s:.1f}%", f"{r:.1f}%"] for n, b, c, s, r in rows],
        title="Ablation: BCC register-file access savings (Section 4.1)",
    ))

    for name, base, bcc, savings, _cycle_red in rows:
        assert bcc <= base, name
        assert 0.0 <= savings <= 100.0, name
    # Savings are substantial for the heavily divergent traces.
    best = max(savings for _, _, _, savings, _ in rows)
    assert best > 20.0
