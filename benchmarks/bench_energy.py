"""Energy study: dynamic-energy breakdown per policy (Section 4.3).

The paper argues qualitatively that BCC wins on both performance and
energy (fewer quads *and* fewer register-file fetches, trivial control),
while SCC trades some of its larger cycle win for crossbar and control
energy.  This bench quantifies that under the model's documented
assumptions across the divergent trace population.
"""

from repro.analysis.report import format_table
from repro.core.policy import CompactionPolicy
from repro.energy import energy_breakdown, energy_savings_pct
from repro.trace.profiler import profile_trace
from repro.trace.workloads import TRACE_PROFILES, trace_events


def _collect():
    rows = []
    for name in sorted(TRACE_PROFILES):
        stats = profile_trace(name, trace_events(name)).stats
        bcc = energy_savings_pct(stats, CompactionPolicy.BCC)
        scc = energy_savings_pct(stats, CompactionPolicy.SCC)
        scc_bd = energy_breakdown(stats, CompactionPolicy.SCC)
        rows.append((name, bcc, scc, scc_bd.crossbar / max(scc_bd.total, 1e-9)))
    return rows


def test_energy_study(benchmark, emit):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    emit(format_table(
        ["trace", "BCC energy saving", "SCC energy saving",
         "SCC crossbar share"],
        [[n, f"{b:.1f}%", f"{s:.1f}%", f"{x * 100:.1f}%"]
         for n, b, s, x in rows],
        title="Dynamic-energy savings vs IVB baseline (Section 4.3 model)",
    ))

    for name, bcc, scc, crossbar_share in rows:
        # BCC always saves energy on divergent traces.
        assert bcc > 0.0, name
        # The crossbar overhead stays modest (paper: "minimal" datapath
        # overhead on Intel GPUs with existing swizzle support).
        assert crossbar_share < 0.10, name
    avg_bcc = sum(r[1] for r in rows) / len(rows)
    avg_scc = sum(r[2] for r in rows) / len(rows)
    # Section 4.3's conclusion: BCC's energy advantage beats SCC's.
    assert avg_bcc > avg_scc
