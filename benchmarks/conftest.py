"""Shared fixtures for the benchmark suite.

Every bench regenerates one paper table or figure.  The rendered text is
printed (visible with ``pytest -s`` / on failure) and also written to
``benchmarks/results/<bench>.txt`` so the artifacts survive output
capture.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def emit(request):
    """Callable(text): record a bench's rendered table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{request.node.name}.txt"

    def _emit(text: str) -> None:
        print()
        print(text)
        path.write_text(text + "\n")

    return _emit


def pytest_collection_modifyitems(items):
    """Benchmarks are ordered by file name (fig/table number)."""
    items.sort(key=lambda item: item.nodeid)
