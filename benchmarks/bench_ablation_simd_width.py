"""Ablation: SIMD width vs divergence and compaction opportunity.

Paper Section 5.4 / conclusions: "SIMD efficiency of GPGPU applications
reduces with wider SIMD widths ... one can therefore expect a larger
optimization opportunity and potential benefit from applying intra-warp
compaction techniques to these other architectures" (NVIDIA's 32-wide,
AMD's 64-wide warps).  We run the same divergent kernels at SIMD8/16/32
and measure both effects directly.
"""

from repro.analysis.report import format_table
from repro.core.policy import CompactionPolicy
from repro.runner import Job, default_runner

WIDTHS = (8, 16, 32)

# Note: the ray tracers cannot join this sweep -- at SIMD32 their
# register footprint exceeds the 128-register GRF, which is exactly the
# paper's Section 5.3 observation (the compiler emits SIMD8 RT kernels
# under register pressure).  tests/test_register_pressure.py pins that.

#: registry name -> width-independent factory params.
_PARAMS = {
    "gnoise": {"n": 512},
    "bsearch": {"num_keys": 512, "table_size": 512},
    "eigenvalue": {"matrix_dim": 8, "bisect_iters": 12},
}


def _collect():
    jobs = {
        (name, width): Job(name, params={**params, "simd_width": width})
        for name, params in _PARAMS.items()
        for width in WIDTHS
    }
    results = default_runner().run(jobs.values())
    rows = []
    for name in _PARAMS:
        for width in WIDTHS:
            result = results[jobs[(name, width)]]
            rows.append((
                name, width, result.simd_efficiency,
                result.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                result.eu_cycle_reduction_pct(CompactionPolicy.SCC),
            ))
    return rows


def test_ablation_simd_width(benchmark, emit):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    emit(format_table(
        ["workload", "SIMD width", "efficiency", "BCC reduction",
         "SCC reduction"],
        [[n, w, f"{e:.3f}", f"{b:.1f}%", f"{s:.1f}%"]
         for n, w, e, b, s in rows],
        title="Ablation: SIMD width vs divergence (Section 5.4/conclusions)",
    ))

    by_workload = {}
    for name, width, eff, bcc, scc in rows:
        by_workload.setdefault(name, {})[width] = (eff, bcc, scc)
    for name, widths in by_workload.items():
        # Efficiency falls monotonically with width...
        assert widths[8][0] >= widths[16][0] >= widths[32][0], name
        # ...and the SCC opportunity grows from SIMD8 to SIMD32.
        assert widths[32][2] >= widths[8][2] - 1.0, name
