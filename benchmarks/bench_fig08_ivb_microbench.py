"""Regenerates paper Figure 8: the Ivy Bridge divergence micro-benchmark.

Expected shape: 0x00FF runs as fast as 0xFFFF (the built-in half-mask
rewrite), 0xFF0F lands near 150 %, and 0xF0F0 / 0xAAAA pay the full
divergence penalty — the two cases BCC and SCC respectively recover.
"""

import pytest

from repro.experiments import fig08


def test_fig08_ivb_microbench(benchmark, emit):
    simulated = benchmark.pedantic(
        fig08.fig8_simulated, kwargs={"n": 1024}, rounds=1, iterations=1)
    analytic = fig08.fig8_analytic()
    emit(
        fig08.render(analytic, "Figure 8 (analytic arm cycles, IVB policy)")
        + "\n\n"
        + fig08.render(simulated, "Figure 8 (simulated kernel time, IVB policy)")
    )

    for point in analytic:
        assert point.relative_time == pytest.approx(
            fig08.PAPER_FIG8_RELATIVE[point.pattern])
    times = {p.pattern: p.relative_time for p in simulated}
    assert times[0x00FF] == pytest.approx(times[0xFFFF], rel=0.10)
    assert times[0xF0F0] > times[0xFF0F] > times[0x00FF]
