"""Regenerates the Section 4.3 register-file area comparison.

Expected: BCC file ~ +10 % vs baseline; the 8-banked per-lane file of
inter-warp schemes > +40 %; the SCC file is wider but shorter (< 0 %).
"""

import pytest

from repro.experiments import area as area_exp


def test_area_regfile(benchmark, emit):
    rows = benchmark.pedantic(area_exp.area_data, rounds=1, iterations=1)
    emit(area_exp.render(rows))

    by_name = {r.config.name: r for r in rows}
    assert by_name["bcc"].overhead_pct == pytest.approx(10.0, abs=1.0)
    assert by_name["interwarp-8bank"].overhead_pct > 40.0
    assert by_name["scc"].overhead_pct < 0.0
    assert by_name["baseline"].overhead_pct == 0.0
