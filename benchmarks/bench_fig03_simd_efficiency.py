"""Regenerates paper Figure 3: SIMD efficiency of the workload population.

Expected shape: linear-algebra/finance kernels at ~1.0 (coherent), ray
tracing / BFS / lavaMD / LuxMark / face detection well below the 95 %
line (divergent).
"""

from repro.experiments import fig03


def test_fig03_simd_efficiency(benchmark, emit):
    data = benchmark.pedantic(fig03.fig3_data, rounds=1, iterations=1)
    emit(fig03.render(data))

    by_name = {e.name: e for e in data.entries}
    # Coherent side of the figure.
    for name in ("va", "mvm", "mm", "bscholes", "mt"):
        assert by_name[name].simd_efficiency >= 0.95, name
    # Divergent side of the figure.
    for name in ("bfs", "lavamd", "rt_ao_al16", "luxmark_sky",
                 "fd_politicians"):
        assert by_name[name].simd_efficiency < 0.95, name
    assert len(data.divergent) >= 10
    assert len(data.coherent) >= 5
