"""Baseline comparison: intra-warp (BCC/SCC) vs inter-warp (TBC-class).

Quantifies the paper's central positioning claim (Sections 1 and 6):
inter-warp compaction can save more EU cycles in principle, but it
(a) increases memory divergence by mixing threads from different warps
into one issued warp, and (b) needs an 8-banked per-lane register file
(> +40 % area vs BCC's +10 %).  Intra-warp compaction "provides the
bulk of the benefits of more complex approaches" with neither cost —
here measured as the share of idealized TBC's cycle benefit that SCC
alone captures across the divergent trace population.
"""

from repro.analysis.report import format_table
from repro.area.regfile import bcc_grf, interwarp_grf, overhead_pct
from repro.baselines.interwarp import compare_on_groups, groups_from_trace
from repro.trace.workloads import TRACE_PROFILES, trace_events

WARPS_PER_BLOCK = 4  # warps sharing a TBC reconvergence stack


def _collect():
    rows = []
    for name in sorted(TRACE_PROFILES):
        comparison = compare_on_groups(
            groups_from_trace(trace_events(name), group_size=WARPS_PER_BLOCK))
        rows.append((
            name,
            comparison.bcc_reduction_pct,
            comparison.scc_reduction_pct,
            comparison.tbc_reduction_pct,
            comparison.ideal_reduction_pct,
            comparison.scc_benefit_share_of_tbc,
            comparison.memory_divergence_increase_pct,
        ))
    return rows


def test_baseline_interwarp(benchmark, emit):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    shares = [share for *_ignored, share, _mem in rows]
    mem_increases = [mem for *_ignored, mem in rows]
    table = format_table(
        ["trace", "BCC", "SCC", "TBC (ideal)", "lane-oblivious ideal",
         "SCC share of TBC", "TBC extra mem lines"],
        [[n, f"{b:.1f}%", f"{s:.1f}%", f"{t:.1f}%", f"{i:.1f}%",
          f"{sh:.2f}", f"+{m:.0f}%"]
         for n, b, s, t, i, sh, m in rows],
        title=(
            "Intra-warp vs idealized inter-warp compaction "
            f"({WARPS_PER_BLOCK} warps per block)"
        ),
    )
    avg_scc = sum(r[2] for r in rows) / len(rows)
    avg_tbc = sum(r[3] for r in rows) / len(rows)
    footer = (
        f"\naverage EU-cycle reduction: SCC {avg_scc:.1f}% vs idealized TBC "
        f"{avg_tbc:.1f}% — lane-position conflicts defeat TBC on repeated "
        f"divergence patterns (paper Section 3.2), while intra-warp "
        f"compaction adds 0% memory divergence (TBC adds "
        f"+{sum(mem_increases) / len(mem_increases):.0f}% line requests on "
        f"average)\nregister-file cost: BCC "
        f"{overhead_pct(bcc_grf()):+.0f}% vs inter-warp "
        f"{overhead_pct(interwarp_grf()):+.0f}%"
    )
    emit(table + footer)

    for name, bcc, scc, tbc, ideal, share, mem in rows:
        # The compaction hierarchy holds per trace.
        assert scc >= bcc - 1e-9, name
        assert ideal >= tbc - 1e-9, name
        # TBC's thread mixing always costs extra line requests on
        # divergent traces; intra-warp techniques never do.
        assert mem >= 0.0, name
    # The headline claim: intra-warp SCC delivers at least the bulk of
    # the inter-warp benefit (here it exceeds it: independent per-warp
    # masks give TBC heavy lane conflicts) at zero memory-divergence cost.
    assert avg_scc > 0.5 * avg_tbc
    avg_mem = sum(mem_increases) / len(mem_increases)
    assert avg_mem > 10.0
    assert shares  # keep the per-trace share column exercised
