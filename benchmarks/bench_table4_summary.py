"""Regenerates paper Table 4: summary of BCC/SCC benefits.

Paper values for orientation (max/avg %): GPGenSim EU cycles 36/18 (BCC)
and 38/24 (SCC); traces 31/12 and 42/18; execution time 21/5 and 21/7 at
DC1, 28/12 and 36/18 at DC2.  The reproduced shape: SCC >= BCC in every
row, EU-cycle rows exceed the execution-time rows, and DC2 recovers more
than DC1.
"""

from repro.experiments import table4


def test_table4_summary(benchmark, emit):
    rows = benchmark.pedantic(table4.table4_data, rounds=1, iterations=1)
    emit(table4.render(rows))

    by_label = {r.label: r for r in rows}
    assert len(rows) == 4
    for row in rows:
        assert row.scc_max >= row.bcc_max - 1e-9, row.label
        assert row.scc_avg >= row.bcc_avg - 1e-9, row.label
        assert row.bcc_max >= row.bcc_avg
        assert row.scc_max >= row.scc_avg
    # Trace population reaches the paper's headline maximum range.
    traces = by_label["Traces (EU cycles)"]
    assert 25.0 <= traces.scc_max <= 50.0
    # DC2 realizes at least as much execution-time benefit as DC1.
    dc1 = by_label["Execution time (DC1)"]
    dc2 = by_label["Execution time (DC2)"]
    assert dc2.scc_avg >= dc1.scc_avg - 1.0
    # Execution time never beats EU cycles on average.
    sim = by_label["GPGenSim (EU cycles)"]
    assert sim.scc_avg >= dc1.scc_avg - 1.0
