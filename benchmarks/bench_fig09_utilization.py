"""Regenerates paper Figure 9: SIMD utilization breakdown.

Expected shape: divergent workloads have substantial instruction mass in
the partially-active buckets (1-4, 5-8, 9-12 of 16 lanes; 1-4 of 8);
the SIMD8-only ray tracers report only the /8 buckets.
"""

from repro.experiments import fig09


def test_fig09_utilization(benchmark, emit):
    table = benchmark.pedantic(fig09.fig9_data, rounds=1, iterations=1)
    emit(fig09.render(table))

    assert len(table) >= 10
    for name, fractions in table.items():
        total = sum(fractions.values())
        assert abs(total - 1.0) < 1e-9, name
    # SIMD8 kernels only populate /8 buckets (paper: LuxMark, RT-AO-*8).
    ao8 = table.get("rt_ao_al8") or table.get("luxmark_sky")
    assert ao8 is not None
    assert ao8["1-4/16"] + ao8["5-8/16"] + ao8["9-12/16"] + ao8["13-16/16"] == 0.0
    # BFS: almost everything in the deepest-savings bucket.
    assert table["bfs"]["1-4/16"] > 0.4
