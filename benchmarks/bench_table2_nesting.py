"""Regenerates paper Table 2: nested-branch benefit decomposition.

The analytic rows must match the paper exactly (L1: SCC 50 %, L2: SCC
75 %, L3: BCC 50 % + SCC 25 %, L4: IVB 50 % + BCC 25 %); the simulated
rows show the same structure diluted by per-path common code.
"""

import pytest

from repro.experiments import table2


def test_table2_nesting(benchmark, emit):
    simulated = benchmark.pedantic(
        table2.table2_simulated, kwargs={"n": 512}, rounds=1, iterations=1)
    analytic = table2.table2_analytic()
    emit(
        table2.render(analytic, "Table 2 (analytic, % of raw cycles)")
        + "\n\n"
        + table2.render(simulated, "Table 2 (simulated kernels)")
    )

    for row in analytic:
        ivb, bcc, scc = table2.PAPER_TABLE2[row.level]
        assert row.ivb_benefit_pct == pytest.approx(ivb)
        assert row.bcc_benefit_pct == pytest.approx(bcc)
        assert row.scc_benefit_pct == pytest.approx(scc)
    # Simulated structure: deeper nesting -> more total compaction,
    # BCC appears at L3, IVB at L4.
    assert simulated[1].scc_benefit_pct > simulated[0].scc_benefit_pct
    assert simulated[2].bcc_benefit_pct > 10.0
    assert simulated[3].ivb_benefit_pct > 10.0
