"""Regenerates paper Figure 10: EU-cycle reduction per divergent workload.

Expected shape: stacked BCC + additional-SCC bars; LuxMark-class traces
reach 25-42 %, GLBench 15-22 % (mostly SCC), face detection ~30 %
(mostly SCC); the population maximum lands near the paper's 42 % with
an average around 20 %.
"""

from repro.experiments import fig10


def test_fig10_cycle_reduction(benchmark, emit):
    bars = benchmark.pedantic(fig10.fig10_data, rounds=1, iterations=1)
    emit(fig10.render(bars))

    stats = fig10.summarize(bars)
    # Paper: "as much as 42% (20% on average)"; our BFS stand-in peaks a
    # little higher because its frontier sparsity is extreme.
    assert 25.0 <= stats["max_scc"] <= 55.0
    assert 8.0 <= stats["avg_scc"] <= 30.0
    by_name = {b.name: b for b in bars}
    # SCC subsumes BCC on every workload.
    for bar in bars:
        assert bar.scc_pct >= bar.bcc_pct - 1e-9, bar.name
    # GLBench: the major share of benefit comes from SCC (paper 5.3).
    glb = by_name["glbench_egypt"]
    assert glb.scc_additional_pct > glb.bcc_pct
    # LuxMark-class workloads are the heavy hitters.
    assert by_name["luxmark_sky"].scc_pct > 25.0
