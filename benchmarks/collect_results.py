#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the benchmark result files.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/collect_results.py > EXPERIMENTS.md

Each section pairs the paper's reported numbers/shape with the
reproduction's measured output (verbatim from
``benchmarks/results/<bench>.txt``).
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS = Path(__file__).parent / "results"

#: (result file, title, paper expectation text)
SECTIONS = [
    ("test_fig03_simd_efficiency.txt", "Figure 3 — SIMD efficiency spectrum",
     "Paper: ~65 OpenCL/3D workloads sorted by SIMD efficiency; coherent "
     "applications (>95%) cluster near 1.0, divergent applications (ray "
     "tracing, BFS, LuxMark, face detection, GLBench, ...) fall well below. "
     "Reproduced: the same two-population shape over 40 simulator workloads "
     "plus 17 synthetic traces; every expected-coherent kernel lands above "
     "0.95 and every expected-divergent one below."),
    ("test_fig08_ivb_microbench.txt", "Figure 8 — Ivy Bridge micro-benchmark",
     "Paper: relative if/else execution time per lane pattern on real "
     "hardware — 0xFFFF 100%, 0x00FF 100% (the built-in half-mask rewrite), "
     "0xFF0F ~150%, 0xF0F0 and 0xAAAA ~200%. Reproduced: the analytic arm "
     "cycles match those percentages exactly; the simulated kernel shows the "
     "same ordering diluted by loop overhead (166%/133%/101%)."),
    ("test_table2_nesting.txt", "Table 2 — nested-branch decomposition",
     "Paper: L1 50% (SCC), L2 75% (SCC), L3 50% BCC + 25% SCC, L4 25% BCC + "
     "50% IVB. Reproduced: the analytic rows match EXACTLY (they are "
     "identities of the cycle model); the simulated kernels keep the "
     "structure with common-code dilution."),
    ("test_fig09_utilization.txt", "Figure 9 — SIMD utilization breakdown",
     "Paper: divergent workloads carry much of their dynamic instruction "
     "mass in partially-active buckets; SIMD8-only kernels (LuxMark, "
     "RT-AO-*8) report only /8 buckets. Reproduced: same bucket structure; "
     "BFS is dominated by the 1-4/16 bucket, the SIMD8 ray tracers by the "
     "/8 buckets."),
    ("test_fig10_cycle_reduction.txt", "Figure 10 — EU-cycle reduction",
     "Paper: BCC+SCC reduce divergent applications' EU cycles by up to 42% "
     "(20% on average); LuxMark/BulletPhysics/RightWare 25-42% with 1/4-1/3 "
     "from SCC; GLBench 15-22% mostly SCC; face detection ~30% mostly SCC. "
     "Reproduced: max 50% (our BFS stand-in is extremely sparse), average "
     "18%; every named family lands in its paper band."),
    ("test_fig11_raytracing.txt", "Figure 11 — ray tracing under DC1/DC2",
     "Paper: EU-cycle reductions up to ~40%; with DC1 bandwidth much of the "
     "benefit is absorbed by the memory port, DC2 recovers ~90% of it; "
     "data-cluster demand is 'significantly over one line per cycle but "
     "never exceeds two'. Reproduced: the SIMD16 AO kernels show the same "
     "gap (total-time benefit below EU-cycle benefit, DC2 >= DC1), and "
     "measured DC throughput sits between one and two lines per cycle for "
     "the memory-heavy configurations."),
    ("test_fig12_rodinia.txt", "Figure 12 — Rodinia, 128 KB vs perfect L3",
     "Paper: EU cycles shrink ~18-21% on average but total time moves much "
     "less; BFS sees no total-time benefit (memory-stall dominated; a "
     "perfect L3 helps it a little), lavaMD none even with a perfect L3. "
     "Reproduced: BFS cuts EU cycles ~50% but total time only a few "
     "percent; lavaMD likewise; the average EU reduction exceeds the "
     "average total-time reduction."),
    ("test_table4_summary.txt", "Table 4 — summary of benefits",
     "Paper (max/avg %): GPGenSim EU cycles BCC 36/18, SCC 38/24; traces "
     "BCC 31/12, SCC 42/18; execution time DC1 BCC 21/5, SCC 21/7; DC2 BCC "
     "28/12, SCC 36/18. Reproduced: same row structure and ordering (SCC >= "
     "BCC everywhere, EU-cycle rows >= execution-time rows, DC2 >= DC1), "
     "with magnitudes in the same ranges."),
    ("test_area_regfile.txt", "Section 4.3 — register-file area",
     "Paper (CACTI 5.x, 32nm): BCC register file ~+10% over baseline; "
     "8-banked per-lane file of inter-warp schemes >+40%; the SCC file is "
     "wider but shorter. Reproduced: +10.0%, +62.9%, -7.1%."),
    ("test_baseline_interwarp.txt", "Sections 1/6 — inter-warp comparison",
     "Paper: inter-warp compaction is micro-architecturally complex, needs "
     "per-lane register files, and increases memory divergence; intra-warp "
     "compaction provides the bulk of the benefit. Reproduced: idealized "
     "TBC loses to SCC on repeated divergence patterns (lane conflicts) "
     "and inflates line requests by ~50-70% on every divergent trace."),
    ("test_energy_study.txt", "Sections 4.1/4.3 — energy",
     "Paper (qualitative): BCC saves both cycles and register-file fetch "
     "energy with trivial control logic; SCC adds crossbar and control "
     "power and keeps baseline fetch energy. Reproduced quantitatively "
     "under the documented first-order model: BCC's total energy saving "
     "exceeds SCC's on every divergent trace."),
    ("test_ablation_mask_sources.txt", "Section 3.1 — mask sources",
     "Paper: BCC harvests cycles whenever dispatch, control flow, or "
     "predication disables channels. Reproduced: all three mask sources "
     "compress."),
    ("test_ablation_dtype_width.txt", "Section 4.1 — datatype width",
     "Paper: benefits may be higher for wider datatypes that take more "
     "cycles through the pipe. Reproduced: 64-bit streams save exactly "
     "twice the absolute cycles at equal relative reduction."),
    ("test_ablation_issue_bandwidth.txt", "Section 4.3 — front-end bandwidth",
     "Paper: compaction raises the execution rate, so front-end issue "
     "bandwidth may need to scale. Reproduced: a starved 1-wide front end "
     "realizes less of SCC's benefit than the default dual-issue one."),
    ("test_ablation_simd_width.txt", "Section 5.4 / conclusions — SIMD width",
     "Paper: SIMD efficiency falls at wider widths, so 32/64-wide "
     "architectures have a larger compaction opportunity. Reproduced: "
     "efficiency falls monotonically from SIMD8 to SIMD32 and the SCC "
     "opportunity grows."),
]

HEADER = """\
# EXPERIMENTS — paper vs. reproduction

Every table and figure of the paper's evaluation (Section 5), regenerated
by `pytest benchmarks/ --benchmark-only`.  Absolute cycle counts are not
comparable (the substrate is a behavioural simulator, not the authors'
testbed); the comparisons below are about *shape*: who wins, by roughly
what factor, and where the crossovers fall.  Each section quotes the
paper's numbers, then embeds the reproduction's measured output verbatim
from `benchmarks/results/`.

Regenerate this file with:

    pytest benchmarks/ --benchmark-only
    python benchmarks/collect_results.py > EXPERIMENTS.md

The experiment harnesses route their simulations through the shared
`repro.runner` engine, which memoizes each unique (workload, config)
pair in an on-disk cache (`$REPRO_CACHE_DIR`, default
`~/.cache/repro-sim`).  A warm-cache regeneration replays stored
results; delete the cache directory (or set `REPRO_NO_CACHE=1`) to force
fresh simulation.  Cache keys include a hash of the simulator source, so
entries invalidate automatically when the model changes.  Ad-hoc grids
beyond the paper's figures can be produced with `python -m repro sweep`.

An interrupted regeneration is cheap to pick up: completed simulations
replay from the cache, this generator skips (with a warning) any result
file the interruption left missing or truncated, and `repro sweep` grids
checkpoint to a journal — rerun with `--resume --json PATH` to continue
where a crash or Ctrl-C stopped (see README "Failure handling").

To look *inside* any number below, rerun the grid point with telemetry
and open the trace in [Perfetto](https://ui.perfetto.dev):

    python -m repro run nested_l3 --policy bcc --trace-out nested_l3.json
    python -m repro sweep --workloads bfs --policies bcc,scc \\
        --trace-dir traces/

Load the JSON in Perfetto (or `chrome://tracing`): each EU is a
process with one timeline per pipe (`fpu`/`em`/`send`), a `quads` track
showing every per-quad `quad_exec`/`quad_skip`/`swizzle` compaction
decision, and an `occupancy` counter plotting the execution-mask
population — the per-cycle story behind each table.  `--telemetry
counters` adds the aggregate `telemetry.*` counters to a run's summary
without the trace cost, and `python -m repro.telemetry.hostprof` writes
the simulator's own performance baseline (see README "Profiling and
tracing").
"""


def _read_section(path: Path):
    """Return the result text, or ``(None, reason)`` if it is unusable.

    An interrupted benchmark run can leave result files missing, empty,
    truncated mid-write, or (on a bad disk day) unreadable; none of that
    should take down the report for the sections that *did* complete.
    """
    if not path.exists():
        return None, "missing"
    try:
        text = path.read_text(errors="strict")
    except (OSError, UnicodeDecodeError) as exc:
        return None, f"unreadable ({type(exc).__name__}: {exc})"
    if not text.strip():
        return None, "empty (benchmark interrupted?)"
    return text, None


def main() -> int:
    parts = [HEADER]
    skipped = []
    for filename, title, expectation in SECTIONS:
        path = RESULTS / filename
        parts.append(f"\n## {title}\n")
        parts.append(expectation + "\n")
        text, reason = _read_section(path)
        if text is not None:
            parts.append("```")
            parts.append(text.rstrip())
            parts.append("```")
        else:
            skipped.append(f"{filename}: {reason}")
            parts.append(f"*({reason}: run the bench that writes "
                         f"{filename})*")
    print("\n".join(parts))
    if skipped:
        print(f"warning: skipped {len(skipped)} result file(s):",
              file=sys.stderr)
        for entry in skipped:
            print(f"  {entry}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
