"""Regenerates paper Figure 11: ray tracing under DC1/DC2 bandwidth.

Expected shape: EU-cycle reductions of 15-40 %; at DC1 the data-cluster
port absorbs much of it, at DC2 most of the EU benefit shows up in total
time; achieved DC throughput grows when cycles compress (same traffic in
less time).
"""

from repro.experiments import fig11


def test_fig11_raytracing(benchmark, emit):
    rows = benchmark.pedantic(fig11.fig11_data, rounds=1, iterations=1)
    emit(fig11.render(rows))

    assert len(rows) == 9  # 3 PR + 6 AO bars, as in the paper
    for row in rows:
        # SCC subsumes BCC in EU cycles.
        assert row.scc_eu >= row.bcc_eu - 1e-9, row.name
        # Total-time reduction can never exceed the EU-cycle reduction
        # by more than measurement slack.
        assert row.scc_total_dc2 <= row.scc_eu + 5.0, row.name
    # On average, DC2 must recover at least as much as DC1.
    avg_dc1 = sum(r.scc_total_dc1 for r in rows) / len(rows)
    avg_dc2 = sum(r.scc_total_dc2 for r in rows) / len(rows)
    assert avg_dc2 >= avg_dc1 - 1.0
    # The AO kernels are the divergence-heavy ones: meaningful EU savings.
    ao_rows = [r for r in rows if "AO" in r.name]
    assert max(r.scc_eu for r in ao_rows) > 10.0
