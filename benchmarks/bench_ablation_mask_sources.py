"""Ablation: compaction across the three mask sources.

Paper Section 3.1: "BCC can harvest execution cycles in all cases where
dispatch, control flow, or predication results in the disabling of
channels."  We run the same lane pattern through all three mechanisms —
a control-flow branch, per-instruction predication, and a partial
dispatch (tail) mask — and confirm each one compresses.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.policy import CompactionPolicy
from repro.gpu.config import GpuConfig
from repro.gpu.simulator import GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.isa.types import DType
from repro.kernels.micro import branch_pattern, predicated_pattern
from repro.kernels.workload import run_workload


def _dispatch_tail_result(policy):
    """SIMD16 kernel launched with global_size % 16 == 4: the tail
    thread runs with dispatch mask 0x000F."""
    b = KernelBuilder("tail", 16)
    gid = b.global_id()
    ys = b.surface_arg("y")
    acc = b.vreg(DType.F32)
    b.mov(acc, 1.0)
    for _ in range(16):
        b.mad(acc, acc, 1.0001, 0.5)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(acc, addr, ys)
    prog = b.finish()
    n = 20  # one full thread + one 4-lane tail thread
    y = np.zeros(n, dtype=np.float32)
    return GpuSimulator(GpuConfig(policy=policy)).run(prog, n, buffers={"y": y})


def _collect():
    rows = []
    config_ivb = GpuConfig(policy=CompactionPolicy.IVB)

    branch = run_workload(branch_pattern(0x000F, n=512, work=8), config_ivb)
    rows.append(("control flow (IF 0x000F)",
                 branch.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                 branch.eu_cycle_reduction_pct(CompactionPolicy.SCC)))

    pred = run_workload(predicated_pattern(0x000F, n=512, work=16), config_ivb)
    rows.append(("predication (pred 0x000F)",
                 pred.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                 pred.eu_cycle_reduction_pct(CompactionPolicy.SCC)))

    tail = _dispatch_tail_result(CompactionPolicy.IVB)
    rows.append(("dispatch tail (mask 0x000F)",
                 tail.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                 tail.eu_cycle_reduction_pct(CompactionPolicy.SCC)))
    return rows


def test_ablation_mask_sources(benchmark, emit):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    emit(format_table(
        ["mask source", "BCC EU-cycle reduction", "SCC EU-cycle reduction"],
        [[n, f"{b:.1f}%", f"{s:.1f}%"] for n, b, s in rows],
        title="Ablation: dispatch / control-flow / predication masks (Section 3.1)",
    ))

    for name, bcc, scc in rows:
        assert bcc > 0.0, name  # every mask source compresses
        assert scc >= bcc - 1e-9, name
