"""Ablation: compaction across the three mask sources.

Paper Section 3.1: "BCC can harvest execution cycles in all cases where
dispatch, control flow, or predication results in the disabling of
channels."  We run the same lane pattern through all three mechanisms —
a control-flow branch, per-instruction predication, and a partial
dispatch (tail) mask — and confirm each one compresses.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.policy import CompactionPolicy
from repro.gpu.config import GpuConfig
from repro.gpu.simulator import GpuSimulator
from repro.isa.builder import KernelBuilder
from repro.isa.types import DType
from repro.kernels.micro import branch_pattern, predicated_pattern
from repro.runner import Job, default_runner


def _dispatch_tail_result(policy):
    """SIMD16 kernel launched with global_size % 16 == 4: the tail
    thread runs with dispatch mask 0x000F."""
    b = KernelBuilder("tail", 16)
    gid = b.global_id()
    ys = b.surface_arg("y")
    acc = b.vreg(DType.F32)
    b.mov(acc, 1.0)
    for _ in range(16):
        b.mad(acc, acc, 1.0001, 0.5)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(acc, addr, ys)
    prog = b.finish()
    n = 20  # one full thread + one 4-lane tail thread
    y = np.zeros(n, dtype=np.float32)
    return GpuSimulator(GpuConfig(policy=policy)).run(prog, n, buffers={"y": y})


def _branch_factory():
    return branch_pattern(0x000F, n=512, work=8)


def _pred_factory():
    return predicated_pattern(0x000F, n=512, work=16)


def _collect():
    rows = []
    config_ivb = GpuConfig(policy=CompactionPolicy.IVB)

    branch_job = Job("branch_0x000F", config_ivb, factory=_branch_factory)
    pred_job = Job("pred_0x000F", config_ivb, factory=_pred_factory)
    results = default_runner().run([branch_job, pred_job])

    branch = results[branch_job]
    rows.append(("control flow (IF 0x000F)",
                 branch.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                 branch.eu_cycle_reduction_pct(CompactionPolicy.SCC)))

    pred = results[pred_job]
    rows.append(("predication (pred 0x000F)",
                 pred.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                 pred.eu_cycle_reduction_pct(CompactionPolicy.SCC)))

    tail = _dispatch_tail_result(CompactionPolicy.IVB)
    rows.append(("dispatch tail (mask 0x000F)",
                 tail.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                 tail.eu_cycle_reduction_pct(CompactionPolicy.SCC)))
    return rows


def test_ablation_mask_sources(benchmark, emit):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    emit(format_table(
        ["mask source", "BCC EU-cycle reduction", "SCC EU-cycle reduction"],
        [[n, f"{b:.1f}%", f"{s:.1f}%"] for n, b, s in rows],
        title="Ablation: dispatch / control-flow / predication masks (Section 3.1)",
    ))

    for name, bcc, scc in rows:
        assert bcc > 0.0, name  # every mask source compresses
        assert scc >= bcc - 1e-9, name
