"""Ablation: data-type width vs compaction benefit.

Paper Section 4.1: "benefits may be higher for wider datatypes (doubles
and long integers) that take more cycles through the execution pipe."
A 64-bit instruction takes twice the quad cycles, so every suppressed
quad saves twice as much: the absolute cycle savings double while the
relative reduction holds.
"""

from repro.analysis.report import format_table
from repro.core.policy import CompactionPolicy, execution_cycles
from repro.core.stats import CompactionStats


def _sweep():
    masks = [0xF0F0, 0x00F0, 0x1111, 0x00FF, 0x0F0F] * 200
    rows = []
    for factor, label in ((1, "32-bit (float/int)"), (2, "64-bit (double/int64)")):
        stats = CompactionStats(min_cycles=1)
        for mask in masks:
            stats.record(mask, 16, dtype_factor=factor)
        saved = (stats.cycles[CompactionPolicy.IVB]
                 - stats.cycles[CompactionPolicy.SCC])
        rows.append((label, stats.cycles[CompactionPolicy.IVB],
                     stats.cycles[CompactionPolicy.SCC], saved,
                     stats.reduction_pct(CompactionPolicy.SCC)))
    return rows


def test_ablation_dtype_width(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(format_table(
        ["datatype", "IVB cycles", "SCC cycles", "cycles saved", "reduction"],
        [[l, i, s, d, f"{r:.1f}%"] for l, i, s, d, r in rows],
        title="Ablation: datatype width (Section 4.1)",
    ))

    (_, _, _, saved32, red32), (_, _, _, saved64, red64) = rows
    assert saved64 == 2 * saved32  # absolute savings double
    assert abs(red64 - red32) < 1.0  # relative reduction holds


def test_dtype_factor_unit_cases(benchmark):
    def check():
        assert execution_cycles(0xF0F0, 16, CompactionPolicy.BCC,
                                dtype_factor=2) == 4
        assert execution_cycles(0xF0F0, 16, CompactionPolicy.RAW,
                                dtype_factor=2) == 8
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
