"""Ablation: front-end issue bandwidth vs compaction benefit.

Paper Section 4.3: "adequate instruction fetch bandwidth and front-end
processing bandwidth may be needed to balance the higher rate of
execution due to cycle compression."  We sweep the arbiter's issue
width on a heavily compressible kernel: with a starved front end
(1 instruction per 2 cycles) SCC's compressed instructions cannot be
refilled fast enough and the total-time gain shrinks relative to the
default dual-issue front end.
"""

from repro.analysis.report import format_table
from repro.core.policy import CompactionPolicy
from repro.gpu.config import GpuConfig
from repro.gpu.results import total_time_reduction_pct
from repro.kernels.micro import predicated_pattern
from repro.runner import Job, default_runner


def _pattern_factory():
    return predicated_pattern(0x1111, n=1024, work=24)


def _sweep():
    jobs = {
        (issue_width, policy): Job(
            "predicated_0x1111", GpuConfig(issue_width=issue_width,
                                           policy=policy),
            factory=_pattern_factory)
        for issue_width in (1, 2, 4)
        for policy in (CompactionPolicy.IVB, CompactionPolicy.SCC)
    }
    results = default_runner().run(jobs.values())
    rows = []
    for issue_width in (1, 2, 4):
        ivb = results[jobs[(issue_width, CompactionPolicy.IVB)]]
        scc = results[jobs[(issue_width, CompactionPolicy.SCC)]]
        rows.append((issue_width, ivb.total_cycles, scc.total_cycles,
                     total_time_reduction_pct(ivb, scc)))
    return rows


def test_ablation_issue_bandwidth(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(format_table(
        ["issue width / 2 cycles", "IVB cycles", "SCC cycles",
         "SCC total-time reduction"],
        [[w, i, s, f"{r:.1f}%"] for w, i, s, r in rows],
        title="Ablation: front-end issue bandwidth (Section 4.3)",
    ))

    reductions = {w: r for w, _, _, r in rows}
    # SCC always helps this 75 %-compressible kernel...
    assert all(r > 0 for r in reductions.values())
    # ...but a wider front end realizes at least as much of the benefit.
    assert reductions[2] >= reductions[1] - 1.0
    assert reductions[4] >= reductions[2] - 1.0
