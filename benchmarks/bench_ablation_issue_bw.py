"""Ablation: front-end issue bandwidth vs compaction benefit.

Paper Section 4.3: "adequate instruction fetch bandwidth and front-end
processing bandwidth may be needed to balance the higher rate of
execution due to cycle compression."  We sweep the arbiter's issue
width on a heavily compressible kernel: with a starved front end
(1 instruction per 2 cycles) SCC's compressed instructions cannot be
refilled fast enough and the total-time gain shrinks relative to the
default dual-issue front end.
"""

from repro.analysis.report import format_table
from repro.core.policy import CompactionPolicy
from repro.gpu.config import GpuConfig
from repro.gpu.results import total_time_reduction_pct
from repro.kernels.micro import predicated_pattern
from repro.kernels.workload import run_workload


def _sweep():
    rows = []
    for issue_width in (1, 2, 4):
        results = {}
        for policy in (CompactionPolicy.IVB, CompactionPolicy.SCC):
            config = GpuConfig(issue_width=issue_width, policy=policy)
            results[policy] = run_workload(
                predicated_pattern(0x1111, n=1024, work=24), config)
        reduction = total_time_reduction_pct(
            results[CompactionPolicy.IVB], results[CompactionPolicy.SCC])
        rows.append((issue_width, results[CompactionPolicy.IVB].total_cycles,
                     results[CompactionPolicy.SCC].total_cycles, reduction))
    return rows


def test_ablation_issue_bandwidth(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(format_table(
        ["issue width / 2 cycles", "IVB cycles", "SCC cycles",
         "SCC total-time reduction"],
        [[w, i, s, f"{r:.1f}%"] for w, i, s, r in rows],
        title="Ablation: front-end issue bandwidth (Section 4.3)",
    ))

    reductions = {w: r for w, _, _, r in rows}
    # SCC always helps this 75 %-compressible kernel...
    assert all(r > 0 for r in reductions.values())
    # ...but a wider front end realizes at least as much of the benefit.
    assert reductions[2] >= reductions[1] - 1.0
    assert reductions[4] >= reductions[2] - 1.0
