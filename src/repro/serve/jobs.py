"""Job specifications and records for the ``repro serve`` daemon.

A :class:`JobSpec` is the JSON surface of one simulation request — the
workload x policy x config point a client submits to ``POST /jobs`` —
and compiles down to the same :class:`repro.runner.Job` the CLI's
``run``/``sweep`` commands build, so a job served by the daemon is
*by construction* the same simulation (same content key, same cache
entry, same result) as a foreground ``repro run``.

A :class:`JobRecord` is the daemon's book-keeping for one submission:
lifecycle state, wait/execution timing (kept separate — see the PR-3
deadline bug), dedup linkage, and the typed JSON result payload.
"""

from __future__ import annotations

import base64
import binascii
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..core.policy import CompactionPolicy, parse_policy
from ..gpu.config import ENGINES, GpuConfig
from ..gpu.results import KernelRunResult
from ..runner import Job, ResultCache, code_salt

#: Bump when the result-payload layout changes incompatibly.
RESULT_SCHEMA = 1

#: Telemetry levels a job may request (mirrors GpuConfig validation).
TELEMETRY_LEVELS = ("off", "counters", "trace")


class JobState:
    """Lifecycle states of a served job (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can never leave.
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One workload x policy x config submission, as JSON data.

    Field semantics match the ``repro run``/``repro sweep`` flags of the
    same name; everything participates in the runner's content key, so
    two specs that compare equal dedup onto one execution.
    """

    workload: str
    policy: str = "ivb"
    engine: str = "interp"
    telemetry: str = "off"
    dc_lines_per_cycle: float = 1.0
    perfect_l3: bool = False
    max_cycles: Optional[int] = None
    verify: bool = True
    params: Mapping[str, Any] = field(default_factory=dict)

    #: Payload keys accepted by :meth:`from_payload`.
    FIELDS = ("workload", "policy", "engine", "telemetry",
              "dc_lines_per_cycle", "perfect_l3", "max_cycles", "verify",
              "params")

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Parse and validate a client JSON body; ValueError on bad specs."""
        if not isinstance(payload, Mapping):
            raise ValueError("job spec must be a JSON object")
        unknown = sorted(set(payload) - set(cls.FIELDS))
        if unknown:
            raise ValueError(f"unknown job spec field(s): {', '.join(unknown)}")
        workload = payload.get("workload")
        if not isinstance(workload, str) or not workload:
            raise ValueError("job spec needs a 'workload' name")
        from ..kernels import WORKLOAD_REGISTRY

        if workload not in WORKLOAD_REGISTRY:
            raise ValueError(f"unknown workload {workload!r}")
        policy = payload.get("policy", "ivb")
        try:
            parse_policy(policy)
        except (ValueError, TypeError) as exc:
            raise ValueError(str(exc)) from exc
        engine = payload.get("engine", "interp")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of: "
                f"{', '.join(ENGINES)}")
        telemetry = payload.get("telemetry", "off")
        if telemetry not in TELEMETRY_LEVELS:
            raise ValueError(
                f"unknown telemetry level {telemetry!r}; expected one of: "
                f"{', '.join(TELEMETRY_LEVELS)}")
        try:
            dc = float(payload.get("dc_lines_per_cycle", 1.0))
        except (TypeError, ValueError):
            raise ValueError("dc_lines_per_cycle must be a number")
        if dc <= 0:
            raise ValueError("dc_lines_per_cycle must be positive")
        max_cycles = payload.get("max_cycles")
        if max_cycles is not None:
            if not isinstance(max_cycles, int) or max_cycles < 1:
                raise ValueError("max_cycles must be a positive integer")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError("params must be a JSON object")
        return cls(
            workload=workload,
            policy=policy,
            engine=engine,
            telemetry=telemetry,
            dc_lines_per_cycle=dc,
            perfect_l3=bool(payload.get("perfect_l3", False)),
            max_cycles=max_cycles,
            verify=bool(payload.get("verify", True)),
            params=dict(params),
        )

    def to_config(self) -> GpuConfig:
        """The :class:`GpuConfig` this spec names (validated)."""
        config = GpuConfig(policy=parse_policy(self.policy),
                           engine=self.engine)
        if self.max_cycles:
            config = dataclasses.replace(config, max_cycles=self.max_cycles)
        config = config.with_memory(
            dc_lines_per_cycle=self.dc_lines_per_cycle,
            perfect_l3=self.perfect_l3)
        if self.telemetry != "off":
            config = config.with_telemetry(self.telemetry)
        config.validate()
        return config

    def to_job(self) -> Job:
        """The runner job this spec compiles to (content-keyed)."""
        return Job(self.workload, self.to_config(),
                   params=dict(self.params), verify=self.verify)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "policy": self.policy,
            "engine": self.engine,
            "telemetry": self.telemetry,
            "dc_lines_per_cycle": self.dc_lines_per_cycle,
            "perfect_l3": self.perfect_l3,
            "max_cycles": self.max_cycles,
            "verify": self.verify,
            "params": dict(self.params),
        }


def result_payload(spec: JobSpec, result: KernelRunResult) -> Dict[str, Any]:
    """Typed JSON result of one finished job.

    Contains everything the differential-verify harness treats as the
    run's identity — output-buffer digest, instruction counts, and the
    full ALU/SIMD stats fingerprints — so bit-identity between a served
    job and a foreground ``repro run`` (or between two deduped
    submissions) is checkable by comparing two JSON documents.
    """
    from ..verify.differential import _stats_fingerprint

    return {
        "schema": RESULT_SCHEMA,
        "workload": spec.workload,
        "policy": spec.policy,
        "engine": spec.engine,
        "kernel": result.kernel,
        "total_cycles": result.total_cycles,
        "instructions": result.instructions,
        "buffers_digest": result.buffers_digest,
        "metrics": {key: value for key, value in sorted(
            result.summary(telemetry=spec.telemetry != "off").items())},
        "fingerprints": {
            "alu": _stats_fingerprint(result.alu_stats),
            "simd": _stats_fingerprint(result.simd_stats),
        },
    }


#: Wire encoding of a serialized KernelRunResult (the only one so far).
BLOB_ENCODING = "pickle+base64"


def result_blob(result: KernelRunResult,
                salt: Optional[str] = None) -> Dict[str, Any]:
    """JSON-safe envelope of one full :class:`KernelRunResult`.

    The fleet cache's wire format: the exact bytes the daemon's
    :class:`~repro.runner.ResultCache` would store, base64-armored, plus
    the sender's code salt and the result's buffer digest so the
    receiving side can gate and verify the payload *before* letting it
    near its store (:meth:`ResultCache.store_payload`).  Rides both the
    worker's result post (``cache`` field) and the standalone
    ``POST /cache/{key}`` publish.
    """
    return blob_envelope(ResultCache.serialize(result),
                         salt if salt is not None else code_salt(),
                         result.buffers_digest)


def blob_envelope(data: bytes, salt: str, digest: str) -> Dict[str, Any]:
    """Wrap already-serialized result bytes (the fetch path reuses the
    stored bytes verbatim instead of re-pickling)."""
    return {
        "encoding": BLOB_ENCODING,
        "salt": salt,
        "digest": digest,
        "size": len(data),
        "data": base64.b64encode(data).decode("ascii"),
    }


def blob_bytes(blob: Any) -> bytes:
    """The serialized result bytes inside an envelope; ValueError when
    the envelope itself (not the pickle) is malformed."""
    if not isinstance(blob, Mapping):
        raise ValueError("result blob must be a JSON object")
    if blob.get("encoding") != BLOB_ENCODING:
        raise ValueError(
            f"unknown result blob encoding {blob.get('encoding')!r}; "
            f"expected {BLOB_ENCODING!r}")
    raw = blob.get("data")
    if not isinstance(raw, str):
        raise ValueError("result blob needs a base64 'data' string")
    try:
        return base64.b64decode(raw.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise ValueError(f"result blob data is not base64: {exc}") from exc


def result_from_blob(blob: Any) -> KernelRunResult:
    """Decode and verify a :func:`result_blob` envelope.

    Raises ``ValueError`` for a malformed envelope and
    :class:`~repro.errors.CacheCorruptionError` when the bytes do not
    decode to a :class:`KernelRunResult` whose buffer digest matches the
    envelope's claim.  Salt gating is the *caller's* job (the daemon
    checks against its cache's salt; workers check against their own
    :func:`~repro.runner.code_salt`) — this only proves integrity.
    """
    from ..errors import CacheCorruptionError

    result = ResultCache.deserialize(blob_bytes(blob))
    digest = blob.get("digest")
    if digest is not None and result.buffers_digest != digest:
        raise CacheCorruptionError(
            f"result blob decodes to buffer digest "
            f"{result.buffers_digest[:16]}... but claimed "
            f"{str(digest)[:16]}...")
    return result


@dataclass
class JobRecord:
    """Daemon-side state of one submission."""

    id: str
    spec: JobSpec
    key: str  # runner content key (dedup identity)
    client: str = ""
    state: str = JobState.QUEUED
    submitted_at: float = 0.0  # wall-clock epoch seconds
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Seconds between submission and execution start — first-class,
    #: never folded into execution time.
    queue_wait: Optional[float] = None
    #: Seconds the simulation itself took (0.0 for cache hits).
    exec_seconds: Optional[float] = None
    #: Primary job id this submission deduped onto (None = primary).
    dedup_of: Optional[str] = None
    #: Whether the result came from the on-disk cache.
    cache_hit: bool = False
    result: Optional[Dict[str, Any]] = None
    #: Chrome-trace JSON path for telemetry="trace" jobs.
    trace_path: Optional[str] = None
    error: Optional[str] = None
    exit_code: Optional[int] = None
    #: Times this record survived a daemon restart via the journal.
    recovered: int = 0
    #: Remote worker currently leasing (or, once terminal, the worker
    #: whose fenced post resolved) this job; None for local execution.
    worker: Optional[str] = None
    #: Fence token of the job's current lease (None when unleased).
    fence: Optional[int] = None
    #: Times this job has been handed out for execution — lease grants
    #: plus local-dispatcher pickups.  Bounded by the service's
    #: ``max_assignments``; exceeding it fails the job as a
    #: :class:`~repro.errors.WorkerCrashError`.
    assignments: int = 0
    #: Fence token that resolved the job (duplicate result posts with
    #: the same token are answered idempotently, not fence-rejected).
    resolved_fence: Optional[int] = None

    def as_status(self) -> Dict[str, Any]:
        """The ``GET /jobs/{id}`` body."""
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.as_dict(),
            "key": self.key,
            "client": self.client,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_seconds": self.queue_wait,
            "exec_seconds": self.exec_seconds,
            "dedup_of": self.dedup_of,
            "cache_hit": self.cache_hit,
            "has_result": self.result is not None,
            "has_trace": self.trace_path is not None,
            "error": self.error,
            "exit_code": self.exit_code,
            "recovered": self.recovered,
            "worker": self.worker,
            "assignments": self.assignments,
        }
