"""Lease-based job ownership for the multi-host worker fleet.

The ``repro serve`` daemon hands queued jobs to remote ``repro worker``
processes under *time-bounded leases*: a worker that claims a job must
heartbeat before the lease deadline or lose the job to reassignment.
Every grant carries a **fence token** — one value from a single
monotonically increasing counter — and every subsequent action on the
job (heartbeat, result, failure) must present the exact token of the
*current* lease.  A worker that stalls, partitions, or gets ``kill -9``'d
mid-job can therefore never corrupt state when it comes back: its token
is stale, its posts are rejected
(:class:`~repro.errors.FenceRejectedError`), and the job's one true
result comes from whoever holds the live fence.

This is deliberately lease-and-fence, not consensus: the paper's
trace-based methodology makes every job a pure content-keyed function,
so at-least-once execution with bit-identical results (enforced by the
verify harnesses) is all the coordination a fleet needs.

The table itself is pure bookkeeping — no clocks of its own (callers
pass ``now``), no I/O — so the service layer can journal every
transition and tests can step time deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import FenceRejectedError

__all__ = ["Lease", "LeaseTable", "WorkerInfo"]


@dataclass
class Lease:
    """One worker's time-bounded ownership of one job."""

    job_id: str
    worker: str
    #: Fence token: globally unique, strictly increasing across grants.
    fence: int
    granted_at: float  # wall-clock epoch seconds (journal-replayable)
    deadline: float  # epoch seconds; miss it and the job is reassigned
    renewals: int = 0

    def expired(self, now: float) -> bool:
        return now > self.deadline

    def as_dict(self) -> Dict[str, float]:
        return {"job_id": self.job_id, "worker": self.worker,
                "fence": self.fence, "granted_at": self.granted_at,
                "deadline": self.deadline, "renewals": self.renewals}


@dataclass
class WorkerInfo:
    """Liveness and throughput bookkeeping for one fleet worker."""

    name: str
    first_seen: float = 0.0
    last_seen: float = 0.0  # any authenticated contact: lease/heartbeat/post
    leases_granted: int = 0
    completed: int = 0
    failed: int = 0


class LeaseTable:
    """Active leases keyed by job id, plus the fleet's fence counter.

    Single-threaded like the rest of the service (every mutation happens
    on the daemon's event loop); expiry is driven by the service's sweep
    task calling :meth:`expired`.
    """

    def __init__(self) -> None:
        self._leases: Dict[str, Lease] = {}
        self._fence = 0
        self.workers: Dict[str, WorkerInfo] = {}
        #: Workers retired for silence (count + folded throughput
        #: totals).  Worker names default to ``<hostname>-<pid>``, so a
        #: churning fleet mints a fresh name per restart; without
        #: retirement the table — and the /metrics fleet view built
        #: from it — would grow one dead entry per restart forever.
        self.retired = 0
        self.retired_totals: Dict[str, int] = {
            "leases_granted": 0, "completed": 0, "failed": 0}

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._leases

    def get(self, job_id: str) -> Optional[Lease]:
        return self._leases.get(job_id)

    @property
    def fence(self) -> int:
        """The highest fence token ever issued."""
        return self._fence

    def active(self) -> List[Lease]:
        return list(self._leases.values())

    def expired(self, now: float) -> List[Lease]:
        """Leases whose deadline has passed (not yet released)."""
        return [lease for lease in self._leases.values()
                if lease.expired(now)]

    # -- transitions -------------------------------------------------------

    def grant(self, job_id: str, worker: str, ttl: float,
              now: float) -> Lease:
        """Issue a fresh lease (and the next fence token) for *job_id*."""
        if job_id in self._leases:
            raise ValueError(f"job {job_id} is already leased")
        self._fence += 1
        lease = Lease(job_id=job_id, worker=worker, fence=self._fence,
                      granted_at=now, deadline=now + ttl)
        self._leases[job_id] = lease
        info = self.touch(worker, now)
        info.leases_granted += 1
        return lease

    def validate(self, job_id: str, worker: str, fence: int,
                 action: str = "act on") -> Lease:
        """The current lease, iff (*worker*, *fence*) exactly owns it.

        Raises :class:`FenceRejectedError` otherwise — the caller's
        token is stale (expired + reassigned) or was never theirs.
        """
        lease = self._leases.get(job_id)
        if lease is None:
            raise FenceRejectedError(
                f"worker {worker!r} tried to {action} job {job_id} with "
                f"fence {fence}, but no lease is active (expired or "
                f"already resolved)")
        if lease.worker != worker or lease.fence != fence:
            raise FenceRejectedError(
                f"worker {worker!r} tried to {action} job {job_id} with "
                f"fence {fence}, but the lease is held by "
                f"{lease.worker!r} under fence {lease.fence}")
        return lease

    def renew(self, job_id: str, worker: str, fence: int, ttl: float,
              now: float) -> Lease:
        """Heartbeat: push the deadline out; fence-checked."""
        lease = self.validate(job_id, worker, fence, action="heartbeat")
        lease.deadline = now + ttl
        lease.renewals += 1
        self.touch(worker, now)
        return lease

    def release(self, job_id: str) -> Optional[Lease]:
        """Drop the lease (job resolved, expired, or reassigned)."""
        return self._leases.pop(job_id, None)

    def restore(self, lease: Lease) -> None:
        """Re-seat a journal-replayed lease (daemon restart recovery).

        The fence counter is bumped to at least the replayed token so
        post-restart grants stay strictly monotonic — the property the
        whole zombie-rejection scheme rests on.
        """
        self._leases[lease.job_id] = lease
        self.observe_fence(lease.fence)
        info = self.touch(lease.worker, lease.granted_at)
        info.last_seen = max(info.last_seen, lease.granted_at)

    def observe_fence(self, fence: int) -> None:
        """Advance the counter past a token seen in the journal."""
        self._fence = max(self._fence, fence)

    # -- worker liveness ---------------------------------------------------

    def touch(self, worker: str, now: float) -> WorkerInfo:
        """Record contact from *worker* (lease, heartbeat, or post)."""
        info = self.workers.get(worker)
        if info is None:
            info = self.workers[worker] = WorkerInfo(name=worker,
                                                     first_seen=now)
        info.last_seen = max(info.last_seen, now)
        return info

    def active_workers(self, now: float, horizon: float) -> List[WorkerInfo]:
        """Workers heard from within *horizon* seconds of *now*."""
        return [info for info in self.workers.values()
                if now - info.last_seen <= horizon]

    def retire_idle(self, now: float, horizon: float) -> List[WorkerInfo]:
        """Drop workers silent for more than *horizon* seconds.

        A worker holding a live lease is never retired regardless of
        silence (expiry, not retirement, judges lease ownership).  The
        retired workers' throughput counts fold into
        :attr:`retired_totals` so fleet-lifetime aggregates survive the
        bookkeeping cleanup; returns the retired entries.
        """
        holders = {lease.worker for lease in self._leases.values()}
        gone = [info for info in self.workers.values()
                if now - info.last_seen > horizon
                and info.name not in holders]
        for info in gone:
            del self.workers[info.name]
            self.retired += 1
            self.retired_totals["leases_granted"] += info.leases_granted
            self.retired_totals["completed"] += info.completed
            self.retired_totals["failed"] += info.failed
        return gone
