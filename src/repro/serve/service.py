"""The ``repro serve`` job service: queue, dedup, journal, metrics.

This is the daemon's engine room, deliberately independent of HTTP so
it can be driven directly by tests (and embedded elsewhere).  One
asyncio *dispatcher* task pulls queued jobs in batches and feeds them to
the existing :class:`repro.runner.Runner` — inheriting its process-pool
fan-out, content-keyed result cache, typed failures, bounded retries and
per-job watchdog wholesale — while the service layer adds what a
long-lived daemon needs on top:

* **in-flight dedup** — a submission whose content key matches a
  queued/running job becomes a *subscriber* of that job: one execution,
  N identical results (the runner's cache only collapses *completed*
  duplicates; this collapses concurrent ones);
* **a durable job journal** (:class:`~repro.serve.journal.ServeJournal`)
  so a restarted daemon recovers submitted and completed state;
* **admission control** — a bounded queue (:class:`QueueFullError`,
  HTTP 503) and per-client token-bucket rate limiting
  (:class:`RateLimitError`, HTTP 429);
* **graceful drain** — stop admitting, finish the running batch, leave
  queued jobs journaled for the next daemon;
* **service metrics** — a telemetry
  :class:`~repro.telemetry.counters.CounterRegistry` of
  submitted/deduped/cache-hit/executed/failed/recovered counts plus
  queue depth and worker occupancy, served at ``GET /metrics``.

Queue wait and execution time are tracked separately per job (the PR-3
deadline fix made that split load-bearing): ``queue_wait`` is
everything between submission and the simulation starting, and
``exec_seconds`` is the simulation alone.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    QueueFullError,
    RateLimitError,
    ServiceError,
    describe,
    exit_code_for,
)
from ..runner import JobEvent, Runner
from ..telemetry.counters import CounterRegistry
from .jobs import JobRecord, JobSpec, JobState, result_payload
from .journal import ServeJournal

_id_counter = itertools.count(1)


class NotCancellableError(ServiceError):
    """The job exists but is not in a cancellable state (HTTP 409)."""

    http_status = 409


class UnknownJobError(ServiceError):
    """No job with the requested id (HTTP 404)."""

    http_status = 404


def _new_job_id() -> str:
    """Short, collision-safe job id (unique across daemon restarts)."""
    return f"j{next(_id_counter):05d}-{uuid.uuid4().hex[:8]}"


class RateLimiter:
    """Per-client token bucket: *rate* submissions/second, *burst* deep."""

    def __init__(self, rate: float, burst: Optional[int] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = float(burst if burst is not None else max(1, int(rate)))
        self._buckets: Dict[str, Tuple[float, float]] = {}  # client -> (tokens, last)

    def allow(self, client: str, now: Optional[float] = None) -> bool:
        if now is None:
            now = time.monotonic()
        tokens, last = self._buckets.get(client, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens < 1.0:
            self._buckets[client] = (tokens, now)
            return False
        self._buckets[client] = (tokens - 1.0, now)
        return True


class JobService:
    """Long-lived job queue on top of the shared :class:`Runner`.

    Single-threaded discipline: every public method runs on the event
    loop thread (the HTTP layer and the dispatcher both live there);
    only the runner batch itself runs in a worker thread, reporting
    back via ``loop.call_soon_threadsafe``.
    """

    def __init__(
        self,
        data_dir: Any,
        workers: int = 1,
        cache: Any = "default",
        queue_limit: int = 64,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[int] = None,
        batch_max: int = 32,
        timeout: Optional[float] = None,
        retries: int = 2,
        verify: bool = True,
        runner: Optional[Runner] = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.trace_dir = self.data_dir / "traces"
        self.journal = ServeJournal(self.data_dir / "jobs.jsonl")
        self.runner = runner if runner is not None else Runner(
            workers=workers, cache=cache, verify=verify,
            timeout=timeout, retries=retries, strict=False)
        self.queue_limit = queue_limit
        self.batch_max = batch_max
        self.limiter = (RateLimiter(rate_limit, rate_burst)
                        if rate_limit else None)
        self.counters = CounterRegistry()
        self.started_at = time.time()

        #: Every known job, including recovered and terminal ones.
        self.jobs: Dict[str, JobRecord] = {}
        self._queue: deque = deque()  # primary job ids awaiting dispatch
        self._inflight: Dict[str, str] = {}  # content key -> primary id
        self._subs: Dict[str, List[str]] = {}  # primary id -> subscriber ids
        self._busy = 0  # primaries in the currently-running batch
        self._draining = False
        self._wake: Optional[asyncio.Event] = None
        self._done: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._recover()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the dispatcher task (idempotent)."""
        if self._task is not None:
            return
        self._wake = asyncio.Event()
        self._done = asyncio.Event()
        if self._queue:
            self._wake.set()
        self._task = asyncio.create_task(self._dispatch_loop())

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish the running batch.

        Jobs still queued stay journaled as submitted; the next daemon
        pointed at the same data dir re-enqueues them (the restart
        recovery the CI smoke job asserts).
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            await self._done.wait()
            await self._task
            self._task = None

    @property
    def draining(self) -> bool:
        return self._draining

    # -- journal recovery --------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the job table from the journal (restart path)."""
        for entry in self.journal.load():
            kind = entry["event"]
            if kind == "submit":
                try:
                    spec = JobSpec.from_payload(entry.get("spec", {}))
                except ValueError:
                    continue  # a workload this build no longer knows
                record = JobRecord(
                    id=entry["id"], spec=spec,
                    key=entry.get("key", ""),
                    client=entry.get("client", ""),
                    submitted_at=entry.get("submitted_at", 0.0))
                self.jobs[record.id] = record
            elif kind == "resolve":
                record = self.jobs.get(entry["id"])
                if record is None:
                    continue
                record.state = entry.get("state", JobState.FAILED)
                record.queue_wait = entry.get("queue_wait")
                record.exec_seconds = entry.get("exec_seconds")
                record.finished_at = entry.get("finished_at")
                record.cache_hit = bool(entry.get("cache_hit", False))
                record.dedup_of = entry.get("dedup_of")
                record.result = entry.get("result")
                record.trace_path = entry.get("trace_path")
                record.error = entry.get("error")
                record.exit_code = entry.get("exit_code")
            elif kind == "cancel":
                record = self.jobs.get(entry["id"])
                if record is not None:
                    record.state = JobState.CANCELLED
        # Unresolved submissions go back in the queue, dedup rebuilt in
        # submission order so subscribers reattach to their primary.
        pending = sorted(
            (r for r in self.jobs.values()
             if r.state not in JobState.TERMINAL),
            key=lambda r: (r.submitted_at, r.id))
        for record in pending:
            record.state = JobState.QUEUED
            record.started_at = None
            record.recovered += 1
            self.counters.incr("serve.jobs.recovered")
            primary_id = self._inflight.get(record.key)
            if primary_id is not None:
                record.dedup_of = primary_id
                self._subs.setdefault(primary_id, []).append(record.id)
            else:
                record.dedup_of = None
                self._inflight[record.key] = record.id
                self._queue.append(record.id)

    # -- submission / cancellation / queries -------------------------------

    def submit(self, payload: Any, client: str = "") -> JobRecord:
        """Admit one job; raises the typed admission errors.

        ``ValueError`` means a malformed spec (HTTP 400);
        :class:`RateLimitError` and :class:`QueueFullError` are
        backpressure (HTTP 429 / 503).
        """
        if self._draining:
            self.counters.incr("serve.jobs.rejected.draining")
            raise QueueFullError("daemon is draining; not accepting jobs")
        if self.limiter is not None and not self.limiter.allow(client or "-"):
            self.counters.incr("serve.jobs.rejected.rate_limited")
            raise RateLimitError(
                f"client {client or '-'!r} exceeded "
                f"{self.limiter.rate:g} submissions/s")
        spec = JobSpec.from_payload(payload)
        job = spec.to_job()
        record = JobRecord(id=_new_job_id(), spec=spec, key=job.key,
                           client=client, submitted_at=time.time())
        primary_id = self._inflight.get(job.key)
        if primary_id is not None:
            # Identical job already queued or executing: subscribe.
            record.dedup_of = primary_id
            self._subs.setdefault(primary_id, []).append(record.id)
            primary = self.jobs[primary_id]
            if primary.state == JobState.RUNNING:
                record.state = JobState.RUNNING
                record.started_at = primary.started_at
            self.counters.incr("serve.jobs.deduped")
        else:
            if len(self._queue) >= self.queue_limit:
                self.counters.incr("serve.jobs.rejected.queue_full")
                raise QueueFullError(
                    f"job queue is full ({self.queue_limit} deep)")
            self._inflight[job.key] = record.id
            self._queue.append(record.id)
        self.jobs[record.id] = record
        self.counters.incr("serve.jobs.submitted")
        self.journal.append("submit", record.id, spec=spec.as_dict(),
                            key=record.key, client=client,
                            submitted_at=record.submitted_at,
                            dedup_of=record.dedup_of)
        if self._wake is not None:
            self._wake.set()
        return record

    def get(self, job_id: str) -> JobRecord:
        record = self.jobs.get(job_id)
        if record is None:
            raise UnknownJobError(f"no job {job_id!r}")
        return record

    def list_jobs(self, state: Optional[str] = None,
                  workload: Optional[str] = None,
                  client: Optional[str] = None,
                  limit: Optional[int] = None) -> List[JobRecord]:
        """Submission-ordered job records, optionally filtered."""
        records = sorted(self.jobs.values(),
                         key=lambda r: (r.submitted_at, r.id))
        if state:
            records = [r for r in records if r.state == state]
        if workload:
            records = [r for r in records if r.spec.workload == workload]
        if client:
            records = [r for r in records if r.client == client]
        if limit is not None:
            records = records[-limit:]
        return records

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job; running/terminal jobs are not cancellable.

        Cancelling a primary that has dedup subscribers promotes the
        oldest subscriber to primary (its submission is still owed a
        result) instead of cancelling work other clients asked for.
        """
        record = self.get(job_id)
        if record.state != JobState.QUEUED:
            raise NotCancellableError(
                f"job {job_id} is {record.state}; only queued jobs can "
                f"be cancelled")
        if record.dedup_of is not None:
            # A subscriber: detach from its primary and stop.
            siblings = self._subs.get(record.dedup_of, [])
            if job_id in siblings:
                siblings.remove(job_id)
        else:
            subscribers = self._subs.pop(job_id, [])
            live = [s for s in subscribers
                    if self.jobs[s].state == JobState.QUEUED]
            if live:
                heir = self.jobs[live[0]]
                heir.dedup_of = None
                self._subs[heir.id] = live[1:]
                for sid in live[1:]:
                    self.jobs[sid].dedup_of = heir.id
                self._inflight[record.key] = heir.id
                # Keep the queue position the cancelled primary held.
                self._queue = deque(heir.id if qid == job_id else qid
                                    for qid in self._queue)
            else:
                self._inflight.pop(record.key, None)
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass
        record.state = JobState.CANCELLED
        record.finished_at = time.time()
        self.counters.incr("serve.jobs.cancelled")
        self.journal.append("cancel", job_id)
        return record

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                while self._queue and not self._draining:
                    batch = [self._queue.popleft()
                             for _ in range(min(len(self._queue),
                                                self.batch_max))]
                    await self._run_batch(batch)
                if self._draining:
                    return
        finally:
            self._done.set()

    async def _run_batch(self, batch_ids: List[str]) -> None:
        """Feed one batch of primaries through the runner."""
        now = time.time()
        records = [self.jobs[i] for i in batch_ids
                   if self.jobs[i].state == JobState.QUEUED]
        if not records:
            return
        jobs = []
        key_to_id: Dict[str, str] = {}
        for record in records:
            record.state = JobState.RUNNING
            record.started_at = now
            for sid in self._subs.get(record.id, []):
                subscriber = self.jobs[sid]
                if subscriber.state == JobState.QUEUED:
                    subscriber.state = JobState.RUNNING
                    subscriber.started_at = now
            job = record.spec.to_job()
            jobs.append(job)
            key_to_id[job.key] = record.id
        self._busy = len(records)
        self.counters.incr("serve.batches")
        loop = asyncio.get_running_loop()

        def progress(event: JobEvent) -> None:
            # Called from the runner's worker thread: hop back onto the
            # loop so all record/journal mutation stays single-threaded.
            loop.call_soon_threadsafe(self._resolve_event, key_to_id, event)

        self.runner.progress = progress
        try:
            await asyncio.to_thread(self.runner.run, jobs, strict=False)
        except Exception as exc:  # runner itself died, not one job
            for record in records:
                if record.state == JobState.RUNNING:
                    self._resolve_group(record, "failed", error=exc)
        finally:
            self.runner.progress = None
            self._busy = 0
            stats = self.runner.last_stats
            for name in ("retried", "degraded", "timeouts"):
                value = getattr(stats, name)
                if value:
                    self.counters.incr(f"serve.runner.{name}", value)

    def _resolve_event(self, key_to_id: Dict[str, str],
                       event: JobEvent) -> None:
        """One runner job finished (loop thread; via call_soon_threadsafe)."""
        record_id = key_to_id.get(event.job.key)
        record = self.jobs.get(record_id) if record_id else None
        if record is None or record.state in JobState.TERMINAL:
            return
        if event.status == "failed":
            self._resolve_group(record, "failed", error=event.error,
                                exec_seconds=event.elapsed)
        else:
            self._resolve_group(record, event.status, result=event.result,
                                exec_seconds=event.elapsed)

    def _resolve_group(self, record: JobRecord, status: str,
                       result=None, error: Optional[BaseException] = None,
                       exec_seconds: float = 0.0) -> None:
        """Resolve a primary and every live subscriber with one outcome."""
        now = time.time()
        subscribers = self._subs.pop(record.id, [])
        self._inflight.pop(record.key, None)
        group = [record] + [
            self.jobs[sid] for sid in subscribers
            if self.jobs[sid].state not in JobState.TERMINAL]
        payload = trace_path = None
        if error is None and result is not None:
            payload = result_payload(record.spec, result)
            if record.spec.telemetry == "trace" and result.telemetry is not None:
                trace_path = self._export_trace(record, result)
        cache_hit = status == "cached"
        if error is not None:
            self.counters.incr("serve.jobs.failed")
        elif cache_hit:
            self.counters.incr("serve.jobs.cache_hits")
        else:
            self.counters.incr("serve.jobs.executed")
            self.counters.incr("serve.exec.seconds", exec_seconds)
        for member in group:
            member.finished_at = now
            member.exec_seconds = exec_seconds
            member.queue_wait = max(
                0.0, (now - member.submitted_at) - exec_seconds)
            member.cache_hit = cache_hit
            self.counters.incr("serve.queue.wait_seconds", member.queue_wait)
            if error is not None:
                member.state = JobState.FAILED
                member.error = describe(error)
                member.exit_code = exit_code_for(error)
            else:
                member.state = JobState.DONE
                member.result = payload
                member.trace_path = trace_path
            self.journal.append(
                "resolve", member.id, state=member.state,
                queue_wait=member.queue_wait,
                exec_seconds=member.exec_seconds,
                finished_at=member.finished_at,
                cache_hit=member.cache_hit, dedup_of=member.dedup_of,
                result=member.result, trace_path=member.trace_path,
                error=member.error, exit_code=member.exit_code)

    def _export_trace(self, record: JobRecord, result) -> Optional[str]:
        from ..telemetry import export_chrome_trace

        self.trace_dir.mkdir(parents=True, exist_ok=True)
        path = self.trace_dir / f"{record.id}.json"
        try:
            export_chrome_trace(result.telemetry, path,
                                kernel=record.spec.workload,
                                policy=record.spec.policy)
        except (OSError, ValueError):  # pragma: no cover - best effort
            return None
        return str(path)

    # -- metrics -----------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """The ``GET /metrics`` body: counters plus live gauges."""
        states: Dict[str, int] = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        body: Dict[str, Any] = {
            "counters": self.counters.as_dict(),
            "queue_depth": len(self._queue),
            "queue_limit": self.queue_limit,
            "workers": self.runner.workers,
            "workers_busy": min(self._busy, self.runner.workers),
            "worker_occupancy": (min(self._busy, self.runner.workers)
                                 / self.runner.workers),
            "draining": self._draining,
            "uptime_seconds": time.time() - self.started_at,
            "jobs_by_state": dict(sorted(states.items())),
        }
        cache = self.runner.cache
        if cache is not None:
            body["cache"] = {"hits": cache.hits, "misses": cache.misses,
                             "corrupt": cache.corrupt,
                             "migrated": cache.migrated}
        return body
