"""The ``repro serve`` job service: queue, dedup, journal, metrics.

This is the daemon's engine room, deliberately independent of HTTP so
it can be driven directly by tests (and embedded elsewhere).  One
asyncio *dispatcher* task pulls queued jobs in batches and feeds them to
the existing :class:`repro.runner.Runner` — inheriting its process-pool
fan-out, content-keyed result cache, typed failures, bounded retries and
per-job watchdog wholesale — while the service layer adds what a
long-lived daemon needs on top:

* **in-flight dedup** — a submission whose content key matches a
  queued/running job becomes a *subscriber* of that job: one execution,
  N identical results (the runner's cache only collapses *completed*
  duplicates; this collapses concurrent ones);
* **a durable job journal** (:class:`~repro.serve.journal.ServeJournal`)
  so a restarted daemon recovers submitted and completed state;
* **admission control** — a bounded queue (:class:`QueueFullError`,
  HTTP 503) and per-client token-bucket rate limiting
  (:class:`RateLimitError`, HTTP 429);
* **graceful drain** — stop admitting, finish the running batch, leave
  queued jobs journaled for the next daemon;
* **fleet coordination** — remote ``repro worker`` processes claim
  queued jobs under time-bounded, fence-tokened leases
  (:class:`~repro.serve.leases.LeaseTable`); a worker that misses its
  heartbeat deadline (crash, partition, ``kill -9``) has its jobs
  reassigned — to another worker or the local dispatcher — with stale
  fenced posts rejected, a bounded assignment count before the job is
  failed as :class:`~repro.errors.WorkerCrashError`, and every lease
  transition journaled so a restarted daemon rebuilds in-flight lease
  state;
* **a fleet-shared result cache** — the runner's sharded
  :class:`~repro.runner.ResultCache` is exposed over ``GET/POST
  /cache/{key}``: workers probe it before simulating and publish full
  serialized results back (salt-gated, digest-verified), and every
  accepted remote result post is persisted into the store before
  subscribers resolve — so N workers x one grid is exactly one
  execution per point fleet-wide, and post-restart resubmissions (or a
  foreground ``repro run`` over the same cache dir) are cache hits;
* **service metrics** — a telemetry
  :class:`~repro.telemetry.counters.CounterRegistry` of
  submitted/deduped/cache-hit/executed/failed/recovered counts plus
  queue depth, worker occupancy, and the fleet's lease/worker gauges,
  served at ``GET /metrics``.

Queue wait and execution time are tracked separately per job (the PR-3
deadline fix made that split load-bearing): ``queue_wait`` is
everything between submission and the simulation starting, and
``exec_seconds`` is the simulation alone.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    CacheMissError,
    CodeSaltMismatchError,
    FenceRejectedError,
    QueueFullError,
    RateLimitError,
    ServiceError,
    WorkerCrashError,
    describe,
    exit_code_for,
)
from ..runner import JobEvent, Runner, code_salt
from ..telemetry.counters import CounterRegistry
from .jobs import (
    JobRecord,
    JobSpec,
    JobState,
    blob_bytes,
    blob_envelope,
    result_payload,
)
from .journal import ServeJournal
from .leases import Lease, LeaseTable

_id_counter = itertools.count(1)


class NotCancellableError(ServiceError):
    """The job exists but is not in a cancellable state (HTTP 409)."""

    http_status = 409


class UnknownJobError(ServiceError):
    """No job with the requested id (HTTP 404)."""

    http_status = 404


def _new_job_id() -> str:
    """Short, collision-safe job id (unique across daemon restarts)."""
    return f"j{next(_id_counter):05d}-{uuid.uuid4().hex[:8]}"


class RateLimiter:
    """Per-client token bucket: *rate* submissions/second, *burst* deep."""

    def __init__(self, rate: float, burst: Optional[int] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = float(burst if burst is not None else max(1, int(rate)))
        self._buckets: Dict[str, Tuple[float, float]] = {}  # client -> (tokens, last)

    def allow(self, client: str, now: Optional[float] = None) -> bool:
        if now is None:
            now = time.monotonic()
        tokens, last = self._buckets.get(client, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens < 1.0:
            self._buckets[client] = (tokens, now)
            return False
        self._buckets[client] = (tokens - 1.0, now)
        return True


class JobService:
    """Long-lived job queue on top of the shared :class:`Runner`.

    Single-threaded discipline: every public method runs on the event
    loop thread (the HTTP layer and the dispatcher both live there);
    only the runner batch itself runs in a worker thread, reporting
    back via ``loop.call_soon_threadsafe``.
    """

    def __init__(
        self,
        data_dir: Any,
        workers: int = 1,
        cache: Any = "default",
        queue_limit: int = 64,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[int] = None,
        batch_max: int = 32,
        timeout: Optional[float] = None,
        retries: int = 2,
        verify: bool = True,
        runner: Optional[Runner] = None,
        lease_ttl: float = 30.0,
        max_assignments: int = 3,
        local_exec: bool = True,
        sweep_interval: Optional[float] = None,
        worker_retire_horizon: Optional[float] = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if max_assignments < 1:
            raise ValueError("max_assignments must be >= 1")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.trace_dir = self.data_dir / "traces"
        self.journal = ServeJournal(self.data_dir / "jobs.jsonl")
        self.runner = runner if runner is not None else Runner(
            workers=workers, cache=cache, verify=verify,
            timeout=timeout, retries=retries, strict=False)
        self.queue_limit = queue_limit
        self.batch_max = batch_max
        self.limiter = (RateLimiter(rate_limit, rate_burst)
                        if rate_limit else None)
        self.counters = CounterRegistry()
        self.started_at = time.time()
        self.lease_ttl = lease_ttl
        self.max_assignments = max_assignments
        #: When False the daemon is a pure fleet coordinator: the local
        #: dispatcher never picks jobs up, only remote workers do.
        self.local_exec = local_exec
        self.sweep_interval = (sweep_interval if sweep_interval is not None
                               else min(1.0, max(0.05, lease_ttl / 4.0)))
        #: How long since last contact a worker still counts as active.
        self.worker_horizon = max(2.0 * lease_ttl, 10.0)
        #: How long since last contact before a worker's bookkeeping
        #: entry is retired outright (default names come as
        #: ``<hostname>-<pid>``, so every restart is a "new" worker —
        #: without retirement the table and /metrics grow forever).
        self.worker_retire_horizon = (
            float(worker_retire_horizon) if worker_retire_horizon is not None
            else max(10.0 * lease_ttl, 3.0 * self.worker_horizon))
        if self.worker_retire_horizon <= self.worker_horizon:
            raise ValueError("worker_retire_horizon must exceed the "
                             "active-worker horizon")
        self.leases = LeaseTable()
        #: Wall clock used for every lease decision; tests replace it to
        #: step expiry deterministically.
        self._now = time.time

        #: Every known job, including recovered and terminal ones.
        self.jobs: Dict[str, JobRecord] = {}
        self._queue: deque = deque()  # primary job ids awaiting dispatch
        self._inflight: Dict[str, str] = {}  # content key -> primary id
        self._subs: Dict[str, List[str]] = {}  # primary id -> subscriber ids
        self._busy = 0  # primaries in the currently-running batch
        self._draining = False
        self._wake: Optional[asyncio.Event] = None
        self._work: Optional[asyncio.Event] = None  # lease long-poll wakeup
        self._done: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._recover()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the dispatcher and lease-sweeper tasks (idempotent)."""
        if self._task is not None:
            return
        self._wake = asyncio.Event()
        self._work = asyncio.Event()
        self._done = asyncio.Event()
        if self._queue:
            self._wake.set()
            self._work.set()
        self._task = asyncio.create_task(self._dispatch_loop())
        self._sweeper = asyncio.create_task(self._sweep_loop())

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish the running batch.

        Jobs still queued stay journaled as submitted, and jobs leased
        to remote workers stay journaled as leased; the next daemon
        pointed at the same data dir re-enqueues the former and restores
        the latter's lease state (the restart recovery the CI smoke
        jobs assert).  Remote workers long-polling for work are released
        with an empty, ``draining`` response.
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()
        if self._work is not None:
            self._work.set()
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._task is not None:
            await self._done.wait()
            await self._task
            self._task = None

    @property
    def draining(self) -> bool:
        return self._draining

    # -- journal recovery --------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the job table from the journal (restart path).

        Lease transitions replay too: a job that was leased to a remote
        worker (and neither expired, reassigned, nor resolved) comes
        back *still leased* — same worker, same fence token, same
        deadline — so a live worker finishes its job across a daemon
        restart, and a dead worker's lease expires on the first sweep.
        The fence counter resumes past the highest journaled token, so
        post-restart grants stay strictly monotonic.
        """
        live_leases: Dict[str, Lease] = {}
        for entry in self.journal.load():
            kind = entry["event"]
            if kind == "submit":
                try:
                    spec = JobSpec.from_payload(entry.get("spec", {}))
                except ValueError:
                    continue  # a workload this build no longer knows
                record = JobRecord(
                    id=entry["id"], spec=spec,
                    key=entry.get("key", ""),
                    client=entry.get("client", ""),
                    submitted_at=entry.get("submitted_at", 0.0))
                self.jobs[record.id] = record
            elif kind == "resolve":
                record = self.jobs.get(entry["id"])
                if record is None:
                    continue
                record.state = entry.get("state", JobState.FAILED)
                record.queue_wait = entry.get("queue_wait")
                record.exec_seconds = entry.get("exec_seconds")
                record.finished_at = entry.get("finished_at")
                record.cache_hit = bool(entry.get("cache_hit", False))
                record.dedup_of = entry.get("dedup_of")
                record.result = entry.get("result")
                record.trace_path = entry.get("trace_path")
                record.error = entry.get("error")
                record.exit_code = entry.get("exit_code")
                record.worker = entry.get("worker", record.worker)
                record.resolved_fence = entry.get("fence")
                live_leases.pop(entry["id"], None)
            elif kind == "cancel":
                record = self.jobs.get(entry["id"])
                if record is not None:
                    record.state = JobState.CANCELLED
            elif kind == "lease":
                record = self.jobs.get(entry["id"])
                fence = int(entry.get("fence", 0))
                self.leases.observe_fence(fence)
                if record is None:
                    continue
                record.assignments = int(
                    entry.get("assignments", record.assignments + 1))
                live_leases[entry["id"]] = Lease(
                    job_id=entry["id"],
                    worker=entry.get("worker", ""),
                    fence=fence,
                    granted_at=entry.get("granted_at", 0.0),
                    deadline=entry.get("deadline", 0.0))
            elif kind == "renew":
                lease = live_leases.get(entry["id"])
                if lease is not None and entry.get("fence") == lease.fence:
                    lease.deadline = entry.get("deadline", lease.deadline)
                    lease.renewals += 1
            elif kind in ("expire", "reassign"):
                live_leases.pop(entry["id"], None)
                record = self.jobs.get(entry["id"])
                if record is not None and kind == "reassign":
                    record.assignments = int(
                        entry.get("assignments", record.assignments))
            elif kind == "fence_reject":
                self.leases.observe_fence(int(entry.get("fence", 0)))
        # Unresolved submissions go back in the queue (or keep their
        # live lease), dedup rebuilt in submission order so subscribers
        # reattach to their primary.  A record holding a live lease must
        # win primary selection for its content key regardless of
        # submission order (the lease names *that* job id).
        pending = sorted(
            (r for r in self.jobs.values()
             if r.state not in JobState.TERMINAL),
            key=lambda r: (r.id not in live_leases, r.submitted_at, r.id))
        for record in pending:
            record.recovered += 1
            self.counters.incr("serve.jobs.recovered")
            primary_id = self._inflight.get(record.key)
            if primary_id is not None:
                record.dedup_of = primary_id
                self._subs.setdefault(primary_id, []).append(record.id)
                record.state = self.jobs[primary_id].state
                record.started_at = self.jobs[primary_id].started_at
                continue
            record.dedup_of = None
            self._inflight[record.key] = record.id
            lease = live_leases.get(record.id)
            if lease is not None:
                # Still owned by its worker; expiry sweep handles the
                # rest if that worker is gone.
                self.leases.restore(lease)
                record.state = JobState.RUNNING
                record.started_at = lease.granted_at
                record.worker = lease.worker
                record.fence = lease.fence
                self.counters.incr("serve.leases.restored")
            else:
                record.state = JobState.QUEUED
                record.started_at = None
                record.worker = None
                record.fence = None
                self._queue.append(record.id)

    # -- submission / cancellation / queries -------------------------------

    def submit(self, payload: Any, client: str = "") -> JobRecord:
        """Admit one job; raises the typed admission errors.

        ``ValueError`` means a malformed spec (HTTP 400);
        :class:`RateLimitError` and :class:`QueueFullError` are
        backpressure (HTTP 429 / 503).
        """
        if self._draining:
            self.counters.incr("serve.jobs.rejected.draining")
            raise QueueFullError("daemon is draining; not accepting jobs")
        if self.limiter is not None and not self.limiter.allow(client or "-"):
            self.counters.incr("serve.jobs.rejected.rate_limited")
            raise RateLimitError(
                f"client {client or '-'!r} exceeded "
                f"{self.limiter.rate:g} submissions/s")
        spec = JobSpec.from_payload(payload)
        job = spec.to_job()
        record = JobRecord(id=_new_job_id(), spec=spec, key=job.key,
                           client=client, submitted_at=time.time())
        primary_id = self._inflight.get(job.key)
        if primary_id is not None:
            # Identical job already queued or executing: subscribe.
            record.dedup_of = primary_id
            self._subs.setdefault(primary_id, []).append(record.id)
            primary = self.jobs[primary_id]
            if primary.state == JobState.RUNNING:
                record.state = JobState.RUNNING
                record.started_at = primary.started_at
            self.counters.incr("serve.jobs.deduped")
        else:
            if len(self._queue) >= self.queue_limit:
                self.counters.incr("serve.jobs.rejected.queue_full")
                raise QueueFullError(
                    f"job queue is full ({self.queue_limit} deep)")
            self._inflight[job.key] = record.id
            self._queue.append(record.id)
        self.jobs[record.id] = record
        self.counters.incr("serve.jobs.submitted")
        self.journal.append("submit", record.id, spec=spec.as_dict(),
                            key=record.key, client=client,
                            submitted_at=record.submitted_at,
                            dedup_of=record.dedup_of)
        if self._wake is not None:
            self._wake.set()
        if self._work is not None and self._queue:
            self._work.set()
        return record

    def get(self, job_id: str) -> JobRecord:
        record = self.jobs.get(job_id)
        if record is None:
            raise UnknownJobError(f"no job {job_id!r}")
        return record

    def list_jobs(self, state: Optional[str] = None,
                  workload: Optional[str] = None,
                  client: Optional[str] = None,
                  limit: Optional[int] = None) -> List[JobRecord]:
        """Submission-ordered job records, optionally filtered."""
        records = sorted(self.jobs.values(),
                         key=lambda r: (r.submitted_at, r.id))
        if state:
            records = [r for r in records if r.state == state]
        if workload:
            records = [r for r in records if r.spec.workload == workload]
        if client:
            records = [r for r in records if r.client == client]
        if limit is not None:
            records = records[-limit:]
        return records

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job; running/terminal jobs are not cancellable.

        Cancelling a primary that has dedup subscribers promotes the
        oldest subscriber to primary (its submission is still owed a
        result) instead of cancelling work other clients asked for.
        """
        record = self.get(job_id)
        if record.state != JobState.QUEUED:
            raise NotCancellableError(
                f"job {job_id} is {record.state}; only queued jobs can "
                f"be cancelled")
        if record.dedup_of is not None:
            # A subscriber: detach from its primary and stop.
            siblings = self._subs.get(record.dedup_of, [])
            if job_id in siblings:
                siblings.remove(job_id)
        else:
            subscribers = self._subs.pop(job_id, [])
            live = [s for s in subscribers
                    if self.jobs[s].state == JobState.QUEUED]
            if live:
                heir = self.jobs[live[0]]
                heir.dedup_of = None
                self._subs[heir.id] = live[1:]
                for sid in live[1:]:
                    self.jobs[sid].dedup_of = heir.id
                self._inflight[record.key] = heir.id
                # Keep the queue position the cancelled primary held.
                self._queue = deque(heir.id if qid == job_id else qid
                                    for qid in self._queue)
            else:
                self._inflight.pop(record.key, None)
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass
        record.state = JobState.CANCELLED
        record.finished_at = time.time()
        self.counters.incr("serve.jobs.cancelled")
        self.journal.append("cancel", job_id)
        return record

    # -- fleet coordination (lease / heartbeat / result / fail) ------------

    async def lease(self, worker: str, max_jobs: int = 1,
                    wait: float = 0.0) -> List[Dict[str, Any]]:
        """Claim up to *max_jobs* queued jobs for *worker* (long-poll).

        Returns lease grants — ``{id, spec, fence, lease_ttl,
        deadline, assignments}`` each — parking the caller for up to
        *wait* seconds when the queue is empty.  Draining daemons
        release waiters immediately with no grants.
        """
        if not isinstance(worker, str) or not worker:
            raise ValueError("lease request needs a 'worker' name")
        max_jobs = max(1, int(max_jobs))
        wait = min(max(0.0, float(wait)), 60.0)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait
        while True:
            # Promptly reassign anything whose owner went silent, so a
            # polling worker picks up crashed peers' jobs immediately.
            self.expire_leases()
            self.leases.touch(worker, self._now())
            if self._draining:
                return []
            grants = self._grant_jobs(worker, max_jobs)
            if grants:
                return grants
            remaining = deadline - loop.time()
            if remaining <= 0 or self._work is None:
                return []
            try:
                await asyncio.wait_for(self._work.wait(),
                                       timeout=min(remaining,
                                                   self.sweep_interval))
            except asyncio.TimeoutError:
                continue
            self._work.clear()

    def _grant_jobs(self, worker: str,
                    max_jobs: int) -> List[Dict[str, Any]]:
        """Pop queued primaries and lease them to *worker* (loop thread)."""
        grants: List[Dict[str, Any]] = []
        now = self._now()
        while self._queue and len(grants) < max_jobs:
            job_id = self._queue.popleft()
            record = self.jobs[job_id]
            if record.state != JobState.QUEUED:
                continue
            record.assignments += 1
            lease = self.leases.grant(job_id, worker, self.lease_ttl, now)
            record.state = JobState.RUNNING
            record.started_at = now
            record.worker = worker
            record.fence = lease.fence
            for sid in self._subs.get(job_id, []):
                subscriber = self.jobs[sid]
                if subscriber.state == JobState.QUEUED:
                    subscriber.state = JobState.RUNNING
                    subscriber.started_at = now
            self.counters.incr("serve.leases.granted")
            self.journal.append(
                "lease", job_id, worker=worker, fence=lease.fence,
                granted_at=now, deadline=lease.deadline,
                assignments=record.assignments)
            grants.append({
                "id": job_id,
                "spec": record.spec.as_dict(),
                "fence": lease.fence,
                "lease_ttl": self.lease_ttl,
                "deadline": lease.deadline,
                "assignments": record.assignments,
                "max_assignments": self.max_assignments,
            })
        if self._queue and self._work is not None:
            self._work.set()  # more work: release other pollers
        return grants

    def _fence_reject(self, job_id: str, worker: str, fence: Any,
                      action: str, detail: str = "") -> None:
        """Record and raise one zombie-fencing rejection."""
        self.counters.incr("serve.leases.fence_rejected")
        self.journal.append("fence_reject", job_id, worker=worker,
                            fence=fence, action=action)
        raise FenceRejectedError(
            detail or f"worker {worker!r} tried to {action} job {job_id} "
                      f"with stale fence {fence}")

    def _fenced_record(self, job_id: str, worker: str, fence: Any,
                       action: str) -> JobRecord:
        """Look up + fence-check one lease-owned job, or raise.

        Returns the record with its lease still in place; ``None``-like
        duplicate handling (an already-resolved job re-posted under the
        fence that resolved it) is the *caller's* business — this only
        authenticates live ownership.
        """
        record = self.get(job_id)
        if not isinstance(worker, str) or not worker:
            raise ValueError(f"{action} for job {job_id} needs a "
                             f"'worker' name")
        if not isinstance(fence, int):
            raise ValueError(f"{action} for job {job_id} needs an integer "
                             f"'fence' token")
        try:
            self.leases.validate(job_id, worker, fence, action=action)
        except FenceRejectedError as exc:
            self._fence_reject(job_id, worker, fence, action,
                               detail=str(exc))
        return record

    def heartbeat(self, job_id: str, worker: str,
                  fence: Any) -> Dict[str, Any]:
        """Renew *worker*'s lease on *job_id*; fence-checked.

        A heartbeat for a job that already resolved under this very
        fence (the result post and a final heartbeat can race) is
        answered benignly with the terminal state so the worker stops;
        any other stale fence is rejected.
        """
        record = self.jobs.get(job_id)
        if (record is not None and record.state in JobState.TERMINAL
                and record.resolved_fence == fence
                and record.worker == worker):
            return {"id": job_id, "state": record.state,
                    "lease_ttl": self.lease_ttl}
        record = self._fenced_record(job_id, worker, fence, "heartbeat")
        now = self._now()
        lease = self.leases.renew(job_id, worker, fence, self.lease_ttl, now)
        self.counters.incr("serve.leases.renewed")
        self.journal.append("renew", job_id, worker=worker, fence=fence,
                            deadline=lease.deadline)
        return {"id": job_id, "state": record.state,
                "deadline": lease.deadline, "lease_ttl": self.lease_ttl,
                "renewals": lease.renewals}

    def complete_remote(self, job_id: str, worker: str, fence: Any,
                        result: Any, exec_seconds: float = 0.0,
                        cache: Any = None,
                        cached: bool = False) -> JobRecord:
        """Accept a remote worker's typed result payload; fence-checked.

        Exactly-once resolution under at-least-once posting: a
        duplicate post carrying the fence that already resolved the job
        (worker retried after a dropped response) is answered
        idempotently; a post under any *other* fence — a zombie whose
        lease expired and whose job was reassigned — is rejected and
        journaled as ``fence_reject``.

        *cache*, when present, is the full serialized result
        (:func:`~repro.serve.jobs.result_blob`): it is salt-gated,
        digest-verified, and persisted into the daemon's
        :class:`~repro.runner.ResultCache` **before** subscribers are
        resolved, so post-restart resubmissions and foreground
        ``repro run``s of the same point hit cache.  A bad blob rejects
        the whole post (the lease stays live): a malformed envelope is
        a 400, a mixed-simulator-version salt a typed
        :class:`~repro.errors.CodeSaltMismatchError` (412).

        *cached* marks a post whose payload the worker served from the
        fleet cache instead of simulating: the resolution is booked
        under ``serve.jobs.cache_hits`` (the record's ``cache_hit``
        flag rides the journal), leaving ``serve.jobs.executed`` an
        honest count of actual simulations.
        """
        record = self.jobs.get(job_id)
        if (record is not None and record.state in JobState.TERMINAL
                and record.resolved_fence == fence
                and record.worker == worker):
            self.counters.incr("serve.work.duplicate_results")
            return record
        record = self._fenced_record(job_id, worker, fence, "complete")
        if not isinstance(result, dict):
            raise ValueError(f"result for job {job_id} must be the typed "
                             f"JSON result payload")
        exec_seconds = max(0.0, float(exec_seconds or 0.0))
        reconstructed = None
        if cache is not None:
            reconstructed = self._ingest_result_blob(record, cache, result,
                                                     worker)
        trace_path = None
        if (reconstructed is not None and record.spec.telemetry == "trace"
                and reconstructed.telemetry is not None):
            # The blob hands us what remote execution previously lost:
            # the full result object, trace included.
            trace_path = self._export_trace(record, reconstructed)
        self.leases.release(job_id)
        now = self._now()
        info = self.leases.touch(worker, now)
        info.completed += 1
        record.resolved_fence = fence
        record.worker = worker
        self.counters.incr("serve.jobs.remote_completed")
        self._resolve_group(record, "cached" if cached else "executed",
                            payload=result, exec_seconds=exec_seconds,
                            trace_path=trace_path)
        return record

    def _ingest_result_blob(self, record: JobRecord, blob: Any,
                            result: Dict[str, Any], worker: str):
        """Persist a result post's serialized blob into the shared cache.

        Returns the verified reconstructed result (None when there is
        nothing to store: no cache configured, or the entry already
        exists — a pre-post publish or a racing peer won).
        """
        data = blob_bytes(blob)  # ValueError (400) on a bad envelope
        salt = blob.get("salt")
        if not isinstance(salt, str) or not salt:
            raise ValueError(f"cache blob for job {record.id} needs the "
                             f"sender's code salt")
        claimed = blob.get("digest")
        posted = result.get("buffers_digest")
        if (claimed is not None and posted is not None
                and claimed != posted):
            raise ValueError(
                f"cache blob for job {record.id} claims buffer digest "
                f"{str(claimed)[:16]}... but the posted result payload "
                f"says {str(posted)[:16]}...")
        store = self.runner.cache
        gate = store.salt if store is not None else code_salt()
        if salt != gate:
            raise CodeSaltMismatchError(
                f"worker {worker!r} posted job {record.id} with code salt "
                f"{salt!r} but the daemon runs {gate!r} (mixed simulator "
                f"versions in the fleet)")
        if store is None or store.path_for_key(record.key).exists():
            return None
        reconstructed = store.store_payload(record.key, data, salt=salt,
                                            expect_digest=claimed)
        self.counters.incr("serve.cache.published")
        self.journal.append("publish", record.id, key=record.key,
                            worker=worker,
                            digest=reconstructed.buffers_digest,
                            via="result_post")
        return reconstructed

    # -- fleet-shared result cache (fetch / publish) -----------------------

    def cache_fetch(self, key: str,
                    salt: Optional[str] = None) -> Dict[str, Any]:
        """Serve one cache entry by content key (``GET /cache/{key}``).

        Code-salt-checked: a caller that presents a salt different from
        the store's is running different simulator source and gets a
        typed :class:`~repro.errors.CodeSaltMismatchError` (412) instead
        of bytes its build would misinterpret.  A miss — no store, no
        entry, or a quarantined-corrupt entry — is a typed
        :class:`~repro.errors.CacheMissError` (404): the normal cold
        path, after which the caller simulates.
        """
        self.counters.incr("serve.cache.fetch")
        if not isinstance(key, str) or not key:
            raise ValueError("cache fetch needs a content key")
        store = self.runner.cache
        gate = store.salt if store is not None else code_salt()
        if salt is not None and salt != gate:
            raise CodeSaltMismatchError(
                f"cache fetch for key {key!r} carries code salt {salt!r} "
                f"but the daemon runs {gate!r}")
        entry = store.fetch(key) if store is not None else None
        if entry is None:
            raise CacheMissError(f"no cache entry for key {key!r}")
        data, result = entry
        self.counters.incr("serve.cache.fetch_hits")
        return dict(blob_envelope(data, gate, result.buffers_digest),
                    key=key)

    def cache_publish(self, key: str, blob: Any, worker: str = "",
                      job_id: str = "") -> Dict[str, Any]:
        """Ingest one published entry (``POST /cache/{key}``).

        The fleet-internal publish path workers use *before* posting
        their result, so a fully-computed answer survives a worker that
        dies between execution and lease resolution.  Deliberately not
        fence-checked — entries are content-keyed pure data, verified by
        digest and gated by code salt, so even a fenced-out zombie's
        publish is bit-identical to the live owner's.
        """
        if not isinstance(key, str) or not key:
            raise ValueError("cache publish needs a content key")
        data = blob_bytes(blob)
        salt = blob.get("salt")
        if not isinstance(salt, str) or not salt:
            raise ValueError("cache publish needs the sender's code salt")
        store = self.runner.cache
        gate = store.salt if store is not None else code_salt()
        if salt != gate:
            raise CodeSaltMismatchError(
                f"cache publish for key {key!r} carries code salt "
                f"{salt!r} but the daemon runs {gate!r} (mixed simulator "
                f"versions in the fleet)")
        if worker:
            self.leases.touch(worker, self._now())
        if store is None:
            return {"key": key, "stored": False, "reason": "no cache"}
        if store.path_for_key(key).exists():
            return {"key": key, "stored": False, "reason": "exists"}
        result = store.store_payload(key, data, salt=salt,
                                     expect_digest=blob.get("digest"))
        self.counters.incr("serve.cache.published")
        self.journal.append("publish", job_id or "-", key=key,
                            worker=worker, digest=result.buffers_digest,
                            via="endpoint")
        return {"key": key, "stored": True,
                "digest": result.buffers_digest}

    def fail_remote(self, job_id: str, worker: str, fence: Any,
                    error: str, exit_code: Optional[int] = None,
                    transient: bool = False) -> JobRecord:
        """Accept a remote worker's typed failure; fence-checked.

        Transient failures (worker crash taxonomy) requeue the job —
        subject to the same bounded assignment count as lease expiry —
        while deterministic ones (deadlock, verification, timeout)
        resolve the whole dedup group as failed with the worker's
        reported error and exit code.
        """
        record = self.jobs.get(job_id)
        if (record is not None and record.state in JobState.TERMINAL
                and record.resolved_fence == fence
                and record.worker == worker):
            self.counters.incr("serve.work.duplicate_results")
            return record
        record = self._fenced_record(job_id, worker, fence, "fail")
        self.leases.release(job_id)
        now = self._now()
        info = self.leases.touch(worker, now)
        info.failed += 1
        error = str(error or "remote worker failure")
        self.counters.incr("serve.jobs.remote_failed")
        if transient:
            # _requeue enforces the assignment bound: at the cap this
            # resolves the job as a WorkerCrashError, same as expiry.
            self._requeue(record,
                          reason=f"worker {worker!r} reported a transient "
                                 f"failure: {error}")
            return record
        record.resolved_fence = fence
        record.worker = worker
        self._resolve_group(
            record, "failed", error_text=error,
            error_code=exit_code if isinstance(exit_code, int)
            else ServiceError.exit_code)
        return record

    # -- lease expiry / reassignment ---------------------------------------

    def expire_leases(self, now: Optional[float] = None) -> int:
        """Reassign every job whose lease deadline has passed.

        Returns the number of leases expired.  Runs from the sweep task,
        from every lease poll, and from tests stepping a fake clock.
        """
        if now is None:
            now = self._now()
        expired = self.leases.expired(now)
        for lease in expired:
            self.leases.release(lease.job_id)
            self.counters.incr("serve.leases.expired")
            self.journal.append("expire", lease.job_id, worker=lease.worker,
                                fence=lease.fence, deadline=lease.deadline)
            record = self.jobs.get(lease.job_id)
            if record is None or record.state in JobState.TERMINAL:
                continue
            self._requeue(record,
                          reason=f"lease fence {lease.fence} held by "
                                 f"worker {lease.worker!r} expired "
                                 f"(missed heartbeat deadline)")
        retired = self.leases.retire_idle(now, self.worker_retire_horizon)
        if retired:
            self.counters.incr("serve.workers.retired", len(retired))
        return len(expired)

    def _requeue(self, record: JobRecord, reason: str) -> None:
        """Give a lease-lost job back to the queue — or fail it typed.

        The bounded-assignment backstop: a job that keeps losing its
        owner (crashing workers, flapping network) is failed as a
        :class:`WorkerCrashError` after ``max_assignments`` hand-outs
        rather than ping-ponging around the fleet forever.
        """
        if record.assignments >= self.max_assignments:
            self._resolve_group(record, "failed", error=WorkerCrashError(
                f"job {record.id} ({record.spec.workload}) lost its worker "
                f"{record.assignments} time(s) (assignment bound "
                f"{self.max_assignments}); last: {reason}"))
            return
        record.state = JobState.QUEUED
        record.started_at = None
        record.worker = None
        record.fence = None
        for sid in self._subs.get(record.id, []):
            subscriber = self.jobs[sid]
            if subscriber.state == JobState.RUNNING:
                subscriber.state = JobState.QUEUED
                subscriber.started_at = None
        # Head of the queue: a reassigned job has already waited once.
        self._queue.appendleft(record.id)
        self.counters.incr("serve.leases.reassigned")
        self.journal.append("reassign", record.id,
                            assignments=record.assignments, reason=reason)
        if self._wake is not None:
            self._wake.set()
        if self._work is not None:
            self._work.set()

    async def _sweep_loop(self) -> None:
        """Background heartbeat-deadline enforcement."""
        while not self._draining:
            await asyncio.sleep(self.sweep_interval)
            self.expire_leases()

    def health_status(self) -> str:
        """``ok`` normally; ``degraded`` when a lease has expired but
        its job has not been reassigned yet."""
        return "degraded" if self.leases.expired(self._now()) else "ok"

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                while (self.local_exec and self._queue
                       and not self._draining):
                    batch = [self._queue.popleft()
                             for _ in range(min(len(self._queue),
                                                self.batch_max))]
                    await self._run_batch(batch)
                if self._draining:
                    return
        finally:
            self._done.set()

    async def _run_batch(self, batch_ids: List[str]) -> None:
        """Feed one batch of primaries through the runner."""
        now = time.time()
        records = [self.jobs[i] for i in batch_ids
                   if self.jobs[i].state == JobState.QUEUED]
        if not records:
            return
        jobs = []
        key_to_id: Dict[str, str] = {}
        for record in records:
            record.state = JobState.RUNNING
            record.started_at = now
            record.assignments += 1  # local pickup counts like a lease
            for sid in self._subs.get(record.id, []):
                subscriber = self.jobs[sid]
                if subscriber.state == JobState.QUEUED:
                    subscriber.state = JobState.RUNNING
                    subscriber.started_at = now
            job = record.spec.to_job()
            jobs.append(job)
            key_to_id[job.key] = record.id
        self._busy = len(records)
        self.counters.incr("serve.batches")
        loop = asyncio.get_running_loop()

        def progress(event: JobEvent) -> None:
            # Called from the runner's worker thread: hop back onto the
            # loop so all record/journal mutation stays single-threaded.
            loop.call_soon_threadsafe(self._resolve_event, key_to_id, event)

        self.runner.progress = progress
        try:
            await asyncio.to_thread(self.runner.run, jobs, strict=False)
        except Exception as exc:  # runner itself died, not one job
            for record in records:
                if record.state == JobState.RUNNING:
                    self._resolve_group(record, "failed", error=exc)
        finally:
            self.runner.progress = None
            self._busy = 0
            stats = self.runner.last_stats
            for name in ("retried", "degraded", "timeouts"):
                value = getattr(stats, name)
                if value:
                    self.counters.incr(f"serve.runner.{name}", value)

    def _resolve_event(self, key_to_id: Dict[str, str],
                       event: JobEvent) -> None:
        """One runner job finished (loop thread; via call_soon_threadsafe)."""
        record_id = key_to_id.get(event.job.key)
        record = self.jobs.get(record_id) if record_id else None
        if record is None or record.state in JobState.TERMINAL:
            return
        if event.status == "failed":
            self._resolve_group(record, "failed", error=event.error,
                                exec_seconds=event.elapsed)
        else:
            self._resolve_group(record, event.status, result=event.result,
                                exec_seconds=event.elapsed)

    def _resolve_group(self, record: JobRecord, status: str,
                       result=None, payload: Optional[Dict[str, Any]] = None,
                       error: Optional[BaseException] = None,
                       error_text: Optional[str] = None,
                       error_code: Optional[int] = None,
                       exec_seconds: float = 0.0,
                       trace_path: Optional[str] = None) -> None:
        """Resolve a primary and every live subscriber with one outcome.

        The outcome is either a local :class:`KernelRunResult`
        (*result*, from the runner path), a prebuilt typed JSON
        *payload* (from a remote worker's result post), a local
        exception (*error*), or a remote worker's reported failure
        (*error_text* + *error_code*).
        """
        now = time.time()
        subscribers = self._subs.pop(record.id, [])
        self._inflight.pop(record.key, None)
        group = [record] + [
            self.jobs[sid] for sid in subscribers
            if self.jobs[sid].state not in JobState.TERMINAL]
        if error is not None:
            error_text = describe(error)
            error_code = exit_code_for(error)
        failed = error_text is not None
        if not failed and payload is None and result is not None:
            payload = result_payload(record.spec, result)
            if record.spec.telemetry == "trace" and result.telemetry is not None:
                trace_path = self._export_trace(record, result)
        cache_hit = status == "cached"
        if failed:
            self.counters.incr("serve.jobs.failed")
        elif cache_hit:
            self.counters.incr("serve.jobs.cache_hits")
        else:
            self.counters.incr("serve.jobs.executed")
            self.counters.incr("serve.exec.seconds", exec_seconds)
        for member in group:
            member.finished_at = now
            member.exec_seconds = exec_seconds
            member.queue_wait = max(
                0.0, (now - member.submitted_at) - exec_seconds)
            member.cache_hit = cache_hit
            self.counters.incr("serve.queue.wait_seconds", member.queue_wait)
            if failed:
                member.state = JobState.FAILED
                member.error = error_text
                member.exit_code = error_code
            else:
                member.state = JobState.DONE
                member.result = payload
                member.trace_path = trace_path
            self.journal.append(
                "resolve", member.id, state=member.state,
                queue_wait=member.queue_wait,
                exec_seconds=member.exec_seconds,
                finished_at=member.finished_at,
                cache_hit=member.cache_hit, dedup_of=member.dedup_of,
                result=member.result, trace_path=member.trace_path,
                error=member.error, exit_code=member.exit_code,
                worker=record.worker, fence=record.resolved_fence)

    def _export_trace(self, record: JobRecord, result) -> Optional[str]:
        from ..telemetry import export_chrome_trace

        self.trace_dir.mkdir(parents=True, exist_ok=True)
        path = self.trace_dir / f"{record.id}.json"
        try:
            export_chrome_trace(result.telemetry, path,
                                kernel=record.spec.workload,
                                policy=record.spec.policy)
        except (OSError, ValueError):  # pragma: no cover - best effort
            return None
        return str(path)

    # -- metrics -----------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """The ``GET /metrics`` body: counters plus live gauges.

        The fleet view rides along: ``serve.workers.active`` (a gauge,
        folded into the counter namespace for scrapers), the
        ``serve.leases.*`` transition counters, and per-worker
        last-heartbeat ages under ``fleet.workers``.
        """
        states: Dict[str, int] = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        now = self._now()
        active = self.leases.active_workers(now, self.worker_horizon)
        counters = self.counters.as_dict()
        counters["serve.workers.active"] = float(len(active))
        body: Dict[str, Any] = {
            "counters": counters,
            "fleet": {
                "workers_active": len(active),
                "workers_known": len(self.leases.workers),
                "workers_retired": self.leases.retired,
                "retired_totals": dict(self.leases.retired_totals),
                "lease_ttl": self.lease_ttl,
                "max_assignments": self.max_assignments,
                "local_exec": self.local_exec,
                "leases_active": len(self.leases),
                "leases_expired_pending": len(self.leases.expired(now)),
                "workers": {
                    info.name: {
                        "last_heartbeat_age": max(0.0, now - info.last_seen),
                        "leases_granted": info.leases_granted,
                        "completed": info.completed,
                        "failed": info.failed,
                        "active": now - info.last_seen
                                  <= self.worker_horizon,
                    }
                    for info in sorted(self.leases.workers.values(),
                                       key=lambda w: w.name)
                },
            },
            "queue_depth": len(self._queue),
            "queue_limit": self.queue_limit,
            "workers": self.runner.workers,
            "workers_busy": min(self._busy, self.runner.workers),
            "worker_occupancy": (min(self._busy, self.runner.workers)
                                 / self.runner.workers),
            "draining": self._draining,
            "uptime_seconds": time.time() - self.started_at,
            "jobs_by_state": dict(sorted(states.items())),
        }
        cache = self.runner.cache
        if cache is not None:
            body["cache"] = {"hits": cache.hits, "misses": cache.misses,
                             "corrupt": cache.corrupt,
                             "migrated": cache.migrated}
        return body
