"""Synchronous client for the ``repro serve`` daemon.

Thin stdlib-``http.client`` wrapper used by the ``repro client`` CLI,
the test-suite, and the CI smoke job.  Every method returns the decoded
JSON body; non-2xx responses raise :class:`ServeClientError` carrying
the HTTP status and the daemon's error message, and
:meth:`ServeClient.watch` polls a job to a terminal state.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional

from ..errors import ServiceError

#: Poll period for :meth:`ServeClient.watch` (seconds).
WATCH_INTERVAL = 0.25

TERMINAL = ("done", "failed", "cancelled")


class ServeClientError(ServiceError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """One daemon endpoint (``host:port``), one request per call."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 client_id: str = "", timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def request(self, method: str, path: str,
                body: Optional[Any] = None) -> Any:
        """One JSON round-trip; typed error on non-2xx responses."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        headers = {"Content-Type": "application/json",
                   "Connection": "close"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        try:
            conn.request(method, path,
                         body=(json.dumps(body) if body is not None
                               else None),
                         headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except OSError as exc:
            raise ServeClientError(
                0, f"cannot reach repro serve at "
                   f"{self.host}:{self.port}: {exc}") from exc
        finally:
            conn.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = {"error": raw[:200].decode("latin-1")}
        if response.status >= 400:
            message = (payload.get("error", f"HTTP {response.status}")
                       if isinstance(payload, dict) else str(payload))
            raise ServeClientError(response.status, message)
        return payload

    # -- endpoints ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one JobSpec payload; returns the job status body."""
        return self.request("POST", "/jobs", body=spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}/result")

    def trace(self, job_id: str) -> Any:
        return self.request("GET", f"/jobs/{job_id}/trace")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/jobs/{job_id}")

    def jobs(self, **filters: Any) -> Dict[str, Any]:
        query = "&".join(f"{key}={value}" for key, value in filters.items()
                         if value is not None)
        return self.request("GET", "/jobs" + (f"?{query}" if query else ""))

    # -- conveniences ------------------------------------------------------

    def watch(self, job_id: str, timeout: float = 300.0,
              interval: float = WATCH_INTERVAL) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`ServeClientError` (status 0) on deadline — the
        job itself is left alone.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in TERMINAL:
                return status
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    0, f"job {job_id} still {status.get('state')!r} "
                       f"after {timeout:g}s")
            time.sleep(interval)

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.1) -> Dict[str, Any]:
        """Block until /healthz answers (daemon startup handshake)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServeClientError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    def iter_watch(self, job_ids, timeout: float = 300.0
                   ) -> Iterator[Dict[str, Any]]:
        """Watch several jobs, yielding each as it completes."""
        for job_id in job_ids:
            yield self.watch(job_id, timeout=timeout)
