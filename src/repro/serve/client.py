"""Synchronous client for the ``repro serve`` daemon.

Thin stdlib-``http.client`` wrapper used by the ``repro client`` CLI,
the ``repro worker`` fleet process, the test-suite, and the CI smoke
jobs.  Every method returns the decoded JSON body; non-2xx responses
raise :class:`ServeClientError` carrying the HTTP status and the
daemon's error message, and :meth:`ServeClient.watch` polls a job to a
terminal state.

Transient failures are retried *transparently*: connection resets and
refusals (``OSError``), 429 rate limiting, and 503 backpressure back
off with exponential, decorrelated jitter — honoring the daemon's
``Retry-After`` header when one is sent — up to ``max_retries``
attempts before the typed error propagates.  Deterministic errors
(400/404/409/412, including fence rejections, cache misses, and
code-salt skew) never retry.  Submissions are
safe to retry because identical submissions dedup onto one execution
daemon-side (at-least-once posting, exactly-once execution).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Dict, Iterator, Optional, Tuple
from urllib.parse import quote

from ..errors import CacheMissError, ServiceError

#: Poll period for :meth:`ServeClient.watch` (seconds).
WATCH_INTERVAL = 0.25

TERMINAL = ("done", "failed", "cancelled")

#: HTTP statuses worth retrying: backpressure, not failure.
RETRYABLE_STATUSES = (429, 503)


class ServeClientError(ServiceError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        #: Parsed ``Retry-After`` hint (seconds), when the daemon sent one.
        self.retry_after = retry_after


class ServeClient:
    """One daemon endpoint (``host:port``), one request per call.

    Args:
        max_retries: transient-failure retries per request (0 disables;
            the ``repro client``/``repro worker`` ``--no-retry`` flag).
        retry_base: floor of the decorrelated-jitter backoff (seconds).
        retry_cap: ceiling of any single backoff sleep (seconds).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 client_id: str = "", timeout: float = 30.0,
                 max_retries: int = 3, retry_base: float = 0.1,
                 retry_cap: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        #: Transient-failure retries performed over this client's life.
        self.retries_attempted = 0
        self._rng = random.Random()
        self._sleep = time.sleep  # test seam

    # -- transport ---------------------------------------------------------

    def _once(self, method: str, path: str,
              body: Optional[Any]) -> Tuple[int, Any, Optional[float]]:
        """One HTTP round-trip: (status, decoded body, Retry-After)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        headers = {"Content-Type": "application/json",
                   "Connection": "close"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        try:
            conn.request(method, path,
                         body=(json.dumps(body) if body is not None
                               else None),
                         headers=headers)
            response = conn.getresponse()
            raw = response.read()
            retry_after = _parse_retry_after(
                response.getheader("Retry-After"))
        finally:
            conn.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = {"error": raw[:200].decode("latin-1")}
        return response.status, payload, retry_after

    def request(self, method: str, path: str, body: Optional[Any] = None,
                retries: Optional[int] = None) -> Any:
        """One JSON exchange with transparent transient-failure retry.

        *retries* overrides the client-wide ``max_retries`` for this
        call (``0`` = fail fast; :meth:`wait_ready` uses that to run
        its own startup loop).  Typed error on non-2xx responses.
        """
        budget = self.max_retries if retries is None else retries
        sleep = self.retry_base
        attempt = 0
        while True:
            retry_after = None
            try:
                status, payload, retry_after = self._once(method, path, body)
            except OSError as exc:
                if attempt < budget:
                    attempt += 1
                    self.retries_attempted += 1
                    sleep = self._backoff(sleep, None)
                    continue
                raise ServeClientError(
                    0, f"cannot reach repro serve at "
                       f"{self.host}:{self.port}: {exc}") from exc
            if status in RETRYABLE_STATUSES and attempt < budget:
                attempt += 1
                self.retries_attempted += 1
                sleep = self._backoff(sleep, retry_after)
                continue
            if status >= 400:
                message = (payload.get("error", f"HTTP {status}")
                           if isinstance(payload, dict) else str(payload))
                raise ServeClientError(status, message,
                                       retry_after=retry_after)
            return payload

    def _backoff(self, sleep: float,
                 retry_after: Optional[float]) -> float:
        """Sleep before a retry; returns the next backoff state.

        Decorrelated jitter (``sleep = uniform(base, 3 * sleep)``,
        capped) spreads a fleet's retries instead of synchronizing
        them; an explicit ``Retry-After`` from the daemon wins.
        """
        if retry_after is not None:
            delay = min(max(0.0, retry_after), 30.0)
        else:
            delay = sleep
        self._sleep(delay)
        return min(self.retry_cap,
                   self._rng.uniform(self.retry_base, 3.0 * sleep))

    # -- endpoints ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one JobSpec payload; returns the job status body."""
        return self.request("POST", "/jobs", body=spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}/result")

    def trace(self, job_id: str) -> Any:
        return self.request("GET", f"/jobs/{job_id}/trace")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/jobs/{job_id}")

    def jobs(self, **filters: Any) -> Dict[str, Any]:
        query = "&".join(f"{key}={value}" for key, value in filters.items()
                         if value is not None)
        return self.request("GET", "/jobs" + (f"?{query}" if query else ""))

    # -- fleet (worker) endpoints ------------------------------------------

    def lease(self, worker: str, max_jobs: int = 1,
              wait: float = 0.0) -> Dict[str, Any]:
        """Claim queued jobs under a lease; long-polls up to *wait* s."""
        return self.request("POST", "/work/lease",
                            body={"worker": worker, "max_jobs": max_jobs,
                                  "wait": wait})

    def heartbeat(self, job_id: str, worker: str,
                  fence: int) -> Dict[str, Any]:
        """Renew a lease; raises 409 :class:`ServeClientError` when
        fenced out (the worker must then abandon the job)."""
        return self.request("POST", f"/work/{job_id}/heartbeat",
                            body={"worker": worker, "fence": fence})

    def post_result(self, job_id: str, worker: str, fence: int,
                    result: Dict[str, Any], exec_seconds: float = 0.0,
                    cache: Optional[Dict[str, Any]] = None,
                    cached: bool = False) -> Dict[str, Any]:
        """Publish a finished job's typed result payload.

        *cache*, when given, is the full serialized result blob
        (:func:`~repro.serve.jobs.result_blob`) the daemon persists
        into the fleet-shared cache before resolving subscribers.
        *cached* marks a result the worker served from the fleet cache
        rather than simulating, so the daemon books it under
        ``serve.jobs.cache_hits``.
        """
        body: Dict[str, Any] = {"worker": worker, "fence": fence,
                                "result": result,
                                "exec_seconds": exec_seconds}
        if cache is not None:
            body["cache"] = cache
        if cached:
            body["cached"] = True
        return self.request("POST", f"/work/{job_id}/result", body=body)

    # -- fleet-shared cache endpoints --------------------------------------

    def cache_fetch(self, key: str,
                    salt: Optional[str] = None) -> Dict[str, Any]:
        """Fetch one fleet cache entry by runner content key.

        Returns the blob envelope (decode it with
        :func:`~repro.serve.jobs.result_from_blob`).  A miss raises the
        typed :class:`~repro.errors.CacheMissError` — the normal cold
        path, distinguishable from transport failure — and a 412 (the
        daemon runs different simulator source) propagates as a plain
        :class:`ServeClientError`; neither is ever retried.
        """
        path = "/cache/" + quote(key, safe="")
        if salt:
            path += f"?salt={quote(salt, safe='')}"
        try:
            return self.request("GET", path)
        except ServeClientError as exc:
            if exc.status == 404:
                raise CacheMissError(
                    f"no fleet cache entry for key {key!r}") from exc
            raise

    def cache_publish(self, key: str, blob: Dict[str, Any],
                      worker: str = "",
                      job_id: str = "") -> Dict[str, Any]:
        """Publish a serialized result blob into the fleet cache."""
        return self.request("POST", "/cache/" + quote(key, safe=""),
                            body={"blob": blob, "worker": worker,
                                  "job": job_id})

    def post_failure(self, job_id: str, worker: str, fence: int,
                     error: str, exit_code: Optional[int] = None,
                     transient: bool = False) -> Dict[str, Any]:
        """Publish a typed failure for a leased job."""
        return self.request("POST", f"/work/{job_id}/fail",
                            body={"worker": worker, "fence": fence,
                                  "error": error, "exit_code": exit_code,
                                  "transient": transient})

    # -- conveniences ------------------------------------------------------

    def watch(self, job_id: str, timeout: float = 300.0,
              interval: float = WATCH_INTERVAL) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`ServeClientError` (status 0) on deadline — the
        job itself is left alone.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in TERMINAL:
                return status
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    0, f"job {job_id} still {status.get('state')!r} "
                       f"after {timeout:g}s")
            time.sleep(interval)

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.1) -> Dict[str, Any]:
        """Block until /healthz answers (daemon startup handshake)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                # retries=0: this loop *is* the retry policy here.
                return self.request("GET", "/healthz", retries=0)
            except ServeClientError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    def iter_watch(self, job_ids, timeout: float = 300.0
                   ) -> Iterator[Dict[str, Any]]:
        """Watch several jobs, yielding each as it completes."""
        for job_id in job_ids:
            yield self.watch(job_id, timeout=timeout)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header (delta form), else None."""
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
