"""Simulation-as-a-service: the ``repro serve`` daemon and its fleet.

A long-lived asyncio daemon exposing the runner over HTTP/JSON —
submit workload x policy x config jobs, poll status, fetch typed
results and Chrome traces — with in-flight dedup, a durable job
journal for restart recovery, admission control (bounded queue +
per-client rate limiting) and graceful SIGTERM drain.  ``repro
worker`` processes on any number of hosts join the daemon's fleet:
they claim queued jobs under time-bounded, fence-tokened leases, and
a worker that crashes mid-job simply stops heartbeating — the lease
expires and the job is reassigned, up to a bounded number of
attempts.  The fleet shares one content-keyed result store: workers
fetch from ``GET /cache/{key}`` before simulating and publish
serialized results back (salt-gated, digest-verified), so one grid
over N workers is exactly one execution per point.  Stdlib only.

Layers (each importable on its own):

* :mod:`repro.serve.jobs` — JobSpec/JobRecord/result payloads;
* :mod:`repro.serve.journal` — durable JSONL job journal;
* :mod:`repro.serve.leases` — lease table + fence tokens;
* :mod:`repro.serve.service` — queue, dedup, dispatch, leases, metrics;
* :mod:`repro.serve.http` — the HTTP surface + graceful shutdown;
* :mod:`repro.serve.client` — synchronous client (``repro client``);
* :mod:`repro.serve.worker` — the fleet worker (``repro worker``).
"""

from .client import ServeClient, ServeClientError
from .jobs import (
    RESULT_SCHEMA,
    JobRecord,
    JobSpec,
    JobState,
    result_blob,
    result_from_blob,
    result_payload,
)
from .journal import ServeJournal
from .leases import Lease, LeaseTable, WorkerInfo
from .service import (
    JobService,
    NotCancellableError,
    RateLimiter,
    UnknownJobError,
)
from .worker import ChaosHooks, ServeWorker

__all__ = [
    "RESULT_SCHEMA",
    "ChaosHooks",
    "JobRecord",
    "JobService",
    "JobSpec",
    "JobState",
    "Lease",
    "LeaseTable",
    "NotCancellableError",
    "RateLimiter",
    "ServeClient",
    "ServeClientError",
    "ServeJournal",
    "ServeWorker",
    "UnknownJobError",
    "WorkerInfo",
    "result_blob",
    "result_from_blob",
    "result_payload",
]
