"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

A long-lived asyncio daemon exposing the runner over HTTP/JSON —
submit workload x policy x config jobs, poll status, fetch typed
results and Chrome traces — with in-flight dedup, a durable job
journal for restart recovery, admission control (bounded queue +
per-client rate limiting) and graceful SIGTERM drain.  Stdlib only.

Layers (each importable on its own):

* :mod:`repro.serve.jobs` — JobSpec/JobRecord/result payloads;
* :mod:`repro.serve.journal` — durable JSONL job journal;
* :mod:`repro.serve.service` — queue, dedup, dispatch, metrics;
* :mod:`repro.serve.http` — the HTTP surface + graceful shutdown;
* :mod:`repro.serve.client` — synchronous client (``repro client``).
"""

from .client import ServeClient, ServeClientError
from .jobs import RESULT_SCHEMA, JobRecord, JobSpec, JobState, result_payload
from .journal import ServeJournal
from .service import (
    JobService,
    NotCancellableError,
    RateLimiter,
    UnknownJobError,
)

__all__ = [
    "RESULT_SCHEMA",
    "JobRecord",
    "JobService",
    "JobSpec",
    "JobState",
    "NotCancellableError",
    "RateLimiter",
    "ServeClient",
    "ServeClientError",
    "ServeJournal",
    "UnknownJobError",
    "result_payload",
]
