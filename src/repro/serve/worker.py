"""Pull-based remote worker for the ``repro serve`` fleet.

``repro worker`` points one of these at a running daemon (usually on
another machine): it long-polls ``POST /work/lease`` to claim queued
jobs under a time-bounded, fence-tokened lease, executes each through
the existing :func:`repro.kernels.run_workload` path — the *same*
simulation a foreground ``repro run`` performs, so results are
bit-identical by construction — heartbeats the lease from a background
thread while simulating, and publishes the typed result payload (or a
typed failure from the :mod:`repro.errors` taxonomy) back to the
daemon.

Crash semantics are the daemon's lease table's business, not ours: a
worker that dies mid-job (``kill -9``, OOM, power loss) simply stops
heartbeating, its lease expires, and the job is reassigned.  A worker
that *survives* a partition may find itself fenced out — its token
stale because the job moved on — in which case every post is rejected
with HTTP 409 and the only correct reaction, implemented here, is to
drop the job on the floor.

Chaos hooks: the ``$REPRO_WORKER_CHAOS`` environment variable injects
faults for the chaos harness (``tests/chaos/``) and the CI
fleet-chaos-smoke job — see :class:`ChaosHooks`.  Production workers
never set it.

Exit codes follow the CLI contract: 0 for a clean exit (drain,
``--max-jobs`` reached, idle timeout, SIGTERM), 7
(:class:`~repro.errors.ServiceError`) when the daemon was never
reachable.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from typing import Any, Dict, Optional

from ..errors import (
    ServiceError,
    SimulationError,
    describe,
    exit_code_for,
)
from .client import ServeClient, ServeClientError
from .jobs import JobSpec, JobState, result_payload

#: Environment variable carrying comma-separated chaos fault hooks.
CHAOS_ENV = "REPRO_WORKER_CHAOS"


class ChaosHooks:
    """Parsed fault-injection hooks (``$REPRO_WORKER_CHAOS``).

    Supported hooks (comma-separated; unknown names raise):

    * ``die-after-lease`` — ``os._exit`` right after claiming a job,
      before executing: models a worker crashing at pickup.
    * ``die-before-result`` — execute the job fully, then ``os._exit``
      without posting: models a crash after the side effects ran but
      before the daemon heard about them (the at-least-once case).
    * ``drop-heartbeats`` — the heartbeat thread goes silent: models a
      network partition; the lease expires under a live worker, which
      must then be fenced out.
    * ``dup-result`` — post the result twice: models a retried post
      whose first response was lost; the daemon must answer the second
      idempotently.
    """

    NAMES = ("die-after-lease", "die-before-result", "drop-heartbeats",
             "dup-result")

    def __init__(self, spec: str = "") -> None:
        hooks = {part.strip() for part in (spec or "").split(",")
                 if part.strip()}
        unknown = hooks - set(self.NAMES)
        if unknown:
            raise ValueError(
                f"unknown chaos hook(s): {', '.join(sorted(unknown))}; "
                f"expected any of: {', '.join(self.NAMES)}")
        self.die_after_lease = "die-after-lease" in hooks
        self.die_before_result = "die-before-result" in hooks
        self.drop_heartbeats = "drop-heartbeats" in hooks
        self.dup_result = "dup-result" in hooks

    @classmethod
    def from_env(cls) -> "ChaosHooks":
        return cls(os.environ.get(CHAOS_ENV, ""))


class _Heartbeater(threading.Thread):
    """Renews one job's lease every *interval* seconds until stopped.

    Transport errors are tolerated (the daemon may be restarting; the
    lease TTL is the real judge of our liveness) but a fence rejection
    is terminal: it means the lease moved on and the executing thread
    must drop its result.
    """

    def __init__(self, client: ServeClient, job_id: str, worker: str,
                 fence: int, interval: float, chaos: ChaosHooks,
                 log) -> None:
        super().__init__(daemon=True,
                         name=f"heartbeat-{job_id}")
        self.client = client
        self.job_id = job_id
        self.worker = worker
        self.fence = fence
        self.interval = interval
        self.chaos = chaos
        self.log = log
        self.fenced = False
        self.sent = 0
        # NB: not named _stop — threading.Thread.join() calls a private
        # _stop() method internally and an Event here would shadow it.
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            if self.chaos.drop_heartbeats:
                continue  # chaos: simulate a partitioned worker
            try:
                body = self.client.heartbeat(self.job_id, self.worker,
                                             self.fence)
            except ServeClientError as exc:
                if exc.status == 409:
                    self.fenced = True
                    self.log(f"job {self.job_id}: fenced out "
                             f"(fence {self.fence} stale): {exc}")
                    return
                # Unreachable or 5xx: keep beating; the TTL decides.
            else:
                if body.get("state") in JobState.TERMINAL:
                    return


class ServeWorker:
    """One fleet worker: lease, heartbeat, execute, publish, repeat.

    Args:
        client: transport to the daemon (its transparent retry policy
            rides along for every lease/heartbeat/result post).
        name: fleet-unique worker identity (defaults to
            ``<hostname>-<pid>``); the daemon keys leases, fences, and
            per-worker metrics by it.
        max_jobs: exit 0 after executing this many jobs (0 = forever).
        poll_wait: long-poll duration per lease request.
        heartbeat_interval: lease renewal period; defaults to a third
            of the TTL the daemon advertises with each grant.
        exit_on_drain: exit 0 when the daemon reports it is draining.
        idle_exit: exit 0 after this many seconds without work (None =
            wait forever).
        startup_timeout: exit 7 if the daemon was never reachable for
            this long.
        chaos: fault hooks; defaults to ``$REPRO_WORKER_CHAOS``.
    """

    def __init__(self, client: ServeClient, name: Optional[str] = None,
                 max_jobs: int = 0, poll_wait: float = 5.0,
                 heartbeat_interval: Optional[float] = None,
                 exit_on_drain: bool = False,
                 idle_exit: Optional[float] = None,
                 startup_timeout: float = 60.0,
                 chaos: Optional[ChaosHooks] = None,
                 log=None) -> None:
        self.client = client
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.max_jobs = max(0, int(max_jobs))
        self.poll_wait = max(0.0, float(poll_wait))
        self.heartbeat_interval = heartbeat_interval
        self.exit_on_drain = exit_on_drain
        self.idle_exit = idle_exit
        self.startup_timeout = startup_timeout
        self.chaos = chaos if chaos is not None else ChaosHooks.from_env()
        self.log = log if log is not None else self._log_stderr
        self.completed = 0
        self.failed = 0
        self.fenced_drops = 0
        self._connected = False
        self._stop = threading.Event()

    def _log_stderr(self, message: str) -> None:
        print(f"worker {self.name}: {message}", file=sys.stderr, flush=True)

    def stop(self) -> None:
        """Request a graceful exit (finish the current job first)."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful stop (CLI entry point)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, lambda *_: self.stop())
            except ValueError:  # pragma: no cover - non-main thread
                pass

    # -- main loop ---------------------------------------------------------

    def run(self) -> int:
        """Work until stopped; returns the process exit code."""
        started = time.monotonic()
        idle_since = time.monotonic()
        while not self._stop.is_set():
            try:
                body = self.client.lease(self.name, max_jobs=1,
                                         wait=self.poll_wait)
            except ServeClientError as exc:
                now = time.monotonic()
                if (not self._connected
                        and now - started > self.startup_timeout):
                    self.log(f"daemon never reachable: {exc}")
                    return ServiceError.exit_code
                # Unreachable time counts as idle: a worker whose
                # daemon vanished exits bounded under --idle-exit
                # instead of spinning forever.
                if (self.idle_exit is not None
                        and now - idle_since > self.idle_exit):
                    self.log(f"no work for {self.idle_exit:g}s (daemon "
                             f"unreachable); exiting")
                    return 0
                self.log(f"lease request failed ({exc}); retrying")
                time.sleep(min(1.0, self.poll_wait or 1.0))
                continue
            self._connected = True
            leases = body.get("leases", [])
            if not leases:
                if body.get("draining") and self.exit_on_drain:
                    self.log("daemon draining; exiting")
                    return 0
                if (self.idle_exit is not None
                        and time.monotonic() - idle_since > self.idle_exit):
                    self.log(f"idle for {self.idle_exit:g}s; exiting")
                    return 0
                continue
            for grant in leases:
                self._execute(grant)
                idle_since = time.monotonic()
                if self.max_jobs and self.completed >= self.max_jobs:
                    self.log(f"executed {self.completed} job(s); exiting")
                    return 0
        self.log("stopped")
        return 0

    # -- one job -----------------------------------------------------------

    def _execute(self, grant: Dict[str, Any]) -> None:
        job_id = grant["id"]
        fence = int(grant["fence"])
        ttl = float(grant.get("lease_ttl", 30.0))
        self.log(f"leased job {job_id} (fence {fence}, ttl {ttl:g}s, "
                 f"assignment {grant.get('assignments')})")
        if self.chaos.die_after_lease:
            os._exit(137)  # chaos: crashed at pickup
        try:
            spec = JobSpec.from_payload(grant.get("spec", {}))
        except ValueError as exc:
            # Version skew: this build can't run the spec; another
            # worker (or the daemon itself) may, so fail transient.
            self._post_failure(job_id, fence,
                               f"ValueError: worker {self.name} cannot "
                               f"build spec: {exc}",
                               ServiceError.exit_code, transient=True)
            return
        interval = self.heartbeat_interval or max(0.05, ttl / 3.0)
        beater = _Heartbeater(self.client, job_id, self.name, fence,
                              interval, self.chaos, self.log)
        beater.start()
        try:
            payload, elapsed = self._simulate(spec)
        except SimulationError as exc:
            beater.stop()
            beater.join()
            self.failed += 1
            if beater.fenced:
                self.fenced_drops += 1
                return  # the job moved on; our failure is nobody's news
            self._post_failure(job_id, fence, describe(exc),
                               exit_code_for(exc), transient=exc.transient)
            return
        except Exception as exc:  # unclassified: worker-crash taxonomy
            beater.stop()
            beater.join()
            self.failed += 1
            if beater.fenced:
                self.fenced_drops += 1
                return
            self._post_failure(job_id, fence,
                               f"WorkerCrashError: worker {self.name} "
                               f"raised {describe(exc)}", 5, transient=True)
            return
        beater.stop()
        beater.join()
        if self.chaos.die_before_result:
            os._exit(137)  # chaos: crashed between execution and post
        if beater.fenced:
            self.fenced_drops += 1
            self.log(f"job {job_id}: dropping result (fenced out mid-job)")
            return
        self._post_result(job_id, fence, payload, elapsed)

    def _simulate(self, spec: JobSpec):
        """The existing foreground execution path, verbatim."""
        from ..kernels import WORKLOAD_REGISTRY, run_workload

        workload = WORKLOAD_REGISTRY[spec.workload](**dict(spec.params))
        start = time.perf_counter()
        result = run_workload(workload, spec.to_config(),
                              verify=spec.verify)
        elapsed = time.perf_counter() - start
        return result_payload(spec, result), elapsed

    def _post_result(self, job_id: str, fence: int,
                     payload: Dict[str, Any], elapsed: float) -> None:
        posts = 2 if self.chaos.dup_result else 1
        for attempt in range(posts):
            try:
                self.client.post_result(job_id, self.name, fence, payload,
                                        exec_seconds=elapsed)
            except ServeClientError as exc:
                if exc.status == 409:
                    self.fenced_drops += 1
                    self.log(f"job {job_id}: result rejected "
                             f"(stale fence {fence}); dropped")
                    return
                self.log(f"job {job_id}: result post failed: {exc}")
                return
            if attempt == 0:
                self.completed += 1
                self.log(f"job {job_id}: done ({elapsed:.2f}s)")

    def _post_failure(self, job_id: str, fence: int, error: str,
                      exit_code: int, transient: bool) -> None:
        try:
            self.client.post_failure(job_id, self.name, fence, error,
                                     exit_code=exit_code,
                                     transient=transient)
        except ServeClientError as exc:
            if exc.status == 409:
                self.fenced_drops += 1
                return
            self.log(f"job {job_id}: failure post failed: {exc}")
        else:
            self.log(f"job {job_id}: failed ({error})")
