"""Pull-based remote worker for the ``repro serve`` fleet.

``repro worker`` points one of these at a running daemon (usually on
another machine): it long-polls ``POST /work/lease`` to claim queued
jobs under a time-bounded, fence-tokened lease, executes each through
the existing :func:`repro.kernels.run_workload` path — the *same*
simulation a foreground ``repro run`` performs, so results are
bit-identical by construction — heartbeats the lease from a background
thread while simulating, and publishes the typed result payload (or a
typed failure from the :mod:`repro.errors` taxonomy) back to the
daemon.

The fleet-shared result cache rides the same loop: before simulating,
the worker probes ``GET /cache/{key}`` (code-salt-checked; opt out with
``--no-cache-fetch``) and serves a verified hit instead of
re-executing; after a fresh execution it publishes the serialized
result to ``POST /cache/{key}`` *before* posting — so a crash between
execution and resolution leaves the answer in the store — and attaches
the same blob to the result post as the guaranteed ingest path.

Crash semantics are the daemon's lease table's business, not ours: a
worker that dies mid-job (``kill -9``, OOM, power loss) simply stops
heartbeating, its lease expires, and the job is reassigned.  A worker
that *survives* a partition may find itself fenced out — its token
stale because the job moved on — in which case every post is rejected
with HTTP 409 and the only correct reaction, implemented here, is to
drop the job on the floor.

Chaos hooks: the ``$REPRO_WORKER_CHAOS`` environment variable injects
faults for the chaos harness (``tests/chaos/``) and the CI
fleet-chaos-smoke job — see :class:`ChaosHooks`.  Production workers
never set it.

Exit codes follow the CLI contract: 0 for a clean exit (drain,
``--max-jobs`` reached, idle timeout, SIGTERM), 7
(:class:`~repro.errors.ServiceError`) when the daemon was never
reachable.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from typing import Any, Dict, Optional

from ..errors import (
    CacheCorruptionError,
    CacheMissError,
    ServiceError,
    SimulationError,
    describe,
    exit_code_for,
)
from ..runner import code_salt
from .client import ServeClient, ServeClientError
from .jobs import JobSpec, JobState, result_blob, result_from_blob, \
    result_payload

#: Environment variable carrying comma-separated chaos fault hooks.
CHAOS_ENV = "REPRO_WORKER_CHAOS"

#: Don't attach a serialized-result blob to posts past this raw size —
#: base64 expansion would blow the daemon's request body bound.
MAX_BLOB_BYTES = 6 << 20

#: Result-post failures worth retrying at the worker level (on top of
#: the client's per-request transparent retry): transport loss (status
#: 0) and server-side transient conditions.  Deterministic rejections
#: (400, 409 fence, 412 salt) never burn a retry.
RETRY_POST_STATUSES = (0, 429, 500, 502, 503)


class ChaosHooks:
    """Parsed fault-injection hooks (``$REPRO_WORKER_CHAOS``).

    Supported hooks (comma-separated; unknown names raise):

    * ``die-after-lease`` — ``os._exit`` right after claiming a job,
      before executing: models a worker crashing at pickup.
    * ``die-before-result`` — execute the job fully, then ``os._exit``
      without posting: models a crash after the side effects ran but
      before the daemon heard about them (the at-least-once case).
    * ``drop-heartbeats`` — the heartbeat thread goes silent: models a
      network partition; the lease expires under a live worker, which
      must then be fenced out.
    * ``die-after-publish`` — execute the job, publish the serialized
      result into the fleet cache, then ``os._exit`` before posting:
      models a crash in the window between cache publish and lease
      resolution (the reassigned run must be served from cache).
    * ``dup-result`` — post the result twice: models a retried post
      whose first response was lost; the daemon must answer the second
      idempotently.
    """

    NAMES = ("die-after-lease", "die-before-result", "die-after-publish",
             "drop-heartbeats", "dup-result")

    def __init__(self, spec: str = "") -> None:
        hooks = {part.strip() for part in (spec or "").split(",")
                 if part.strip()}
        unknown = hooks - set(self.NAMES)
        if unknown:
            raise ValueError(
                f"unknown chaos hook(s): {', '.join(sorted(unknown))}; "
                f"expected any of: {', '.join(self.NAMES)}")
        self.die_after_lease = "die-after-lease" in hooks
        self.die_before_result = "die-before-result" in hooks
        self.die_after_publish = "die-after-publish" in hooks
        self.drop_heartbeats = "drop-heartbeats" in hooks
        self.dup_result = "dup-result" in hooks

    @classmethod
    def from_env(cls) -> "ChaosHooks":
        return cls(os.environ.get(CHAOS_ENV, ""))


class _Heartbeater(threading.Thread):
    """Renews one job's lease every *interval* seconds until stopped.

    Transport errors are tolerated (the daemon may be restarting; the
    lease TTL is the real judge of our liveness) but a fence rejection
    is terminal: it means the lease moved on and the executing thread
    must drop its result.
    """

    def __init__(self, client: ServeClient, job_id: str, worker: str,
                 fence: int, interval: float, chaos: ChaosHooks,
                 log) -> None:
        super().__init__(daemon=True,
                         name=f"heartbeat-{job_id}")
        self.client = client
        self.job_id = job_id
        self.worker = worker
        self.fence = fence
        self.interval = interval
        self.chaos = chaos
        self.log = log
        self.fenced = False
        #: The daemon reported the job already terminal (someone else's
        #: post — or our own, with the response lost — resolved it).
        self.terminal = False
        self.sent = 0
        # NB: not named _stop — threading.Thread.join() calls a private
        # _stop() method internally and an Event here would shadow it.
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            if self.chaos.drop_heartbeats:
                continue  # chaos: simulate a partitioned worker
            try:
                body = self.client.heartbeat(self.job_id, self.worker,
                                             self.fence)
            except ServeClientError as exc:
                if exc.status == 409:
                    self.fenced = True
                    self.log(f"job {self.job_id}: fenced out "
                             f"(fence {self.fence} stale): {exc}")
                    return
                # Unreachable or 5xx: keep beating; the TTL decides.
            else:
                if body.get("state") in JobState.TERMINAL:
                    self.terminal = True
                    return


class ServeWorker:
    """One fleet worker: lease, heartbeat, execute, publish, repeat.

    Args:
        client: transport to the daemon (its transparent retry policy
            rides along for every lease/heartbeat/result post).
        name: fleet-unique worker identity (defaults to
            ``<hostname>-<pid>``); the daemon keys leases, fences, and
            per-worker metrics by it.
        max_jobs: exit 0 after executing this many jobs — completed,
            failed, and fenced-dropped alike (0 = forever).
        poll_wait: long-poll duration per lease request.
        heartbeat_interval: lease renewal period; defaults to a third
            of the TTL the daemon advertises with each grant.
        exit_on_drain: exit 0 when the daemon reports it is draining.
        idle_exit: exit 0 after this many seconds without work (None =
            wait forever).
        startup_timeout: exit 7 if the daemon was never reachable for
            this long.
        fetch_cache: probe the daemon's fleet-shared result cache
            before simulating (the ``--no-cache-fetch`` opt-out);
            publishing back is always attempted for fresh executions.
        result_post_retries: bounded worker-level retries of a failed
            result post (the worker keeps heartbeating throughout, so
            the lease survives a daemon blip instead of burning an
            assignment on a fully-computed result).
        chaos: fault hooks; defaults to ``$REPRO_WORKER_CHAOS``.
    """

    def __init__(self, client: ServeClient, name: Optional[str] = None,
                 max_jobs: int = 0, poll_wait: float = 5.0,
                 heartbeat_interval: Optional[float] = None,
                 exit_on_drain: bool = False,
                 idle_exit: Optional[float] = None,
                 startup_timeout: float = 60.0,
                 fetch_cache: bool = True,
                 result_post_retries: int = 8,
                 chaos: Optional[ChaosHooks] = None,
                 log=None) -> None:
        self.client = client
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.max_jobs = max(0, int(max_jobs))
        self.poll_wait = max(0.0, float(poll_wait))
        self.heartbeat_interval = heartbeat_interval
        self.exit_on_drain = exit_on_drain
        self.idle_exit = idle_exit
        self.startup_timeout = startup_timeout
        self.fetch_cache = fetch_cache
        self.result_post_retries = max(0, int(result_post_retries))
        self.chaos = chaos if chaos is not None else ChaosHooks.from_env()
        self.log = log if log is not None else self._log_stderr
        self.completed = 0
        self.failed = 0
        self.fenced_drops = 0
        #: Jobs this worker ran (or served from cache) to a conclusion,
        #: whatever became of the post — the ``--max-jobs`` odometer.
        self.executed = 0
        self.cache_hits = 0
        self.published = 0
        self._connected = False
        self._stop = threading.Event()
        self._sleep = time.sleep  # test seam (result-post retry backoff)

    def _log_stderr(self, message: str) -> None:
        print(f"worker {self.name}: {message}", file=sys.stderr, flush=True)

    def stop(self) -> None:
        """Request a graceful exit (finish the current job first)."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful stop (CLI entry point)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, lambda *_: self.stop())
            except ValueError:  # pragma: no cover - non-main thread
                pass

    # -- main loop ---------------------------------------------------------

    def run(self) -> int:
        """Work until stopped; returns the process exit code."""
        started = time.monotonic()
        idle_since = time.monotonic()
        while not self._stop.is_set():
            try:
                body = self.client.lease(self.name, max_jobs=1,
                                         wait=self.poll_wait)
            except ServeClientError as exc:
                now = time.monotonic()
                if (not self._connected
                        and now - started > self.startup_timeout):
                    self.log(f"daemon never reachable: {exc}")
                    return ServiceError.exit_code
                # Unreachable time counts as idle: a worker whose
                # daemon vanished exits bounded under --idle-exit
                # instead of spinning forever.
                if (self.idle_exit is not None
                        and now - idle_since > self.idle_exit):
                    self.log(f"no work for {self.idle_exit:g}s (daemon "
                             f"unreachable); exiting")
                    return 0
                self.log(f"lease request failed ({exc}); retrying")
                time.sleep(min(1.0, self.poll_wait or 1.0))
                continue
            self._connected = True
            leases = body.get("leases", [])
            if not leases:
                if body.get("draining") and self.exit_on_drain:
                    self.log("daemon draining; exiting")
                    return 0
                if (self.idle_exit is not None
                        and time.monotonic() - idle_since > self.idle_exit):
                    self.log(f"idle for {self.idle_exit:g}s; exiting")
                    return 0
                continue
            for grant in leases:
                self._execute(grant)
                idle_since = time.monotonic()
                # Count every executed job — completed, failed, or
                # fenced-dropped — toward the cap: a worker whose jobs
                # all fail must still honor --max-jobs and exit.
                if self.max_jobs and self.executed >= self.max_jobs:
                    self.log(f"executed {self.executed} job(s); exiting")
                    return 0
        self.log("stopped")
        return 0

    # -- one job -----------------------------------------------------------

    def _execute(self, grant: Dict[str, Any]) -> None:
        job_id = grant["id"]
        fence = int(grant["fence"])
        ttl = float(grant.get("lease_ttl", 30.0))
        self.log(f"leased job {job_id} (fence {fence}, ttl {ttl:g}s, "
                 f"assignment {grant.get('assignments')})")
        if self.chaos.die_after_lease:
            os._exit(137)  # chaos: crashed at pickup
        try:
            spec = JobSpec.from_payload(grant.get("spec", {}))
            key = spec.to_job().key  # content address in the fleet cache
        except (KeyError, ValueError) as exc:
            # Version skew: this build can't run the spec; another
            # worker (or the daemon itself) may, so fail transient.
            self._post_failure(job_id, fence,
                               f"ValueError: worker {self.name} cannot "
                               f"build spec: {exc}",
                               ServiceError.exit_code, transient=True)
            return
        interval = self.heartbeat_interval or max(0.05, ttl / 3.0)
        beater = _Heartbeater(self.client, job_id, self.name, fence,
                              interval, self.chaos, self.log)
        beater.start()
        blob = None
        cached = self._fetch_cached(key) if self.fetch_cache else None
        if cached is not None:
            payload, elapsed = result_payload(spec, cached), 0.0
        else:
            try:
                result, elapsed = self._simulate(spec)
            except SimulationError as exc:
                beater.stop()
                beater.join()
                self.failed += 1
                self.executed += 1
                if beater.fenced:
                    self.fenced_drops += 1
                    return  # the job moved on; our failure is nobody's news
                self._post_failure(job_id, fence, describe(exc),
                                   exit_code_for(exc),
                                   transient=exc.transient)
                return
            except Exception as exc:  # unclassified: worker-crash taxonomy
                beater.stop()
                beater.join()
                self.failed += 1
                self.executed += 1
                if beater.fenced:
                    self.fenced_drops += 1
                    return
                self._post_failure(job_id, fence,
                                   f"WorkerCrashError: worker {self.name} "
                                   f"raised {describe(exc)}", 5,
                                   transient=True)
                return
            payload = result_payload(spec, result)
            blob = result_blob(result)
            # Publish before posting: if we die in between, the answer
            # already lives in the fleet store and the reassigned run
            # is a cache hit instead of a re-execution.
            self._publish(key, blob, job_id)
            if self.chaos.die_after_publish:
                os._exit(137)  # chaos: crashed between publish and post
        self.executed += 1
        if self.chaos.die_before_result:
            os._exit(137)  # chaos: crashed between execution and post
        if beater.fenced:
            beater.stop()
            beater.join()
            self.fenced_drops += 1
            self.log(f"job {job_id}: dropping result (fenced out mid-job)")
            return
        # The heartbeater stays alive through the post (and its bounded
        # retries): a daemon blip must not cost us the lease while we
        # hold a fully-computed result.
        self._post_result(job_id, fence, payload, elapsed, cache=blob,
                          beater=beater, cached=cached is not None)
        beater.stop()
        beater.join()

    def _simulate(self, spec: JobSpec):
        """The existing foreground execution path, verbatim."""
        from ..kernels import WORKLOAD_REGISTRY, run_workload

        workload = WORKLOAD_REGISTRY[spec.workload](**dict(spec.params))
        start = time.perf_counter()
        result = run_workload(workload, spec.to_config(),
                              verify=spec.verify)
        elapsed = time.perf_counter() - start
        return result, elapsed

    # -- fleet-shared cache ------------------------------------------------

    def _fetch_cached(self, key: str):
        """The daemon's cached result for *key*, or None (then simulate).

        Misses and transport trouble both fall back to simulating —
        the cache is an optimization, never a dependency — but a served
        blob is digest-verified before it is trusted.
        """
        try:
            body = self.client.cache_fetch(key, salt=code_salt())
        except CacheMissError:
            return None
        except ServeClientError as exc:
            self.log(f"cache fetch failed ({exc}); simulating")
            return None
        try:
            result = result_from_blob(body)
        except (ValueError, CacheCorruptionError) as exc:
            self.log(f"cache fetch returned an unusable blob "
                     f"({describe(exc)}); simulating")
            return None
        self.cache_hits += 1
        self.log(f"serving from fleet cache (key {key.split('|')[0]}|...)")
        return result

    def _publish(self, key: str, blob: Dict[str, Any],
                 job_id: str) -> None:
        """Best-effort pre-post publish of a fresh result (never fatal:
        the result post carries the same blob as a fallback)."""
        if blob.get("size", 0) > MAX_BLOB_BYTES:
            self.log(f"job {job_id}: result too large to publish "
                     f"({blob['size']} bytes); posting inline only")
            return
        try:
            body = self.client.cache_publish(key, blob, worker=self.name,
                                             job_id=job_id)
        except ServeClientError as exc:
            self.log(f"job {job_id}: cache publish failed ({exc}); "
                     f"the result post still carries the blob")
            return
        if body.get("stored"):
            self.published += 1

    def _post_result(self, job_id: str, fence: int,
                     payload: Dict[str, Any], elapsed: float,
                     cache: Optional[Dict[str, Any]] = None,
                     beater: Optional[_Heartbeater] = None,
                     cached: bool = False) -> bool:
        """Deliver a computed result; bounded retry on transport loss.

        A fully-computed result is too expensive to drop on a daemon
        blip: transient post failures retry (decaying backoff, the
        heartbeater keeping the lease alive meanwhile) until the post
        lands, we are fenced out, the job turns terminal elsewhere, or
        the retry budget runs dry.  Deterministic rejections — 409
        (stale fence) and 400 — drop immediately; a 412 means the
        *cache blob* crossed a simulator-version boundary, so the post
        is retried once without it (the JSON payload is still valid).

        *cached* marks a fleet-cache serve, so the daemon books the
        resolution under ``serve.jobs.cache_hits`` instead of
        ``serve.jobs.executed``.
        """
        if cache is not None and cache.get("size", 0) > MAX_BLOB_BYTES:
            cache = None
        posts = 2 if self.chaos.dup_result else 1
        delivered = False
        for duplicate in range(posts):
            attempt = 0
            delay = 0.2
            while True:
                if beater is not None and beater.fenced:
                    self.fenced_drops += 1
                    self.log(f"job {job_id}: dropping result "
                             f"(fenced out during post)")
                    return delivered
                try:
                    self.client.post_result(job_id, self.name, fence,
                                            payload, exec_seconds=elapsed,
                                            cache=cache, cached=cached)
                except ServeClientError as exc:
                    if exc.status == 409:
                        self.fenced_drops += 1
                        self.log(f"job {job_id}: result rejected "
                                 f"(stale fence {fence}); dropped")
                        return delivered
                    if exc.status == 412 and cache is not None:
                        self.log(f"job {job_id}: cache blob rejected "
                                 f"(code-salt skew: {exc}); reposting "
                                 f"without it")
                        cache = None
                        continue
                    if beater is not None and beater.terminal:
                        self.log(f"job {job_id}: already terminal at the "
                                 f"daemon; dropping post")
                        return delivered
                    if (exc.status in RETRY_POST_STATUSES
                            and attempt < self.result_post_retries):
                        attempt += 1
                        self.log(f"job {job_id}: result post failed "
                                 f"({exc}); retry "
                                 f"{attempt}/{self.result_post_retries}")
                        self._sleep(delay)
                        delay = min(2.0, delay * 2.0)
                        continue
                    self.failed += 1
                    self.log(f"job {job_id}: result post failed "
                             f"permanently ({exc}); result lost")
                    return delivered
                if not delivered:
                    delivered = True
                    self.completed += 1
                    self.log(f"job {job_id}: done ({elapsed:.2f}s)")
                break
        return delivered

    def _post_failure(self, job_id: str, fence: int, error: str,
                      exit_code: int, transient: bool) -> None:
        try:
            self.client.post_failure(job_id, self.name, fence, error,
                                     exit_code=exit_code,
                                     transient=transient)
        except ServeClientError as exc:
            if exc.status == 409:
                self.fenced_drops += 1
                return
            self.log(f"job {job_id}: failure post failed: {exc}")
        else:
            self.log(f"job {job_id}: failed ({error})")
