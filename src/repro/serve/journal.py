"""Durable JSONL job journal for the ``repro serve`` daemon.

Same idiom as :class:`repro.runner.CheckpointJournal` (one header line
binding the file to a schema, then one fsynced record per event,
tolerating a torn trailing line), but for the service's job lifecycle
instead of a sweep grid: ``submit`` / ``resolve`` / ``cancel`` events
keyed by job id.  A restarted daemon replays the journal to recover its
job table — resolved jobs keep serving their results, and jobs that
were submitted but never resolved re-enter the queue.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List


class ServeJournal:
    """Append-only event log of the daemon's job table."""

    SCHEMA = 1
    SERVICE = "repro-serve"

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)

    def load(self) -> List[Dict[str, Any]]:
        """Ordered journal events; ``[]`` for missing/foreign files.

        Undecodable lines (torn writes from a crash mid-append) are
        skipped, salvaging every event before and after them.
        """
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        if not lines:
            return []
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return []
        if (not isinstance(header, dict)
                or header.get("schema") != self.SCHEMA
                or header.get("service") != self.SERVICE):
            return []
        events: List[Dict[str, Any]] = []
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write: keep everything else
            if isinstance(entry, dict) and "event" in entry and "id" in entry:
                events.append(entry)
        return events

    def append(self, event: str, job_id: str, **data: Any) -> None:
        """Durably journal one job event."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        with open(self.path, "a", encoding="utf-8") as fh:
            if fresh:
                fh.write(json.dumps({"schema": self.SCHEMA,
                                     "service": self.SERVICE}) + "\n")
            fh.write(json.dumps({"event": event, "id": job_id, **data},
                                sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def discard(self) -> None:
        """Delete the journal (tests and explicit resets only)."""
        try:
            self.path.unlink()
        except OSError:
            pass
