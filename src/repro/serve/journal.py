"""Durable JSONL job journal for the ``repro serve`` daemon.

Same idiom as :class:`repro.runner.CheckpointJournal` (one header line
binding the file to a schema, then one fsynced record per event,
tolerating a torn trailing line), but for the service's job lifecycle
instead of a sweep grid: ``submit`` / ``resolve`` / ``cancel`` events —
plus the fleet's lease transitions (``lease`` / ``renew`` / ``expire``
/ ``reassign`` / ``fence_reject``) and fleet-cache ``publish`` events
(who stored which content key, with what digest, via which path — so
cache state is explainable post-mortem) — keyed by job id.  A restarted
daemon replays the journal to recover its job table *and* its in-flight
lease state: resolved jobs keep serving their results, jobs that were
submitted but never resolved re-enter the queue, and leased jobs keep
their worker/fence/deadline so a live remote worker can finish a job
across a daemon restart.

Crash tolerance: a daemon killed mid-append leaves a truncated (or, on
some filesystems, garbled) trailing line.  :meth:`ServeJournal.load`
never raises for that — the bad bytes are *quarantined* to a sidecar
file (``<journal>.quarantine``) for post-mortem, a warning is logged,
and every decodable record before and after is salvaged.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, List

logger = logging.getLogger("repro.serve.journal")


class ServeJournal:
    """Append-only event log of the daemon's job table."""

    SCHEMA = 1
    SERVICE = "repro-serve"

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        #: Undecodable lines skipped (and quarantined) by the last load.
        self.quarantined = 0

    @property
    def quarantine_path(self) -> Path:
        return self.path.with_name(self.path.name + ".quarantine")

    def load(self) -> List[Dict[str, Any]]:
        """Ordered journal events; ``[]`` for missing/foreign files.

        Undecodable lines — a torn write from a crash mid-append, or a
        corrupted stretch of the file — are logged, quarantined to
        ``<journal>.quarantine``, and skipped, salvaging every intact
        event before and after them.  Never raises for bad content.
        """
        self.quarantined = 0
        try:
            raw_lines = self.path.read_bytes().splitlines()
        except OSError:
            return []
        if not raw_lines:
            return []
        try:
            header = json.loads(raw_lines[0].decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(1, raw_lines[0])
            return []
        if (not isinstance(header, dict)
                or header.get("schema") != self.SCHEMA
                or header.get("service") != self.SERVICE):
            return []
        events: List[Dict[str, Any]] = []
        for number, raw in enumerate(raw_lines[1:], start=2):
            if not raw.strip():
                continue
            try:
                entry = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                # Torn/corrupt write: keep everything else.
                self._quarantine(number, raw)
                continue
            if isinstance(entry, dict) and "event" in entry and "id" in entry:
                events.append(entry)
        return events

    def _quarantine(self, line_number: int, raw: bytes) -> None:
        """Preserve one undecodable line for post-mortem and move on."""
        self.quarantined += 1
        logger.warning(
            "journal %s line %d is not decodable (%d bytes; crash "
            "mid-append?); quarantining to %s and skipping",
            self.path, line_number, len(raw), self.quarantine_path)
        try:
            with open(self.quarantine_path, "ab") as fh:
                fh.write(f"# {self.path} line {line_number}\n"
                         .encode("utf-8"))
                fh.write(raw + b"\n")
        except OSError:  # pragma: no cover - quarantine is best-effort
            pass

    def append(self, event: str, job_id: str, **data: Any) -> None:
        """Durably journal one job event."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        with open(self.path, "a", encoding="utf-8") as fh:
            if fresh:
                fh.write(json.dumps({"schema": self.SCHEMA,
                                     "service": self.SERVICE}) + "\n")
            fh.write(json.dumps({"event": event, "id": job_id, **data},
                                sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def discard(self) -> None:
        """Delete the journal (tests and explicit resets only)."""
        try:
            self.path.unlink()
        except OSError:
            pass
