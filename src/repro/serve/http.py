"""The ``repro serve`` HTTP surface: stdlib-asyncio JSON-over-HTTP.

A deliberately small hand-rolled HTTP/1.1 server on
``asyncio.start_server`` — no web framework, keeping the daemon inside
the repo's no-new-dependencies rule.  One connection carries one
request; every response is JSON (traces are JSON too) and carries
``Connection: close``.

Routes::

    POST   /jobs             submit a JobSpec            -> 202 status
    GET    /jobs             list jobs (?state=&workload=&client=&limit=)
    GET    /jobs/{id}        job status
    GET    /jobs/{id}/result typed result payload        (done jobs)
    GET    /jobs/{id}/trace  Chrome trace JSON           (telemetry=trace)
    DELETE /jobs/{id}        cancel a queued job
    POST   /work/lease       claim queued jobs under a lease (long-poll)
    POST   /work/{id}/heartbeat  renew a lease           (fence-checked)
    POST   /work/{id}/result     publish a remote result (fence-checked)
    POST   /work/{id}/fail       publish a typed failure (fence-checked)
    GET    /cache/{key}      fetch a fleet cache entry (salt-checked;
                             404 on miss, 412 on simulator-version skew)
    POST   /cache/{key}      publish a serialized result into the fleet
                             cache (salt-gated, digest-verified)
    GET    /metrics          service counters + fleet gauges
    GET    /healthz          liveness (draining + lease degradation)

Cache keys are runner content keys (``workload|params|config`` digests,
see :attr:`repro.runner.Job.key`); the ``|`` separators make
percent-encoding mandatory, so the ``/cache/{key}`` segment is
URL-decoded before lookup.

Error mapping is typed end to end: admission and lookup failures are
:class:`~repro.errors.SimulationError` subclasses whose ``http_status``
chooses the response code (429 rate limit, 503 queue full/draining,
404 unknown job, 409 not cancellable / stale fence), and malformed
specs are 400s.  Backpressure responses (429/503) carry a
``Retry-After`` header that the client's transparent retry honors.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from .. import __version__
from ..errors import SimulationError
from .jobs import JobState
from .service import JobService

#: Largest request body the daemon will read.  A JobSpec is tiny, but
#: result posts and cache publishes carry a base64-armored serialized
#: KernelRunResult (telemetry included), so the bound is generous.
MAX_BODY = 8 << 20

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    412: "Precondition Failed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeApp:
    """Routes HTTP requests onto one :class:`JobService`."""

    def __init__(self, service: JobService) -> None:
        self.service = service

    # -- request plumbing --------------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One connection, one request, one JSON response."""
        extra_headers: Dict[str, str] = {}
        try:
            status, body = await self._dispatch(reader, writer)
        except HttpError as exc:
            status, body = exc.status, {"error": str(exc)}
        except SimulationError as exc:
            status = exc.http_status
            body = {"error": str(exc), "exit_code": exc.exit_code}
            if status in (429, 503):
                # Backpressure: tell clients when a retry is worthwhile.
                extra_headers["Retry-After"] = "1"
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # pragma: no cover - defensive
            status, body = 500, {"error": f"internal error: {exc}"}
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        extras = "".join(f"{name}: {value}\r\n"
                         for name, value in extra_headers.items())
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Server: repro-serve/{__version__}\r\n"
            f"{extras}"
            f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + payload)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _dispatch(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter
                        ) -> Tuple[int, Dict[str, Any]]:
        request = await reader.readline()
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            raise HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise HttpError(413, f"body larger than {MAX_BODY} bytes")
        raw = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {key: values[-1]
                 for key, values in parse_qs(split.query).items()}
        peer = writer.get_extra_info("peername")
        client = headers.get("x-repro-client") or (
            peer[0] if isinstance(peer, tuple) and peer else "-")
        routed = self._route(method, split.path, query, raw, client)
        if asyncio.iscoroutine(routed):  # long-polling handlers
            routed = await routed
        return routed

    def _route(self, method: str, path: str, query: Dict[str, str],
               raw: bytes, client: str):
        segments = [s for s in path.split("/") if s]
        if segments == ["healthz"] and method == "GET":
            return 200, {"ok": True, "status": self.service.health_status(),
                         "draining": self.service.draining,
                         "version": __version__}
        if segments == ["metrics"] and method == "GET":
            return 200, self.service.metrics()
        if segments and segments[0] == "jobs":
            if len(segments) == 1:
                if method == "POST":
                    return self._submit(raw, client)
                if method == "GET":
                    return self._list(query)
                raise HttpError(405, f"{method} not allowed on /jobs")
            job_id = segments[1]
            if len(segments) == 2:
                if method == "GET":
                    return 200, self.service.get(job_id).as_status()
                if method == "DELETE":
                    return 200, self.service.cancel(job_id).as_status()
                raise HttpError(405, f"{method} not allowed on /jobs/{{id}}")
            if len(segments) == 3 and method == "GET":
                if segments[2] == "result":
                    return self._result(job_id)
                if segments[2] == "trace":
                    return self._trace(job_id)
        if segments and segments[0] == "work":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed under /work")
            if segments == ["work", "lease"]:
                return self._lease(raw)
            if len(segments) == 3:
                job_id, action = segments[1], segments[2]
                if action == "heartbeat":
                    return self._heartbeat(job_id, raw)
                if action == "result":
                    return self._work_result(job_id, raw)
                if action == "fail":
                    return self._work_fail(job_id, raw)
        if len(segments) == 2 and segments[0] == "cache":
            # Content keys contain '|' and arbitrary params digests, so
            # the key segment arrives percent-encoded.
            key = unquote(segments[1])
            if method == "GET":
                return self._cache_fetch(key, query)
            if method == "POST":
                return self._cache_publish(key, raw)
            raise HttpError(405, f"{method} not allowed on /cache/{{key}}")
        raise HttpError(404, f"no route for {method} {path}")

    # -- handlers ----------------------------------------------------------

    def _submit(self, raw: bytes, client: str) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(raw.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}")
        try:
            record = self.service.submit(payload, client=client)
        except ValueError as exc:
            raise HttpError(400, str(exc))
        return 202, record.as_status()

    def _list(self, query: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        limit: Optional[int] = None
        if "limit" in query:
            try:
                limit = max(1, int(query["limit"]))
            except ValueError:
                raise HttpError(400, "limit must be an integer")
        records = self.service.list_jobs(
            state=query.get("state"), workload=query.get("workload"),
            client=query.get("client"), limit=limit)
        return 200, {"jobs": [r.as_status() for r in records],
                     "total": len(self.service.jobs)}

    def _result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        record = self.service.get(job_id)
        if record.state == JobState.FAILED:
            return 200, {"id": record.id, "state": record.state,
                         "error": record.error,
                         "exit_code": record.exit_code}
        if record.state != JobState.DONE or record.result is None:
            raise HttpError(409, f"job {job_id} is {record.state}; "
                                 f"no result yet")
        return 200, {"id": record.id, "state": record.state,
                     "cache_hit": record.cache_hit,
                     "queue_wait_seconds": record.queue_wait,
                     "exec_seconds": record.exec_seconds,
                     "result": record.result}

    # -- fleet (worker-facing) handlers ------------------------------------

    @staticmethod
    def _work_body(raw: bytes, context: str) -> Dict[str, Any]:
        try:
            payload = json.loads(raw.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"{context} body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, f"{context} body must be a JSON object")
        return payload

    async def _lease(self, raw: bytes) -> Tuple[int, Dict[str, Any]]:
        body = self._work_body(raw, "lease")
        try:
            leases = await self.service.lease(
                worker=body.get("worker"),
                max_jobs=body.get("max_jobs", 1),
                wait=body.get("wait", 0.0))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, str(exc))
        return 200, {"leases": leases,
                     "draining": self.service.draining}

    def _heartbeat(self, job_id: str,
                   raw: bytes) -> Tuple[int, Dict[str, Any]]:
        body = self._work_body(raw, "heartbeat")
        try:
            return 200, self.service.heartbeat(
                job_id, body.get("worker"), body.get("fence"))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, str(exc))

    def _work_result(self, job_id: str,
                     raw: bytes) -> Tuple[int, Dict[str, Any]]:
        body = self._work_body(raw, "result")
        try:
            record = self.service.complete_remote(
                job_id, body.get("worker"), body.get("fence"),
                body.get("result"),
                exec_seconds=body.get("exec_seconds", 0.0),
                cache=body.get("cache"),
                cached=bool(body.get("cached", False)))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, str(exc))
        return 200, record.as_status()

    # -- fleet-shared cache handlers ---------------------------------------

    def _cache_fetch(self, key: str,
                     query: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        try:
            return 200, self.service.cache_fetch(key,
                                                 salt=query.get("salt"))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, str(exc))

    def _cache_publish(self, key: str,
                       raw: bytes) -> Tuple[int, Dict[str, Any]]:
        body = self._work_body(raw, "cache publish")
        try:
            return 200, self.service.cache_publish(
                key, body.get("blob"), worker=body.get("worker", ""),
                job_id=body.get("job", ""))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, str(exc))

    def _work_fail(self, job_id: str,
                   raw: bytes) -> Tuple[int, Dict[str, Any]]:
        body = self._work_body(raw, "fail")
        try:
            record = self.service.fail_remote(
                job_id, body.get("worker"), body.get("fence"),
                error=body.get("error", ""),
                exit_code=body.get("exit_code"),
                transient=bool(body.get("transient", False)))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, str(exc))
        return 200, record.as_status()

    def _trace(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        record = self.service.get(job_id)
        if record.trace_path is None:
            raise HttpError(
                404, f"job {job_id} has no trace (telemetry="
                     f"{record.spec.telemetry!r}, state {record.state})")
        try:
            return 200, json.loads(Path(record.trace_path)
                                   .read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise HttpError(500, f"trace unreadable: {exc}")


async def serve_forever(service: JobService, host: str, port: int,
                        ready=None, install_signals: bool = True,
                        stop: Optional[asyncio.Event] = None) -> int:
    """Run the daemon until SIGTERM/SIGINT, then drain gracefully.

    Drain semantics: new submissions get 503, the running batch
    finishes, queued jobs stay journaled for the next daemon.  Returns
    the process exit code (0 for a clean drain).  Tests inject their
    own *stop* event instead of signalling the process.
    """
    app = ServeApp(service)
    await service.start()
    server = await asyncio.start_server(app.handle, host, port)
    if stop is None:
        stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    bound = server.sockets[0].getsockname() if server.sockets else (host, port)
    if ready is not None:
        ready(bound)
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.drain()
    return 0
