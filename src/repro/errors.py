"""Typed failure taxonomy for simulation and experiment execution.

Long batch campaigns (the paper's ~50-workload GPGenSim sweeps, our
``repro sweep`` grids) fail in qualitatively different ways: a kernel
whose scheduling deadlocks, a host reference check that disagrees with
the simulated output, a worker process that dies, a cache entry a killed
process left corrupted, a job that simply runs past its wall-clock
budget.  Each gets its own :class:`SimulationError` subclass so callers
(the runner's retry logic, the CLI's exit codes, per-job status in sweep
artifacts) can react by *type* instead of string-matching messages.

Exit-code contract (also documented in the README):

====  =========================  =============================
code  exception                  meaning
====  =========================  =============================
0     —                          success
1     :class:`VerificationError` simulated output != host reference
2     —                          usage error (argparse, bad grid)
3     :class:`DeadlockError`     watchdog killed a hung/stalled kernel
4     :class:`JobTimeoutError`   job exceeded its wall-clock budget
5     :class:`WorkerCrashError`  worker process died / raised
6     :class:`CacheCorruptionError`  unreadable result-cache entry
7     :class:`ServiceError`      serve daemon rejected / lost a request
8     :class:`SimulationError`   any other typed simulation failure
9     :class:`BuildError`        kernel construction / DSL lowering failed
130   ``KeyboardInterrupt``      interrupted (resumable via --resume)
====  =========================  =============================

The service errors double as HTTP statuses: every
:class:`SimulationError` carries an ``http_status`` class attribute the
``repro serve`` daemon uses verbatim when a request maps onto that
failure (429 for :class:`RateLimitError`, 503 for
:class:`QueueFullError`, 409 for :class:`FenceRejectedError`, 404 for
:class:`CacheMissError`, 412 for :class:`CodeSaltMismatchError`,
500 otherwise).
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "BuildError",
    "DeadlockError",
    "VerificationError",
    "WorkerCrashError",
    "CacheCorruptionError",
    "JobTimeoutError",
    "ServiceError",
    "QueueFullError",
    "RateLimitError",
    "FenceRejectedError",
    "CacheMissError",
    "CodeSaltMismatchError",
    "exit_code_for",
    "describe",
]


class SimulationError(Exception):
    """Base class for every typed simulation/execution failure.

    Class attributes:

    * ``exit_code`` — the CLI process exit status for this failure kind.
    * ``transient`` — whether a retry could plausibly succeed (worker
      crashes may be environmental; deadlocks and verification failures
      are deterministic and never retried).
    * ``http_status`` — the response status the ``repro serve`` daemon
      answers with when this failure terminates a request.
    """

    exit_code = 8
    transient = False
    http_status = 500


class DeadlockError(SimulationError, RuntimeError):
    """The simulator made no progress while work was still pending.

    Raised by the watchdog in :class:`repro.gpu.simulator.GpuSimulator`:
    either the event queue went empty with workgroups outstanding, the
    cycle budget (``GpuConfig.max_cycles``) was exhausted, or no
    instruction issued for ``GpuConfig.watchdog_cycles`` consecutive
    cycles (a scheduling deadlock).
    """

    exit_code = 3


class VerificationError(SimulationError, AssertionError):
    """Simulated output does not match the workload's host reference.

    Subclasses :class:`AssertionError` so existing callers (and tests)
    that catch the reference check's assertion keep working.
    """

    exit_code = 1


class BuildError(SimulationError, ValueError):
    """Kernel construction failed: builder misuse or DSL lowering error.

    Raised by :class:`repro.isa.builder.KernelBuilder` (and the DSL
    lowering built on it) in place of bare ``ValueError``/asserts, so a
    malformed kernel is distinguishable from a malformed *run*.  Carries
    the offending kernel name and, when the failure is attributable to a
    specific emitted instruction, its index in the program.

    Subclasses :class:`ValueError` so existing callers that caught the
    builder's bare ``ValueError`` keep working.
    """

    exit_code = 9

    def __init__(self, message: str, *, kernel: "str | None" = None,
                 instruction_index: "int | None" = None) -> None:
        prefix = ""
        if kernel is not None:
            prefix = f"kernel {kernel!r}"
            if instruction_index is not None:
                prefix += f", instruction {instruction_index}"
            prefix += ": "
        super().__init__(prefix + message)
        self.kernel = kernel
        self.instruction_index = instruction_index


class JobTimeoutError(SimulationError):
    """A job exceeded its wall-clock budget.

    Raised in-process by the simulator's wall-clock check when a budget
    is set, or synthesized by the runner when a worker overruns its
    deadline and has to be killed from the parent.
    """

    exit_code = 4


class WorkerCrashError(SimulationError):
    """A worker process died or raised an unclassified exception.

    The one *transient* failure kind: the runner retries these with
    exponential backoff before giving up, and degrades from the process
    pool to in-process serial execution when the pool itself breaks.
    """

    exit_code = 5
    transient = True


class CacheCorruptionError(SimulationError):
    """A result-cache entry could not be read back.

    By default corrupted entries are quarantined and re-simulated
    silently; strict cache mode (``ResultCache(strict=True)`` or
    ``$REPRO_STRICT_CACHE``) raises this instead.
    """

    exit_code = 6


class ServiceError(SimulationError):
    """The ``repro serve`` daemon rejected or could not honor a request.

    Base of the service-side taxonomy: raised client-side by
    :class:`repro.serve.client.ServeClient` when the daemon is
    unreachable or answers with an error the client cannot map to a
    more specific type, and subclassed for the daemon's own typed
    rejections below.
    """

    exit_code = 7


class QueueFullError(ServiceError):
    """The daemon's bounded job queue is full (or it is draining).

    Mapped to HTTP 503 with a ``Retry-After`` hint: backpressure, not
    failure — the submission can be retried once the queue drains.
    """

    http_status = 503
    transient = True


class RateLimitError(ServiceError):
    """A client exceeded its per-client submission rate limit.

    Mapped to HTTP 429; like :class:`QueueFullError` this is
    backpressure and safe to retry after the advertised delay.
    """

    http_status = 429
    transient = True


class CacheMissError(ServiceError):
    """The fleet result cache has no entry for the requested key.

    Raised by the daemon's ``GET /cache/{key}`` endpoint (HTTP 404) and
    re-raised typed by :meth:`repro.serve.client.ServeClient.cache_fetch`
    so a worker's pre-simulation probe can distinguish "not cached yet —
    go simulate" from a transport failure.  A miss is the *normal* cold
    path, never retried.
    """

    http_status = 404


class CodeSaltMismatchError(ServiceError):
    """A cache fetch or publish crossed a simulator-version boundary.

    Every fleet cache exchange carries the caller's *code salt* — the
    digest of the simulator source that defines what a result means
    (:func:`repro.runner.code_salt`).  A worker running different
    simulator code than the daemon must neither be served nor allowed to
    publish entries: mixed-version results would be silently
    non-bit-identical.  Mapped to HTTP 412 (Precondition Failed) —
    deterministic version skew, never retried; the fix is redeploying
    the fleet onto one build.
    """

    http_status = 412


class FenceRejectedError(ServiceError):
    """A worker acted on a lease it no longer holds (zombie fencing).

    Raised by the daemon's lease table when a heartbeat, result, or
    failure post carries a stale fence token — the lease expired and the
    job was reassigned, or it belongs to a different worker now.  Mapped
    to HTTP 409; the correct worker reaction is to *drop* the job (its
    result is owned by whoever holds the current fence), so unlike the
    backpressure errors this is **not** transient and never retried.
    """

    http_status = 409


def exit_code_for(exc: BaseException) -> int:
    """Process exit status for *exc* (KeyboardInterrupt maps to 130)."""
    if isinstance(exc, SimulationError):
        return exc.exit_code
    if isinstance(exc, KeyboardInterrupt):
        return 130
    return 1


def describe(exc: BaseException) -> str:
    """One-line ``ErrorType: message`` rendering for logs and stderr."""
    message = " ".join(str(exc).split()) or "(no detail)"
    return f"{type(exc).__name__}: {message}"
