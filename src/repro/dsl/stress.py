"""Seeded divergence-stress kernel generator.

Mass-produces DSL workloads with controlled divergence characteristics,
for fuzzing the compaction policies (every generated kernel must be
bit-identical across raw/ivb/bcc/scc and both engines) and for scaling
experiments along the paper's divergence axes:

* ``depth`` — branch nesting depth (Table 2's L1..L4 axis);
* ``entropy`` — percentage of branch conditions drawn from a hashed,
  lane-uncorrelated pattern rather than a structured lane split;
* ``trip`` — loop trip-count variance: each work-item's loop runs
  ``base + (gid & (2**trip - 1))`` iterations;
* ``mem`` — number of gather accesses using strided-permuted (rather
  than unit-stride) indices.

Workload names encode every parameter —
``stress_s7_d3_e80_t2_m1`` — so the run cache keys them correctly and
any repro command accepts them like built-in registry names.

Generation is deterministic: the kernel body is derived from
``numpy.random.default_rng([seed, depth, entropy, trip, mem])``, so the
same name always produces the same program and data.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..errors import BuildError

if TYPE_CHECKING:  # lazy for the same reason as repro.dsl.frontend
    from ..kernels.workload import Workload
from . import expr as dsl
from .frontend import In, Out, kernel
from .trace import KernelTrace

#: Registry-name prefix of generated stress workloads.
STRESS_PREFIX = "stress_"

_NAME_RE = re.compile(r"^stress_s(\d+)_d(\d+)_e(\d+)_t(\d+)_m(\d+)$")

#: Problem size (power of two so gathers can be masked into range).
_DEFAULT_N = 128


def stress_name(seed: int = 0, depth: int = 2, entropy: int = 50,
                trip: int = 2, mem: int = 1) -> str:
    """The canonical registry name for one stress parameter point."""
    return f"stress_s{seed}_d{depth}_e{entropy}_t{trip}_m{mem}"


def parse_stress_name(name: str) -> Optional[Dict[str, int]]:
    """Decode a ``stress_*`` name back to its parameters (None if not one)."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    seed, depth, entropy, trip, mem = (int(g) for g in match.groups())
    return {"seed": seed, "depth": depth, "entropy": entropy,
            "trip": trip, "mem": mem}


def dynamic_factory(name: str):
    """Workload factory for a ``stress_*`` registry name, or None."""
    params = parse_stress_name(name)
    if params is None:
        return None

    def factory(**overrides) -> Workload:
        merged = dict(params)
        merged.update({k: int(v) for k, v in overrides.items()})
        return stress_workload(**merged)

    factory.__name__ = name
    return factory


def stress_batch(count: int, seed: int = 0) -> List[str]:
    """Names of *count* distinct stress scenarios sweeping all four axes."""
    names = []
    for i in range(count):
        names.append(stress_name(
            seed=seed + i,
            depth=1 + i % 3,
            entropy=(i * 37) % 101,
            trip=i % 3,
            mem=i % 2,
        ))
    return names


def stress_workload(seed: int = 0, depth: int = 2, entropy: int = 50,
                    trip: int = 2, mem: int = 1, n: int = _DEFAULT_N,
                    simd_width: int = 16) -> Workload:
    """Build one divergence-stress workload (see module docstring)."""
    if n & (n - 1) or n <= 0:
        raise BuildError(f"stress n must be a power of two, got {n}")
    if not 0 <= entropy <= 100:
        raise BuildError(f"entropy is a percentage, got {entropy}")
    if not 0 <= depth <= 6:
        raise BuildError(f"depth out of range 0..6: {depth}")
    if not 0 <= trip <= 4:
        raise BuildError(f"trip out of range 0..4: {trip}")
    if not 0 <= mem <= 4:
        raise BuildError(f"mem out of range 0..4: {mem}")

    name = stress_name(seed, depth, entropy, trip, mem)

    def body(k: KernelTrace, x, w, y, c) -> None:
        # A fresh generator per trace keeps repeated builds identical.
        rng = np.random.default_rng([seed, depth, entropy, trip, mem])
        gid = k.gid
        acc = k.var(x[gid])
        cnt = k.var(0, "i32")

        def gather_index():
            """Unit-stride or permuted index, depending on the mem axis."""
            if rng.integers(0, mem + 1) == 0:
                return gid
            stride = int(rng.integers(0, n // 2)) * 2 + 1  # odd => permutation
            offset = int(rng.integers(0, n))
            return (gid * stride + offset) & (n - 1)

        def condition(noisy: bool) -> dsl.Cond:
            if noisy:
                mult = int(rng.integers(0, 1 << 15)) * 2 + 1
                shift = int(rng.integers(1, 5))
                return ((gid * mult) ^ (gid >> shift)) & 1 == 1
            kind = rng.integers(0, 3)
            if kind == 0:
                return k.lane < int(rng.integers(1, simd_width))
            if kind == 1:
                bit = 1 << int(rng.integers(0, 4))
                return (k.lane & bit) == 0
            return acc > float(np.float32(rng.uniform(0.2, 0.8)))

        def work() -> None:
            scale = float(np.float32(rng.uniform(0.95, 1.05)))
            acc.set(acc * scale + w[gather_index()])
            cnt.set(cnt + 1)

        def branches(level: int) -> None:
            noisy = bool(rng.uniform() * 100.0 < entropy)
            with k.if_(condition(noisy)):
                work()
                if level + 1 < depth:
                    branches(level + 1)
                if rng.uniform() < 0.75:
                    k.else_()
                    work()
                    if level + 1 < depth and rng.uniform() < 0.5:
                        branches(level + 1)

        work()
        if depth > 0:
            branches(0)
        if trip > 0:
            base = int(rng.integers(2, 5))
            bound = base + (gid & ((1 << trip) - 1))
            t = k.var(0, "i32")
            with k.while_(t < bound):
                t.set(t + 1)  # unconditional progress: loop always drains
                work()
                if depth > 0:
                    branches(0)
                if rng.uniform() < 0.5:
                    k.break_if(condition(True) & (t > base))
            if depth > 0:
                branches(0)
        y[gid] = acc
        c[gid] = cnt

    factory = kernel(
        n=n, simd_width=simd_width, seed=seed + 7919, name=name,
        description=(f"generated divergence stress (depth={depth}, "
                     f"entropy={entropy}%, trip={trip}, mem={mem})"),
    )(_with_signature(body))
    return factory()


def _with_signature(body):
    """Wrap the raw body with the In/Out parameter defaults @kernel expects."""

    def fn(k, x=In("f32"), w=In("f32"), y=Out("f32"), c=Out("i32")):
        body(k, x, w, y, c)

    fn.__name__ = "stress"
    fn.__doc__ = body.__doc__
    return fn
