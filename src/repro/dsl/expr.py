"""Typed expression tree for the kernel DSL.

Every value in a traced kernel is an :class:`Expr` node with a fixed
element type; Python operators build the tree.  The same tree is walked
twice — by :mod:`repro.dsl.lower` to emit ISA instructions and by
:mod:`repro.dsl.reference` to compute the numpy host reference — which
is what makes the synthesized checker trustworthy: both sides execute
*one* definition of the kernel.

Type discipline is strict: mixing element types in one operation raises
:class:`~repro.errors.BuildError` at trace time (use :func:`cast`), and
the bitwise/shift operators reject float operands just like the builder.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..errors import BuildError
from ..isa.types import CmpOp, DType

#: Accepted spellings of an element type.
_DTYPES = {d.label: d for d in DType}

#: Binary operators with a direct ALU opcode (reference semantics in
#: repro.dsl.reference mirror repro.eu.interp for each).
BINOPS = ("add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr",
          "min", "max", "pow")
#: Unary operators (NOT is integer-only; the rest are float math).
UNOPS = ("not", "abs", "floor", "sqrt", "rsqrt", "sin", "cos", "exp", "log")
#: Operators whose operands must be integer-typed.
INTEGER_ONLY = frozenset(("and", "or", "xor", "shl", "shr", "not"))

NumberLike = Union["Expr", int, float]


def as_dtype(dtype: Union[DType, str]) -> DType:
    if isinstance(dtype, DType):
        return dtype
    if dtype in _DTYPES:
        return _DTYPES[dtype]
    raise BuildError(f"unknown element type {dtype!r} "
                     f"(expected one of {sorted(_DTYPES)})")


def coerce(value: NumberLike, dtype: DType) -> "Expr":
    """Lift a Python number to a :class:`Const` of *dtype*; pass Exprs through."""
    if isinstance(value, Expr):
        if value.dtype is not dtype:
            raise BuildError(
                f"type mismatch: expected {dtype.label}, got "
                f"{value.dtype.label} (use dsl.cast)")
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BuildError(f"cannot use {value!r} as a kernel value")
    if not dtype.is_float and isinstance(value, float):
        raise BuildError(
            f"float literal {value!r} used where {dtype.label} is expected")
    return Const(float(value) if dtype.is_float else int(value), dtype)


class Expr:
    """Base class for all DSL values (immutable, side-effect free)."""

    __slots__ = ("dtype",)

    def __init__(self, dtype: DType) -> None:
        self.dtype = dtype

    # -- structure ----------------------------------------------------------

    def key(self) -> tuple:
        """Structural identity, used for address CSE during lowering."""
        raise NotImplementedError

    def uses_vars(self) -> bool:
        """True when the value can change between loop iterations."""
        raise NotImplementedError

    # -- operator overloads --------------------------------------------------

    def _bin(self, op: str, other: NumberLike, reflected: bool = False) -> "BinOp":
        other = coerce(other, self.dtype)
        a, b = (other, self) if reflected else (self, other)
        return BinOp(op, a, b)

    def __add__(self, other): return self._bin("add", other)
    def __radd__(self, other): return self._bin("add", other, True)
    def __sub__(self, other): return self._bin("sub", other)
    def __rsub__(self, other): return self._bin("sub", other, True)
    def __mul__(self, other): return self._bin("mul", other)
    def __rmul__(self, other): return self._bin("mul", other, True)
    def __truediv__(self, other): return self._bin("div", other)
    def __rtruediv__(self, other): return self._bin("div", other, True)
    def __and__(self, other): return self._bin("and", other)
    def __rand__(self, other): return self._bin("and", other, True)
    def __or__(self, other): return self._bin("or", other)
    def __ror__(self, other): return self._bin("or", other, True)
    def __xor__(self, other): return self._bin("xor", other)
    def __rxor__(self, other): return self._bin("xor", other, True)
    def __lshift__(self, other): return self._bin("shl", other)
    def __rshift__(self, other): return self._bin("shr", other)

    def __neg__(self):
        return coerce(0, self.dtype)._bin("sub", self)

    def __invert__(self):
        return UnOp("not", self)

    def _cmp(self, op: CmpOp, other: NumberLike) -> "Compare":
        return Compare(op, self, coerce(other, self.dtype))

    def __lt__(self, other): return self._cmp(CmpOp.LT, other)
    def __le__(self, other): return self._cmp(CmpOp.LE, other)
    def __gt__(self, other): return self._cmp(CmpOp.GT, other)
    def __ge__(self, other): return self._cmp(CmpOp.GE, other)
    def __eq__(self, other): return self._cmp(CmpOp.EQ, other)  # type: ignore[override]
    def __ne__(self, other): return self._cmp(CmpOp.NE, other)  # type: ignore[override]

    __hash__ = object.__hash__  # __eq__ builds a node; identity hashing stays

    def __bool__(self) -> bool:
        raise BuildError(
            "a DSL expression has no Python truth value; use k.if_()/"
            "k.while_() for control flow and &/| to combine conditions")


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Union[int, float], dtype: Union[DType, str]) -> None:
        super().__init__(as_dtype(dtype))
        self.value = float(value) if self.dtype.is_float else int(value)

    def key(self): return ("const", self.dtype.label, self.value)
    def uses_vars(self): return False


class GlobalId(Expr):
    """The per-lane global work-item id (I32)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(DType.I32)

    def key(self): return ("gid",)
    def uses_vars(self): return False


class Lane(Expr):
    """The lane index within the SIMD thread (I32, 0..width-1)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(DType.I32)

    def key(self): return ("lane",)
    def uses_vars(self): return False


class ScalarRef(Expr):
    """A scalar kernel argument, broadcast across lanes."""

    __slots__ = ("name",)

    def __init__(self, name: str, dtype: Union[DType, str]) -> None:
        super().__init__(as_dtype(dtype))
        self.name = name

    def key(self): return ("scalar", self.name)
    def uses_vars(self): return False


class BinOp(Expr):
    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Expr, b: Expr) -> None:
        if op not in BINOPS:
            raise BuildError(f"unknown binary operator {op!r}")
        if a.dtype is not b.dtype:
            raise BuildError(
                f"type mismatch in {op}: {a.dtype.label} vs {b.dtype.label}")
        if op in INTEGER_ONLY and a.dtype.is_float:
            raise BuildError(f"{op} requires integer operands, got "
                             f"{a.dtype.label}")
        super().__init__(a.dtype)
        self.op = op
        self.a = a
        self.b = b

    def key(self): return ("bin", self.op, self.a.key(), self.b.key())
    def uses_vars(self): return self.a.uses_vars() or self.b.uses_vars()


class UnOp(Expr):
    __slots__ = ("op", "a")

    def __init__(self, op: str, a: Expr) -> None:
        if op not in UNOPS:
            raise BuildError(f"unknown unary operator {op!r}")
        if op == "not" and a.dtype.is_float:
            raise BuildError("not requires an integer operand")
        if op in ("sqrt", "rsqrt", "sin", "cos", "exp", "log") and \
                not a.dtype.is_float:
            raise BuildError(f"{op} requires a float operand, got "
                             f"{a.dtype.label}")
        super().__init__(a.dtype)
        self.op = op
        self.a = a

    def key(self): return ("un", self.op, self.a.key())
    def uses_vars(self): return self.a.uses_vars()


class Cast(Expr):
    __slots__ = ("a",)

    def __init__(self, a: Expr, dtype: DType) -> None:
        super().__init__(dtype)
        self.a = a

    def key(self): return ("cast", self.dtype.label, self.a.key())
    def uses_vars(self): return self.a.uses_vars()


class Select(Expr):
    """Per-lane ``cond ? a : b`` (the ISA's SEL)."""

    __slots__ = ("cond", "a", "b")

    def __init__(self, cond: "Cond", a: Expr, b: Expr) -> None:
        if a.dtype is not b.dtype:
            raise BuildError(
                f"select arms disagree: {a.dtype.label} vs {b.dtype.label}")
        super().__init__(a.dtype)
        self.cond = cond
        self.a = a
        self.b = b

    def key(self): return ("select", self.cond.key(), self.a.key(), self.b.key())

    def uses_vars(self):
        return self.cond.uses_vars() or self.a.uses_vars() or self.b.uses_vars()


class Load(Expr):
    """An element-indexed gather from a buffer argument."""

    __slots__ = ("buffer", "index")

    def __init__(self, buffer, index: Expr) -> None:
        super().__init__(buffer.dtype)
        if index.dtype is not DType.I32:
            raise BuildError(
                f"buffer index must be i32, got {index.dtype.label}")
        self.buffer = buffer
        self.index = index

    def key(self): return ("load", self.buffer.name, self.index.key())
    def uses_vars(self): return self.index.uses_vars()


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


class Cond:
    """A per-lane boolean: comparison or a boolean combination thereof."""

    __slots__ = ()

    def key(self) -> tuple:
        raise NotImplementedError

    def uses_vars(self) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Cond") -> "BoolOp":
        return BoolOp("and", (self, _as_cond(other)))

    def __or__(self, other: "Cond") -> "BoolOp":
        return BoolOp("or", (self, _as_cond(other)))

    def __invert__(self) -> "Cond":
        if isinstance(self, Compare):
            return Compare(_INVERSE[self.op], self.a, self.b)
        return Not(self)

    def __bool__(self) -> bool:
        raise BuildError(
            "a DSL condition has no Python truth value; pass it to "
            "k.if_()/k.while_()/k.break_if() or dsl.select()")


def _as_cond(value) -> Cond:
    if not isinstance(value, Cond):
        raise BuildError(f"expected a DSL condition, got {value!r}")
    return value


#: Comparison negations, used so ``~(a < b)`` stays a single CMP.  Only
#: valid for non-NaN data (the DSL's generated kernels never compare
#: NaNs); ordered-vs-unordered subtleties are out of the model's scope.
_INVERSE = {
    CmpOp.LT: CmpOp.GE, CmpOp.GE: CmpOp.LT,
    CmpOp.LE: CmpOp.GT, CmpOp.GT: CmpOp.LE,
    CmpOp.EQ: CmpOp.NE, CmpOp.NE: CmpOp.EQ,
}


class Compare(Cond):
    __slots__ = ("op", "a", "b")

    def __init__(self, op: CmpOp, a: Expr, b: Expr) -> None:
        if a.dtype is not b.dtype:
            raise BuildError(
                f"compare mixes {a.dtype.label} and {b.dtype.label}")
        self.op = op
        self.a = a
        self.b = b

    def key(self): return ("cmp", self.op.value, self.a.key(), self.b.key())
    def uses_vars(self): return self.a.uses_vars() or self.b.uses_vars()


class BoolOp(Cond):
    __slots__ = ("op", "parts")

    def __init__(self, op: str, parts: Tuple[Cond, ...]) -> None:
        self.op = op
        self.parts = tuple(parts)

    def key(self):
        return ("bool", self.op) + tuple(p.key() for p in self.parts)

    def uses_vars(self): return any(p.uses_vars() for p in self.parts)


class Not(Cond):
    __slots__ = ("inner",)

    def __init__(self, inner: Cond) -> None:
        self.inner = inner

    def key(self): return ("not", self.inner.key())
    def uses_vars(self): return self.inner.uses_vars()


# ---------------------------------------------------------------------------
# Function-style helpers
# ---------------------------------------------------------------------------


def cast(value: Expr, dtype: Union[DType, str]) -> Expr:
    """Convert *value* to another element type (the ISA's CVT)."""
    dtype = as_dtype(dtype)
    if not isinstance(value, Expr):
        return coerce(value, dtype)
    if value.dtype is dtype:
        return value
    if isinstance(value, Const):  # fold: CVT wants a register source
        return Const(float(value.value) if dtype.is_float
                     else int(value.value), dtype)
    return Cast(value, dtype)


def select(cond: Cond, a: NumberLike, b: NumberLike) -> Select:
    """Per-lane ``cond ? a : b``."""
    if isinstance(a, Expr):
        b = coerce(b, a.dtype)
    elif isinstance(b, Expr):
        a = coerce(a, b.dtype)
    else:
        raise BuildError("select needs at least one Expr arm")
    return Select(_as_cond(cond), a, b)


def minimum(a: NumberLike, b: NumberLike) -> BinOp:
    a, b = _pair(a, b)
    return BinOp("min", a, b)


def maximum(a: NumberLike, b: NumberLike) -> BinOp:
    a, b = _pair(a, b)
    return BinOp("max", a, b)


def pow_(a: NumberLike, b: NumberLike) -> BinOp:
    a, b = _pair(a, b)
    return BinOp("pow", a, b)


def _pair(a: NumberLike, b: NumberLike) -> Tuple[Expr, Expr]:
    if isinstance(a, Expr):
        return a, coerce(b, a.dtype)
    if isinstance(b, Expr):
        return coerce(a, b.dtype), b
    raise BuildError("at least one operand must be a DSL expression")


def _unary(op: str):
    def fn(a: Expr) -> UnOp:
        if not isinstance(a, Expr):
            raise BuildError(f"{op} needs a DSL expression")
        return UnOp(op, a)
    fn.__name__ = op
    fn.__doc__ = f"Elementwise {op} (the ISA's {op.upper()} opcode)."
    return fn


abs_ = _unary("abs")
floor = _unary("floor")
sqrt = _unary("sqrt")
rsqrt = _unary("rsqrt")
sin = _unary("sin")
cos = _unary("cos")
exp = _unary("exp")
log = _unary("log")
