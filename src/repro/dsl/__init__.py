"""Python kernel frontend: write EU kernels without hand-assembly.

A DSL kernel is an ordinary Python function over typed handles.  Calling
it *traces* an expression/statement tree; the tree is then consumed
twice — lowered to a :class:`repro.isa.program.Program` through
:class:`~repro.isa.builder.KernelBuilder`, and executed vectorized with
numpy to synthesize the host reference checker — so one decorator turns
the function into a full registry :class:`~repro.kernels.workload.Workload`
(program + buffers + launch steps + check)::

    from repro import dsl

    @dsl.kernel(n=512, name="my_axpy")
    def my_axpy(k, x=dsl.In("f32"), y=dsl.InOut("f32"),
                a=dsl.Scalar("f32", default=1.5)):
        i = k.gid
        y[i] = a * x[i] + y[i]

    workload = my_axpy()          # a Workload, like any registry factory

Control flow is structured (`with k.if_(cond): ... k.else_() ...`,
do-while `with k.while_(cond):`, `k.break_if(cond)`) and mirrors the
ISA's IF/ELSE/ENDIF and DO/WHILE/BREAK exactly.  Launch parameters are
auto-derived: the global size is the problem size padded up to a SIMD
width multiple (hindemith-style), with a bounds guard inserted whenever
padding occurred.

:mod:`repro.dsl.stress` mass-produces divergence-stress workloads from
this frontend, parameterized by branch nesting depth, mask entropy,
loop trip-count variance, and memory-access divergence.
"""

from .expr import (
    Cond,
    Const,
    Expr,
    abs_,
    cast,
    cos,
    exp,
    floor,
    log,
    maximum,
    minimum,
    pow_,
    rsqrt,
    select,
    sin,
    sqrt,
)
from .frontend import DslKernel, In, InOut, Out, Scalar, kernel
from .stress import (
    STRESS_PREFIX,
    parse_stress_name,
    stress_batch,
    stress_name,
    stress_workload,
)

__all__ = [
    "Cond",
    "Const",
    "DslKernel",
    "Expr",
    "In",
    "InOut",
    "Out",
    "STRESS_PREFIX",
    "Scalar",
    "abs_",
    "cast",
    "cos",
    "exp",
    "floor",
    "kernel",
    "log",
    "maximum",
    "minimum",
    "parse_stress_name",
    "pow_",
    "rsqrt",
    "select",
    "sin",
    "sqrt",
    "stress_batch",
    "stress_name",
    "stress_workload",
]
