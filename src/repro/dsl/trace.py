"""Kernel tracing: record statements while the user's function runs.

The :class:`KernelTrace` object (conventionally ``k``) is the first
argument of every DSL kernel function.  Buffer/scalar handles index and
assign through it; structured control flow uses context managers that
mirror the ISA's structured IF/ELSE/ENDIF and DO/WHILE/BREAK blocks, so
the recorded statement tree maps 1:1 onto the builder's control flow.

The trace is the single source of truth: :mod:`repro.dsl.lower` turns
it into ISA instructions and :mod:`repro.dsl.reference` executes it with
numpy for the host reference check.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Union

from ..errors import BuildError
from ..isa.types import DType
from .expr import (
    Cond,
    Expr,
    GlobalId,
    Lane,
    Load,
    NumberLike,
    ScalarRef,
    _as_cond,
    as_dtype,
    coerce,
)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    """``var = expr`` (masked per-lane under divergent control flow)."""

    var: "VarHandle"
    value: Expr


@dataclass
class BufStore:
    """``buffer[index] = value`` (element-indexed scatter)."""

    buffer: "BufferHandle"
    index: Expr
    value: Expr


@dataclass
class IfStmt:
    cond: Cond
    then: List = field(default_factory=list)
    orelse: List = field(default_factory=list)


@dataclass
class DoWhile:
    """Do-while loop: the body runs once, then repeats while cond holds."""

    body: List = field(default_factory=list)
    cond: Optional[Cond] = None


@dataclass
class BreakIf:
    """Lanes satisfying cond exit the innermost loop."""

    cond: Cond


Stmt = Union[Assign, BufStore, IfStmt, DoWhile, BreakIf]


# ---------------------------------------------------------------------------
# Handles
# ---------------------------------------------------------------------------


class VarHandle(Expr):
    """A mutable per-lane variable; read as an expression, write via .set()."""

    __slots__ = ("trace", "name")

    def __init__(self, trace: "KernelTrace", name: str, dtype: DType) -> None:
        super().__init__(dtype)
        self.trace = trace
        self.name = name

    def set(self, value: NumberLike) -> None:
        """Assign *value* to this variable (for the currently active lanes)."""
        self.trace._append(Assign(self, coerce(value, self.dtype)))

    def key(self):
        # Identity, not structure: a var's value changes between
        # assignments, so two reads of the same var are only equal when
        # nothing could have assigned in between — which uses_vars()
        # conservatively rules out for the lowering's CSE.
        return ("var", id(self))

    def uses_vars(self):
        return True

    def __repr__(self) -> str:
        return f"<var {self.name}:{self.dtype.label}>"


class BufferHandle:
    """A global buffer argument: ``h[index]`` loads, ``h[index] = v`` stores."""

    __slots__ = ("trace", "name", "dtype", "role")

    def __init__(self, trace: "KernelTrace", name: str, dtype: DType,
                 role: str) -> None:
        self.trace = trace
        self.name = name
        self.dtype = dtype
        self.role = role  # "in" | "out" | "inout"

    def __getitem__(self, index: NumberLike) -> Load:
        self.trace.reads.add(self.name)
        return Load(self, coerce(index, DType.I32))

    def __setitem__(self, index: NumberLike, value: NumberLike) -> None:
        if self.role == "in":
            raise BuildError(
                f"buffer {self.name!r} is declared In; storing to it needs "
                f"Out or InOut")
        self.trace.writes.add(self.name)
        self.trace._append(BufStore(self, coerce(index, DType.I32),
                                    coerce(value, self.dtype)))

    def __repr__(self) -> str:
        return f"<buffer {self.name}:{self.dtype.label} ({self.role})>"


class ScalarHandle(ScalarRef):
    """A scalar kernel argument handle (readable expression)."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# The trace object
# ---------------------------------------------------------------------------


class KernelTrace:
    """Records the statement tree of one kernel function invocation."""

    def __init__(self, simd_width: int) -> None:
        self.simd_width = simd_width
        self.statements: List[Stmt] = []
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self._sinks: List[List[Stmt]] = [self.statements]
        self._open: List[Stmt] = []  # enclosing IfStmt/DoWhile nodes
        self._var_count = 0

    # -- dispatch payload ----------------------------------------------------

    @property
    def gid(self) -> GlobalId:
        """Per-lane global work-item id (i32)."""
        return GlobalId()

    @property
    def lane(self) -> Lane:
        """Lane index within the SIMD thread (i32, 0..simd_width-1)."""
        return Lane()

    # -- variables -----------------------------------------------------------

    def var(self, init: NumberLike, dtype: Optional[Union[DType, str]] = None,
            name: Optional[str] = None) -> VarHandle:
        """Declare a mutable per-lane variable initialized to *init*."""
        if dtype is None:
            if not isinstance(init, Expr):
                raise BuildError(
                    "k.var() needs an explicit dtype for literal initializers"
                    " (e.g. k.var(0, 'i32'))")
            resolved = init.dtype
        else:
            resolved = as_dtype(dtype)
        self._var_count += 1
        handle = VarHandle(self, name or f"v{self._var_count}", resolved)
        handle.set(init)
        return handle

    # -- statements ----------------------------------------------------------

    def _append(self, stmt: Stmt) -> None:
        self._sinks[-1].append(stmt)

    @contextlib.contextmanager
    def if_(self, cond: Cond) -> Iterator[None]:
        """Structured IF block; call :meth:`else_` inside for an else arm."""
        node = IfStmt(_as_cond(cond))
        self._append(node)
        self._open.append(node)
        self._sinks.append(node.then)
        try:
            yield
        finally:
            self._sinks.pop()
            self._open.pop()

    def else_(self) -> None:
        """Switch to the else arm inside the innermost ``with k.if_``."""
        if not self._open or not isinstance(self._open[-1], IfStmt):
            raise BuildError("k.else_() outside a k.if_() block")
        node = self._open[-1]
        if self._sinks[-1] is node.orelse:
            raise BuildError("duplicate k.else_() in one k.if_() block")
        self._sinks[-1] = node.orelse

    @contextlib.contextmanager
    def while_(self, cond: Cond) -> Iterator[None]:
        """Structured do-while loop (the ISA's DO ... WHILE).

        The body always executes at least once; *cond* is evaluated
        after each iteration and lanes for which it still holds iterate
        again.  Guarantee progress: every path through the body must
        advance the loop variable, or lowering's simulation will hit the
        cycle watchdog.
        """
        node = DoWhile(cond=_as_cond(cond))
        self._append(node)
        self._open.append(node)
        self._sinks.append(node.body)
        try:
            yield
        finally:
            self._sinks.pop()
            self._open.pop()

    def break_if(self, cond: Cond) -> None:
        """Lanes satisfying *cond* exit the innermost ``with k.while_``."""
        if not any(isinstance(s, DoWhile) for s in self._open):
            raise BuildError("k.break_if() outside a k.while_() loop")
        self._append(BreakIf(_as_cond(cond)))

    # -- trace inspection ----------------------------------------------------

    def is_divergent(self) -> bool:
        """True when the trace contains any branch or loop."""

        def walk(stmts) -> bool:
            for s in stmts:
                if isinstance(s, (IfStmt, DoWhile, BreakIf)):
                    return True
            return False

        return walk(self.statements) or any(
            isinstance(s, (IfStmt, DoWhile)) for s in self._iter_all())

    def _iter_all(self) -> Iterator[Stmt]:
        stack = list(self.statements)
        while stack:
            s = stack.pop()
            yield s
            if isinstance(s, IfStmt):
                stack.extend(s.then)
                stack.extend(s.orelse)
            elif isinstance(s, DoWhile):
                stack.extend(s.body)
