"""Example DSL kernels, registered in :data:`repro.kernels.WORKLOAD_REGISTRY`.

These serve three roles: living documentation of the frontend, golden
subjects for the lowering tests, and extra coherent/divergent data
points for the compaction experiments.  ``dsl_axpy`` lowers to the same
instruction mix as the hand-written ``axpy`` kernel (one shared address
computation, one MAD); the other three exercise padding guards,
if/else divergence, data-dependent loop divergence, and escape-time
loops respectively.
"""

from __future__ import annotations

from . import expr as dsl
from .frontend import In, InOut, Out, Scalar, kernel


@kernel(n=512, seed=11, name="dsl_axpy",
        description="y = a*x + y written in the Python DSL (coherent)")
def dsl_axpy(k, x=In("f32"), y=InOut("f32"), a=Scalar("f32", default=1.5)):
    i = k.gid
    y[i] = a * x[i] + y[i]


@kernel(n=500, seed=12, name="dsl_clip",
        description="branchy per-element transform with a padded launch")
def dsl_clip(k, x=In("f32"), y=Out("f32"), s=Scalar("f32", default=2.0)):
    i = k.gid
    v = k.var(x[i])
    with k.if_(v < 0.5):
        v.set(dsl.sqrt(v) * s)
        k.else_()
        v.set(dsl.sin(v) + 1.0)
    y[i] = v


@kernel(n=256, seed=13, name="dsl_collatz",
        description="Collatz step counts: data-dependent loop divergence")
def dsl_collatz(k, x=In("i32"), steps=Out("i32")):
    i = k.gid
    v = k.var(x[i] + 1)  # inputs are 0-based; Collatz needs v >= 1
    count = k.var(0, "i32")
    with k.while_((v != 1) & (count < 40)):
        with k.if_((v & 1) == 1):
            v.set(v * 3 + 1)
            k.else_()
            v.set(v >> 1)
        count.set(count + 1)
    steps[i] = count


@kernel(n=256, seed=14, name="dsl_mandel",
        description="16x16 Mandelbrot escape iterations (loop divergence)")
def dsl_mandel(k, out=Out("i32")):
    xi = k.gid & 15
    yi = k.gid >> 4
    cx = dsl.cast(xi, "f32") * (2.5 / 16.0) - 2.0
    cy = dsl.cast(yi, "f32") * (2.0 / 16.0) - 1.0
    zx = k.var(0.0, "f32")
    zy = k.var(0.0, "f32")
    r2 = k.var(0.0, "f32")
    it = k.var(0, "i32")
    with k.while_((r2 <= 4.0) & (it < 32)):
        tmp = k.var(zx * zx - zy * zy + cx)
        zy.set(zx * zy * 2.0 + cy)
        zx.set(tmp)
        r2.set(zx * zx + zy * zy)
        it.set(it + 1)
    out[k.gid] = it


#: Factories exported to the workload registry (name -> DslKernel).
DSL_KERNELS = {
    fn.name: fn for fn in (dsl_axpy, dsl_clip, dsl_collatz, dsl_mandel)
}
