"""The ``@dsl.kernel`` decorator: one Python function → one Workload.

Argument specs are given as parameter *defaults* (an OpenCL-like
signature)::

    @dsl.kernel(n=512)
    def axpy(k, x=dsl.In("f32"), y=dsl.InOut("f32"),
             a=dsl.Scalar("f32", default=1.5)):
        i = k.gid
        y[i] = a * x[i] + y[i]

Calling the decorated object builds a fresh
:class:`~repro.kernels.workload.Workload`:

* the function is traced once (:mod:`repro.dsl.trace`);
* the trace is lowered to a Program (:mod:`repro.dsl.lower`);
* buffers are materialized from the specs (seeded random inputs,
  zeroed outputs);
* the launch is derived: global size is *n* padded up to the SIMD
  width, and when padding occurred the program carries a ``gid < __n``
  bounds guard whose value rides in the launch scalars;
* the checker replays the same trace with numpy
  (:mod:`repro.dsl.reference`) from a snapshot of the initial buffers
  and compares every written buffer for exact equality.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

import numpy as np

from ..errors import BuildError
from ..isa.types import DType

if TYPE_CHECKING:  # break the repro.kernels <-> repro.dsl import cycle:
    # the registry package imports the DSL kernels at load time, so the
    # workload types are pulled in lazily at build time instead.
    from ..kernels.workload import Workload
from .expr import as_dtype
from .lower import GUARD_PARAM, lower_trace
from .reference import run_reference
from .trace import BufferHandle, KernelTrace, ScalarHandle


class _BufferSpec:
    """Shared shape of the In/Out/InOut argument declarations."""

    role = ""

    def __init__(self, dtype: Union[DType, str] = "f32",
                 size: Optional[int] = None,
                 init: Optional[Callable] = None) -> None:
        self.dtype = as_dtype(dtype)
        self.size = size
        self.init = init

    def materialize(self, rng: np.random.Generator, n: int) -> np.ndarray:
        size = self.size if self.size is not None else n
        if self.init is not None:
            data = np.asarray(self.init(rng, size), dtype=self.dtype.np_dtype)
            if data.shape != (size,):
                raise BuildError(
                    f"init callable returned shape {data.shape}, "
                    f"expected ({size},)")
            return data
        if self.role == "out":
            return np.zeros(size, dtype=self.dtype.np_dtype)
        if self.dtype.is_float:
            return rng.uniform(0.0, 1.0, size).astype(self.dtype.np_dtype)
        return rng.integers(0, 64, size).astype(self.dtype.np_dtype)


class In(_BufferSpec):
    """A read-only buffer argument (seeded random contents by default)."""

    role = "in"


class Out(_BufferSpec):
    """A write-only buffer argument (zero-initialized)."""

    role = "out"


class InOut(_BufferSpec):
    """A read-write buffer argument (seeded random contents by default)."""

    role = "inout"


class Scalar:
    """A scalar kernel argument with a default launch value."""

    def __init__(self, dtype: Union[DType, str] = "f32",
                 default: Union[int, float] = 0) -> None:
        self.dtype = as_dtype(dtype)
        if self.dtype.is_float:
            self.default = float(default)
        elif isinstance(default, float):
            raise BuildError(
                f"scalar default {default!r} is float but the scalar is "
                f"{self.dtype.label}")
        else:
            self.default = int(default)


class DslKernel:
    """A traced kernel definition; calling it builds a Workload."""

    is_dsl = True

    def __init__(self, fn: Callable, *, n: int, simd_width: int, seed: int,
                 name: Optional[str], category: Optional[str],
                 description: str, local_size: Optional[int]) -> None:
        self.fn = fn
        self.name = name or fn.__name__
        self.n = n
        self.simd_width = simd_width
        self.seed = seed
        self.category = category
        self.local_size = local_size
        doc = inspect.getdoc(fn)
        self.description = description or (doc.splitlines()[0] if doc else "")
        self.specs = self._collect_specs(fn)
        self.__doc__ = fn.__doc__
        self.__name__ = self.name

    @staticmethod
    def _collect_specs(fn: Callable) -> Dict[str, Union[_BufferSpec, Scalar]]:
        params = list(inspect.signature(fn).parameters.values())
        if not params:
            raise BuildError(
                f"{fn.__name__} needs a leading trace parameter (k)")
        specs: Dict[str, Union[_BufferSpec, Scalar]] = {}
        for param in params[1:]:
            spec = param.default
            if not isinstance(spec, (_BufferSpec, Scalar)):
                raise BuildError(
                    f"{fn.__name__}: parameter {param.name!r} must default "
                    f"to dsl.In/dsl.Out/dsl.InOut/dsl.Scalar, got "
                    f"{spec!r}")
            specs[param.name] = spec
        return specs

    # -- tracing and lowering ------------------------------------------------

    def trace(self) -> "tuple[KernelTrace, list]":
        """Trace the kernel function once; returns (trace, params)."""
        trace = KernelTrace(self.simd_width)
        handles = {}
        params: List[Union[BufferHandle, ScalarHandle]] = []
        for pname, spec in self.specs.items():
            if isinstance(spec, Scalar):
                handle: Union[BufferHandle, ScalarHandle] = ScalarHandle(
                    pname, spec.dtype)
            else:
                handle = BufferHandle(trace, pname, spec.dtype, spec.role)
            handles[pname] = handle
            params.append(handle)
        self.fn(trace, **handles)
        if trace._open:
            raise BuildError(
                f"kernel {self.name!r} left a control-flow block open")
        if not trace.writes:
            raise BuildError(
                f"kernel {self.name!r} never stores to a buffer "
                f"(nothing to check)")
        return trace, params

    @property
    def padded_size(self) -> int:
        return -(-self.n // self.simd_width) * self.simd_width

    def program(self):
        """Lower to a finalized ISA Program (without building buffers)."""
        trace, params = self.trace()
        return lower_trace(self.name, trace, params, self.simd_width,
                           guard=self.padded_size != self.n)

    # -- workload assembly ---------------------------------------------------

    def __call__(self, **overrides) -> "Workload":
        from ..kernels.workload import LaunchStep, Workload

        scalars ={name: spec.default for name, spec in self.specs.items()
                   if isinstance(spec, Scalar)}
        seed = self.seed
        for key, value in overrides.items():
            if key == "seed":
                seed = int(value)
            elif key in scalars:
                scalars[key] = (float(value)
                                if self.specs[key].dtype.is_float
                                else int(value))
            else:
                raise BuildError(
                    f"kernel {self.name!r} has no parameter {key!r} "
                    f"(scalars: {sorted(scalars)} and 'seed')")
        trace, params = self.trace()
        padded = self.padded_size
        guard = padded != self.n
        program = lower_trace(self.name, trace, params, self.simd_width,
                              guard=guard)

        rng = np.random.default_rng(seed)
        buffers: Dict[str, np.ndarray] = {}
        for pname, spec in self.specs.items():
            if isinstance(spec, _BufferSpec):
                buffers[pname] = spec.materialize(rng, self.n)
        initial = {name: data.copy() for name, data in buffers.items()}

        launch_scalars = dict(scalars)
        if guard:
            launch_scalars[GUARD_PARAM] = self.n
        step = LaunchStep(global_size=padded, local_size=self.local_size,
                          scalars=launch_scalars)

        sinks = sorted(trace.writes)
        problem_n = self.n if guard else None

        def check(final: Dict[str, np.ndarray]) -> None:
            expected = {name: data.copy() for name, data in initial.items()}
            run_reference(trace, expected, scalars, padded, problem_n)
            for name in sinks:
                np.testing.assert_array_equal(
                    final[name], expected[name],
                    err_msg=f"{self.name}: buffer {name!r} deviates from "
                            f"the traced reference")

        category = self.category or (
            "divergent" if trace.is_divergent() else "coherent")
        return Workload(
            name=self.name,
            program=program,
            buffers=buffers,
            steps=[step],
            check=check,
            category=category,
            description=self.description,
        )


def kernel(n: int = 256, simd_width: int = 16, seed: int = 2013,
           name: Optional[str] = None, category: Optional[str] = None,
           description: str = "", local_size: Optional[int] = None):
    """Decorator turning a traced Python function into a workload factory."""

    def decorate(fn: Callable) -> DslKernel:
        return DslKernel(fn, n=n, simd_width=simd_width, seed=seed,
                         name=name, category=category,
                         description=description, local_size=local_size)

    return decorate
