"""Vectorized numpy execution of a kernel trace (the host reference).

Runs the same statement tree that :mod:`repro.dsl.lower` compiles,
entirely in numpy, over all work-items at once with per-lane activity
masks — effectively an infinitely-wide SIMD machine with the paper's
structured-mask semantics.  Because every arithmetic step mirrors the
functional interpreter (:mod:`repro.eu.interp`) operation for operation
— same numpy dtypes, same shift clamping, same divide-by-zero rule,
same highest-lane-wins scatter — the results are *bit-identical* to the
simulator, which is what lets the frontend synthesize an exact-equality
checker instead of a tolerance-based one.

Ordering caveat (documented kernel-author contract): the reference
commits scatter conflicts in ascending global-id order per statement.
The simulator does the same within one SIMD thread, but threads of one
launch run to completion sequentially — so kernels whose *loop* stores
conflict across work-items would see different interleavings.  DSL
kernels should store to work-item-private locations, as the built-in and
stress kernels do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import BuildError
from ..isa.types import DType
from .expr import (
    BinOp,
    BoolOp,
    Cast,
    Compare,
    Cond,
    Const,
    Expr,
    GlobalId,
    Lane,
    Load,
    Not,
    ScalarRef,
    Select,
    UnOp,
)
from .trace import (
    Assign,
    BreakIf,
    BufStore,
    DoWhile,
    IfStmt,
    KernelTrace,
    VarHandle,
)

#: Iteration cap for reference loops; a trace whose loop never drains
#: its live mask is a kernel bug, reported instead of hanging.
LOOP_CAP = 65536


def run_reference(
    trace: KernelTrace,
    buffers: Dict[str, np.ndarray],
    scalars: Dict[str, float],
    global_size: int,
    n: Optional[int] = None,
) -> None:
    """Execute *trace* over *global_size* work-items, mutating *buffers*.

    *n* is the true problem size: work-items at or past it are masked
    off, mirroring the lowered program's ``gid < __n`` guard (pass None
    when the launch was not padded).
    """
    _Reference(trace, buffers, scalars, global_size, n).run()


class _Reference:
    def __init__(self, trace, buffers, scalars, global_size, n) -> None:
        self.trace = trace
        self.buffers = buffers
        self.scalars = scalars
        self.size = global_size
        self.gid = np.arange(global_size, dtype=np.int32)
        self.lane = (self.gid % trace.simd_width).astype(np.int32)
        if n is None:
            self.guard = np.ones(global_size, dtype=bool)
        else:
            self.guard = self.gid < n
        self.vars: Dict[int, np.ndarray] = {}
        self._loops: List[np.ndarray] = []  # live masks, innermost last

    def run(self) -> None:
        self._block(self.trace.statements, [])

    # -- statements ----------------------------------------------------------

    def _mask(self, conds: List[np.ndarray]) -> np.ndarray:
        mask = self.guard.copy()
        for cond in conds:
            mask &= cond
        for live in self._loops:
            mask &= live
        return mask

    def _block(self, statements, conds: List[np.ndarray]) -> None:
        for stmt in statements:
            # Recomputed per statement: a BreakIf anywhere inside the
            # loop shrinks the live mask for everything after it.
            mask = self._mask(conds)
            if isinstance(stmt, Assign):
                value = self._eval(stmt.value, mask)
                slot = self.vars.get(id(stmt.var))
                if slot is None:
                    slot = np.zeros(self.size, dtype=stmt.var.dtype.np_dtype)
                self.vars[id(stmt.var)] = np.where(mask, value, slot)
            elif isinstance(stmt, BufStore):
                self._store(stmt, mask)
            elif isinstance(stmt, IfStmt):
                cond = self._cond(stmt.cond, mask)
                self._block(stmt.then, conds + [cond])
                if stmt.orelse:
                    self._block(stmt.orelse, conds + [~cond])
            elif isinstance(stmt, DoWhile):
                self._loop(stmt, conds)
            elif isinstance(stmt, BreakIf):
                if not self._loops:  # pragma: no cover - trace validates
                    raise BuildError("break outside a loop")
                broken = mask & self._cond(stmt.cond, mask)
                self._loops[-1] &= ~broken
            else:  # pragma: no cover - trace only builds the above
                raise BuildError(f"unknown statement {stmt!r}")

    def _loop(self, stmt: DoWhile, conds: List[np.ndarray]) -> None:
        live = self._mask(conds)
        self._loops.append(live)
        try:
            for _ in range(LOOP_CAP):
                if not live.any():
                    break
                self._block(stmt.body, conds)
                mask = self._mask(conds)
                live &= self._cond(stmt.cond, mask)
            else:
                raise BuildError(
                    f"reference loop exceeded {LOOP_CAP} iterations "
                    f"(non-terminating kernel loop?)")
        finally:
            self._loops.pop()

    def _store(self, stmt: BufStore, mask: np.ndarray) -> None:
        data = self.buffers[stmt.buffer.name]
        index = self._eval(stmt.index, mask)
        value = self._eval(stmt.value, mask)
        bad = mask & ((index < 0) | (index >= data.shape[0]))
        if bad.any():
            lane = int(np.argmax(bad))
            raise IndexError(
                f"work-item {lane} writes {stmt.buffer.name}[{int(index[lane])}]"
                f", beyond its {data.shape[0]} elements")
        # Fancy assignment applies lanes in ascending order, so scatter
        # conflicts keep the highest work-item's value — matching the
        # interpreter's quad write-back order.
        data[index[mask]] = value[mask]

    # -- expressions ---------------------------------------------------------

    def _eval(self, e: Expr, mask: np.ndarray) -> np.ndarray:
        dtype = e.dtype.np_dtype
        if isinstance(e, Const):
            return np.full(self.size, e.value, dtype=dtype)
        if isinstance(e, GlobalId):
            return self.gid
        if isinstance(e, Lane):
            return self.lane
        if isinstance(e, VarHandle):
            slot = self.vars.get(id(e))
            if slot is None:
                raise BuildError(f"variable {e.name!r} read before assignment")
            return slot
        if isinstance(e, ScalarRef):
            try:
                value = self.scalars[e.name]
            except KeyError:
                raise BuildError(f"no value bound for scalar {e.name!r}")
            return np.full(self.size, value, dtype=dtype)
        if isinstance(e, BinOp):
            a = self._eval(e.a, mask)
            b = self._eval(e.b, mask)
            return self._binop(e, a, b)
        if isinstance(e, UnOp):
            return self._unop(e, self._eval(e.a, mask))
        if isinstance(e, Cast):
            return self._eval(e.a, mask).astype(dtype)
        if isinstance(e, Select):
            cond = self._cond(e.cond, mask)
            return np.where(cond, self._eval(e.a, mask), self._eval(e.b, mask))
        if isinstance(e, Load):
            return self._load(e, mask)
        raise BuildError(f"unknown expression {e!r}")  # pragma: no cover

    def _load(self, e: Load, mask: np.ndarray) -> np.ndarray:
        data = self.buffers[e.buffer.name]
        index = self._eval(e.index, mask)
        bad = mask & ((index < 0) | (index >= data.shape[0]))
        if bad.any():
            lane = int(np.argmax(bad))
            raise IndexError(
                f"work-item {lane} reads {e.buffer.name}[{int(index[lane])}], "
                f"beyond its {data.shape[0]} elements")
        # Inactive lanes may hold wild indices (their values are never
        # consumed); clamp them so the gather itself cannot fault.
        safe = np.where(mask, index, 0)
        out = data[safe]
        # Disabled lanes read as 0, like the interpreter's gather.
        zero = np.zeros(1, dtype=e.dtype.np_dtype)
        return np.where(mask, out, zero)

    def _binop(self, e: BinOp, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        op = e.op
        dtype = e.dtype
        with np.errstate(all="ignore"):
            if op == "add":
                return a + b
            if op == "sub":
                return a - b
            if op == "mul":
                return a * b
            if op == "div":
                if dtype.is_float:
                    return a / b
                safe = np.where(b == 0, 1, b)
                return np.where(b == 0, 0, a // safe).astype(a.dtype)
            if op == "and":
                return a & b
            if op == "or":
                return a | b
            if op == "xor":
                return a ^ b
            if op == "shl":
                return (
                    a.astype(np.int64).astype(np.uint64)
                    << _shift_amounts(b, dtype).astype(np.uint64)
                ).astype(dtype.np_dtype)
            if op == "shr":
                return (a.astype(np.int64)
                        >> _shift_amounts(b, dtype)).astype(dtype.np_dtype)
            if op == "min":
                return np.minimum(a, b)
            if op == "max":
                return np.maximum(a, b)
            if op == "pow":
                return np.power(a, b)
        raise BuildError(f"unknown binary operator {e.op!r}")  # pragma: no cover

    def _unop(self, e: UnOp, a: np.ndarray) -> np.ndarray:
        op = e.op
        with np.errstate(all="ignore"):
            if op == "not":
                return ~a
            if op == "abs":
                return np.abs(a)
            if op == "floor":
                return np.floor(a) if e.dtype.is_float else a
            if op == "sqrt":
                return np.sqrt(a)
            if op == "rsqrt":
                return 1.0 / np.sqrt(a)
            if op == "sin":
                return np.sin(a)
            if op == "cos":
                return np.cos(a)
            if op == "exp":
                return np.exp(a)
            if op == "log":
                return np.log(a)
        raise BuildError(f"unknown unary operator {e.op!r}")  # pragma: no cover

    # -- conditions ----------------------------------------------------------

    def _cond(self, cond: Cond, mask: np.ndarray) -> np.ndarray:
        if isinstance(cond, Compare):
            with np.errstate(all="ignore"):
                result = cond.op.apply(self._eval(cond.a, mask),
                                       self._eval(cond.b, mask))
            return np.asarray(result, dtype=bool)
        if isinstance(cond, Not):
            return ~self._cond(cond.inner, mask)
        if isinstance(cond, BoolOp):
            acc = self._cond(cond.parts[0], mask)
            for part in cond.parts[1:]:
                if cond.op == "and":
                    acc = acc & self._cond(part, mask)
                else:
                    acc = acc | self._cond(part, mask)
            return acc
        raise BuildError(f"unknown condition {cond!r}")  # pragma: no cover


def _shift_amounts(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Shift-amount clamp, identical to :func:`repro.eu.interp._shift_amounts`."""
    return np.clip(values.astype(np.int64), 0, dtype.size * 8 - 1)
