"""Lower a :class:`~repro.dsl.trace.KernelTrace` to an ISA Program.

Walks the recorded statement tree and drives a
:class:`~repro.isa.builder.KernelBuilder`.  The mapping is direct —
structured `if_`/`while_` blocks become the ISA's IF/ELSE/ENDIF and
DO/WHILE/BREAK, expressions become ALU instructions — with two small
optimizations that keep the emitted code close to what the hand-written
kernels in :mod:`repro.kernels` look like:

* **fused multiply-add**: ``a * b + c`` lowers to one MAD;
* **address CSE**: byte-offset computations for loads/stores whose index
  is loop-invariant (references no mutable variable) are computed once
  per control-flow region and reused, so ``y[i] = a * x[i] + y[i]``
  shares a single ``SHL`` between all three accesses.

Address CSE is scoped to the enclosing control-flow region: an address
first computed inside a divergent arm is not reused outside it, because
inactive lanes never executed the defining instruction.

Register discipline: kernel state (variables, cached addresses, scalar
arguments) lives in pinned registers; expression temporaries come from
the builder's :meth:`~repro.isa.builder.KernelBuilder.temp` pool and are
released at each statement boundary, so deep expression trees do not
exhaust the GRF.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..errors import BuildError
from ..isa.builder import KernelBuilder
from ..isa.opcodes import Opcode
from ..isa.program import Program
from ..isa.registers import FlagRef, Imm, Operand, RegRef
from ..isa.types import CmpOp, DType
from .expr import (
    BinOp,
    BoolOp,
    Cast,
    Compare,
    Cond,
    Const,
    Expr,
    GlobalId,
    Lane,
    Load,
    Not,
    ScalarRef,
    Select,
    UnOp,
)
from .trace import (
    Assign,
    BreakIf,
    BufferHandle,
    BufStore,
    DoWhile,
    IfStmt,
    KernelTrace,
    ScalarHandle,
    Stmt,
    VarHandle,
)

#: Name of the implicit problem-size scalar added when the global size
#: was padded past the true problem size (bounds-guard operand).
GUARD_PARAM = "__n"

_BIN_OPCODES = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIV, "and": Opcode.AND, "or": Opcode.OR,
    "xor": Opcode.XOR, "shl": Opcode.SHL, "shr": Opcode.SHR,
    "min": Opcode.MIN, "max": Opcode.MAX, "pow": Opcode.POW,
}

_UN_OPCODES = {
    "not": Opcode.NOT, "abs": Opcode.ABS, "floor": Opcode.FLOOR,
    "sqrt": Opcode.SQRT, "rsqrt": Opcode.RSQRT, "sin": Opcode.SIN,
    "cos": Opcode.COS, "exp": Opcode.EXP, "log": Opcode.LOG,
}


def _uses_lane(statements: Sequence[Stmt]) -> bool:
    """Whether any expression in the statement tree reads ``k.lane``."""

    def expr_has(e) -> bool:
        if isinstance(e, Lane):
            return True
        if isinstance(e, (BinOp, Compare)):
            return expr_has(e.a) or expr_has(e.b)
        if isinstance(e, (UnOp, Cast)):
            return expr_has(e.a)
        if isinstance(e, Select):
            return expr_has(e.cond) or expr_has(e.a) or expr_has(e.b)
        if isinstance(e, Load):
            return expr_has(e.index)
        if isinstance(e, BoolOp):
            return any(expr_has(p) for p in e.parts)
        if isinstance(e, Not):
            return expr_has(e.inner)
        return False

    for stmt in statements:
        if isinstance(stmt, Assign):
            if expr_has(stmt.value):
                return True
        elif isinstance(stmt, BufStore):
            if expr_has(stmt.index) or expr_has(stmt.value):
                return True
        elif isinstance(stmt, IfStmt):
            if expr_has(stmt.cond) or _uses_lane(stmt.then) \
                    or _uses_lane(stmt.orelse):
                return True
        elif isinstance(stmt, DoWhile):
            if expr_has(stmt.cond) or _uses_lane(stmt.body):
                return True
        elif isinstance(stmt, BreakIf):
            if expr_has(stmt.cond):
                return True
    return False


def lower_trace(
    name: str,
    trace: KernelTrace,
    params: Sequence[Union[BufferHandle, ScalarHandle]],
    simd_width: int,
    guard: bool = False,
) -> Program:
    """Lower *trace* to a finalized Program.

    *params* is the kernel's argument list in signature order (buffer
    and scalar handles interleaved as declared).  With *guard* the whole
    body is wrapped in ``if (gid < __n)`` against an implicit trailing
    I32 scalar argument named :data:`GUARD_PARAM`.
    """
    return _Lowerer(name, trace, params, simd_width, guard).run()


class _Lowerer:
    def __init__(self, name, trace, params, simd_width, guard) -> None:
        self.b = KernelBuilder(name, simd_width=simd_width)
        self.trace = trace
        self.params = list(params)
        self.guard = guard
        self.surfaces: Dict[str, int] = {}
        self.scalars: Dict[str, RegRef] = {}
        self.slots: Dict[int, RegRef] = {}  # id(VarHandle) -> pinned reg
        self._lane: Optional[RegRef] = None
        self._temps: List[RegRef] = []  # current statement's scratch regs
        # Address-CSE scopes, innermost last; each maps expr key -> reg.
        self._addr_scopes: List[Dict[tuple, RegRef]] = [{}]

    def run(self) -> Program:
        for handle in self.params:
            if isinstance(handle, BufferHandle):
                self.surfaces[handle.name] = self.b.surface_arg(handle.name)
            else:
                self.scalars[handle.name] = self.b.scalar_arg(
                    handle.name, handle.dtype)
        # Materialize the lane index in the prologue, where every
        # dispatched lane is active.  Lazily emitting it at first use
        # would place the defining AND under that use's divergence mask,
        # leaving garbage in the register for the other lanes.
        if _uses_lane(self.trace.statements):
            self._lane_reg()
        if self.guard:
            n_reg = self.b.scalar_arg(GUARD_PARAM, DType.I32)
            flag = self.b.cmp(CmpOp.LT, self.b.global_id(), n_reg,
                              dtype=DType.I32)
            self.b.IF(flag)
            self._block(self.trace.statements)
            self.b.ENDIF()
        else:
            self._block(self.trace.statements)
        return self.b.finish()

    # -- statements ----------------------------------------------------------

    def _block(self, statements: Sequence[Stmt]) -> None:
        for stmt in statements:
            self._stmt(stmt)

    def _stmt(self, stmt: Stmt) -> None:
        outer = self._temps
        self._temps = []
        try:
            if isinstance(stmt, Assign):
                self._eval_into(self._slot(stmt.var), stmt.value)
            elif isinstance(stmt, BufStore):
                addr = self._addr(stmt.buffer, stmt.index)
                value = self._eval_reg(stmt.value)
                self.b.store(value, addr, self.surfaces[stmt.buffer.name])
            elif isinstance(stmt, IfStmt):
                self.b.IF(self._flag(stmt.cond))
                self._scoped_block(stmt.then)
                if stmt.orelse:
                    self.b.ELSE()
                    self._scoped_block(stmt.orelse)
                self.b.ENDIF()
            elif isinstance(stmt, DoWhile):
                self.b.do_()
                self._scoped_block(stmt.body)
                self.b.while_(self._flag(stmt.cond))
            elif isinstance(stmt, BreakIf):
                self.b.break_(self._flag(stmt.cond))
            else:  # pragma: no cover - trace only builds the above
                raise BuildError(f"unknown statement {stmt!r}")
        finally:
            for reg in self._temps:
                self.b.release(reg)
            self._temps = outer

    def _scoped_block(self, statements: Sequence[Stmt]) -> None:
        """Lower a divergent sub-block with its own address-CSE scope.

        Addresses first computed under a divergent mask are invalid for
        lanes that were inactive there, so they must not escape.
        """
        self._addr_scopes.append({})
        try:
            self._block(statements)
        finally:
            for reg in self._addr_scopes.pop().values():
                self.b.release(reg)

    # -- registers -----------------------------------------------------------

    def _temp(self, dtype: DType) -> RegRef:
        reg = self.b.temp(dtype)
        self._temps.append(reg)
        return reg

    def _slot(self, var: VarHandle) -> RegRef:
        slot = self.slots.get(id(var))
        if slot is None:
            slot = self.b.vreg(var.dtype)
            self.slots[id(var)] = slot
        return slot

    def _lane_reg(self) -> RegRef:
        if self._lane is None:
            self._lane = self.b.vreg(DType.I32)
            self.b.and_(self._lane, self.b.local_id(),
                        self.b.simd_width - 1)
        return self._lane

    # -- expressions ---------------------------------------------------------

    def _eval_operand(self, e: Expr) -> Operand:
        if isinstance(e, Const):
            return Imm(e.value, e.dtype)
        if isinstance(e, GlobalId):
            return self.b.global_id()
        if isinstance(e, Lane):
            return self._lane_reg()
        if isinstance(e, VarHandle):
            return self.slots[id(e)]
        if isinstance(e, ScalarRef):
            try:
                return self.scalars[e.name]
            except KeyError:
                raise BuildError(
                    f"scalar {e.name!r} is not a parameter of this kernel")
        dst = self._temp(e.dtype)
        self._eval_into(dst, e)
        return dst

    def _eval_reg(self, e: Expr) -> RegRef:
        op = self._eval_operand(e)
        if isinstance(op, Imm):
            reg = self._temp(e.dtype)
            self.b.mov(reg, op)
            return reg
        return op

    def _eval_into(self, dst: RegRef, e: Expr) -> None:
        if isinstance(e, (Const, GlobalId, Lane, VarHandle, ScalarRef)):
            self.b.mov(dst, self._eval_operand(e))
        elif isinstance(e, BinOp):
            if e.op == "add" and isinstance(e.a, BinOp) and e.a.op == "mul":
                a = self._eval_operand(e.a.a)
                b = self._eval_operand(e.a.b)
                c = self._eval_operand(e.b)
                self.b.mad(dst, a, b, c)
            elif e.op == "add" and isinstance(e.b, BinOp) and e.b.op == "mul":
                c = self._eval_operand(e.a)
                a = self._eval_operand(e.b.a)
                b = self._eval_operand(e.b.b)
                self.b.mad(dst, a, b, c)
            else:
                a = self._eval_operand(e.a)
                b = self._eval_operand(e.b)
                self.b.alu(_BIN_OPCODES[e.op], dst, a, b)
        elif isinstance(e, UnOp):
            self.b.alu(_UN_OPCODES[e.op], dst, self._eval_operand(e.a))
        elif isinstance(e, Cast):
            self.b.cvt(dst, self._eval_reg(e.a))
        elif isinstance(e, Select):
            a = self._eval_operand(e.a)
            b = self._eval_operand(e.b)
            self.b.sel(dst, self._flag(e.cond), a, b)
        elif isinstance(e, Load):
            addr = self._addr(e.buffer, e.index)
            self.b.load(dst, addr, self.surfaces[e.buffer.name])
        else:  # pragma: no cover - expr only builds the above
            raise BuildError(f"unknown expression {e!r}")

    def _addr(self, buffer: BufferHandle, index: Expr) -> RegRef:
        """Byte-offset register for buffer element *index* (with CSE)."""
        shift = buffer.dtype.size.bit_length() - 1
        key = ("addr", shift, index.key())
        cacheable = not index.uses_vars()
        if cacheable:
            for scope in reversed(self._addr_scopes):
                if key in scope:
                    return scope[key]
        idx = self._eval_reg(index)
        if cacheable:
            addr = self.b.temp(DType.I32)  # pinned until scope exit
            self._addr_scopes[-1][key] = addr
        else:
            addr = self._temp(DType.I32)
        self.b.shl(addr, idx, shift)
        return addr

    # -- conditions ----------------------------------------------------------

    def _flag(self, cond: Cond) -> FlagRef:
        if isinstance(cond, Compare):
            a = self._eval_operand(cond.a)
            b = self._eval_operand(cond.b)
            return self.b.cmp(cond.op, a, b, dtype=cond.a.dtype)
        value = self._bool_value(cond)
        return self.b.cmp(CmpOp.NE, value, 0, dtype=DType.I32)

    def _bool_value(self, cond: Cond) -> RegRef:
        """Materialize a condition as an I32 0/1 vector (for &/| chains)."""
        if isinstance(cond, Compare):
            flag = self._flag(cond)
            reg = self._temp(DType.I32)
            self.b.sel(reg, flag, 1, 0)
            return reg
        if isinstance(cond, Not):
            inner = self._bool_value(cond.inner)
            reg = self._temp(DType.I32)
            self.b.xor(reg, inner, 1)
            return reg
        if isinstance(cond, BoolOp):
            opcode = Opcode.AND if cond.op == "and" else Opcode.OR
            acc = self._temp(DType.I32)
            first = self._bool_value(cond.parts[0])
            self.b.mov(acc, first)
            for part in cond.parts[1:]:
                self.b.alu(opcode, acc, acc, self._bool_value(part))
            return acc
        raise BuildError(f"unknown condition {cond!r}")  # pragma: no cover
