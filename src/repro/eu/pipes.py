"""Execution pipes of one EU.

Paper Section 2.2, stage 6: typical 32-bit instructions execute in two
4-lane-wide ALUs — the FPU (most int/float ops including FMA) and the EM
pipe (extended math).  A SIMD-*W* instruction occupies its pipe for the
number of quad cycles the active compaction policy charges; the pipe can
accept the next instruction only once those quads have been sequenced
in.  Memory and barrier messages go to a separate SEND pipe.

Busy-until bookkeeping is sufficient because quads flow through the
(pipelined) ALU back to back: occupancy, not depth, is the issue-rate
constraint; result latency is charged separately by the scoreboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Opcode, Pipe


@dataclass
class ExecPipe:
    """One in-order execution pipe with single-instruction occupancy."""

    name: str
    busy_until: int = 0
    busy_cycles: int = 0  # accumulated occupancy, for utilization reports

    def can_accept(self, now: int) -> bool:
        """True when a new instruction can start sequencing at *now*."""
        return self.busy_until <= now

    def issue(self, now: int, occupancy_cycles: int) -> int:
        """Occupy the pipe for *occupancy_cycles*; returns the drain cycle."""
        if not self.can_accept(now):
            raise RuntimeError(
                f"pipe {self.name} busy until {self.busy_until}, issue at {now}"
            )
        if occupancy_cycles < 1:
            raise ValueError(f"occupancy must be >= 1 cycle, got {occupancy_cycles}")
        self.busy_until = now + occupancy_cycles
        self.busy_cycles += occupancy_cycles
        return self.busy_until


class PipeSet:
    """The FPU + EM + SEND pipes of one EU."""

    def __init__(self) -> None:
        self.fpu = ExecPipe("fpu")
        self.em = ExecPipe("em")
        self.send = ExecPipe("send")
        #: Index-addressable view (see ``repro.eu.eu._pipe_index``) so hot
        #: loops can skip the enum dispatch in :meth:`for_opcode`.
        self.by_index = (self.fpu, self.em, self.send)

    def for_opcode(self, opcode: Opcode) -> ExecPipe:
        """Pipe an opcode dispatches to (CTRL ops consume no pipe)."""
        if opcode.pipe is Pipe.FPU:
            return self.fpu
        if opcode.pipe is Pipe.EM:
            return self.em
        if opcode.pipe is Pipe.SEND:
            return self.send
        raise ValueError(f"{opcode} does not use an execution pipe")

    def earliest_free(self) -> int:
        """Cycle at which at least one ALU pipe is free (for event skip)."""
        return min(self.fpu.busy_until, self.em.busy_until, self.send.busy_until)
