"""EU (execution unit) model: the multi-threaded SIMD core of the GPU.

Pipeline structure follows paper Section 2.2: per-thread decode and
scoreboard, a rotating dual-issue arbiter (two instructions from
distinct threads every two cycles), 4-wide FPU and EM execution pipes
with multi-cycle SIMD instruction sequencing, a SEND pipe for memory
messages, and a SIMT mask stack for structured control-flow divergence.
"""

from .eu import NEVER, ExecutionUnit
from .grf import RegisterFile
from .interp import eval_operand, execute_alu, gather, scatter
from .maskstack import MaskStack
from .pipes import ExecPipe, PipeSet
from .scoreboard import Scoreboard
from .thread import EUThread, ThreadState

__all__ = [
    "NEVER",
    "EUThread",
    "ExecPipe",
    "ExecutionUnit",
    "MaskStack",
    "PipeSet",
    "RegisterFile",
    "Scoreboard",
    "ThreadState",
    "eval_operand",
    "execute_alu",
    "gather",
    "scatter",
]
