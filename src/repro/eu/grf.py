"""Per-thread general register file (GRF).

Each EU thread owns 128 registers of 256 bits (paper Section 2.2),
modelled as one flat, typeless numpy array of 32-bit slots.  Operand
reads and writes view slices of this storage with the instruction's data
type, which reproduces the ISA's implicit register pairing: a SIMD16
32-bit operand starting at R8 occupies R8-R9 (16 consecutive slots).

Writes are masked per lane — disabled lanes keep their old register
contents, which is what makes predicated divergent execution (and the
write-back suppression of BCC/SCC) functionally transparent.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..isa.registers import NUM_GRF_REGS, RegRef
from ..isa.types import SLOTS_PER_REG, DType


class RegisterFile:
    """Typeless 128 x 256-bit register storage with typed operand access."""

    def __init__(self) -> None:
        self._storage = np.zeros(NUM_GRF_REGS * SLOTS_PER_REG, dtype=np.uint32)

    def _operand_view(self, ref: RegRef, width: int) -> np.ndarray:
        """Typed view of the *width* lanes starting at *ref*."""
        start_slot = ref.reg * SLOTS_PER_REG
        slots = width * ref.dtype.size // 4
        if slots == 0:  # sub-32-bit widths never occur; guard anyway
            slots = 1
        end_slot = start_slot + slots
        if end_slot > self._storage.size:
            raise ValueError(
                f"operand {ref} at SIMD{width} overflows the GRF "
                f"(slots {start_slot}..{end_slot - 1})"
            )
        return self._storage[start_slot:end_slot].view(ref.dtype.np_dtype)

    def read(self, ref: RegRef, width: int) -> np.ndarray:
        """Read a *width*-lane operand; returns a copy (safe to mutate)."""
        return self._operand_view(ref, width).copy()

    def write(self, ref: RegRef, width: int, values: np.ndarray, lane_mask: int) -> None:
        """Write a *width*-lane operand under *lane_mask*.

        Lanes whose mask bit is clear are untouched.  *values* may be any
        array broadcastable to *width* elements; it is converted to the
        operand's dtype.
        """
        view = self._operand_view(ref, width)
        values = np.asarray(values, dtype=ref.dtype.np_dtype)
        values = np.broadcast_to(values, (width,))
        if lane_mask == (1 << width) - 1:
            view[:] = values
            return
        enabled = _mask_bools(lane_mask, width)
        view[enabled] = values[enabled]

    def broadcast(self, ref: RegRef, width: int, value) -> None:
        """Fill all *width* lanes of the operand with *value* (dispatch)."""
        view = self._operand_view(ref, width)
        view[:] = value

    def raw(self) -> np.ndarray:
        """The underlying uint32 storage (for tests and debugging)."""
        return self._storage


@lru_cache(maxsize=65536)
def _mask_bools_cached(mask: int, width: int) -> np.ndarray:
    return np.array([(mask >> i) & 1 == 1 for i in range(width)], dtype=bool)


def _mask_bools(mask: int, width: int) -> np.ndarray:
    """Boolean lane-enable array for *mask* (lane 0 first).

    Cached; treat the result as read-only.
    """
    return _mask_bools_cached(mask, width)
