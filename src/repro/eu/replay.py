"""Cycle-accurate replay of functional traces (phase two of the fast core).

:mod:`repro.eu.batch` produces, per hardware thread, the exact sequence
of ``(pc, mask, aux)`` issue records the interleaved interpreter would
have generated.  This module feeds those records through the *unchanged*
timing machinery: :class:`ReplayExecutionUnit` subclasses
:class:`~repro.eu.eu.ExecutionUnit` and overrides only the four issue
paths, so arbitration (``step``), event scheduling (``next_event``),
pipe occupancy, scoreboard bookkeeping, compaction-policy cycle charging
and memory-hierarchy state all run the very same code as the interp
engine — the two engines can only differ in what the issue paths no
longer do: touch registers, flags, or buffers.

Trace schema: see :mod:`repro.eu.batch`.
"""

from __future__ import annotations

from typing import List, Optional

from collections import Counter
from operator import itemgetter

from ..core.policy import execution_cycles
from ..gpu.dispatch import Launch
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode, Pipe
from ..isa.registers import RegRef
from .eu import (NEVER, ExecutionUnit, _inst_deps, _num_reg_sources,
                 _pipe_index, _send_occupancy)
from .thread import EUThread, ThreadState

__all__ = ["ReplayThread", "ReplayLaunch", "ReplayExecutionUnit",
           "record_trace_stats"]


def record_trace_stats(program, traces, alu_stats, simd_stats) -> None:
    """Fold a launch's functional traces into the run's CompactionStats.

    :meth:`CompactionStats.record` is pure accumulation — order never
    matters — so instead of recording per issued instruction inside the
    cycle loop (as the interp engine must, since it discovers the stream
    as it executes), the fast engine aggregates the already-known stream
    into ``(signature, count)`` pairs and bulk-records them up front.
    The resulting counters are bit-identical to per-issue recording.
    """
    sigs: list = []
    for inst in program.instructions:
        op = inst.opcode
        if op.pipe is Pipe.CTRL or op is Opcode.BARRIER:
            sigs.append(None)
        elif op.is_memory:
            sigs.append((True, inst.width, inst.dtype_factor,
                         _num_reg_sources(inst),
                         1 if op.writes_dst else 0))
        else:
            sigs.append((False, inst.width, inst.dtype_factor,
                         _num_reg_sources(inst), 1))
    # Count (pc, mask) pairs at C speed first, then fold by signature;
    # ~50k trace entries per big workload makes a per-entry Python loop
    # the measurable cost here.
    pc_mask = itemgetter(0, 1)
    pair_counts: Counter = Counter()
    for trace in traces:
        pair_counts.update(map(pc_mask, trace))
    counts: Counter = Counter()
    for (pc, mask), n in pair_counts.items():
        sig = sigs[pc]
        if sig is not None:
            counts[(sig, mask)] += n
    for ((is_mem, width, factor, num_src, num_dst), mask), n in counts.items():
        simd_stats.record_bulk(mask, width, factor, num_src, num_dst, count=n)
        if not is_mem:
            alu_stats.record_bulk(mask, width, factor, num_src, count=n)


class ReplayThread(EUThread):
    """An EU thread that walks a recorded issue trace instead of a pc."""

    def __init__(self, thread_id: int, program, dispatch_mask: int,
                 trace: List[tuple], workgroup=None, start_cycle: int = 0) -> None:
        super().__init__(thread_id, program, dispatch_mask,
                         workgroup=workgroup, start_cycle=start_cycle)
        self.trace = trace
        self.index = 0
        instructions = program.instructions
        #: Instruction object per trace entry, resolved once up front so
        #: the arbiter's per-cycle probes skip the pc indirection.
        self._insts = [instructions[entry[0]] for entry in trace]
        #: Cached ``(inst, deps, pipe_index, plan)`` for the current
        #: trace entry (see :func:`_fast_info`); populated lazily by the
        #: flattened step/floor walks, cleared on every advance.  The
        #: fallback paths use ``_inst_cache`` instead; the two caches
        #: are never live in the same run.
        self._packed_cache = None

    def entry(self) -> tuple:
        return self.trace[self.index]

    def current_instruction(self) -> Optional[Instruction]:
        if self.state is not ThreadState.ACTIVE:
            return None
        inst = self._inst_cache
        if inst is None:
            try:
                inst = self._inst_cache = self._insts[self.index]
            except IndexError:
                raise RuntimeError(
                    f"thread {self.thread_id} ran past its functional trace "
                    f"({len(self.trace)} entries) without retiring"
                ) from None
        return inst

    def advance(self, next_pc: Optional[int]) -> None:
        # Control flow was already resolved functionally; the trace *is*
        # the instruction stream, so any next_pc is implied by entry order.
        self.index += 1
        self._ready_cache = None
        self._inst_cache = None
        self._packed_cache = None


class ReplayLaunch(Launch):
    """A launch that materializes :class:`ReplayThread` objects.

    Thread enumeration order is inherited from :class:`Launch`, and the
    batch engine enumerates identically, so ``traces[thread_id]`` is the
    trace of the thread materialized with that id.  Dispatch payloads are
    skipped: architectural state already evolved in the functional pass.
    """

    def __init__(self, *args, traces: Optional[List[List[tuple]]] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.traces = traces

    def _make_thread(self, thread_id: int, dispatch_mask: int, instance,
                     start_cycle: int) -> EUThread:
        if self.traces is None or thread_id >= len(self.traces):
            raise RuntimeError(
                f"no functional trace for thread {thread_id} of kernel "
                f"{self.program.name!r}"
            )
        return ReplayThread(
            thread_id=thread_id,
            program=self.program,
            dispatch_mask=dispatch_mask,
            trace=self.traces[thread_id],
            workgroup=instance,
            start_cycle=start_cycle,
        )

    def _write_payload(self, thread: EUThread, global_base: int,
                       local_base: int) -> None:
        # Scalar-argument presence was validated by the functional pass.
        pass


#: Per-instruction issue plan for the flattened replay step, cached on
#: the instruction (immutable after finalization).  ``kind`` selects the
#: inlined issue path; ``data`` carries the static operands it needs.
_CTRL, _EOT, _BARRIER_K, _ALU, _SLM_K, _GLOBAL_K = range(6)


def _replay_plan(inst: Instruction):
    plan = inst.__dict__.get("_replay_plan_cache")
    if plan is None:
        op = inst.opcode
        writes = (tuple(inst.writes())
                  if op.writes_dst and inst.dst is not None else None)
        if op.pipe is Pipe.CTRL:
            plan = (_EOT if op is Opcode.EOT else _CTRL, None)
        elif op is Opcode.BARRIER:
            plan = (_BARRIER_K, None)
        elif op.is_memory:
            plan = (_SLM_K if op.is_slm else _GLOBAL_K,
                    (_send_occupancy(inst), writes, inst.surface))
        else:
            flag = (inst.flag_dst.index
                    if op is Opcode.CMP and inst.flag_dst is not None else None)
            plan = (_ALU, (op.latency, writes, flag,
                           inst.width, inst.dtype_factor))
        inst.__dict__["_replay_plan_cache"] = plan
    return plan


def _fast_info(inst: Instruction):
    """``(deps, pipe_index, plan)`` packed in one per-instruction cache.

    The flattened step and floor walks fetch this once per trace entry
    (cached on the thread until it advances), replacing the three
    separate ``inst.__dict__`` probes the generic paths pay per cycle.
    """
    info = inst.__dict__.get("_fast_info_cache")
    if info is None:
        info = inst.__dict__["_fast_info_cache"] = (
            _inst_deps(inst), _pipe_index(inst), _replay_plan(inst))
    return info


class ReplayExecutionUnit(ExecutionUnit):
    """An EU whose issue paths consume trace records, not registers."""

    def step(self, now: int) -> None:
        """Flattened arbitration + issue pass for the replay engine.

        Timing-equivalent to :meth:`ExecutionUnit.step` by construction:
        the scan performs the same eligibility checks in the same order,
        and each inlined issue path applies the same pipe, scoreboard
        and retirement updates as the ``_issue_*`` methods it replaces —
        it only skips the per-instruction call chain, which is most of
        the replay engine's host time.  The engine-parity suite pins the
        equivalence (identical ``total_cycles`` against the interp
        engine on mask-deterministic workloads).  Observers need the
        generic paths (stall events, per-opcode host timing, trace
        sinks), so their presence falls back to the base implementation.

        The scan doubles as the event-floor walk: a pass that issues
        nothing has already evaluated every resident thread's readiness,
        so the exact floor falls out for free; a pass that issues leaves
        the trivially sound floor ``align(now + 1)`` (no issue can
        happen before the next arbitration boundary) instead of paying
        a separate :meth:`_compute_event_floor` walk.  Floors may be
        *loose-low*, never high: the simulator just wakes the EU for a
        scan that then computes the exact value.
        """
        if self.telemetry is not None or self.hostprof is not None \
                or self.trace_sink is not None:
            super().step(now)
            return
        config = self.config
        if now % config.issue_period != 0:
            return
        floor = self._event_floor
        if floor is not None and now < floor:
            return
        issued = 0
        last_issued = -1
        best = NEVER  # exact floor candidate, valid only if nothing issues
        threads = self.threads
        pipes = self.pipes.by_index
        issue_width = config.issue_width
        policy = config.policy
        cycles_memo = self._cycles_memo
        active = ThreadState.ACTIVE
        for slot in self._arbitration_order():
            if issued >= issue_width:
                break
            thread = threads[slot]
            if thread is None or thread.state is not active:
                continue
            packed = thread._packed_cache
            if packed is None:
                # Inlined ReplayThread.current_instruction (state is
                # known ACTIVE here, so it cannot return None), plus
                # the instruction's packed issue metadata.
                try:
                    inst = thread._insts[thread.index]
                except IndexError:
                    raise RuntimeError(
                        f"thread {thread.thread_id} ran past its functional "
                        f"trace ({len(thread.trace)} entries) without "
                        f"retiring"
                    ) from None
                info = inst.__dict__.get("_fast_info_cache")
                if info is None:
                    info = _fast_info(inst)
                packed = thread._packed_cache = (
                    inst, info[0], info[1], info[2])
            ready = thread._ready_cache
            if ready is None:
                # Inlined Scoreboard.ready_at over the cached dep lists.
                scoreboard = thread.scoreboard
                reg_ready = scoreboard._reg_ready
                flag_ready = scoreboard._flag_ready
                ready = 0
                if reg_ready or flag_ready:
                    deps = packed[1]
                    if reg_ready:
                        for reg in deps[0]:
                            r = reg_ready.get(reg, 0)
                            if r > ready:
                                ready = r
                    if flag_ready:
                        for flag in deps[1]:
                            r = flag_ready.get(flag, 0)
                            if r > ready:
                                ready = r
                thread._ready_cache = ready
            if ready < thread.stall_until:
                ready = thread.stall_until
            pidx = packed[2]
            if ready > now:
                # Candidate for the merged floor: when the pass ends up
                # issuing nothing these per-thread values are exactly
                # what _compute_event_floor would rederive.
                if pidx >= 0:
                    busy = pipes[pidx].busy_until
                    if busy > ready:
                        ready = busy
                if ready < best:
                    best = ready
                continue
            if pidx >= 0:
                busy = pipes[pidx].busy_until
                if busy > now:
                    if busy < best:
                        best = busy
                    continue

            # -- issue (mirrors _issue + the per-kind _issue_* path) ----
            self.instructions_issued += 1
            thread.instructions_executed += 1
            thread.last_issue_cycle = now
            kind, data = packed[3]
            if kind == _ALU:
                latency, writes, flag, width, factor = data
                mask = thread.trace[thread.index][1]
                cycles = cycles_memo.get((mask, width, factor))
                if cycles is None:
                    cycles = cycles_memo[(mask, width, factor)] = (
                        execution_cycles(mask, width, policy, factor, 1))
                pipe = pipes[pidx]
                completion = now + cycles
                pipe.busy_until = completion
                pipe.busy_cycles += cycles
                completion += latency
                if writes is not None:
                    reg_ready = thread.scoreboard._reg_ready
                    for reg in writes:
                        if completion > reg_ready.get(reg, 0):
                            reg_ready[reg] = completion
                if flag is not None:
                    flag_ready = thread.scoreboard._flag_ready
                    if completion > flag_ready.get(flag, 0):
                        flag_ready[flag] = completion
                thread.index += 1
                thread._ready_cache = None
                thread._packed_cache = None
            elif kind == _SLM_K or kind == _GLOBAL_K:
                occupancy, writes, surface = data
                entry = thread.trace[thread.index]
                mask = entry[1]
                send = pipes[2]
                send.busy_until = now + occupancy
                send.busy_cycles += occupancy
                if mask == 0:
                    completion = now + 1  # suppressed message
                elif kind == _SLM_K:
                    aux = entry[2]
                    wg = thread.workgroup
                    if wg is not None:
                        wg.slm_timing.accesses += 1
                        wg.slm_timing.conflict_cycles += (
                            aux - wg.slm_timing.latency)
                    completion = now + aux
                else:
                    completion = self.hierarchy.access(
                        now, [(surface, line) for line in entry[2]])
                if writes is not None:
                    reg_ready = thread.scoreboard._reg_ready
                    for reg in writes:
                        if completion > reg_ready.get(reg, 0):
                            reg_ready[reg] = completion
                thread.index += 1
                thread._ready_cache = None
                thread._packed_cache = None
            elif kind == _CTRL:
                thread.index += 1
                thread._ready_cache = None
                thread._packed_cache = None
            elif kind == _EOT:
                thread.state = ThreadState.DONE
                threads[slot] = None
                self._free += 1
                self.threads_retired += 1
                if thread.workgroup is not None:
                    thread.workgroup.thread_done(now)
            else:  # _BARRIER_K
                self._issue_barrier(thread, packed[0], now)
            issued += 1
            last_issued = slot
        if issued:
            self._rr = (last_issued + 1) % len(threads)
            self._event_floor = None
        else:
            if best < NEVER:
                period = config.issue_period
                rem = best % period
                if rem:
                    best += period - rem
            self._event_floor = best

    def _compute_event_floor(self) -> int:
        """Packed-cache variant of the base floor walk.

        Same value by construction — identical per-thread candidate
        ``align(max(ready, stall, pipe_busy))`` — but reads the packed
        ``(inst, deps, pipe_index, plan)`` tuple the flattened step
        maintains instead of re-probing the per-instruction caches.
        Falls back to the base walk when observers forced the generic
        step (which populates ``_inst_cache``, not ``_packed_cache``).
        """
        if self.telemetry is not None or self.hostprof is not None \
                or self.trace_sink is not None:
            return super()._compute_event_floor()
        best = NEVER
        pipes = self.pipes.by_index
        active = ThreadState.ACTIVE
        for thread in self.threads:
            if thread is None or thread.state is not active:
                continue
            packed = thread._packed_cache
            if packed is None:
                try:
                    inst = thread._insts[thread.index]
                except IndexError:
                    raise RuntimeError(
                        f"thread {thread.thread_id} ran past its functional "
                        f"trace ({len(thread.trace)} entries) without "
                        f"retiring"
                    ) from None
                info = inst.__dict__.get("_fast_info_cache")
                if info is None:
                    info = _fast_info(inst)
                packed = thread._packed_cache = (
                    inst, info[0], info[1], info[2])
            t = thread._ready_cache
            if t is None:
                scoreboard = thread.scoreboard
                reg_ready = scoreboard._reg_ready
                flag_ready = scoreboard._flag_ready
                t = 0
                if reg_ready or flag_ready:
                    deps = packed[1]
                    if reg_ready:
                        for reg in deps[0]:
                            r = reg_ready.get(reg, 0)
                            if r > t:
                                t = r
                    if flag_ready:
                        for flag in deps[1]:
                            r = flag_ready.get(flag, 0)
                            if r > t:
                                t = r
                thread._ready_cache = t
            if t < thread.stall_until:
                t = thread.stall_until
            pidx = packed[2]
            if pidx >= 0:
                busy = pipes[pidx].busy_until
                if busy > t:
                    t = busy
            if t < best:
                best = t
        if best < NEVER:
            period = self.config.issue_period
            rem = best % period
            if rem:
                best += period - rem
        return best

    def _issue_control(self, slot: int, thread: ReplayThread,
                       inst: Instruction, now: int) -> None:
        _, post_mask, _ = thread.entry()
        if inst.opcode is Opcode.EOT:
            thread.state = ThreadState.DONE
            self.threads[slot] = None
            self._free += 1
            self.threads_retired += 1
            if self.telemetry is not None:
                self.telemetry.thread_retired(now)
            if thread.workgroup is not None:
                thread.workgroup.thread_done(now)
            return
        if self.telemetry is not None:
            # Post-instruction mask population: the divergence timeline.
            self.telemetry.ctrl_issue(now, inst, post_mask, inst.width)
        thread.advance(None)

    def _issue_alu(self, thread: ReplayThread, inst: Instruction,
                   now: int) -> None:
        # Stats were bulk-recorded from the trace (record_trace_stats).
        exec_mask = thread.entry()[1]
        if self.trace_sink is not None:
            from ..trace.format import TraceEvent

            self.trace_sink.append(
                TraceEvent(inst.width, exec_mask, inst.dtype_factor))

        cycles = execution_cycles(
            exec_mask, inst.width, self.config.policy, inst.dtype_factor,
            min_cycles=1,
        )
        pipe = self.pipes.for_opcode(inst.opcode)
        drain = pipe.issue(now, cycles)
        completion = drain + inst.opcode.latency
        thread.scoreboard.record(inst, completion)
        if self.telemetry is not None:
            self.telemetry.alu_issue(now, inst, exec_mask, cycles, pipe.name,
                                     self.config.policy)
        thread.advance(None)

    def _issue_memory(self, thread: ReplayThread, inst: Instruction,
                      now: int) -> None:
        # Stats were bulk-recorded from the trace (record_trace_stats).
        _, exec_mask, aux = thread.entry()
        occupancy = _send_occupancy(inst)
        self.pipes.send.issue(now, occupancy)
        if self.telemetry is not None:
            self.telemetry.mem_issue(now, inst, exec_mask, occupancy)

        if exec_mask == 0:
            completion = now + 1  # suppressed message
        elif inst.opcode.is_slm:
            wg = thread.workgroup
            # Keep the per-workgroup SLM conflict counters live (the
            # functional pass recorded the cycle cost).
            if wg is not None:
                wg.slm_timing.accesses += 1
                wg.slm_timing.conflict_cycles += aux - wg.slm_timing.latency
            completion = now + aux
        else:
            lines = [(inst.surface, line) for line in aux]
            completion = self.hierarchy.access(now, lines)

        if inst.opcode.writes_dst:
            thread.scoreboard.mark_write(inst.writes(), completion)
        thread.advance(None)
