"""EU hardware-thread state.

Each EU supports several hardware threads (six in the Table 3
configuration); one :class:`EUThread` bundles everything a thread owns:
its program position, register file, flag registers, SIMT mask stack,
dependence scoreboard, and scheduling state.  A thread corresponds to
one SIMD-width slice of a workgroup (e.g. 16 work-items of a SIMD16
kernel).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from ..isa.instruction import Instruction
from ..isa.program import Program
from .grf import RegisterFile
from .maskstack import MaskStack
from .scoreboard import Scoreboard

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu.dispatch import WorkgroupInstance


class ThreadState(enum.Enum):
    """Scheduling state of a hardware thread slot."""

    ACTIVE = "active"
    AT_BARRIER = "at_barrier"
    DONE = "done"


class EUThread:
    """One hardware thread executing a SIMD-width slice of a workgroup."""

    def __init__(
        self,
        thread_id: int,
        program: Program,
        dispatch_mask: int,
        workgroup: Optional["WorkgroupInstance"] = None,
        start_cycle: int = 0,
    ) -> None:
        self.thread_id = thread_id
        self.program = program
        self.pc = 0
        self.grf = RegisterFile()
        self.flags = [0, 0]
        self.masks = MaskStack(program.simd_width, dispatch_mask)
        self.scoreboard = Scoreboard()
        self.state = ThreadState.ACTIVE
        self.workgroup = workgroup
        #: Earliest cycle the thread may issue (dispatch/barrier latency).
        self.stall_until = start_cycle
        self.instructions_executed = 0
        self.last_issue_cycle = -1
        #: Cached scoreboard ready cycle of the *current* instruction.
        #: Valid between issues: only this thread's own issues mutate its
        #: scoreboard, and every issue ends in :meth:`advance`, which
        #: invalidates the cache.  ``step``/``next_event`` probe
        #: ``earliest_issue`` several times per thread per event cycle,
        #: so this turns repeated dependence scans into one integer max.
        self._ready_cache: Optional[int] = None
        #: Cached current instruction (same lifetime as ``_ready_cache``:
        #: set on first lookup while ACTIVE, cleared by :meth:`advance`;
        #: the barrier and EOT state transitions both go through
        #: ``advance`` first, so a non-None cache implies it matches
        #: ``program.instructions[pc]``).  The EU's arbitration scan and
        #: event-floor walk read it directly after checking the state.
        self._inst_cache: Optional[Instruction] = None

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    def current_instruction(self) -> Optional[Instruction]:
        """The next instruction to issue, or None when the thread is done."""
        if self.state is not ThreadState.ACTIVE:
            return None
        inst = self._inst_cache
        if inst is None:
            inst = self._inst_cache = self.program.instructions[self.pc]
        return inst

    def pred_mask(self, inst: Instruction) -> Optional[int]:
        """Evaluate the instruction's predicate flag (None = unpredicated)."""
        if inst.pred is None:
            return None
        value = self.flags[inst.pred.index]
        if inst.pred.negate:
            value = ~value
        return value & ((1 << inst.width) - 1)

    def advance(self, next_pc: Optional[int]) -> None:
        """Move to *next_pc* (or fall through) after issuing an instruction."""
        self.pc = self.pc + 1 if next_pc is None else next_pc
        self._ready_cache = None
        self._inst_cache = None
        if not 0 <= self.pc <= len(self.program.instructions):
            raise RuntimeError(
                f"thread {self.thread_id} jumped to invalid pc {self.pc}"
            )

    def ready_floor(self) -> int:
        """Absolute earliest cycle the next instruction could issue.

        Considers dispatch/barrier stalls and scoreboard dependencies,
        but not pipe availability (the EU adds that).  Unlike
        :meth:`earliest_issue` this is not floored at any *now*, so the
        EU can cache it as an event-time lower bound.
        """
        ready = self._ready_cache
        if ready is None:
            inst = self.current_instruction()
            if inst is None:
                return 1 << 62  # effectively never; barrier release resets stall
            ready = self._ready_cache = self.scoreboard.ready_at(inst)
        stall = self.stall_until
        return ready if ready >= stall else stall

    def earliest_issue(self, now: int) -> int:
        """Earliest cycle >= *now* this thread's next instruction could issue."""
        ready = self.ready_floor()
        return ready if ready > now else now
