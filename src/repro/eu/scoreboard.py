"""Per-thread dependence scoreboard.

Paper Section 2.2, stage 3: each EU thread checks and sets register
dependencies before its instructions are queued for arbitration.  The
scoreboard tracks, per GRF register and per flag register, the cycle at
which the value in flight becomes available; an instruction is issueable
once every register it reads or writes is available (reads wait for RAW,
writes for WAW/structural write-back).
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode


class Scoreboard:
    """Register/flag readiness tracking for one EU thread."""

    def __init__(self) -> None:
        self._reg_ready: Dict[int, int] = {}
        self._flag_ready: Dict[int, int] = {}
        #: Optional telemetry counter registry (shared with the owning
        #: EU); None keeps every hot method a single extra branch.
        self._counters = None

    def attach_counters(self, counters) -> None:
        """Route dependence-tracking tallies into *counters* (telemetry)."""
        self._counters = counters

    def ready_at(self, inst: Instruction) -> int:
        """Earliest cycle at which *inst*'s dependencies are all met."""
        if not self._reg_ready and not self._flag_ready:
            return 0  # nothing in flight — common right after dispatch
        ready = 0
        for reg in inst.reads():
            ready = max(ready, self._reg_ready.get(reg, 0))
        for reg in inst.writes():
            ready = max(ready, self._reg_ready.get(reg, 0))
        if inst.pred is not None:
            ready = max(ready, self._flag_ready.get(inst.pred.index, 0))
        if inst.flag_dst is not None:
            ready = max(ready, self._flag_ready.get(inst.flag_dst.index, 0))
        # Memory operations read their address and data registers too
        # (covered by inst.reads()); barriers and control have no deps.
        return ready

    def is_ready(self, inst: Instruction, now: int) -> bool:
        """True when *inst* can issue at cycle *now*."""
        return self.ready_at(inst) <= now

    def mark_write(self, regs: Iterable[int], ready_cycle: int) -> None:
        """Record that *regs* become available at *ready_cycle*."""
        for reg in regs:
            current = self._reg_ready.get(reg, 0)
            if ready_cycle > current:
                self._reg_ready[reg] = ready_cycle

    def mark_flag_write(self, flag_index: int, ready_cycle: int) -> None:
        """Record that flag *flag_index* becomes available at *ready_cycle*."""
        current = self._flag_ready.get(flag_index, 0)
        if ready_cycle > current:
            self._flag_ready[flag_index] = ready_cycle

    def record(self, inst: Instruction, completion_cycle: int) -> None:
        """Set in-flight state for an issued instruction."""
        if inst.opcode.writes_dst and inst.dst is not None:
            self.mark_write(inst.writes(), completion_cycle)
            if self._counters is not None:
                self._counters.incr("scoreboard.reg_writes")
        if inst.opcode is Opcode.CMP and inst.flag_dst is not None:
            self.mark_flag_write(inst.flag_dst.index, completion_cycle)
            if self._counters is not None:
                self._counters.incr("scoreboard.flag_writes")

    def pending_max(self) -> int:
        """Latest outstanding ready cycle (0 when nothing is in flight)."""
        latest = 0
        if self._reg_ready:
            latest = max(latest, max(self._reg_ready.values()))
        if self._flag_ready:
            latest = max(latest, max(self._flag_ready.values()))
        return latest
