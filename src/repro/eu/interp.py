"""Functional interpreter for EU instructions.

The simulator follows the paper's GPGenSim structure: a functional model
computes architectural state (registers, flags, memory) while the timing
model charges cycles.  This module is the functional half for ALU and
memory instructions; control flow lives in :mod:`repro.eu.maskstack`.

All arithmetic uses numpy with the instruction's data type, so lane
values behave like the 32/64-bit hardware types (int wrap-around, IEEE
floats).  Divide-by-zero and overflow produce IEEE results (inf/nan)
without raising, as the hardware does.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import Imm, RegRef
from ..isa.types import DType
from .grf import RegisterFile, _mask_bools


def eval_operand(op, width: int, grf: RegisterFile, dtype: DType) -> np.ndarray:
    """Materialize a source operand as a *width*-lane array of *dtype*.

    Register operands are read with their own dtype then converted;
    immediates are broadcast.
    """
    if isinstance(op, RegRef):
        values = grf.read(op, width)
        if op.dtype is not dtype:
            values = values.astype(dtype.np_dtype)
        return values
    if isinstance(op, Imm):
        return np.full(width, op.value, dtype=dtype.np_dtype)
    raise TypeError(f"cannot evaluate operand {op!r}")


def _shift_amounts(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Clamp shift amounts to the type's bit width (hardware behaviour).

    The clamp ceiling follows the *operand* type: 31 for 32-bit types,
    63 for 64-bit ones.  A single [0, 31] clamp would silently truncate
    I64 shifts by 32..63 to a 31-bit shift.
    """
    return np.clip(values.astype(np.int64), 0, dtype.size * 8 - 1)


def execute_alu(
    inst: Instruction,
    exec_mask: int,
    grf: RegisterFile,
    flags: List[int],
    selector_mask: int = 0,
) -> None:
    """Execute one FPU/EM instruction functionally.

    Args:
        inst: the instruction (must be an ALU opcode).
        exec_mask: final execution mask (lanes to write).
        grf: the thread's register file.
        flags: the thread's flag registers (mutable list of bitmasks).
        selector_mask: for SEL, the per-lane selector (flag value).
    """
    width = inst.width
    op = inst.opcode
    dtype = inst.dtype

    if op is Opcode.CMP:
        with np.errstate(all="ignore"):
            a = eval_operand(inst.sources[0], width, grf, dtype)
            b = eval_operand(inst.sources[1], width, grf, dtype)
            result = inst.cmp_op.apply(a, b)
        taken = np.asarray(result, dtype=bool) & _mask_bools(exec_mask, width)
        bits = int.from_bytes(
            np.packbits(taken, bitorder="little").tobytes(), "little")
        idx = inst.flag_dst.index
        # CMP updates flag bits only for enabled lanes.
        flags[idx] = (flags[idx] & ~exec_mask) | bits
        return

    if op is Opcode.SEL:
        a = eval_operand(inst.sources[0], width, grf, dtype)
        b = eval_operand(inst.sources[1], width, grf, dtype)
        sel = _mask_bools(selector_mask, width)
        result = np.where(sel, a, b)
        grf.write(inst.dst, width, result, exec_mask)
        return

    with np.errstate(all="ignore"):
        srcs = [eval_operand(s, width, grf, dtype) for s in inst.sources]
        if op is Opcode.CVT:
            src = eval_operand(inst.sources[0], width, grf, inst.src_dtype)
            result = src.astype(dtype.np_dtype)
        elif op is Opcode.MOV:
            result = srcs[0]
        elif op is Opcode.ADD:
            result = srcs[0] + srcs[1]
        elif op is Opcode.SUB:
            result = srcs[0] - srcs[1]
        elif op is Opcode.MUL:
            result = srcs[0] * srcs[1]
        elif op is Opcode.MAD:
            result = srcs[0] * srcs[1] + srcs[2]
        elif op is Opcode.MIN:
            result = np.minimum(srcs[0], srcs[1])
        elif op is Opcode.MAX:
            result = np.maximum(srcs[0], srcs[1])
        elif op is Opcode.ABS:
            result = np.abs(srcs[0])
        elif op is Opcode.FLOOR:
            result = np.floor(srcs[0]) if dtype.is_float else srcs[0]
        elif op is Opcode.AND:
            result = srcs[0] & srcs[1]
        elif op is Opcode.OR:
            result = srcs[0] | srcs[1]
        elif op is Opcode.XOR:
            result = srcs[0] ^ srcs[1]
        elif op is Opcode.NOT:
            result = ~srcs[0]
        elif op is Opcode.SHL:
            # Left shifts run in the uint64 domain, where wrap-around is
            # well defined; a 64-bit value shifted in int64 would
            # overflow for amounts the [0, 63] clamp now admits.
            result = (
                srcs[0].astype(np.int64).astype(np.uint64)
                << _shift_amounts(srcs[1], dtype).astype(np.uint64)
            ).astype(dtype.np_dtype)
        elif op is Opcode.SHR:
            result = (srcs[0].astype(np.int64)
                      >> _shift_amounts(srcs[1], dtype)).astype(dtype.np_dtype)
        elif op is Opcode.DIV:
            result = srcs[0] / srcs[1] if dtype.is_float else _int_div(srcs[0], srcs[1])
        elif op is Opcode.SQRT:
            result = np.sqrt(srcs[0])
        elif op is Opcode.RSQRT:
            result = 1.0 / np.sqrt(srcs[0])
        elif op is Opcode.SIN:
            result = np.sin(srcs[0])
        elif op is Opcode.COS:
            result = np.cos(srcs[0])
        elif op is Opcode.EXP:
            result = np.exp(srcs[0])
        elif op is Opcode.LOG:
            result = np.log(srcs[0])
        elif op is Opcode.POW:
            result = np.power(srcs[0], srcs[1])
        else:
            raise NotImplementedError(f"functional model missing for {op}")

    grf.write(inst.dst, width, np.asarray(result, dtype=dtype.np_dtype), exec_mask)


def _int_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Integer division with divide-by-zero yielding 0 (hardware-defined)."""
    safe = np.where(b == 0, 1, b)
    q = a // safe
    return np.where(b == 0, 0, q).astype(a.dtype)


def gather(surface: np.ndarray, offsets: np.ndarray, exec_mask: int, dtype: DType) -> np.ndarray:
    """Per-lane gather: lane *i* reads ``dtype.size`` bytes at offsets[i].

    Disabled lanes return 0.  Offsets must be dtype-aligned and in range;
    out-of-range enabled lanes raise ``IndexError`` (the simulator's
    equivalent of a page fault — kernels are expected to guard).
    """
    width = offsets.shape[0]
    view = surface.view(dtype.np_dtype)
    enabled, idx = _checked_indices(surface, offsets, exec_mask, dtype,
                                    view.shape[0], "reads")
    if exec_mask == (1 << width) - 1:
        return view[idx]
    out = np.zeros(width, dtype=dtype.np_dtype)
    out[enabled] = view[idx[enabled]]
    return out


def _checked_indices(surface: np.ndarray, offsets: np.ndarray,
                     exec_mask: int, dtype: DType, count: int, verb: str):
    """Validate per-lane byte offsets; return (enabled bools, element idx).

    Matches the scalar loop's error semantics exactly: the first
    offending *enabled* lane in lane order raises, with misalignment
    checked before range for that lane.
    """
    size = dtype.size
    enabled = _mask_bools(exec_mask, offsets.shape[0])
    # Unsigned arithmetic folds the range check into one comparison:
    # negative offsets wrap to huge values and fail ``idx >= count``.
    # dtype sizes are powers of two dividing 2**64, so alignment
    # remainders are unchanged by the wrap.
    unsigned = offsets.astype(np.uint64, copy=False)
    idx, rem = np.divmod(unsigned, np.uint64(size))
    bad = rem != 0
    bad |= idx >= count
    bad &= enabled
    if bad.any():
        lane = int(np.argmax(bad))
        off = int(offsets[lane])
        if off % size != 0:
            raise ValueError(f"misaligned {dtype} access at byte offset {off}")
        raise IndexError(
            f"lane {lane} {verb} byte offset {off}, beyond surface of "
            f"{surface.size} bytes"
        )
    return enabled, idx


def scatter(
    surface: np.ndarray, offsets: np.ndarray, values: np.ndarray, exec_mask: int, dtype: DType
) -> None:
    """Per-lane scatter: lane *i* writes ``dtype.size`` bytes at offsets[i].

    When several enabled lanes target the same offset, the highest lane
    wins (matching the sequential quad write-back order of the hardware).
    """
    view = surface.view(dtype.np_dtype)
    enabled, idx = _checked_indices(surface, offsets, exec_mask, dtype,
                                    view.shape[0], "writes")
    # Fancy assignment applies lanes in order, so duplicate offsets keep
    # the highest enabled lane's value — the hardware's quad write-back
    # order.
    if exec_mask == (1 << offsets.shape[0]) - 1:
        view[idx] = values
    else:
        view[idx[enabled]] = values[enabled]
