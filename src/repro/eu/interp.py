"""Functional interpreter for EU instructions.

The simulator follows the paper's GPGenSim structure: a functional model
computes architectural state (registers, flags, memory) while the timing
model charges cycles.  This module is the functional half for ALU and
memory instructions; control flow lives in :mod:`repro.eu.maskstack`.

All arithmetic uses numpy with the instruction's data type, so lane
values behave like the 32/64-bit hardware types (int wrap-around, IEEE
floats).  Divide-by-zero and overflow produce IEEE results (inf/nan)
without raising, as the hardware does.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import Imm, RegRef
from ..isa.types import DType
from .grf import RegisterFile, _mask_bools


def eval_operand(op, width: int, grf: RegisterFile, dtype: DType) -> np.ndarray:
    """Materialize a source operand as a *width*-lane array of *dtype*.

    Register operands are read with their own dtype then converted;
    immediates are broadcast.
    """
    if isinstance(op, RegRef):
        values = grf.read(op, width)
        if op.dtype is not dtype:
            values = values.astype(dtype.np_dtype)
        return values
    if isinstance(op, Imm):
        return np.full(width, op.value, dtype=dtype.np_dtype)
    raise TypeError(f"cannot evaluate operand {op!r}")


def _shift_amounts(values: np.ndarray) -> np.ndarray:
    """Clamp shift amounts to the type's bit width (hardware behaviour)."""
    return np.clip(values.astype(np.int64), 0, 31)


def execute_alu(
    inst: Instruction,
    exec_mask: int,
    grf: RegisterFile,
    flags: List[int],
    selector_mask: int = 0,
) -> None:
    """Execute one FPU/EM instruction functionally.

    Args:
        inst: the instruction (must be an ALU opcode).
        exec_mask: final execution mask (lanes to write).
        grf: the thread's register file.
        flags: the thread's flag registers (mutable list of bitmasks).
        selector_mask: for SEL, the per-lane selector (flag value).
    """
    width = inst.width
    op = inst.opcode
    dtype = inst.dtype

    if op is Opcode.CMP:
        with np.errstate(all="ignore"):
            a = eval_operand(inst.sources[0], width, grf, dtype)
            b = eval_operand(inst.sources[1], width, grf, dtype)
            result = inst.cmp_op.apply(a, b)
        bits = 0
        for lane in range(width):
            if (exec_mask >> lane) & 1 and bool(result[lane]):
                bits |= 1 << lane
        idx = inst.flag_dst.index
        # CMP updates flag bits only for enabled lanes.
        flags[idx] = (flags[idx] & ~exec_mask) | bits
        return

    if op is Opcode.SEL:
        a = eval_operand(inst.sources[0], width, grf, dtype)
        b = eval_operand(inst.sources[1], width, grf, dtype)
        sel = _mask_bools(selector_mask, width)
        result = np.where(sel, a, b)
        grf.write(inst.dst, width, result, exec_mask)
        return

    with np.errstate(all="ignore"):
        srcs = [eval_operand(s, width, grf, dtype) for s in inst.sources]
        if op is Opcode.CVT:
            src = eval_operand(inst.sources[0], width, grf, inst.src_dtype)
            result = src.astype(dtype.np_dtype)
        elif op is Opcode.MOV:
            result = srcs[0]
        elif op is Opcode.ADD:
            result = srcs[0] + srcs[1]
        elif op is Opcode.SUB:
            result = srcs[0] - srcs[1]
        elif op is Opcode.MUL:
            result = srcs[0] * srcs[1]
        elif op is Opcode.MAD:
            result = srcs[0] * srcs[1] + srcs[2]
        elif op is Opcode.MIN:
            result = np.minimum(srcs[0], srcs[1])
        elif op is Opcode.MAX:
            result = np.maximum(srcs[0], srcs[1])
        elif op is Opcode.ABS:
            result = np.abs(srcs[0])
        elif op is Opcode.FLOOR:
            result = np.floor(srcs[0]) if dtype.is_float else srcs[0]
        elif op is Opcode.AND:
            result = srcs[0] & srcs[1]
        elif op is Opcode.OR:
            result = srcs[0] | srcs[1]
        elif op is Opcode.XOR:
            result = srcs[0] ^ srcs[1]
        elif op is Opcode.NOT:
            result = ~srcs[0]
        elif op is Opcode.SHL:
            result = (srcs[0].astype(np.int64) << _shift_amounts(srcs[1])).astype(
                dtype.np_dtype
            )
        elif op is Opcode.SHR:
            result = (srcs[0].astype(np.int64) >> _shift_amounts(srcs[1])).astype(
                dtype.np_dtype
            )
        elif op is Opcode.DIV:
            result = srcs[0] / srcs[1] if dtype.is_float else _int_div(srcs[0], srcs[1])
        elif op is Opcode.SQRT:
            result = np.sqrt(srcs[0])
        elif op is Opcode.RSQRT:
            result = 1.0 / np.sqrt(srcs[0])
        elif op is Opcode.SIN:
            result = np.sin(srcs[0])
        elif op is Opcode.COS:
            result = np.cos(srcs[0])
        elif op is Opcode.EXP:
            result = np.exp(srcs[0])
        elif op is Opcode.LOG:
            result = np.log(srcs[0])
        elif op is Opcode.POW:
            result = np.power(srcs[0], srcs[1])
        else:
            raise NotImplementedError(f"functional model missing for {op}")

    grf.write(inst.dst, width, np.asarray(result, dtype=dtype.np_dtype), exec_mask)


def _int_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Integer division with divide-by-zero yielding 0 (hardware-defined)."""
    safe = np.where(b == 0, 1, b)
    q = a // safe
    return np.where(b == 0, 0, q).astype(a.dtype)


def gather(surface: np.ndarray, offsets: np.ndarray, exec_mask: int, dtype: DType) -> np.ndarray:
    """Per-lane gather: lane *i* reads ``dtype.size`` bytes at offsets[i].

    Disabled lanes return 0.  Offsets must be dtype-aligned and in range;
    out-of-range enabled lanes raise ``IndexError`` (the simulator's
    equivalent of a page fault — kernels are expected to guard).
    """
    width = offsets.shape[0]
    out = np.zeros(width, dtype=dtype.np_dtype)
    size = dtype.size
    view = surface.view(dtype.np_dtype)
    for lane in range(width):
        if not (exec_mask >> lane) & 1:
            continue
        off = int(offsets[lane])
        if off % size != 0:
            raise ValueError(f"misaligned {dtype} access at byte offset {off}")
        idx = off // size
        if not 0 <= idx < view.shape[0]:
            raise IndexError(
                f"lane {lane} reads byte offset {off}, beyond surface of "
                f"{surface.size} bytes"
            )
        out[lane] = view[idx]
    return out


def scatter(
    surface: np.ndarray, offsets: np.ndarray, values: np.ndarray, exec_mask: int, dtype: DType
) -> None:
    """Per-lane scatter: lane *i* writes ``dtype.size`` bytes at offsets[i].

    When several enabled lanes target the same offset, the highest lane
    wins (matching the sequential quad write-back order of the hardware).
    """
    size = dtype.size
    view = surface.view(dtype.np_dtype)
    width = offsets.shape[0]
    for lane in range(width):
        if not (exec_mask >> lane) & 1:
            continue
        off = int(offsets[lane])
        if off % size != 0:
            raise ValueError(f"misaligned {dtype} access at byte offset {off}")
        idx = off // size
        if not 0 <= idx < view.shape[0]:
            raise IndexError(
                f"lane {lane} writes byte offset {off}, beyond surface of "
                f"{surface.size} bytes"
            )
        view[idx] = values[lane]
