"""The execution unit (EU): arbitration, issue, and timing.

Models the multi-threaded SIMD core of paper Section 2.2.  Per
arbitration pass (every two cycles) the EU issues up to two instructions
from distinct ready hardware threads.  ALU instructions occupy the FPU
or EM pipe for the number of quad cycles charged by the configured
compaction policy — this is where BCC/SCC turn mask statistics into
time.  Memory and barrier messages go through the SEND pipe to the
shared memory hierarchy; structured control flow executes in the front
end via the per-thread mask stack.

The EU is also the measurement point: every issued SIMD instruction's
``(width, exec_mask, dtype)`` is recorded into the run's
:class:`~repro.core.stats.CompactionStats`, exactly like the
instrumented functional model the paper uses for its trace studies.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from ..core.policy import execution_cycles
from ..core.stats import CompactionStats
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode, Pipe
from ..isa.registers import RegRef
from ..memory.cache import LINE_BYTES
from ..memory.hierarchy import MemoryHierarchy
from .grf import _mask_bools
from .interp import execute_alu, gather, scatter
from .pipes import PipeSet
from .thread import EUThread, ThreadState

#: Sentinel "never" time for event scheduling.
NEVER = 1 << 62


def _send_occupancy(inst: Instruction) -> int:
    """SEND pipe occupancy of one memory message, in cycles.

    One cycle per 256-bit GRF register the message moves out of the
    register file: the per-lane address payload for every access, plus
    the data payload for stores (``sources[1]``).  Loads receive their
    data through write-back, which the scoreboard charges separately.
    Cached on the instruction — immutable after program finalization.
    """
    cached = inst.__dict__.get("_send_occupancy_cache")
    if cached is None:
        moved = sum(len(s.regs(inst.width)) for s in inst.sources
                    if isinstance(s, RegRef))
        cached = max(1, moved)
        inst.__dict__["_send_occupancy_cache"] = cached
    return cached


def _num_reg_sources(inst: Instruction) -> int:
    """Register source-operand count (RF-traffic accounting), cached."""
    cached = inst.__dict__.get("_num_reg_sources_cache")
    if cached is None:
        cached = sum(1 for s in inst.sources if isinstance(s, RegRef))
        inst.__dict__["_num_reg_sources_cache"] = cached
    return cached


def _inst_deps(inst: Instruction):
    """(register, flag) dependency tuples of an instruction, cached.

    Exactly the registers and flags :meth:`Scoreboard.ready_at` probes:
    reads + writes (RAW/WAW), the predicate flag, and the CMP flag
    destination.  The hot scan loops inline the readiness max over these
    instead of calling ``ready_at``.
    """
    deps = inst.__dict__.get("_deps_cache")
    if deps is None:
        regs = tuple(inst.reads()) + tuple(inst.writes())
        flags = []
        if inst.pred is not None:
            flags.append(inst.pred.index)
        if inst.flag_dst is not None and inst.flag_dst.index not in flags:
            flags.append(inst.flag_dst.index)
        deps = (regs, tuple(flags))
        inst.__dict__["_deps_cache"] = deps
    return deps


#: Opcode pipe -> index into :attr:`PipeSet.by_index`.
_PIPE_INDEX = {Pipe.FPU: 0, Pipe.EM: 1, Pipe.SEND: 2}


def _pipe_index(inst: Instruction) -> int:
    """Pipe index of an instruction (-1 for CTRL), cached on it.

    The arbitration scan and the event-floor walk resolve the pipe for
    every resident thread every pass; one dict probe on the instruction
    beats the enum dispatch in :meth:`PipeSet.for_opcode`.
    """
    idx = inst.__dict__.get("_pipe_index_cache")
    if idx is None:
        pipe = inst.opcode.pipe
        idx = -1 if pipe is Pipe.CTRL else _PIPE_INDEX[pipe]
        inst.__dict__["_pipe_index_cache"] = idx
    return idx


class ExecutionUnit:
    """One EU: thread slots, pipes, and the issue/timing logic."""

    def __init__(self, eu_id: int, config, hierarchy: MemoryHierarchy,
                 alu_stats: CompactionStats, simd_stats: CompactionStats,
                 trace_sink: Optional[list] = None,
                 telemetry=None, hostprof=None) -> None:
        self.eu_id = eu_id
        self.config = config
        self.hierarchy = hierarchy
        self.alu_stats = alu_stats
        self.simd_stats = simd_stats
        #: When set, every issued SIMD instruction's (width, mask) is
        #: appended as a TraceEvent -- the paper's instrumented
        #: functional model (Section 5.1), usable for offline profiling.
        self.trace_sink = trace_sink
        #: Optional :class:`~repro.telemetry.collector.EuTelemetry` view.
        #: None when telemetry is off: every emission site below is then
        #: one attribute load and one branch, nothing more.
        self.telemetry = telemetry
        #: Optional :class:`~repro.telemetry.hostprof.HostProfiler` for
        #: exact per-opcode host-time accounting (None when unprofiled).
        self.hostprof = hostprof
        self.pipes = PipeSet()
        self.threads: List[Optional[EUThread]] = [None] * config.threads_per_eu
        #: Count of empty thread slots, kept in sync by :meth:`add_thread`
        #: and the EOT retire path — the dispatcher probes every EU every
        #: event cycle, so this must not be a scan.
        self._free = config.threads_per_eu
        self._rr = 0  # rotating-priority pointer (paper: rotating/age arbiter)
        self.instructions_issued = 0
        #: Threads that reached EOT — the simulator's deadlock watchdog
        #: reads this (with instructions_issued) as its progress signal.
        self.threads_retired = 0
        #: Cached state-only event floor: the earliest arbitration cycle
        #: at which any resident thread could issue, ignoring the caller's
        #: ``now``.  Valid until this EU's state changes — and every
        #: mutation that can affect it (issues, EOT retires, barrier
        #: arrivals/releases of the workgroups resident here) happens
        #: inside this EU's own ``step``, or in :meth:`add_thread`; both
        #: invalidate.  Lets ``step`` skip whole arbitration scans and
        #: ``next_event`` skip whole thread walks while the EU waits.
        self._event_floor: Optional[int] = None
        #: Precomputed arbitration orders, one per rotating-pointer value.
        self._orders: Optional[List[List[int]]] = None
        #: (mask, width, dtype_factor) -> policy execution cycles, a plain
        #: dict in front of :func:`execution_cycles` for the hot issue
        #: paths (the policy is fixed for the EU's lifetime).
        self._cycles_memo: dict = {}

    # -- thread management ---------------------------------------------------

    def free_slots(self) -> int:
        return self._free

    def add_thread(self, thread: EUThread) -> None:
        self._event_floor = None
        for slot, occupant in enumerate(self.threads):
            if occupant is None:
                self.threads[slot] = thread
                self._free -= 1
                if self.telemetry is not None:
                    self.telemetry.counters.incr("threads.dispatched")
                    thread.scoreboard.attach_counters(self.telemetry.counters)
                return
        raise RuntimeError(f"EU{self.eu_id} has no free thread slot")

    def busy(self) -> bool:
        return any(t is not None for t in self.threads)

    # -- per-cycle operation ---------------------------------------------------

    def step(self, now: int) -> None:
        """Run one arbitration pass (call only on even cycles)."""
        if now % self.config.issue_period != 0:
            return
        # Nothing can issue before the cached event floor, so the whole
        # scan would be a no-op — unless telemetry wants the per-slot
        # stall events the scan emits.
        floor = self._event_floor
        if floor is not None and now < floor and self.telemetry is None:
            return
        issued = 0
        last_issued = -1
        order = self._arbitration_order()
        tel = self.telemetry
        threads = self.threads
        pipes = self.pipes.by_index
        issue_width = self.config.issue_width
        active = ThreadState.ACTIVE
        for slot in order:
            if issued >= issue_width:
                break
            thread = threads[slot]
            if thread is None or thread.state is not active:
                continue
            # Inlined current_instruction / ready_floor / _pipe_index:
            # this scan runs for every resident thread on every event
            # cycle, so each avoided call is measurable host time.
            inst = thread._inst_cache
            if inst is None:
                inst = thread.current_instruction()
                if inst is None:
                    continue
            ready = thread._ready_cache
            if ready is None:
                ready = thread._ready_cache = thread.scoreboard.ready_at(inst)
            if ready < thread.stall_until:
                ready = thread.stall_until
            if ready > now:
                if tel is not None:
                    tel.stall(now, slot,
                              "scoreboard"
                              if thread.scoreboard.ready_at(inst) > now
                              else "dispatch")
                continue
            pidx = inst.__dict__.get("_pipe_index_cache")
            if pidx is None:
                pidx = _pipe_index(inst)
            if pidx >= 0 and pipes[pidx].busy_until > now:
                if tel is not None:
                    tel.stall(now, slot, "pipe")
                continue
            if self.hostprof is None:
                self._issue(slot, thread, inst, now)
            else:
                self._issue_profiled(slot, thread, inst, now)
            issued += 1
            last_issued = slot
        if issued:
            # Rotate past the last slot that actually issued, not past
            # the head of the order: a stalled head thread that never got
            # to issue must keep its priority, or it can be starved by
            # the threads behind it issuing pass after pass.
            self._rr = (last_issued + 1) % len(self.threads)
            self._event_floor = None
        elif floor is not None and floor <= now:
            # A stale floor in the past would defeat the skip above.
            self._event_floor = None

    def _arbitration_order(self) -> List[int]:
        orders = self._orders
        if orders is None:
            n = len(self.threads)
            if self.config.arbiter == "fixed":
                # ``_rr`` still rotates on issue but fixed priority
                # ignores it: every pass scans from slot 0.
                orders = [list(range(n))] * n
            else:
                orders = [[(r + i) % n for i in range(n)] for r in range(n)]
            self._orders = orders
        return orders[self._rr]

    def next_event(self, now: int) -> int:
        """Earliest future cycle at which this EU could issue something.

        Per thread the candidate is ``align(max(ready, pipe_busy,
        now + 1))``; since the round-up to the arbitration boundary is
        monotone, ``align(max(a, b)) == max(align(a), align(b))`` and
        the ``now + 1`` floor factors out of the minimum:
        ``min_i align(max(r_i, b_i, now+1)) ==
        max(min_i align(max(r_i, b_i)), align(now+1))``.  The first term
        depends only on EU state, so it is cached in ``_event_floor``.
        """
        floor = self._event_floor
        if floor is None:
            floor = self._event_floor = self._compute_event_floor()
        period = self.config.issue_period
        t = now + 1
        if t % period != 0:
            t += period - (t % period)
        return floor if floor > t else t

    def _compute_event_floor(self) -> int:
        """State-only part of :meth:`next_event` (no ``now`` floor).

        The round-up to the arbitration boundary is monotone, so it
        commutes with the min over threads and is applied once at the
        end.  The scoreboard readiness max is inlined over the cached
        dependency lists (see :func:`_inst_deps`) rather than calling
        ``ready_at`` — this walk runs after every issuing pass.
        """
        best = NEVER
        pipes = self.pipes.by_index
        active = ThreadState.ACTIVE
        for thread in self.threads:
            if thread is None or thread.state is not active:
                continue
            inst = thread._inst_cache
            if inst is None:
                inst = thread.current_instruction()
                if inst is None:
                    continue
            t = thread._ready_cache
            if t is None:
                scoreboard = thread.scoreboard
                reg_ready = scoreboard._reg_ready
                flag_ready = scoreboard._flag_ready
                t = 0
                if reg_ready or flag_ready:
                    deps = inst.__dict__.get("_deps_cache")
                    if deps is None:
                        deps = _inst_deps(inst)
                    if reg_ready:
                        for reg in deps[0]:
                            r = reg_ready.get(reg, 0)
                            if r > t:
                                t = r
                    if flag_ready:
                        for flag in deps[1]:
                            r = flag_ready.get(flag, 0)
                            if r > t:
                                t = r
                thread._ready_cache = t
            if t < thread.stall_until:
                t = thread.stall_until
            pidx = inst.__dict__.get("_pipe_index_cache")
            if pidx is None:
                pidx = _pipe_index(inst)
            if pidx >= 0:
                busy = pipes[pidx].busy_until
                if busy > t:
                    t = busy
            if t < best:
                best = t
        if best < NEVER:
            period = self.config.issue_period
            rem = best % period
            if rem:
                best += period - rem
        return best

    # -- issue paths ----------------------------------------------------------

    def _issue_profiled(self, slot: int, thread: EUThread, inst: Instruction,
                        now: int) -> None:
        """Issue wrapper charging exact host time to the opcode (hostprof)."""
        start = time.perf_counter()
        try:
            self._issue(slot, thread, inst, now)
        finally:
            self.hostprof.add_opcode(inst.opcode.name,
                                     time.perf_counter() - start)

    def _issue(self, slot: int, thread: EUThread, inst: Instruction, now: int) -> None:
        self.instructions_issued += 1
        thread.instructions_executed += 1
        thread.last_issue_cycle = now
        op = inst.opcode
        if op.pipe is Pipe.CTRL:
            self._issue_control(slot, thread, inst, now)
        elif op is Opcode.BARRIER:
            self._issue_barrier(thread, inst, now)
        elif op.is_memory:
            self._issue_memory(thread, inst, now)
        else:
            self._issue_alu(thread, inst, now)

    def _issue_control(self, slot: int, thread: EUThread, inst: Instruction, now: int) -> None:
        op = inst.opcode
        masks = thread.masks
        next_pc: Optional[int] = None
        if op is Opcode.IF:
            flag = thread.pred_mask(inst)
            target_is_else = (
                inst.target > 0
                and thread.program.instructions[inst.target - 1].opcode is Opcode.ELSE
            )
            next_pc = masks.do_if(flag, inst.target, target_is_else)
        elif op is Opcode.ELSE:
            next_pc = masks.do_else(inst.target)
        elif op is Opcode.ENDIF:
            masks.do_endif()
        elif op is Opcode.DO:
            next_pc = masks.do_do(inst.target)
        elif op is Opcode.BREAK:
            masks.do_break(thread.pred_mask(inst))
        elif op is Opcode.WHILE:
            next_pc = masks.do_while(thread.pred_mask(inst), inst.target)
        elif op is Opcode.EOT:
            thread.state = ThreadState.DONE
            self.threads[slot] = None
            self._free += 1
            self.threads_retired += 1
            if self.telemetry is not None:
                self.telemetry.thread_retired(now)
            if thread.workgroup is not None:
                thread.workgroup.thread_done(now)
            return
        else:  # pragma: no cover - exhaustive over CTRL opcodes
            raise NotImplementedError(f"control opcode {op}")
        if self.telemetry is not None:
            # Post-instruction mask population: the divergence timeline.
            self.telemetry.ctrl_issue(now, inst, masks.current, inst.width)
        thread.advance(next_pc)

    def _issue_barrier(self, thread: EUThread, inst: Instruction, now: int) -> None:
        if self.telemetry is not None:
            self.telemetry.barrier(now)
        thread.advance(None)  # resume after the barrier on release
        wg = thread.workgroup
        if wg is None:
            return  # free-standing thread: barrier is a no-op
        thread.state = ThreadState.AT_BARRIER
        wg.arrive_barrier(thread, now, self.config.barrier_latency)

    def _issue_alu(self, thread: EUThread, inst: Instruction, now: int) -> None:
        if inst.opcode is Opcode.SEL:
            # The predicate is the per-lane selector, not an execution mask.
            exec_mask = thread.masks.current
            selector = thread.pred_mask(inst)
        else:
            exec_mask = thread.masks.exec_mask(thread.pred_mask(inst))
            selector = 0
        num_src = _num_reg_sources(inst)
        self.alu_stats.record(exec_mask, inst.width, inst.dtype_factor, num_src)
        self.simd_stats.record(exec_mask, inst.width, inst.dtype_factor, num_src)
        if self.trace_sink is not None:
            from ..trace.format import TraceEvent

            self.trace_sink.append(
                TraceEvent(inst.width, exec_mask, inst.dtype_factor))

        cycles = execution_cycles(
            exec_mask, inst.width, self.config.policy, inst.dtype_factor, min_cycles=1
        )
        pipe = self.pipes.for_opcode(inst.opcode)
        drain = pipe.issue(now, cycles)
        completion = drain + inst.opcode.latency
        thread.scoreboard.record(inst, completion)
        if self.telemetry is not None:
            self.telemetry.alu_issue(now, inst, exec_mask, cycles, pipe.name,
                                     self.config.policy)
        execute_alu(inst, exec_mask, thread.grf, thread.flags, selector)
        thread.advance(None)

    def _issue_memory(self, thread: EUThread, inst: Instruction, now: int) -> None:
        exec_mask = thread.masks.exec_mask(thread.pred_mask(inst))
        # SEND register-file traffic is the message payload it actually
        # moves: the address register (plus store data) read from the
        # GRF, and the load result written back.  The ALU defaults
        # (2 src + 1 dst) would overcharge every memory instruction and
        # inflate the Section 4.1 RF-savings metric.
        num_src = _num_reg_sources(inst)
        num_dst = 1 if inst.opcode.writes_dst else 0
        self.simd_stats.record(exec_mask, inst.width, inst.dtype_factor,
                               num_src, num_dst)
        width = inst.width
        addr_ref = inst.sources[0]
        offsets = thread.grf.read(addr_ref, width)

        # SEND pipe occupancy: one cycle per 256-bit register the message
        # moves out of the GRF — the address payload, plus the data
        # payload for stores.  (Loads return their data via write-back,
        # charged by the scoreboard, not by message occupancy.)
        occupancy = _send_occupancy(inst)
        self.pipes.send.issue(now, occupancy)
        if self.telemetry is not None:
            self.telemetry.mem_issue(now, inst, exec_mask, occupancy)

        if exec_mask == 0:
            completion = now + 1  # suppressed message
        elif inst.opcode.is_slm:
            completion = now + self._do_slm(thread, inst, offsets, exec_mask)
        else:
            completion = self._do_global(thread, inst, offsets, exec_mask, now)

        if inst.opcode.writes_dst:
            thread.scoreboard.mark_write(inst.writes(), completion)
        thread.advance(None)

    def _do_slm(self, thread: EUThread, inst: Instruction, offsets, exec_mask: int) -> int:
        wg = thread.workgroup
        if wg is None or wg.slm is None:
            raise RuntimeError(
                f"kernel {thread.program.name!r} uses SLM but none was allocated"
            )
        cycles = wg.slm_timing.access_cycles(offsets, exec_mask)
        if inst.opcode is Opcode.LOAD_SLM:
            values = gather(wg.slm.data, offsets, exec_mask, inst.dtype)
            thread.grf.write(inst.dst, inst.width, values, exec_mask)
        else:
            values = thread.grf.read(inst.sources[1], inst.width)
            scatter(wg.slm.data, offsets, values, exec_mask, inst.dtype)
        return cycles

    def _do_global(self, thread: EUThread, inst: Instruction, offsets, exec_mask: int,
                   now: int) -> int:
        wg = thread.workgroup
        if wg is None:
            raise RuntimeError("global memory access outside a launch context")
        surface = wg.surfaces[inst.surface]
        if inst.opcode is Opcode.LOAD:
            values = gather(surface, offsets, exec_mask, inst.dtype)
            thread.grf.write(inst.dst, inst.width, values, exec_mask)
        else:
            values = thread.grf.read(inst.sources[1], inst.width)
            scatter(surface, offsets, values, exec_mask, inst.dtype)

        size = inst.dtype.size
        offs = offsets[_mask_bools(exec_mask, inst.width)].astype(np.int64)
        line_nums = np.unique(np.concatenate(
            [offs // LINE_BYTES, (offs + size - 1) // LINE_BYTES]))
        lines = [(inst.surface, int(n)) for n in line_nums]
        return self.hierarchy.access(now, lines)
