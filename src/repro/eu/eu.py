"""The execution unit (EU): arbitration, issue, and timing.

Models the multi-threaded SIMD core of paper Section 2.2.  Per
arbitration pass (every two cycles) the EU issues up to two instructions
from distinct ready hardware threads.  ALU instructions occupy the FPU
or EM pipe for the number of quad cycles charged by the configured
compaction policy — this is where BCC/SCC turn mask statistics into
time.  Memory and barrier messages go through the SEND pipe to the
shared memory hierarchy; structured control flow executes in the front
end via the per-thread mask stack.

The EU is also the measurement point: every issued SIMD instruction's
``(width, exec_mask, dtype)`` is recorded into the run's
:class:`~repro.core.stats.CompactionStats`, exactly like the
instrumented functional model the paper uses for its trace studies.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from ..core.policy import execution_cycles
from ..core.stats import CompactionStats
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode, Pipe
from ..isa.registers import RegRef
from ..memory.cache import LINE_BYTES
from ..memory.hierarchy import MemoryHierarchy
from .grf import _mask_bools
from .interp import execute_alu, gather, scatter
from .pipes import PipeSet
from .thread import EUThread, ThreadState

#: Sentinel "never" time for event scheduling.
NEVER = 1 << 62


class ExecutionUnit:
    """One EU: thread slots, pipes, and the issue/timing logic."""

    def __init__(self, eu_id: int, config, hierarchy: MemoryHierarchy,
                 alu_stats: CompactionStats, simd_stats: CompactionStats,
                 trace_sink: Optional[list] = None,
                 telemetry=None, hostprof=None) -> None:
        self.eu_id = eu_id
        self.config = config
        self.hierarchy = hierarchy
        self.alu_stats = alu_stats
        self.simd_stats = simd_stats
        #: When set, every issued SIMD instruction's (width, mask) is
        #: appended as a TraceEvent -- the paper's instrumented
        #: functional model (Section 5.1), usable for offline profiling.
        self.trace_sink = trace_sink
        #: Optional :class:`~repro.telemetry.collector.EuTelemetry` view.
        #: None when telemetry is off: every emission site below is then
        #: one attribute load and one branch, nothing more.
        self.telemetry = telemetry
        #: Optional :class:`~repro.telemetry.hostprof.HostProfiler` for
        #: exact per-opcode host-time accounting (None when unprofiled).
        self.hostprof = hostprof
        self.pipes = PipeSet()
        self.threads: List[Optional[EUThread]] = [None] * config.threads_per_eu
        self._rr = 0  # rotating-priority pointer (paper: rotating/age arbiter)
        self.instructions_issued = 0
        #: Threads that reached EOT — the simulator's deadlock watchdog
        #: reads this (with instructions_issued) as its progress signal.
        self.threads_retired = 0

    # -- thread management ---------------------------------------------------

    def free_slots(self) -> int:
        return sum(1 for t in self.threads if t is None)

    def add_thread(self, thread: EUThread) -> None:
        for slot, occupant in enumerate(self.threads):
            if occupant is None:
                self.threads[slot] = thread
                if self.telemetry is not None:
                    self.telemetry.counters.incr("threads.dispatched")
                    thread.scoreboard.attach_counters(self.telemetry.counters)
                return
        raise RuntimeError(f"EU{self.eu_id} has no free thread slot")

    def busy(self) -> bool:
        return any(t is not None for t in self.threads)

    # -- per-cycle operation ---------------------------------------------------

    def step(self, now: int) -> None:
        """Run one arbitration pass (call only on even cycles)."""
        if now % self.config.issue_period != 0:
            return
        issued = 0
        last_issued = -1
        order = self._arbitration_order()
        tel = self.telemetry
        for slot in order:
            if issued >= self.config.issue_width:
                break
            thread = self.threads[slot]
            if thread is None or thread.state is not ThreadState.ACTIVE:
                continue
            inst = thread.current_instruction()
            if inst is None:
                continue
            if thread.earliest_issue(now) > now:
                if tel is not None:
                    tel.stall(now, slot,
                              "scoreboard"
                              if thread.scoreboard.ready_at(inst) > now
                              else "dispatch")
                continue
            if inst.opcode.pipe is not Pipe.CTRL:
                if not self.pipes.for_opcode(inst.opcode).can_accept(now):
                    if tel is not None:
                        tel.stall(now, slot, "pipe")
                    continue
            if self.hostprof is None:
                self._issue(slot, thread, inst, now)
            else:
                self._issue_profiled(slot, thread, inst, now)
            issued += 1
            last_issued = slot
        if issued:
            # Rotate past the last slot that actually issued, not past
            # the head of the order: a stalled head thread that never got
            # to issue must keep its priority, or it can be starved by
            # the threads behind it issuing pass after pass.
            self._rr = (last_issued + 1) % len(self.threads)

    def _arbitration_order(self) -> List[int]:
        n = len(self.threads)
        if self.config.arbiter == "fixed":
            return list(range(n))
        return [(self._rr + i) % n for i in range(n)]

    def next_event(self, now: int) -> int:
        """Earliest future cycle at which this EU could issue something."""
        best = NEVER
        for thread in self.threads:
            if thread is None or thread.state is not ThreadState.ACTIVE:
                continue
            inst = thread.current_instruction()
            if inst is None:
                continue
            t = thread.earliest_issue(now + 1)
            if inst.opcode.pipe is not Pipe.CTRL:
                t = max(t, self.pipes.for_opcode(inst.opcode).busy_until)
            # Align to the next arbitration boundary.
            period = self.config.issue_period
            if t % period != 0:
                t += period - (t % period)
            best = min(best, t)
        return best

    # -- issue paths ----------------------------------------------------------

    def _issue_profiled(self, slot: int, thread: EUThread, inst: Instruction,
                        now: int) -> None:
        """Issue wrapper charging exact host time to the opcode (hostprof)."""
        start = time.perf_counter()
        try:
            self._issue(slot, thread, inst, now)
        finally:
            self.hostprof.add_opcode(inst.opcode.name,
                                     time.perf_counter() - start)

    def _issue(self, slot: int, thread: EUThread, inst: Instruction, now: int) -> None:
        self.instructions_issued += 1
        thread.instructions_executed += 1
        thread.last_issue_cycle = now
        op = inst.opcode
        if op.pipe is Pipe.CTRL:
            self._issue_control(slot, thread, inst, now)
        elif op is Opcode.BARRIER:
            self._issue_barrier(thread, inst, now)
        elif op.is_memory:
            self._issue_memory(thread, inst, now)
        else:
            self._issue_alu(thread, inst, now)

    def _issue_control(self, slot: int, thread: EUThread, inst: Instruction, now: int) -> None:
        op = inst.opcode
        masks = thread.masks
        next_pc: Optional[int] = None
        if op is Opcode.IF:
            flag = thread.pred_mask(inst)
            target_is_else = (
                inst.target > 0
                and thread.program.instructions[inst.target - 1].opcode is Opcode.ELSE
            )
            next_pc = masks.do_if(flag, inst.target, target_is_else)
        elif op is Opcode.ELSE:
            next_pc = masks.do_else(inst.target)
        elif op is Opcode.ENDIF:
            masks.do_endif()
        elif op is Opcode.DO:
            next_pc = masks.do_do(inst.target)
        elif op is Opcode.BREAK:
            masks.do_break(thread.pred_mask(inst))
        elif op is Opcode.WHILE:
            next_pc = masks.do_while(thread.pred_mask(inst), inst.target)
        elif op is Opcode.EOT:
            thread.state = ThreadState.DONE
            self.threads[slot] = None
            self.threads_retired += 1
            if self.telemetry is not None:
                self.telemetry.thread_retired(now)
            if thread.workgroup is not None:
                thread.workgroup.thread_done(now)
            return
        else:  # pragma: no cover - exhaustive over CTRL opcodes
            raise NotImplementedError(f"control opcode {op}")
        if self.telemetry is not None:
            # Post-instruction mask population: the divergence timeline.
            self.telemetry.ctrl_issue(now, inst, masks.current, inst.width)
        thread.advance(next_pc)

    def _issue_barrier(self, thread: EUThread, inst: Instruction, now: int) -> None:
        if self.telemetry is not None:
            self.telemetry.barrier(now)
        thread.advance(None)  # resume after the barrier on release
        wg = thread.workgroup
        if wg is None:
            return  # free-standing thread: barrier is a no-op
        thread.state = ThreadState.AT_BARRIER
        wg.arrive_barrier(thread, now, self.config.barrier_latency)

    def _issue_alu(self, thread: EUThread, inst: Instruction, now: int) -> None:
        if inst.opcode is Opcode.SEL:
            # The predicate is the per-lane selector, not an execution mask.
            exec_mask = thread.masks.current
            selector = thread.pred_mask(inst)
        else:
            exec_mask = thread.masks.exec_mask(thread.pred_mask(inst))
            selector = 0
        num_src = sum(1 for s in inst.sources if isinstance(s, RegRef))
        self.alu_stats.record(exec_mask, inst.width, inst.dtype_factor, num_src)
        self.simd_stats.record(exec_mask, inst.width, inst.dtype_factor, num_src)
        if self.trace_sink is not None:
            from ..trace.format import TraceEvent

            self.trace_sink.append(
                TraceEvent(inst.width, exec_mask, inst.dtype_factor))

        cycles = execution_cycles(
            exec_mask, inst.width, self.config.policy, inst.dtype_factor, min_cycles=1
        )
        pipe = self.pipes.for_opcode(inst.opcode)
        drain = pipe.issue(now, cycles)
        completion = drain + inst.opcode.latency
        thread.scoreboard.record(inst, completion)
        if self.telemetry is not None:
            self.telemetry.alu_issue(now, inst, exec_mask, cycles, pipe.name,
                                     self.config.policy)
        execute_alu(inst, exec_mask, thread.grf, thread.flags, selector)
        thread.advance(None)

    def _issue_memory(self, thread: EUThread, inst: Instruction, now: int) -> None:
        exec_mask = thread.masks.exec_mask(thread.pred_mask(inst))
        # SEND register-file traffic is the message payload it actually
        # moves: the address register (plus store data) read from the
        # GRF, and the load result written back.  The ALU defaults
        # (2 src + 1 dst) would overcharge every memory instruction and
        # inflate the Section 4.1 RF-savings metric.
        num_src = sum(1 for s in inst.sources if isinstance(s, RegRef))
        num_dst = 1 if inst.opcode.writes_dst else 0
        self.simd_stats.record(exec_mask, inst.width, inst.dtype_factor,
                               num_src, num_dst)
        width = inst.width
        dtype = inst.dtype
        addr_ref = inst.sources[0]
        offsets = thread.grf.read(addr_ref, width)

        # SEND pipe occupancy: one cycle per 256-bit register moved.
        occupancy = max(1, dtype.regs_for_width(width))
        self.pipes.send.issue(now, occupancy)
        if self.telemetry is not None:
            self.telemetry.mem_issue(now, inst, exec_mask, occupancy)

        if exec_mask == 0:
            completion = now + 1  # suppressed message
        elif inst.opcode.is_slm:
            completion = now + self._do_slm(thread, inst, offsets, exec_mask)
        else:
            completion = self._do_global(thread, inst, offsets, exec_mask, now)

        if inst.opcode.writes_dst:
            thread.scoreboard.mark_write(inst.writes(), completion)
        thread.advance(None)

    def _do_slm(self, thread: EUThread, inst: Instruction, offsets, exec_mask: int) -> int:
        wg = thread.workgroup
        if wg is None or wg.slm is None:
            raise RuntimeError(
                f"kernel {thread.program.name!r} uses SLM but none was allocated"
            )
        cycles = wg.slm_timing.access_cycles(offsets, exec_mask)
        if inst.opcode is Opcode.LOAD_SLM:
            values = gather(wg.slm.data, offsets, exec_mask, inst.dtype)
            thread.grf.write(inst.dst, inst.width, values, exec_mask)
        else:
            values = thread.grf.read(inst.sources[1], inst.width)
            scatter(wg.slm.data, offsets, values, exec_mask, inst.dtype)
        return cycles

    def _do_global(self, thread: EUThread, inst: Instruction, offsets, exec_mask: int,
                   now: int) -> int:
        wg = thread.workgroup
        if wg is None:
            raise RuntimeError("global memory access outside a launch context")
        surface = wg.surfaces[inst.surface]
        if inst.opcode is Opcode.LOAD:
            values = gather(surface, offsets, exec_mask, inst.dtype)
            thread.grf.write(inst.dst, inst.width, values, exec_mask)
        else:
            values = thread.grf.read(inst.sources[1], inst.width)
            scatter(surface, offsets, values, exec_mask, inst.dtype)

        size = inst.dtype.size
        offs = offsets[_mask_bools(exec_mask, inst.width)].astype(np.int64)
        line_nums = np.unique(np.concatenate(
            [offs // LINE_BYTES, (offs + size - 1) // LINE_BYTES]))
        lines = [(inst.surface, int(n)) for n in line_nums]
        return self.hierarchy.access(now, lines)
