"""Batched functional execution engine (phase one of the fast core).

The paper's methodology (Section 5.1) runs an instrumented *functional*
model to collect per-instruction mask traces, then feeds those traces to
timing models.  ``GpuConfig(engine="fast")`` adopts the same split: this
module interprets a whole kernel launch functionally with **batched
numpy** — one vectorized kernel per opcode across every thread sitting
at the same program counter — and records, per thread, a compact issue
trace that :mod:`repro.eu.replay` then pushes through the unchanged
cycle-accurate timing model.

Why this is sound: the timing model (arbiter, pipes, scoreboard, memory
hierarchy, compaction policies) consumes only each instruction's
``(pc, exec_mask)`` plus the memory lines it touches — never register
values.  The cross-policy verification harness already pins that
architectural results are interleaving-independent (identical digests
across RAW/IVB/BCC/SCC, whose timings interleave threads differently),
so the canonical lockstep interleaving used here (all threads at the
smallest pc first, ascending thread id within a wavefront) produces the
same buffers, flags, and per-thread mask streams as the interleaved
interpreter.

Trace schema — one entry per issued instruction, ``(pc, mask, aux)``:

* ALU:      ``mask`` is the final execution mask (for SEL: the current
  mask, matching the stats convention); ``aux`` is ``None``.
* CTRL:     ``mask`` is the *post-instruction* mask-stack population
  (what telemetry records); ``aux`` is ``None``.
* BARRIER:  ``mask`` is the current mask; ``aux`` is ``None``.
* SLM:      ``mask`` is the execution mask; ``aux`` is the bank-conflict
  cycle count, or ``None`` when the message was suppressed (mask 0).
* global:   ``mask`` is the execution mask; ``aux`` is the sorted tuple
  of distinct cache-line numbers touched (``None`` when suppressed), so
  replay drives :class:`~repro.memory.hierarchy.MemoryHierarchy` with
  exactly the lines the interpreter would have requested.
"""

from __future__ import annotations

import time
from itertools import compress
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import DeadlockError, JobTimeoutError
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode, Pipe
from ..isa.program import ParamKind, Program
from ..isa.registers import NUM_GRF_REGS, Imm, RegRef
from ..isa.types import SLOTS_PER_REG, DType
from ..memory.cache import LINE_BYTES
from ..memory.slm import SlmAllocation, SlmTiming
from .interp import _int_div, _shift_amounts, gather, scatter
from .maskstack import MaskStack

__all__ = ["run_functional"]

#: Per-thread functional status codes (plain ints for numpy storage).
_ACTIVE, _AT_BARRIER, _DONE = 0, 1, 2

#: Wall-clock deadline polling period, in wavefronts.
_WALL_CHECK_PERIOD = 64

TraceEntry = Tuple[int, int, object]


def run_functional(
    program: Program,
    global_size: int,
    local_size: int,
    surfaces: List[np.ndarray],
    scalars: Dict[str, float],
    config,
    wall_deadline: Optional[float] = None,
) -> List[List[TraceEntry]]:
    """Execute a launch functionally; return one issue trace per thread.

    Thread enumeration (ids, dispatch masks, partial tails) matches
    :meth:`repro.gpu.dispatch.Launch._materialize` exactly, so trace
    index *i* belongs to the thread the replay launch materializes with
    ``thread_id == i``.  Buffers behind *surfaces* are mutated in place,
    exactly as the interleaved interpreter would.
    """
    return _BatchEngine(
        program, global_size, local_size, surfaces, scalars, config,
        wall_deadline,
    ).run()


class _BatchEngine:
    """Vectorized lockstep interpreter over every thread of one launch."""

    def __init__(self, program, global_size, local_size, surfaces, scalars,
                 config, wall_deadline):
        self.program = program
        self.instructions = program.instructions
        self.config = config
        self.surfaces = surfaces
        self.wall_deadline = wall_deadline
        width = program.simd_width
        self.width = width

        # -- thread geometry (mirrors Launch._materialize) ----------------
        threads_per_wg = local_size // width
        num_workgroups = -(-global_size // local_size)
        wg_of: List[int] = []
        dispatch_masks: List[int] = []
        global_bases: List[int] = []
        local_bases: List[int] = []
        for wg_id in range(num_workgroups):
            wg_base = wg_id * local_size
            wg_items = min(local_size, global_size - wg_base)
            for t in range(threads_per_wg):
                local_base = t * width
                if local_base >= wg_items:
                    break
                lanes_valid = min(width, wg_items - local_base)
                wg_of.append(wg_id)
                dispatch_masks.append((1 << lanes_valid) - 1)
                global_bases.append(wg_base + local_base)
                local_bases.append(local_base)
        n = len(wg_of)
        self.n_threads = n
        self.wg_of = np.asarray(wg_of, dtype=np.int64)
        self.num_workgroups = num_workgroups

        # -- architectural state ------------------------------------------
        self.storage = np.zeros((n, NUM_GRF_REGS * SLOTS_PER_REG),
                                dtype=np.uint32)
        self.flags = np.zeros((2, n), dtype=np.uint64)
        self.pc = np.zeros(n, dtype=np.int64)
        self.status = np.zeros(n, dtype=np.int8)
        self.masks = [MaskStack(width, m) for m in dispatch_masks]
        #: Vector mirror of each thread's ``masks[i].current``.
        self.current = np.asarray(dispatch_masks, dtype=np.uint64)
        self.traces: List[List[TraceEntry]] = [[] for _ in range(n)]
        self._lane_shifts = np.arange(width, dtype=np.uint64)
        self._lane_bits = (np.uint64(1) << self._lane_shifts)
        #: Reusable 0..n_threads arange for per-group row indexing.
        self._row_arange = np.arange(n, dtype=np.int64)
        #: Threads of each workgroup (row indices), for barrier release.
        self._wg_rows = [
            np.nonzero(self.wg_of == wg)[0] for wg in range(num_workgroups)
        ]
        #: (id(imm), dtype, width) -> cached 1-row constant array.
        self._imm_cache: dict = {}

        self.slm_data = [
            SlmAllocation(program.slm_bytes) if program.slm_bytes else None
            for _ in range(num_workgroups)
        ]
        self.slm_timing = [
            SlmTiming(config.slm_latency, config.slm_banks)
            for _ in range(num_workgroups)
        ]

        self._write_payloads(np.asarray(global_bases, dtype=np.int64),
                             np.asarray(local_bases, dtype=np.int64), scalars)

    # -- dispatch payload -----------------------------------------------------

    def _write_payloads(self, global_bases, local_bases, scalars) -> None:
        program = self.program
        width = self.width
        lanes = np.arange(width, dtype=np.int64)
        if program.gid_reg is not None:
            vals = (global_bases[:, None] + lanes[None, :]).astype(np.int32)
            self._store_raw(program.gid_reg, vals)
        if program.lid_reg is not None:
            vals = (local_bases[:, None] + lanes[None, :]).astype(np.int32)
            self._store_raw(program.lid_reg, vals)
        for param in program.scalar_params():
            if param.name not in scalars:
                raise ValueError(
                    f"kernel {program.name!r} missing scalar argument "
                    f"{param.name!r}"
                )
            dtype = DType.F32 if param.kind is ParamKind.SCALAR_F32 else DType.I32
            row = np.full((1, width), scalars[param.name],
                          dtype=dtype.np_dtype)
            raw = np.broadcast_to(row.view(np.uint32), (self.n_threads, width))
            start = param.reg * SLOTS_PER_REG
            self.storage[:, start:start + width] = raw

    def _store_raw(self, reg: int, values: np.ndarray) -> None:
        raw = np.ascontiguousarray(values).view(np.uint32)
        start = reg * SLOTS_PER_REG
        self.storage[:, start:start + raw.shape[1]] = raw

    # -- main loop ------------------------------------------------------------

    def run(self) -> List[List[TraceEntry]]:
        status = self.status
        # One wavefront issues at most one instruction per active thread,
        # and the interleaved core issues at most one instruction per
        # thread per issue period — so the cycle budget translates to a
        # wavefront budget without loosening the deadlock net.
        max_wavefronts = self.config.max_cycles // max(1, self.config.issue_period) + 1
        wavefront = 0
        while True:
            active = np.nonzero(status == _ACTIVE)[0]
            if active.size == 0:
                if bool(np.all(status == _DONE)):
                    return self.traces
                raise DeadlockError(
                    f"kernel {self.program.name!r} stalled in the functional "
                    f"pass: every live thread is waiting at a barrier"
                )
            pcs = self.pc[active]
            order = np.argsort(pcs, kind="stable")
            rows_sorted = active[order]
            pcs_sorted = pcs[order]
            start = 0
            total = rows_sorted.size
            while start < total:
                pc = int(pcs_sorted[start])
                end = int(np.searchsorted(pcs_sorted, pc, side="right"))
                self._exec_group(pc, rows_sorted[start:end])
                start = end
            self._release_barriers()
            wavefront += 1
            if wavefront > max_wavefronts:
                raise DeadlockError(
                    f"kernel {self.program.name!r} exceeded "
                    f"max_cycles={self.config.max_cycles} (functional pass)"
                )
            if (self.wall_deadline is not None
                    and wavefront % _WALL_CHECK_PERIOD == 0
                    and time.monotonic() > self.wall_deadline):
                raise JobTimeoutError(
                    f"kernel {self.program.name!r} exceeded its wall-clock "
                    f"budget in the functional pass (wavefront {wavefront})"
                )

    def _release_barriers(self) -> None:
        status = self.status
        waiting = np.nonzero(status == _AT_BARRIER)[0]
        if waiting.size == 0:
            return
        for wg in np.unique(self.wg_of[waiting]):
            rows = self._wg_rows[wg]
            st = status[rows]
            # Same release rule as WorkgroupInstance._maybe_release: the
            # barrier opens once every non-retired thread has arrived.
            if not np.any(st == _ACTIVE):
                status[rows[st == _AT_BARRIER]] = _ACTIVE

    # -- per-group execution --------------------------------------------------

    def _exec_group(self, pc: int, rows: np.ndarray) -> None:
        inst = self.instructions[pc]
        op = inst.opcode
        if op.pipe is Pipe.CTRL:
            self._exec_ctrl(pc, inst, rows)
            return
        if op is Opcode.BARRIER:
            self._exec_barrier(pc, inst, rows)
            return
        if op is Opcode.SEL:
            exec_masks = self.current[rows]
            selectors = self._pred_values(inst, rows)
        else:
            selectors = None
            if inst.pred is None:
                exec_masks = self.current[rows]
            else:
                exec_masks = self.current[rows] & self._pred_values(inst, rows)
        if op.is_memory:
            self._exec_memory(pc, inst, rows, exec_masks)
        else:
            self._exec_alu(pc, inst, rows, exec_masks, selectors)

    def _pred_values(self, inst: Instruction, rows: np.ndarray) -> np.ndarray:
        values = self.flags[inst.pred.index][rows]
        if inst.pred.negate:
            values = ~values
        return values & np.uint64((1 << inst.width) - 1)

    def _pred_value_row(self, inst: Instruction, row: int) -> Optional[int]:
        if inst.pred is None:
            return None
        value = int(self.flags[inst.pred.index][row])
        if inst.pred.negate:
            value = ~value
        return value & ((1 << inst.width) - 1)

    # -- control flow ---------------------------------------------------------

    def _exec_ctrl(self, pc: int, inst: Instruction, rows: np.ndarray) -> None:
        op = inst.opcode
        instructions = self.instructions
        for row in rows:
            row = int(row)
            masks = self.masks[row]
            next_pc: Optional[int] = None
            if op is Opcode.IF:
                target_is_else = (
                    inst.target > 0
                    and instructions[inst.target - 1].opcode is Opcode.ELSE
                )
                next_pc = masks.do_if(self._pred_value_row(inst, row),
                                      inst.target, target_is_else)
            elif op is Opcode.ELSE:
                next_pc = masks.do_else(inst.target)
            elif op is Opcode.ENDIF:
                masks.do_endif()
            elif op is Opcode.DO:
                next_pc = masks.do_do(inst.target)
            elif op is Opcode.BREAK:
                masks.do_break(self._pred_value_row(inst, row))
            elif op is Opcode.WHILE:
                next_pc = masks.do_while(self._pred_value_row(inst, row),
                                         inst.target)
            elif op is Opcode.EOT:
                self.traces[row].append((pc, masks.current, None))
                self.status[row] = _DONE
                continue
            else:  # pragma: no cover - exhaustive over CTRL opcodes
                raise NotImplementedError(f"control opcode {op}")
            # Post-instruction mask population, as telemetry records it.
            self.traces[row].append((pc, masks.current, None))
            self.current[row] = masks.current
            self.pc[row] = pc + 1 if next_pc is None else next_pc

    def _exec_barrier(self, pc: int, inst: Instruction, rows: np.ndarray) -> None:
        for row in rows:
            self.traces[int(row)].append((pc, int(self.current[row]), None))
        self.pc[rows] += 1
        self.status[rows] = _AT_BARRIER

    # -- ALU ------------------------------------------------------------------

    def _exec_alu(self, pc: int, inst: Instruction, rows: np.ndarray,
                  exec_masks: np.ndarray,
                  selectors: Optional[np.ndarray]) -> None:
        width = inst.width
        op = inst.opcode
        dtype = inst.dtype

        if op is Opcode.CMP:
            with np.errstate(all="ignore"):
                a = self._read_src(inst.sources[0], rows, width, dtype)
                b = self._read_src(inst.sources[1], rows, width, dtype)
                result = inst.cmp_op.apply(a, b)
            taken = np.asarray(result, dtype=bool) & self._enabled(exec_masks, width)
            bits = (taken * self._lane_bits[None, :width]).sum(
                axis=1, dtype=np.uint64)
            idx = inst.flag_dst.index
            self.flags[idx][rows] = (self.flags[idx][rows] & ~exec_masks) | bits
        elif op is Opcode.SEL:
            a = self._read_src(inst.sources[0], rows, width, dtype)
            b = self._read_src(inst.sources[1], rows, width, dtype)
            sel = self._enabled(selectors, width)
            self._write_reg(inst.dst, rows, width,
                            np.where(sel, a, b), exec_masks)
        else:
            with np.errstate(all="ignore"):
                result = self._alu_value(inst, rows, width, dtype)
            self._write_reg(inst.dst, rows, width,
                            np.asarray(result, dtype=dtype.np_dtype),
                            exec_masks)

        self._append_entries(pc, rows, exec_masks)
        self.pc[rows] += 1

    def _alu_value(self, inst, rows, width, dtype):
        op = inst.opcode
        if op is Opcode.CVT:
            src = self._read_src(inst.sources[0], rows, width, inst.src_dtype)
            return src.astype(dtype.np_dtype)
        srcs = [self._read_src(s, rows, width, dtype) for s in inst.sources]
        if op is Opcode.MOV:
            return srcs[0]
        if op is Opcode.ADD:
            return srcs[0] + srcs[1]
        if op is Opcode.SUB:
            return srcs[0] - srcs[1]
        if op is Opcode.MUL:
            return srcs[0] * srcs[1]
        if op is Opcode.MAD:
            return srcs[0] * srcs[1] + srcs[2]
        if op is Opcode.MIN:
            return np.minimum(srcs[0], srcs[1])
        if op is Opcode.MAX:
            return np.maximum(srcs[0], srcs[1])
        if op is Opcode.ABS:
            return np.abs(srcs[0])
        if op is Opcode.FLOOR:
            return np.floor(srcs[0]) if dtype.is_float else srcs[0]
        if op is Opcode.AND:
            return srcs[0] & srcs[1]
        if op is Opcode.OR:
            return srcs[0] | srcs[1]
        if op is Opcode.XOR:
            return srcs[0] ^ srcs[1]
        if op is Opcode.NOT:
            return ~srcs[0]
        if op is Opcode.SHL:
            # Same uint64-domain evaluation as the scalar interpreter.
            return (
                srcs[0].astype(np.int64).astype(np.uint64)
                << _shift_amounts(srcs[1], dtype).astype(np.uint64)
            ).astype(dtype.np_dtype)
        if op is Opcode.SHR:
            return (srcs[0].astype(np.int64)
                    >> _shift_amounts(srcs[1], dtype)).astype(dtype.np_dtype)
        if op is Opcode.DIV:
            return (srcs[0] / srcs[1] if dtype.is_float
                    else _int_div(srcs[0], srcs[1]))
        if op is Opcode.SQRT:
            return np.sqrt(srcs[0])
        if op is Opcode.RSQRT:
            return 1.0 / np.sqrt(srcs[0])
        if op is Opcode.SIN:
            return np.sin(srcs[0])
        if op is Opcode.COS:
            return np.cos(srcs[0])
        if op is Opcode.EXP:
            return np.exp(srcs[0])
        if op is Opcode.LOG:
            return np.log(srcs[0])
        if op is Opcode.POW:
            return np.power(srcs[0], srcs[1])
        raise NotImplementedError(f"functional model missing for {op}")

    # -- memory ---------------------------------------------------------------

    def _exec_memory(self, pc: int, inst: Instruction, rows: np.ndarray,
                     exec_masks: np.ndarray) -> None:
        width = inst.width
        offsets = self._read_reg(inst.sources[0], rows, width)
        if inst.opcode.is_slm:
            self._exec_slm(pc, inst, rows, exec_masks, offsets)
        else:
            self._exec_global(pc, inst, rows, exec_masks, offsets)
        self.pc[rows] += 1

    def _exec_slm(self, pc, inst, rows, exec_masks, offsets) -> None:
        program = self.program
        store_values = None
        if inst.opcode is not Opcode.LOAD_SLM:
            store_values = self._read_reg(inst.sources[1], rows, inst.width)
        for i, row in enumerate(rows):
            row = int(row)
            mask = int(exec_masks[i])
            if mask == 0:
                self.traces[row].append((pc, 0, None))
                continue
            wg = int(self.wg_of[row])
            slm = self.slm_data[wg]
            if slm is None:
                raise RuntimeError(
                    f"kernel {program.name!r} uses SLM but none was allocated"
                )
            cycles = self.slm_timing[wg].access_cycles(offsets[i], mask)
            if inst.opcode is Opcode.LOAD_SLM:
                values = gather(slm.data, offsets[i], mask, inst.dtype)
                self._write_reg(inst.dst, np.asarray([row]), inst.width,
                                values[None, :],
                                np.asarray([mask], dtype=np.uint64))
            else:
                scatter(slm.data, offsets[i], store_values[i], mask,
                        inst.dtype)
            self.traces[row].append((pc, mask, cycles))

    def _exec_global(self, pc, inst, rows, exec_masks, offsets) -> None:
        width = inst.width
        dtype = inst.dtype
        size = dtype.size
        surface = self.surfaces[inst.surface]
        view = surface.view(dtype.np_dtype)
        count = view.shape[0]
        enabled = self._enabled(exec_masks, width)

        # Same validation as interp._checked_indices, vectorized over the
        # group; the canonical issue order makes "first offending lane"
        # the lowest (thread, lane) pair.  The uint64 domain folds the
        # negative-offset case into the range check.
        unsigned = offsets.astype(np.uint64)
        idx, rem = np.divmod(unsigned, np.uint64(size))
        bad = rem != 0
        bad |= idx >= count
        bad &= enabled
        if bad.any():
            row_bad = int(np.argmax(bad.any(axis=1)))
            lane = int(np.argmax(bad[row_bad]))
            off = int(offsets[row_bad, lane])
            verb = "writes" if inst.opcode.is_store else "reads"
            if off % size != 0:
                raise ValueError(
                    f"misaligned {dtype} access at byte offset {off}")
            raise IndexError(
                f"lane {lane} {verb} byte offset {off}, beyond surface of "
                f"{surface.size} bytes"
            )
        all_enabled = bool(enabled.all())
        if inst.opcode is Opcode.LOAD:
            idx_safe = idx if all_enabled else np.where(enabled, idx, 0)
            self._write_reg(inst.dst, rows, width, view[idx_safe], exec_masks)
        else:
            values = self._read_reg(inst.sources[1], rows, width)
            if all_enabled:
                view[idx.ravel()] = values.ravel()
            else:
                flat_enabled = enabled.ravel()
                # Row-major flatten: within a row the highest lane wins
                # (the hardware's quad write-back order); across rows
                # the highest thread wins, matching the canonical
                # ascending issue order.
                view[idx.ravel()[flat_enabled]] = values.ravel()[flat_enabled]

        # Validation proved every enabled offset is in range, so the
        # unsigned image of the offsets is exact for line numbering.
        lo = unsigned // LINE_BYTES
        hi = (unsigned + np.uint64(size - 1)) // LINE_BYTES
        # Per-row sorted distinct line numbers, without a per-row set:
        # disabled lanes are overwritten with the row's first enabled
        # line (rows with mask == 0 get aux None, so the fill value is
        # then irrelevant), the concatenated lo/hi row is sorted, and
        # duplicates collapse via a keep-first-of-run mask.  ``tolist``
        # materializes plain ints so aux tuples never hold numpy scalars.
        if not all_enabled:
            first = lo[self._row_arange[:lo.shape[0]],
                       enabled.argmax(axis=1)][:, None]
            lo = np.where(enabled, lo, first)
            hi = np.where(enabled, hi, first)
        both = np.concatenate([lo, hi], axis=1)
        both.sort(axis=1)
        keep = np.empty(both.shape, dtype=bool)
        keep[:, 0] = True
        keep[:, 1:] = both[:, 1:] != both[:, :-1]
        lines_rows = both.tolist()
        keep_rows = keep.tolist()
        traces = self.traces
        for row, mask, lines, keep_row in zip(
                rows.tolist(), exec_masks.tolist(), lines_rows, keep_rows):
            aux = tuple(compress(lines, keep_row)) if mask else None
            traces[row].append((pc, mask, aux))

    # -- register-file access -------------------------------------------------

    def _enabled(self, masks: np.ndarray, width: int) -> np.ndarray:
        """Boolean (rows, width) lane-enable matrix for a mask vector."""
        return ((masks[:, None] >> self._lane_shifts[None, :width])
                & np.uint64(1)).astype(bool)

    def _read_src(self, operand, rows, width, dtype) -> np.ndarray:
        if isinstance(operand, RegRef):
            values = self._read_reg(operand, rows, width)
            if operand.dtype is not dtype:
                values = values.astype(dtype.np_dtype)
            return values
        if isinstance(operand, Imm):
            # Broadcast a cached 1-row constant instead of materializing
            # a fresh (rows, width) array per group; every consumer only
            # reads sources, so the shared read-only view is safe.
            key = (id(operand), dtype, width)
            row = self._imm_cache.get(key)
            if row is None:
                row = self._imm_cache[key] = np.full(
                    (1, width), operand.value, dtype=dtype.np_dtype)
            return np.broadcast_to(row, (rows.shape[0], width))
        raise TypeError(f"cannot evaluate operand {operand!r}")

    def _slot_span(self, ref: RegRef, width: int) -> Tuple[int, int]:
        start = ref.reg * SLOTS_PER_REG
        slots = width * ref.dtype.size // 4
        if slots == 0:  # sub-32-bit widths never occur; guard anyway
            slots = 1
        end = start + slots
        if end > NUM_GRF_REGS * SLOTS_PER_REG:
            raise ValueError(
                f"operand {ref} at SIMD{width} overflows the GRF "
                f"(slots {start}..{end - 1})"
            )
        return start, end

    def _read_reg(self, ref: RegRef, rows: np.ndarray, width: int) -> np.ndarray:
        start, end = self._slot_span(ref, width)
        block = self.storage[rows, start:end]  # advanced index: a copy
        return block.view(ref.dtype.np_dtype)

    def _write_reg(self, ref: RegRef, rows: np.ndarray, width: int,
                   values: np.ndarray, exec_masks: np.ndarray) -> None:
        start, end = self._slot_span(ref, width)
        values = np.asarray(values, dtype=ref.dtype.np_dtype)
        full = np.uint64((1 << width) - 1)
        if bool(np.all(exec_masks == full)):
            raw = np.ascontiguousarray(values).view(np.uint32)
            self.storage[rows, start:end] = raw.reshape(rows.shape[0],
                                                        end - start)
            return
        block = self.storage[rows, start:end]
        typed = block.view(ref.dtype.np_dtype)
        np.copyto(typed, values, where=self._enabled(exec_masks, width))
        self.storage[rows, start:end] = block

    # -- trace helpers --------------------------------------------------------

    def _append_entries(self, pc: int, rows: np.ndarray,
                        exec_masks: np.ndarray) -> None:
        traces = self.traces
        for row, mask in zip(rows.tolist(), exec_masks.tolist()):
            traces[row].append((pc, mask, None))
