"""SIMT execution-mask stack for structured control flow.

The EU keeps, per thread, the current execution mask plus a stack of
frames for nested IF/ELSE/ENDIF blocks and DO/BREAK/WHILE loops (the
"stack of predicate registers" lineage the paper cites back to the Chap
GPU).  The mask produced here, ANDed with the instruction's predicate
and the dispatch mask, is exactly the *final SIMD execution mask* that
the BCC/SCC control logic inspects (paper Section 2.2, decode stage).

Divergence semantics implemented:

* ``IF f``    — push a frame; active lanes split into taken / not-taken.
  An empty taken set jumps straight to the else arm (or ENDIF).
* ``ELSE``    — switch to the frame's not-taken lanes; empty set jumps
  to ENDIF.
* ``ENDIF``   — pop; the pre-IF lanes resume.
* ``DO``      — push a loop frame; an empty current mask skips the loop.
* ``BREAK f`` — deactivate lanes until the loop exits.  Broken lanes are
  also stripped from every enclosing IF frame *inside* the loop so an
  ENDIF cannot resurrect them mid-loop.
* ``WHILE f`` — lanes with *f* set iterate again (back edge); when none
  survive, the loop frame pops and the loop-entry lanes resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class _IfFrame:
    else_mask: int
    restore_mask: int
    in_else: bool = False


@dataclass
class _LoopFrame:
    restore_mask: int
    break_mask: int = 0


class MaskStack:
    """Current execution mask + structured-divergence frame stack."""

    def __init__(self, width: int, dispatch_mask: Optional[int] = None) -> None:
        self.width = width
        full = (1 << width) - 1
        self.dispatch_mask = full if dispatch_mask is None else (dispatch_mask & full)
        self.current = self.dispatch_mask
        self._frames: List[object] = []

    @property
    def depth(self) -> int:
        """Nesting depth (number of open frames)."""
        return len(self._frames)

    def exec_mask(self, pred_mask: Optional[int] = None) -> int:
        """Final execution mask for an instruction.

        ``pred_mask`` is the instruction's predicate flag value (already
        negated if the predicate is inverted); ``None`` means unpredicated.
        """
        if pred_mask is None:
            return self.current
        return self.current & pred_mask

    # Each control method returns the next PC, or None for fall-through.

    def do_if(self, flag_mask: int, target: int, target_is_else: bool) -> Optional[int]:
        taken = self.current & flag_mask
        frame = _IfFrame(else_mask=self.current & ~flag_mask & self.dispatch_mask,
                         restore_mask=self.current)
        self._frames.append(frame)
        self.current = taken
        if taken == 0:
            if target_is_else:
                frame.in_else = True
                self.current = frame.else_mask
            return target
        return None

    def do_else(self, target: int) -> Optional[int]:
        frame = self._top_if("ELSE")
        if frame.in_else:
            raise RuntimeError("ELSE executed twice for the same IF")
        frame.in_else = True
        self.current = frame.else_mask
        if self.current == 0:
            return target  # jump to ENDIF
        return None

    def do_endif(self) -> None:
        frame = self._frames.pop() if self._frames else None
        if not isinstance(frame, _IfFrame):
            raise RuntimeError("ENDIF without matching IF frame")
        self.current = frame.restore_mask

    def do_do(self, target: int) -> Optional[int]:
        if self.current == 0:
            # No active lanes: skip the whole loop body (jump past WHILE).
            return target
        self._frames.append(_LoopFrame(restore_mask=self.current))
        return None

    def do_break(self, flag_mask: int) -> None:
        breaking = self.current & flag_mask
        if breaking == 0:
            return
        loop_idx = self._innermost_loop_index("BREAK")
        loop = self._frames[loop_idx]
        loop.break_mask |= breaking
        # Strip broken lanes from the current mask and from every IF frame
        # nested inside the loop, so ENDIF restores cannot re-enable them.
        self.current &= ~breaking
        for frame in self._frames[loop_idx + 1 :]:
            if isinstance(frame, _IfFrame):
                frame.else_mask &= ~breaking
                frame.restore_mask &= ~breaking

    def do_while(self, flag_mask: int, back_target: int) -> Optional[int]:
        loop_idx = self._innermost_loop_index("WHILE")
        if loop_idx != len(self._frames) - 1:
            raise RuntimeError("WHILE executed with unclosed IF inside the loop")
        continuing = self.current & flag_mask
        if continuing:
            self.current = continuing
            return back_target
        loop = self._frames.pop()
        self.current = loop.restore_mask
        return None

    # -- helpers -----------------------------------------------------------

    def _top_if(self, what: str) -> _IfFrame:
        if not self._frames or not isinstance(self._frames[-1], _IfFrame):
            raise RuntimeError(f"{what} without an open IF frame")
        return self._frames[-1]

    def _innermost_loop_index(self, what: str) -> int:
        for idx in range(len(self._frames) - 1, -1, -1):
            if isinstance(self._frames[idx], _LoopFrame):
                return idx
        raise RuntimeError(f"{what} outside any loop")
