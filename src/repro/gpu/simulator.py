"""The whole-GPU cycle-level simulator (the paper's GPGenSim substitute).

Execution-driven: kernels are interpreted functionally (registers, flags
and buffers take real values) while an event-accelerated cycle loop
charges time through the EU pipelines and the shared memory hierarchy.
The loop advances directly to the next cycle at which any EU could issue
or any dispatch could happen, so idle stretches (long memory stalls)
cost no host time.

Typical use::

    sim = GpuSimulator(GpuConfig(policy=CompactionPolicy.BCC))
    result = sim.run(program, global_size=4096,
                     buffers={"x": x, "y": y}, scalars={"a": 2.0})
    print(result.total_cycles, result.simd_efficiency)
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..core.stats import CompactionStats
from ..errors import DeadlockError, JobTimeoutError
from ..eu.eu import NEVER, ExecutionUnit
from ..isa.program import Program
from ..memory.hierarchy import MemoryHierarchy
from ..telemetry.collector import make_collector
from .config import GpuConfig
from .dispatch import Launch, bind_surfaces
from .results import KernelRunResult

__all__ = ["DeadlockError", "GpuSimulator"]

#: Cycle-loop iterations between wall-clock deadline checks.
_WALL_CHECK_PERIOD = 64


class GpuSimulator:
    """Drives kernel launches through the configured GPU model.

    Args:
        config: machine parameters (defaults to :class:`GpuConfig`).
        wall_deadline: optional ``time.monotonic()`` instant after which
            the cycle loop aborts with :class:`~repro.errors.JobTimeoutError`
            — the in-process half of the runner's per-job wall-clock
            budget (the parent process enforces a grace backstop for
            workers hung outside this loop).
    """

    def __init__(self, config: Optional[GpuConfig] = None,
                 wall_deadline: Optional[float] = None,
                 hostprof=None) -> None:
        self.config = config if config is not None else GpuConfig()
        self.config.validate()
        self.wall_deadline = wall_deadline
        #: Optional :class:`~repro.telemetry.hostprof.HostProfiler`:
        #: threaded to the EUs for exact per-opcode host-time accounting.
        self.hostprof = hostprof

    def run(
        self,
        program: Program,
        global_size: int,
        local_size: Optional[int] = None,
        buffers: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, float]] = None,
        trace_sink: Optional[list] = None,
    ) -> KernelRunResult:
        """Simulate one kernel launch and return its measurements.

        Buffers are mutated in place (unified memory); every launch
        starts with cold caches and idle ports, matching the paper's
        per-kernel methodology.  Passing a list as *trace_sink* captures
        every ALU instruction's execution mask as a
        :class:`~repro.trace.format.TraceEvent` (the instrumented
        functional model of paper Section 5.1).
        """
        config = self.config
        collector = make_collector(config)
        hierarchy = MemoryHierarchy(config.memory, telemetry=collector)
        alu_stats = CompactionStats(min_cycles=1)
        simd_stats = CompactionStats(min_cycles=1)
        surfaces = bind_surfaces(program, buffers or {})
        if config.engine == "fast":
            # Two-phase core: a batched functional pass computes all
            # architectural state and records per-thread issue traces;
            # the cycle loop below replays those traces through the
            # unchanged timing machinery (same ExecutionUnit code paths
            # for arbitration, pipes, scoreboards, and the hierarchy).
            from ..eu.batch import run_functional
            from ..eu.replay import (ReplayExecutionUnit, ReplayLaunch,
                                     record_trace_stats)

            eu_cls, launch_cls = ReplayExecutionUnit, ReplayLaunch
        else:
            eu_cls, launch_cls = ExecutionUnit, Launch
        eus = [
            eu_cls(i, config, hierarchy, alu_stats, simd_stats,
                   trace_sink,
                   telemetry=(collector.eu(i) if collector is not None
                              else None),
                   hostprof=self.hostprof)
            for i in range(config.num_eus)
        ]
        launch = launch_cls(
            program,
            global_size,
            local_size,
            surfaces,
            scalars or {},
            config,
            telemetry=collector,
        )
        if config.engine == "fast":
            # Launch construction above already validated the geometry,
            # so the functional pass can assume it (and resolves
            # local_size the same way the launch did).
            launch.traces = run_functional(
                program, global_size, launch.local_size, surfaces,
                scalars or {}, config, self.wall_deadline,
            )
            record_trace_stats(program, launch.traces, alu_stats, simd_stats)

        now = 0
        # Watchdog state: the last cycle at which any EU issued an
        # instruction or retired a thread.  A scheduling deadlock keeps
        # generating events (the dispatch nudge, pipe drains) without
        # ever issuing, so the cycle budget alone would spin for a long
        # time before tripping; the no-progress detector converts that
        # into a typed error within ``watchdog_cycles``.
        last_progress_cycle = 0
        last_progress_mark = (0, 0)
        iterations = 0
        # With telemetry off, an EU whose cached event floor lies in the
        # future cannot issue and emits nothing — its step would early-out
        # anyway (see ExecutionUnit.step), so skip even the call.  Any
        # state change that could lower the floor (add_thread, its own
        # issues) clears the cache, making the floor None and the EU
        # steppable again.
        skip_floors = collector is None
        all_dispatched = launch.all_dispatched
        while True:
            if not all_dispatched:
                launch.dispatch(eus, now)
                all_dispatched = launch.all_dispatched
            for eu in eus:
                if skip_floors:
                    floor = eu._event_floor
                    if floor is not None and now < floor:
                        continue
                eu.step(now)
            if launch.done:
                break
            issued_total = 0
            retired_total = 0
            for eu in eus:
                issued_total += eu.instructions_issued
                retired_total += eu.threads_retired
            mark = (issued_total, retired_total)
            if mark != last_progress_mark:
                last_progress_mark = mark
                last_progress_cycle = now
            elif (config.watchdog_cycles
                  and now - last_progress_cycle > config.watchdog_cycles):
                raise DeadlockError(
                    f"kernel {program.name!r} issued no instruction for "
                    f"{now - last_progress_cycle} cycles (watchdog_cycles="
                    f"{config.watchdog_cycles}) with {launch.pending_workgroups} "
                    f"workgroups undispatched and {launch.live_workgroups} live"
                )
            iterations += 1
            if (self.wall_deadline is not None
                    and iterations % _WALL_CHECK_PERIOD == 0
                    and time.monotonic() > self.wall_deadline):
                raise JobTimeoutError(
                    f"kernel {program.name!r} exceeded its wall-clock budget "
                    f"at cycle {now} ({launch.pending_workgroups} workgroups "
                    f"undispatched)"
                )
            # Inlined min over ExecutionUnit.next_event: the align(now+1)
            # term is identical for every EU, so min_e max(floor_e, t)
            # == max(min_e floor_e, t) and one align suffices.
            floor_min = NEVER
            for eu in eus:
                floor = eu._event_floor
                if floor is None:
                    floor = eu._event_floor = eu._compute_event_floor()
                if floor < floor_min:
                    floor_min = floor
            period = config.issue_period
            next_time = now + 1
            rem = next_time % period
            if rem:
                next_time += period - rem
            if floor_min > next_time:
                next_time = floor_min
            if not all_dispatched:
                threads_per_wg = launch.threads_per_wg
                for eu in eus:
                    if eu._free >= threads_per_wg:
                        if now + 1 < next_time:
                            next_time = now + 1
                        break
            if next_time >= NEVER:
                raise DeadlockError(
                    f"kernel {program.name!r} stalled at cycle {now} with "
                    f"{launch.pending_workgroups} workgroups pending"
                )
            if next_time <= now:
                raise DeadlockError(f"event time went backwards at cycle {now}")
            now = next_time
            if now > config.max_cycles:
                raise DeadlockError(
                    f"kernel {program.name!r} exceeded max_cycles={config.max_cycles}"
                )

        return KernelRunResult(
            kernel=program.name,
            telemetry=(collector.result(now) if collector is not None
                       else None),
            policy=config.policy,
            total_cycles=now,
            instructions=sum(eu.instructions_issued for eu in eus),
            alu_stats=alu_stats,
            simd_stats=simd_stats,
            l3_hits=hierarchy.l3.stats.hits,
            l3_accesses=hierarchy.l3.stats.accesses,
            llc_hits=hierarchy.llc.stats.hits,
            llc_accesses=hierarchy.llc.stats.accesses,
            dc_lines=hierarchy.data_cluster.lines_transferred,
            dram_lines=hierarchy.dram.lines_transferred,
            memory_messages=hierarchy.messages,
            lines_requested=hierarchy.lines_requested,
            workgroups=launch.num_workgroups,
            fpu_busy_cycles=sum(eu.pipes.fpu.busy_cycles for eu in eus),
            em_busy_cycles=sum(eu.pipes.em.busy_cycles for eu in eus),
            send_busy_cycles=sum(eu.pipes.send.busy_cycles for eu in eus),
        )
