"""Whole-GPU simulation: configuration, dispatch, and the cycle model."""

from .config import GpuConfig
from .dispatch import Launch, WorkgroupInstance, bind_surfaces
from .results import KernelRunResult, merge_results, total_time_reduction_pct
from .simulator import DeadlockError, GpuSimulator

__all__ = [
    "DeadlockError",
    "GpuConfig",
    "GpuSimulator",
    "KernelRunResult",
    "Launch",
    "merge_results",
    "WorkgroupInstance",
    "bind_surfaces",
    "total_time_reduction_pct",
]
