"""Thread dispatch: NDRange -> workgroups -> EU threads.

Implements the OpenCL-style execution model the paper assumes (Section
2.3): a 1-D NDRange is split into workgroups; each workgroup is placed
whole onto one EU (it shares SLM and a barrier), sliced into hardware
threads of the kernel's SIMD width.  The dispatcher round-robins pending
workgroups onto EUs with enough free thread slots, writing each thread's
dispatch payload (global/local ids, scalar arguments, partial-thread
dispatch mask) into its fresh GRF.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..eu.eu import ExecutionUnit
from ..eu.thread import EUThread, ThreadState
from ..isa.program import ParamKind, Program
from ..isa.registers import RegRef
from ..isa.types import DType
from ..memory.slm import SlmAllocation, SlmTiming


class WorkgroupInstance:
    """A dispatched workgroup: threads, SLM, and barrier state."""

    def __init__(self, wg_id: int, surfaces: Sequence[np.ndarray],
                 slm: Optional[SlmAllocation], slm_timing: SlmTiming) -> None:
        self.wg_id = wg_id
        self.surfaces = list(surfaces)
        self.slm = slm
        self.slm_timing = slm_timing
        self.threads: List[EUThread] = []
        self._barrier_arrived: List[EUThread] = []
        self.completed_threads = 0

    @property
    def done(self) -> bool:
        return self.threads and self.completed_threads == len(self.threads)

    def live_threads(self) -> int:
        return sum(1 for t in self.threads if t.state is not ThreadState.DONE)

    def arrive_barrier(self, thread: EUThread, now: int, release_latency: int) -> None:
        """A thread reached a barrier; release everyone once all arrive."""
        self._barrier_arrived.append(thread)
        self._maybe_release(now, release_latency)

    def thread_done(self, now: int) -> None:
        """A thread executed EOT (may unblock a barrier the rest wait at)."""
        self.completed_threads += 1
        self._maybe_release(now, release_latency=1)

    def _maybe_release(self, now: int, release_latency: int) -> None:
        if self._barrier_arrived and len(self._barrier_arrived) == self.live_threads():
            for waiter in self._barrier_arrived:
                waiter.state = ThreadState.ACTIVE
                waiter.stall_until = now + release_latency
            self._barrier_arrived.clear()


class Launch:
    """One kernel launch: pending workgroups plus live instances."""

    def __init__(
        self,
        program: Program,
        global_size: int,
        local_size: Optional[int],
        surfaces: Sequence[np.ndarray],
        scalars: Dict[str, float],
        config,
        telemetry=None,
    ) -> None:
        if not program.finalized:
            raise ValueError(f"program {program.name!r} was not finalized")
        if global_size < 1:
            raise ValueError(f"global_size must be positive, got {global_size}")
        width = program.simd_width
        if local_size is None:
            local_size = width * config.threads_per_eu
        if local_size % width != 0:
            raise ValueError(
                f"local_size {local_size} must be a multiple of SIMD width {width}"
            )
        threads_per_wg = local_size // width
        if threads_per_wg > config.threads_per_eu:
            raise ValueError(
                f"workgroup needs {threads_per_wg} threads but an EU has "
                f"{config.threads_per_eu} slots"
            )
        self.program = program
        self.global_size = global_size
        self.local_size = local_size
        self.threads_per_wg = threads_per_wg
        self.surfaces = list(surfaces)
        self.scalars = dict(scalars)
        self.config = config
        self.num_workgroups = -(-global_size // local_size)
        self.next_wg = 0
        self.instances: List[WorkgroupInstance] = []
        self._thread_counter = 0
        #: Scan frontier for :attr:`done`: instances below this index are
        #: known complete.  A workgroup's ``done`` is monotone, so the
        #: frontier only moves forward — the per-cycle poll from the
        #: simulator loop is amortized O(1) instead of O(instances).
        self._done_frontier = 0
        #: Optional run-level TelemetryCollector (None when off).
        self.telemetry = telemetry

    @property
    def all_dispatched(self) -> bool:
        return self.next_wg >= self.num_workgroups

    @property
    def pending_workgroups(self) -> int:
        """Workgroups not yet placed on any EU (watchdog diagnostics)."""
        return self.num_workgroups - self.next_wg

    @property
    def live_workgroups(self) -> int:
        """Dispatched workgroups that have not finished yet."""
        return sum(1 for wg in self.instances if not wg.done)

    @property
    def done(self) -> bool:
        if self.next_wg < self.num_workgroups:
            return False
        instances = self.instances
        count = len(instances)
        i = self._done_frontier
        while i < count and instances[i].done:
            i += 1
        self._done_frontier = i
        return i == count

    def dispatch(self, eus: Sequence[ExecutionUnit], now: int) -> int:
        """Place as many pending workgroups as EU slots allow.

        Returns the number of workgroups dispatched this call.
        """
        if self.next_wg >= self.num_workgroups:
            return 0
        placed = 0
        threads_per_wg = self.threads_per_wg
        num_workgroups = self.num_workgroups
        for eu in eus:
            # ``eu._free`` is the free_slots() counter, read directly on
            # this per-cycle path.
            while (
                self.next_wg < num_workgroups
                and eu._free >= threads_per_wg
            ):
                instance = self._materialize(self.next_wg, now)
                self.next_wg += 1
                self.instances.append(instance)
                for thread in instance.threads:
                    eu.add_thread(thread)
                placed += 1
                if self.telemetry is not None:
                    self.telemetry.counters.incr("dispatch.workgroups")
                    self.telemetry.instant(
                        "gpu/dispatch", "wg_dispatch", now,
                        {"wg": instance.wg_id, "eu": eu.eu_id,
                         "threads": len(instance.threads)})
        return placed

    def _materialize(self, wg_id: int, now: int) -> WorkgroupInstance:
        config = self.config
        program = self.program
        width = program.simd_width
        slm = SlmAllocation(program.slm_bytes) if program.slm_bytes else None
        slm_timing = SlmTiming(config.slm_latency, config.slm_banks)
        instance = WorkgroupInstance(wg_id, self.surfaces, slm, slm_timing)

        wg_base = wg_id * self.local_size
        wg_items = min(self.local_size, self.global_size - wg_base)
        for t in range(self.threads_per_wg):
            local_base = t * width
            if local_base >= wg_items:
                break
            lanes_valid = min(width, wg_items - local_base)
            dispatch_mask = (1 << lanes_valid) - 1
            thread = self._make_thread(
                self._thread_counter, dispatch_mask, instance,
                now + config.dispatch_latency,
            )
            self._thread_counter += 1
            self._write_payload(thread, wg_base + local_base, local_base)
            instance.threads.append(thread)
        return instance

    def _make_thread(self, thread_id: int, dispatch_mask: int,
                     instance: WorkgroupInstance, start_cycle: int) -> EUThread:
        """Thread-materialization hook (the replay launch overrides it)."""
        return EUThread(
            thread_id=thread_id,
            program=self.program,
            dispatch_mask=dispatch_mask,
            workgroup=instance,
            start_cycle=start_cycle,
        )

    def _write_payload(self, thread: EUThread, global_base: int, local_base: int) -> None:
        program = self.program
        width = program.simd_width
        lanes = np.arange(width, dtype=np.int32)
        if program.gid_reg is not None:
            thread.grf.broadcast(RegRef(program.gid_reg, DType.I32), width,
                                 lanes + global_base)
        if program.lid_reg is not None:
            thread.grf.broadcast(RegRef(program.lid_reg, DType.I32), width,
                                 lanes + local_base)
        for param in program.scalar_params():
            if param.name not in self.scalars:
                raise ValueError(
                    f"kernel {program.name!r} missing scalar argument {param.name!r}"
                )
            dtype = DType.F32 if param.kind is ParamKind.SCALAR_F32 else DType.I32
            thread.grf.broadcast(RegRef(param.reg, dtype), width,
                                 self.scalars[param.name])


def bind_surfaces(program: Program, buffers: Dict[str, np.ndarray]) -> List[np.ndarray]:
    """Resolve named buffers to the program's binding-table order.

    Each buffer is exposed to the machine as its raw byte image; writes
    through the simulator mutate the caller's array in place (device and
    host memory are unified, as on the integrated GPU studied).
    """
    surfaces = []
    for param in program.surface_params():
        if param.name not in buffers:
            raise ValueError(
                f"kernel {program.name!r} missing buffer argument {param.name!r}"
            )
        array = buffers[param.name]
        if not isinstance(array, np.ndarray):
            raise TypeError(f"buffer {param.name!r} must be a numpy array")
        if not array.flags["C_CONTIGUOUS"]:
            raise ValueError(f"buffer {param.name!r} must be C-contiguous")
        surfaces.append(array.reshape(-1).view(np.uint8))
    return surfaces
