"""Whole-GPU configuration.

Defaults reproduce the paper's Table 3 micro-architecture parameters:
six EUs with six hardware threads each, dual issue every two cycles, a
128 KB / 64-way / 7-cycle L3, a 2 MB / 16-way / 10-cycle LLC, and a data
cluster moving one (DC1) or two (DC2) 64-byte lines per cycle between
the EUs and the L3.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..core.policy import CompactionPolicy
from ..memory.hierarchy import MemoryParams

#: Valid values of :attr:`GpuConfig.engine`.
ENGINES = ("interp", "fast")


@dataclass
class GpuConfig:
    """Machine parameters for one simulation."""

    num_eus: int = 6
    threads_per_eu: int = 6
    issue_width: int = 2  # instructions per arbitration pass
    issue_period: int = 2  # cycles between arbitration passes
    #: "rotating" (paper Section 2.2's rotating/age-based priority) or
    #: "fixed" (always scan from thread 0 -- starves high slots under
    #: contention; exists for the scheduler ablation).
    arbiter: str = "rotating"
    policy: CompactionPolicy = CompactionPolicy.IVB
    memory: MemoryParams = field(default_factory=MemoryParams)
    slm_latency: int = 5
    slm_banks: int = 16
    dispatch_latency: int = 10
    barrier_latency: int = 2
    max_cycles: int = 20_000_000
    #: Deadlock watchdog: abort if no instruction issues for this many
    #: consecutive cycles while work is still pending (0 disables).
    watchdog_cycles: int = 1_000_000
    #: Telemetry level: "off" (default; zero-overhead no-op), "counters"
    #: (hierarchical per-EU counter registry), or "trace" (additionally
    #: per-cycle events exportable as a Chrome/Perfetto trace).  Part of
    #: the dataclass, so it joins the runner's cache key automatically.
    telemetry: str = "off"
    #: Execution core: "interp" (default) interleaves the functional
    #: interpreter with the cycle loop, instruction by instruction;
    #: "fast" runs a batched functional pass first (one vectorized numpy
    #: kernel per opcode across all live threads) and then replays the
    #: recorded issue trace through the same cycle-accurate timing model.
    #: Functionally and statistically identical (``repro verify
    #: --engine fast``); part of the dataclass, so it joins the runner's
    #: cache key automatically.
    engine: str = "interp"

    def validate(self) -> None:
        if self.num_eus < 1 or self.threads_per_eu < 1:
            raise ValueError("num_eus and threads_per_eu must be positive")
        if self.issue_width < 1 or self.issue_period < 1:
            raise ValueError("issue parameters must be positive")
        if self.arbiter not in ("rotating", "fixed"):
            raise ValueError(f"unknown arbiter policy {self.arbiter!r}")
        if self.dispatch_latency < 0 or self.barrier_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be positive")
        if self.watchdog_cycles < 0:
            raise ValueError("watchdog_cycles must be non-negative")
        from ..telemetry.collector import TELEMETRY_LEVELS

        if self.telemetry not in TELEMETRY_LEVELS:
            raise ValueError(
                f"unknown telemetry level {self.telemetry!r}; expected one "
                f"of: {', '.join(TELEMETRY_LEVELS)}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown execution engine {self.engine!r}; expected one "
                f"of: {', '.join(ENGINES)}")
        self.memory.validate()

    def with_telemetry(self, level: str) -> "GpuConfig":
        """Copy of this config at a different telemetry level."""
        return dataclasses.replace(self, telemetry=level)

    def with_engine(self, engine: str) -> "GpuConfig":
        """Copy of this config running on a different execution core."""
        return dataclasses.replace(self, engine=engine)

    def with_policy(self, policy: CompactionPolicy) -> "GpuConfig":
        """Copy of this config running under a different compaction policy."""
        return dataclasses.replace(self, policy=policy)

    def with_memory(self, **kwargs) -> "GpuConfig":
        """Copy with memory parameters overridden (e.g. ``dc_lines_per_cycle=2``)."""
        return dataclasses.replace(
            self, memory=dataclasses.replace(self.memory, **kwargs)
        )

    @classmethod
    def dc1(cls, **kwargs) -> "GpuConfig":
        """Today's-GPU configuration: one line per cycle to L3 (Table 4 DC1)."""
        config = cls(**kwargs)
        config.memory = dataclasses.replace(config.memory, dc_lines_per_cycle=1.0)
        return config

    @classmethod
    def dc2(cls, **kwargs) -> "GpuConfig":
        """Future-GPU configuration: two lines per cycle to L3 (Table 4 DC2)."""
        config = cls(**kwargs)
        config.memory = dataclasses.replace(config.memory, dc_lines_per_cycle=2.0)
        return config

    @classmethod
    def perfect_l3(cls, **kwargs) -> "GpuConfig":
        """Infinite-capacity L3 model (paper Figure 12's "PL3" bars)."""
        config = cls(**kwargs)
        config.memory = dataclasses.replace(config.memory, perfect_l3=True)
        return config
