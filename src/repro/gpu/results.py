"""Results of a simulated kernel launch.

Bundles the timed outcome (total cycles under the configured policy)
with the analytic compaction statistics gathered from the executed
instruction stream.  Because :class:`~repro.core.stats.CompactionStats`
tracks ALU cycles under *every* policy simultaneously, a single timed
run yields the paper's "EU cycles" reductions for BCC and SCC, while
total-execution-time comparisons (Figures 11/12) come from re-running
the simulator with a different ``config.policy``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.policy import CompactionPolicy
from ..core.stats import CompactionStats
from ..telemetry.events import TelemetryResult


@dataclass
class KernelRunResult:
    """Everything measured during one kernel launch."""

    kernel: str
    policy: CompactionPolicy
    total_cycles: int
    instructions: int
    alu_stats: CompactionStats
    simd_stats: CompactionStats
    l3_hits: int
    l3_accesses: int
    llc_hits: int
    llc_accesses: int
    dc_lines: int
    dram_lines: int
    memory_messages: int
    lines_requested: int
    workgroups: int
    fpu_busy_cycles: int = 0
    em_busy_cycles: int = 0
    send_busy_cycles: int = 0
    #: Telemetry captured during the run (None when the config ran with
    #: ``telemetry="off"``).  Carrying it here is what propagates traces
    #: through the runner's process pool and on-disk cache.
    telemetry: Optional[TelemetryResult] = None
    #: SHA-256 digest of every output buffer after the run (name, dtype,
    #: shape, and bytes), set by :func:`repro.kernels.workload.run_workload`.
    #: This is what lets ``repro verify`` assert bit-identical outputs
    #: across compaction policies without shipping the buffers through
    #: the process pool and the on-disk cache.
    buffers_digest: Optional[str] = None

    @property
    def l3_hit_rate(self) -> float:
        """L3 hits per access; 0.0 for a kernel that never touched the L3
        (a compute-only kernel has no hits to report, not a perfect rate)."""
        return self.l3_hits / self.l3_accesses if self.l3_accesses else 0.0

    @property
    def llc_hit_rate(self) -> float:
        """LLC hits per access; 0.0 when the LLC was never accessed."""
        return self.llc_hits / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def memory_divergence(self) -> float:
        """Average distinct line requests per memory message (paper metric)."""
        if self.memory_messages == 0:
            return 0.0
        return self.lines_requested / self.memory_messages

    @property
    def simd_efficiency(self) -> float:
        """Paper Figure 3 metric over all SIMD (ALU + memory) instructions."""
        return self.simd_stats.simd_efficiency

    @property
    def eu_cycles(self) -> int:
        """ALU execution cycles under the policy that timed this run."""
        return self.alu_stats.cycles[self.policy]

    def eu_cycles_by_policy(self) -> Dict[CompactionPolicy, int]:
        """Analytic ALU cycles under every compaction policy."""
        return dict(self.alu_stats.cycles)

    def eu_cycle_reduction_pct(
        self,
        policy: CompactionPolicy,
        baseline: CompactionPolicy = CompactionPolicy.IVB,
    ) -> float:
        """Percent EU-cycle reduction of *policy* vs *baseline* (Fig. 10)."""
        return self.alu_stats.reduction_pct(policy, baseline)

    def pipe_utilization(self) -> Dict[str, float]:
        """Average per-EU occupancy of each execution pipe (0..1).

        Computed against total cycles; a divergent kernel under SCC shows
        *lower* FPU occupancy for the same work — the cycles the paper
        harvests.  ``eus`` is inferred from total busy exceeding wall
        time; callers wanting exact per-EU numbers divide themselves.
        """
        if self.total_cycles <= 0:
            return {"fpu": 0.0, "em": 0.0, "send": 0.0}
        return {
            "fpu": self.fpu_busy_cycles / self.total_cycles,
            "em": self.em_busy_cycles / self.total_cycles,
            "send": self.send_busy_cycles / self.total_cycles,
        }

    @property
    def dc_throughput(self) -> float:
        """Achieved data-cluster lines per cycle (Figure 11, secondary axis)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.dc_lines / self.total_cycles

    def summary(self, telemetry: bool = False) -> Dict[str, float]:
        """Flat metrics dict for report tables.

        The base dict is independent of whether the run was traced —
        telemetry must never perturb reported metrics.  Passing
        ``telemetry=True`` additionally flattens the run's counter
        registry in as ``telemetry.<name>`` keys (no-op when the run
        was not instrumented).
        """
        out = {
            "total_cycles": float(self.total_cycles),
            "instructions": float(self.instructions),
            "simd_efficiency": self.simd_efficiency,
            "eu_cycles": float(self.eu_cycles),
            "l3_hit_rate": self.l3_hit_rate,
            "llc_hit_rate": self.llc_hit_rate,
            "dc_throughput": self.dc_throughput,
            "memory_divergence": self.memory_divergence,
        }
        for policy in CompactionPolicy:
            out[f"eu_cycles_{policy.value}"] = float(self.alu_stats.cycles[policy])
        if telemetry and self.telemetry is not None:
            for name, value in self.telemetry.counters.items():
                out[f"telemetry.{name}"] = float(value)
        return out


def total_time_reduction_pct(baseline: KernelRunResult, optimized: KernelRunResult) -> float:
    """Percent total-cycle reduction between two timed runs (Figs. 11/12)."""
    if baseline.kernel != optimized.kernel:
        raise ValueError(
            f"comparing different kernels: {baseline.kernel!r} vs {optimized.kernel!r}"
        )
    if baseline.total_cycles <= 0:
        return 0.0
    return 100.0 * (baseline.total_cycles - optimized.total_cycles) / baseline.total_cycles


def merge_results(results) -> KernelRunResult:
    """Combine the per-launch results of a multi-step workload.

    Iterative workloads (e.g. level-synchronous BFS) launch one kernel
    per step; the paper reports whole-workload numbers, so counters are
    summed, cycles concatenated, and the compaction statistics merged.
    """
    results = list(results)
    if not results:
        raise ValueError("merge_results needs at least one result")
    first = results[0]
    policies = {r.policy for r in results}
    if len(policies) > 1:
        raise ValueError(
            "cannot merge results timed under different policies: "
            + ", ".join(sorted(p.value for p in policies))
        )
    # Preserve order but collapse repeats: a multi-step workload that
    # launches the same kernel per step keeps its plain name, while a
    # heterogeneous pipeline is labelled with every distinct kernel.
    kernel_names = list(dict.fromkeys(r.kernel for r in results))
    alu = CompactionStats(min_cycles=first.alu_stats.min_cycles)
    simd = CompactionStats(min_cycles=first.simd_stats.min_cycles)
    for result in results:
        alu.merge(result.alu_stats)
        simd.merge(result.simd_stats)
    return KernelRunResult(
        kernel="+".join(kernel_names),
        policy=first.policy,
        total_cycles=sum(r.total_cycles for r in results),
        instructions=sum(r.instructions for r in results),
        alu_stats=alu,
        simd_stats=simd,
        l3_hits=sum(r.l3_hits for r in results),
        l3_accesses=sum(r.l3_accesses for r in results),
        llc_hits=sum(r.llc_hits for r in results),
        llc_accesses=sum(r.llc_accesses for r in results),
        dc_lines=sum(r.dc_lines for r in results),
        dram_lines=sum(r.dram_lines for r in results),
        memory_messages=sum(r.memory_messages for r in results),
        lines_requested=sum(r.lines_requested for r in results),
        workgroups=sum(r.workgroups for r in results),
        fpu_busy_cycles=sum(r.fpu_busy_cycles for r in results),
        em_busy_cycles=sum(r.em_busy_cycles for r in results),
        send_busy_cycles=sum(r.send_busy_cycles for r in results),
        telemetry=(
            TelemetryResult.merge([r.telemetry for r in results])
            if all(r.telemetry is not None for r in results)
            else None
        ),
    )
