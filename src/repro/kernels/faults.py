"""Fault-injection workloads: controlled failures for the test harness.

Production-scale regeneration campaigns die in three characteristic
ways: a kernel hangs (scheduling bug, runaway loop), a worker process
crashes (OOM kill, segfaulting dependency), or a worker simply stalls in
host code.  These registry workloads reproduce each failure mode *on
demand* so the runner's watchdog, retry, degradation, and resume
machinery can be exercised deterministically by pytest and CI.

They are deliberately second-class citizens of the registry: excluded
from every workload group (``all``/``divergent``/...), excluded from the
default efficiency studies, and never cached (the runner refuses to
cache any workload whose name carries the :data:`FAULT_PREFIX`), so a
fault injection can never poison real experiment results.

* :func:`spin_forever` — a kernel whose loop never exits; trips the
  simulator's cycle budget (:class:`~repro.errors.DeadlockError`) or
  wall-clock budget (:class:`~repro.errors.JobTimeoutError`).
* :func:`sleep_then_run` — host-side ``time.sleep`` before the launch;
  models a worker hung *outside* the simulator loop, which only the
  runner's parent-side deadline can kill.
* :func:`crash_once` — raises or hard-exits in the worker; with a
  *marker* file the fault fires exactly once, so retries and serial
  degradation can be shown to recover.
* :func:`count_executions` — appends one line to a *counter* file per
  execution (optionally sleeping first); because fault workloads are
  never cached, the line count is an exact execution count, which is
  how the serve-layer dedup tests prove "two identical submissions,
  one simulation".
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.registers import FlagRef
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload

#: Registry-name prefix identifying fault-injection workloads.  The
#: runner treats any job whose workload name starts with this as
#: uncacheable, and the CLI's workload groups skip them.
FAULT_PREFIX = "fault_"


def _copy_kernel(name: str, simd_width: int):
    """A trivial y = 2x kernel: the benign payload of the fault workloads."""
    b = KernelBuilder(name, simd_width)
    gid = b.global_id()
    sx, sy = b.surface_arg("x"), b.surface_arg("y")
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    b.load(x, addr, sx)
    b.add(x, x, x)
    b.store(x, addr, sy)
    return b.finish()


def _copy_buffers(n: int):
    rng = np.random.default_rng(1237)
    x = rng.uniform(-1.0, 1.0, n).astype(np.float32)
    y = np.zeros(n, dtype=np.float32)

    def check(buffers):
        np.testing.assert_allclose(buffers["y"], x + x, rtol=1e-6)

    return {"x": x, "y": y}, check


def spin_forever(n: int = 8, simd_width: int = 8) -> Workload:
    """A kernel that loops forever: the watchdog's canonical prey.

    Run it under a small ``GpuConfig.max_cycles`` (or the CLI's
    ``--max-cycles``) for a fast :class:`~repro.errors.DeadlockError`,
    or under a wall-clock budget for a
    :class:`~repro.errors.JobTimeoutError`.
    """
    b = KernelBuilder("fault_spin", simd_width)
    gid = b.global_id()
    sy = b.surface_arg("y")
    it = b.vreg(DType.I32)
    b.mov(it, 0)
    b.do_()
    b.add(it, it, 1)
    fl = b.cmp(CmpOp.GE, it, 0, flag=FlagRef(1))  # always true: never exits
    b.while_(fl)
    addr = b.vreg(DType.I32)  # unreachable epilogue
    b.shl(addr, gid, 2)
    b.store(it, addr, sy)
    program = b.finish()

    return Workload(
        name="fault_spin",
        program=program,
        buffers={"y": np.zeros(n, dtype=np.int32)},
        steps=[LaunchStep(global_size=n)],
        check=None,
        category="fault",
        description="infinite loop; exercises the deadlock/timeout watchdog",
    )


def sleep_then_run(seconds: float = 5.0, n: int = 64,
                   simd_width: int = 8) -> Workload:
    """Sleep *seconds* in host code, then run a trivial kernel.

    The sleep happens inside the step source, i.e. in the worker process
    but outside the simulator's cycle loop — exactly the kind of hang
    the in-process watchdog cannot see and the runner's parent-side
    grace deadline exists for.
    """
    buffers, check = _copy_buffers(n)

    def steps(_buffers, index: int) -> Optional[LaunchStep]:
        if index == 0:
            time.sleep(seconds)
            return LaunchStep(global_size=n)
        return None

    return Workload(
        name="fault_sleep",
        program=_copy_kernel("fault_sleep", simd_width),
        buffers=buffers,
        steps=steps,
        check=check,
        category="fault",
        description=f"host-side sleep({seconds:g}) before launching",
    )


def crash_once(marker: str = "", mode: Optional[str] = None, n: int = 64,
               simd_width: int = 8) -> Workload:
    """Crash the executing worker, optionally only on the first attempt.

    Args:
        marker: path to a sentinel file.  When given, the fault fires
            only if the file does not exist yet (and creates it first),
            so the *next* attempt — a pool retry or the serial fallback
            after a pool breakdown — succeeds.  An empty marker means
            "always crash".
        mode: ``"raise"`` raises ``RuntimeError`` (an unclassified
            worker failure, retried as transient); ``"exit"`` calls
            ``os._exit`` to kill the worker outright, breaking the
            process pool.  ``None`` (the default) defers to
            ``$REPRO_FAULT_MODE``, falling back to ``"raise"``.

    Callers that cannot pass factory parameters (``repro sweep`` grids,
    CI scripts) can set ``$REPRO_FAULT_MARKER`` / ``$REPRO_FAULT_MODE``
    instead; explicit arguments win over the environment.
    """
    marker = marker or os.environ.get("REPRO_FAULT_MARKER", "")
    mode = mode or os.environ.get("REPRO_FAULT_MODE", "raise")
    if mode not in ("raise", "exit"):
        raise ValueError(f"unknown crash mode {mode!r}")
    buffers, check = _copy_buffers(n)

    def steps(_buffers, index: int) -> Optional[LaunchStep]:
        if index == 0:
            armed = not marker or not Path(marker).exists()
            if armed:
                if marker:
                    Path(marker).touch()
                if mode == "exit":
                    os._exit(23)
                raise RuntimeError(
                    "injected worker crash (fault_crash, mode=raise)")
            return LaunchStep(global_size=n)
        return None

    return Workload(
        name="fault_crash",
        program=_copy_kernel("fault_crash", simd_width),
        buffers=buffers,
        steps=steps,
        check=check,
        category="fault",
        description=f"crashes the worker ({mode}); oneshot when marker given",
    )


def count_executions(counter: str = "", sleep: float = 0.0, n: int = 64,
                     simd_width: int = 8) -> Workload:
    """Append one line to *counter* per execution, then run the payload.

    Args:
        counter: path of the tally file; each execution durably appends
            one ``<pid>\\n`` line before launching.  Fault workloads are
            never cached, so the number of lines equals the number of
            actual simulations — the ground truth the in-flight dedup
            tests assert against.  Empty defers to
            ``$REPRO_FAULT_COUNTER`` (and counts nothing if that is
            unset too).
        sleep: optional host-side delay before the launch, to hold the
            job in flight long enough for a concurrent duplicate
            submission to arrive.
    """
    counter = counter or os.environ.get("REPRO_FAULT_COUNTER", "")
    buffers, check = _copy_buffers(n)

    def steps(_buffers, index: int) -> Optional[LaunchStep]:
        if index == 0:
            if counter:
                with open(counter, "a", encoding="utf-8") as fh:
                    fh.write(f"{os.getpid()}\n")
                    fh.flush()
                    os.fsync(fh.fileno())
            if sleep:
                time.sleep(sleep)
            return LaunchStep(global_size=n)
        return None

    return Workload(
        name="fault_count",
        program=_copy_kernel("fault_count", simd_width),
        buffers=buffers,
        steps=steps,
        check=check,
        category="fault",
        description="tallies executions in a file; proves dedup/retry counts",
    )
