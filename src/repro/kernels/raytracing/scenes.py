"""Procedural sphere scenes for the ray-tracing workloads.

The paper evaluates in-house ray tracers on four scenes (conference,
alien, bulldozer, windmill).  We cannot ship those models, so each scene
here is a procedurally generated sphere cloud whose density and layout
control the hit rate — and therefore the divergence profile — of the
tracer.  "Busier" scenes make rays disagree more about hits, early-outs,
and bounce counts, which is the property the experiments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class SceneSpec:
    """Parameters of one procedural sphere scene."""

    name: str
    num_spheres: int
    spread: float  # lateral extent of the cloud
    depth_near: float
    depth_far: float
    radius_lo: float
    radius_hi: float
    seed: int


#: Stand-ins for the paper's four scenes, ordered roughly by divergence.
SCENES: Dict[str, SceneSpec] = {
    "conf": SceneSpec("conf", 12, 2.2, 3.0, 7.0, 0.5, 1.1, 101),
    "al": SceneSpec("al", 12, 3.2, 3.0, 9.0, 0.3, 0.8, 102),
    "bl": SceneSpec("bl", 16, 4.0, 3.0, 11.0, 0.25, 0.7, 103),
    "wm": SceneSpec("wm", 16, 5.0, 3.0, 13.0, 0.2, 0.55, 104),
}


def build_scene(spec: SceneSpec) -> Dict[str, np.ndarray]:
    """Generate the sphere buffers (cx, cy, cz, radius) for *spec*."""
    rng = np.random.default_rng(spec.seed)
    n = spec.num_spheres
    return {
        "cx": rng.uniform(-spec.spread, spec.spread, n).astype(np.float32),
        "cy": rng.uniform(-spec.spread, spec.spread, n).astype(np.float32),
        "cz": rng.uniform(spec.depth_near, spec.depth_far, n).astype(np.float32),
        "cr": rng.uniform(spec.radius_lo, spec.radius_hi, n).astype(np.float32),
    }


def scene_names():
    """Scene keys in the paper's presentation order."""
    return tuple(SCENES.keys())
