"""Ray-tracing workloads (paper Figure 11 subjects)."""

from .scenes import SCENES, SceneSpec, build_scene, scene_names
from .tracer import ambient_occlusion, primary_rays

__all__ = [
    "SCENES",
    "SceneSpec",
    "ambient_occlusion",
    "build_scene",
    "primary_rays",
    "scene_names",
]
