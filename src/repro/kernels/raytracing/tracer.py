"""Ray-tracing kernels: primary rays (RT-PR) and ambient occlusion (RT-AO).

These are the paper's flagship divergent workloads (Figure 11): primary
rays diverge on hit/miss and on which sphere terminates the search;
ambient occlusion adds a per-hit sampling loop whose occlusion tests
break out early, producing deep, irregular divergence.  The AO kernel is
built at SIMD8 and SIMD16 (the paper's RT-AO-*8 / RT-AO-*16 variants —
its SIMD8 kernels exist because of register pressure; ours take the
width as a parameter).

Scene geometry is stored as packed line-sized (64-byte) nodes
``[cx, cy, cz, r, pad...]`` and every ray walks the node list in its
*own* order (a stand-in for per-ray BVH traversal): lane *i* fetches
node ``(step + ray_id) % N``, so one SIMD fetch gathers from up to
`width` distinct cache lines.  That is
the *memory divergence* the paper measures for ray tracing — demand on
the data cluster well above one line per cycle — and what makes the
DC1 vs DC2 comparison of Figure 11 meaningful.  Visiting order does not
change results: nearest-hit is a min over all nodes, occlusion is an
any-hit boolean.

The host reference mirrors the kernel's float32 arithmetic operation for
operation, so results match to float32 rounding.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...isa.builder import KernelBuilder
from ...isa.registers import FlagRef, RegRef
from ...isa.types import CmpOp, DType
from ..workload import LaunchStep, Workload
from .scenes import SCENES, SceneSpec, build_scene

_BIG = 1.0e30
_EPS = 0.05
#: Bytes per packed scene node: [cx, cy, cz, r] plus padding to a full
#: 64-byte cache line, the size of a real BVH node.  One ray's node
#: fetch therefore touches one line, and a divergent SIMD16 fetch
#: touches up to sixteen -- the paper's ray-tracing memory-divergence
#: regime (data-cluster demand above one line per cycle).
NODE_BYTES = 64


def pack_nodes(scene: Dict[str, np.ndarray]) -> np.ndarray:
    """Pack the scene into line-sized [cx, cy, cz, r, pad...] nodes."""
    n = scene["cx"].shape[0]
    nodes = np.zeros((n, NODE_BYTES // 4), dtype=np.float32)
    nodes[:, 0] = scene["cx"]
    nodes[:, 1] = scene["cy"]
    nodes[:, 2] = scene["cz"]
    nodes[:, 3] = scene["cr"]
    return nodes.reshape(-1)


def _emit_ray_setup(b: KernelBuilder, width_px: int):
    """Compute the per-pixel primary ray direction; returns (dx, dy, dz)."""
    gid = b.global_id()
    px = b.vreg(DType.I32)
    py = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(py, gid, width_px)
    b.mul(tmp, py, width_px)
    b.sub(px, gid, tmp)
    fx = b.vreg(DType.F32)
    fy = b.vreg(DType.F32)
    b.cvt(fx, px)
    b.cvt(fy, py)
    # Map pixel to [-1, 1] viewport, z = 1, then normalize.
    dx = b.vreg(DType.F32)
    dy = b.vreg(DType.F32)
    dz = b.vreg(DType.F32)
    b.mad(dx, fx, 2.0 / width_px, -1.0)
    b.mad(dy, fy, 2.0 / width_px, -1.0)
    b.mov(dz, 1.0)
    norm = b.vreg(DType.F32)
    b.mul(norm, dx, dx)
    b.mad(norm, dy, dy, norm)
    b.mad(norm, dz, dz, norm)
    b.rsqrt(norm, norm)
    b.mul(dx, dx, norm)
    b.mul(dy, dy, norm)
    b.mul(dz, dz, norm)
    return dx, dy, dz


def _emit_sphere_loop(b: KernelBuilder, s_nodes: int, num_spheres: int,
                      ox, oy, oz, dx, dy, dz, tmin: RegRef, hit_id: RegRef,
                      any_hit: bool = False):
    """Hit search over all nodes, each lane in its own traversal order.

    Writes nearest t into *tmin* and the node index into *hit_id* (-1 on
    a full miss).  With ``any_hit=True`` lanes break out of the loop at
    their first accepted hit (the occlusion-query mode).
    """
    b.mov(tmin, _BIG)
    b.mov(hit_id, -1)
    gid = b.global_id()
    s = b.vreg(DType.I32)
    b.mov(s, 0)
    idx = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    addr = b.vreg(DType.I32)
    lx = b.vreg(DType.F32)
    ly = b.vreg(DType.F32)
    lz = b.vreg(DType.F32)
    r = b.vreg(DType.F32)
    tb = b.vreg(DType.F32)
    d2 = b.vreg(DType.F32)
    t = b.vreg(DType.F32)
    b.do_()
    # Per-lane traversal order: node (s + ray_id) mod N -> gathered fetch.
    b.add(idx, s, gid)
    b.div(tmp, idx, num_spheres)
    b.mul(tmp, tmp, num_spheres)
    b.sub(idx, idx, tmp)
    b.mul(addr, idx, NODE_BYTES)
    b.load(lx, addr, s_nodes)
    b.add(addr, addr, 4)
    b.load(ly, addr, s_nodes)
    b.add(addr, addr, 4)
    b.load(lz, addr, s_nodes)
    b.add(addr, addr, 4)
    b.load(r, addr, s_nodes)
    # L = C - O;  tb = L . D;  d2 = L . L - tb^2
    b.sub(lx, lx, ox)
    b.sub(ly, ly, oy)
    b.sub(lz, lz, oz)
    b.mul(tb, lx, dx)
    b.mad(tb, ly, dy, tb)
    b.mad(tb, lz, dz, tb)
    b.mul(d2, lx, lx)
    b.mad(d2, ly, ly, d2)
    b.mad(d2, lz, lz, d2)
    tb2 = lx  # reuse: L no longer needed this iteration
    b.mul(tb2, tb, tb)
    b.sub(d2, d2, tb2)
    r2 = ly  # reuse
    b.mul(r2, r, r)
    f_front = b.cmp(CmpOp.GT, tb, 0.0)
    with b.if_(f_front):
        f_hit = b.cmp(CmpOp.LT, d2, r2)
        with b.if_(f_hit):
            thc = lz  # reuse
            b.sub(thc, r2, d2)
            b.sqrt(thc, thc)
            b.sub(t, tb, thc)
            f_pos = b.cmp(CmpOp.GT, t, _EPS)
            f_near = b.cmp(CmpOp.LT, t, tmin, flag=FlagRef(1))
            gate = b.vreg(DType.I32)
            b.sel(gate, f_pos, 1, 0)
            gate2 = b.vreg(DType.I32)
            b.sel(gate2, f_near, 1, 0)
            b.and_(gate, gate, gate2)
            f_take = b.cmp(CmpOp.NE, gate, 0)
            b.mov(tmin, t, pred=f_take)
            b.mov(hit_id, idx, pred=f_take)
    if any_hit:
        # Occlusion query: a lane with a confirmed hit is done.
        f_done = b.cmp(CmpOp.GE, hit_id, 0)
        b.break_(f_done)
    b.add(s, s, 1)
    more = b.cmp(CmpOp.LT, s, num_spheres, flag=FlagRef(1))
    b.while_(more)


def primary_rays(scene: str = "conf", width_px: int = 32, simd_width: int = 16) -> Workload:
    """RT-PR: one primary ray per pixel, Lambertian shade on hit."""
    spec = SCENES[scene]
    b = KernelBuilder(f"rt_pr_{scene}", simd_width)
    s_nodes = b.surface_arg("nodes")
    s_img = b.surface_arg("image")
    dx, dy, dz = _emit_ray_setup(b, width_px)
    tmin = b.vreg(DType.F32)
    hit_id = b.vreg(DType.I32)
    _emit_sphere_loop(b, s_nodes, spec.num_spheres,
                      0.0, 0.0, 0.0, dx, dy, dz, tmin, hit_id)
    color = b.vreg(DType.F32)
    f_hit = b.cmp(CmpOp.GE, hit_id, 0)
    with b.if_(f_hit):
        # Shade ~ 1/(1 + 0.1 t): nearer hits brighter (cheap Lambert proxy)
        b.mad(color, tmin, 0.1, 1.0)
        b.div(color, 1.0, color)
        b.else_()
        b.mov(color, 0.1)  # background
    gid = b.global_id()
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(color, addr, s_img)
    program = b.finish()

    scene_arrays = build_scene(spec)
    n = width_px * width_px
    buffers = {"nodes": pack_nodes(scene_arrays),
               "image": np.zeros(n, dtype=np.float32)}

    def check(bufs):
        ref_t, ref_hit = _host_trace(spec, scene_arrays, width_px)
        ref = np.where(
            ref_hit >= 0,
            np.float32(1.0) / (ref_t * np.float32(0.1) + np.float32(1.0)),
            np.float32(0.1),
        ).astype(np.float32)
        np.testing.assert_allclose(bufs["image"], ref, rtol=1e-4, atol=1e-5)

    return Workload(
        name=f"rt_pr_{scene}",
        program=program,
        buffers=buffers,
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="divergent",
        description=f"ray tracing, primary rays, scene {scene!r}",
    )


def ambient_occlusion(scene: str = "al", width_px: int = 24, simd_width: int = 8,
                      ao_samples: int = 4) -> Workload:
    """RT-AO: primary hit + hemisphere occlusion sampling with early-out."""
    spec = SCENES[scene]
    b = KernelBuilder(f"rt_ao_{scene}{simd_width}", simd_width)
    s_nodes = b.surface_arg("nodes")
    s_img = b.surface_arg("image")
    dx, dy, dz = _emit_ray_setup(b, width_px)
    tmin = b.vreg(DType.F32)
    hit_id = b.vreg(DType.I32)
    _emit_sphere_loop(b, s_nodes, spec.num_spheres,
                      0.0, 0.0, 0.0, dx, dy, dz, tmin, hit_id)
    color = b.vreg(DType.F32)
    f_hit = b.cmp(CmpOp.GE, hit_id, 0)
    with b.if_(f_hit):
        # Hit point
        hx = b.vreg(DType.F32)
        hy = b.vreg(DType.F32)
        hz = b.vreg(DType.F32)
        b.mul(hx, dx, tmin)
        b.mul(hy, dy, tmin)
        b.mul(hz, dz, tmin)
        # Occlusion sampling: jittered directions from a per-lane LCG.
        gid = b.global_id()
        state = b.vreg(DType.I32)
        b.mad(state, gid, 747796405, 2891336453 & 0x7FFFFFFF)
        occl = b.vreg(DType.I32)
        b.mov(occl, 0)
        a = b.vreg(DType.I32)
        b.mov(a, 0)
        adx = b.vreg(DType.F32)
        ady = b.vreg(DType.F32)
        adz = b.vreg(DType.F32)
        t2 = b.vreg(DType.F32)
        hid2 = b.vreg(DType.I32)
        b.do_()
        for comp in (adx, ady, adz):
            b.mul(state, state, 1664525)
            b.add(state, state, 1013904223)
            bits = hid2  # reuse as temp
            b.shr(bits, state, 16)
            b.and_(bits, bits, 0xFF)
            b.cvt(comp, bits)
            b.mad(comp, comp, 2.0 / 255.0, -1.0)
        b.sub(adz, 0.0, adz)  # bias samples back toward the camera
        norm = t2  # reuse as temp
        b.mul(norm, adx, adx)
        b.mad(norm, ady, ady, norm)
        b.mad(norm, adz, adz, norm)
        b.add(norm, norm, 1e-4)
        b.rsqrt(norm, norm)
        b.mul(adx, adx, norm)
        b.mul(ady, ady, norm)
        b.mul(adz, adz, norm)
        _emit_sphere_loop(b, s_nodes, spec.num_spheres,
                          hx, hy, hz, adx, ady, adz, t2, hid2, any_hit=True)
        f_occ = b.cmp(CmpOp.GE, hid2, 0)
        b.add(occl, occl, 1, pred=f_occ)
        b.add(a, a, 1)
        f_more = b.cmp(CmpOp.LT, a, ao_samples, flag=FlagRef(1))
        b.while_(f_more)
        focc = b.vreg(DType.F32)
        b.cvt(focc, occl)
        b.mul(focc, focc, 0.8 / ao_samples)
        base = b.vreg(DType.F32)
        b.mad(base, tmin, 0.1, 1.0)
        b.div(base, 1.0, base)
        b.sub(focc, 1.0, focc)
        b.mul(color, base, focc)
        b.else_()
        b.mov(color, 0.1)
    gid2 = b.global_id()
    addr = b.vreg(DType.I32)
    b.shl(addr, gid2, 2)
    b.store(color, addr, s_img)
    program = b.finish()

    scene_arrays = build_scene(spec)
    n = width_px * width_px
    buffers = {"nodes": pack_nodes(scene_arrays),
               "image": np.zeros(n, dtype=np.float32)}

    def check(bufs):
        ref = _host_ao(spec, scene_arrays, width_px, ao_samples)
        np.testing.assert_allclose(bufs["image"], ref, rtol=1e-3, atol=1e-4)

    return Workload(
        name=f"rt_ao_{scene}{simd_width}",
        program=program,
        buffers=buffers,
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="divergent",
        description=(
            f"ray tracing, ambient occlusion, scene {scene!r}, SIMD{simd_width}"
        ),
    )


# ---------------------------------------------------------------------------
# Host references (float32, mirroring the kernel's operation order)
# ---------------------------------------------------------------------------


def _ray_dirs(width_px: int):
    gid = np.arange(width_px * width_px, dtype=np.int32)
    py = gid // width_px
    px = gid - py * width_px
    f32 = np.float32
    dx = px.astype(np.float32) * f32(2.0 / width_px) + f32(-1.0)
    dy = py.astype(np.float32) * f32(2.0 / width_px) + f32(-1.0)
    dz = np.full_like(dx, 1.0, dtype=np.float32)
    norm = (dx * dx + dy * dy + dz * dz).astype(np.float32)
    inv = (np.float32(1.0) / np.sqrt(norm)).astype(np.float32)
    return dx * inv, dy * inv, dz * inv


def _trace_from(scene_arrays, num_spheres, ox, oy, oz, dx, dy, dz):
    """Nearest hit over all nodes; order-independent, so the host visits
    them 0..N-1 regardless of the kernel's per-lane traversal order."""
    f32 = np.float32
    tmin = np.full(dx.shape, _BIG, dtype=np.float32)
    hit = np.full(dx.shape, -1, dtype=np.int32)
    # Lanes the kernel masks off carry garbage origins (t = 1e30); the
    # resulting inf/nan arithmetic is discarded, so silence it wholesale.
    with np.errstate(all="ignore"):
        for s in range(num_spheres):
            lx = (scene_arrays["cx"][s] - ox).astype(np.float32)
            ly = (scene_arrays["cy"][s] - oy).astype(np.float32)
            lz = (scene_arrays["cz"][s] - oz).astype(np.float32)
            tb = (lx * dx + ly * dy + lz * dz).astype(np.float32)
            d2 = (lx * lx + ly * ly + lz * lz - tb * tb).astype(np.float32)
            r2 = f32(scene_arrays["cr"][s]) * f32(scene_arrays["cr"][s])
            thc = np.sqrt(np.maximum(r2 - d2, 0).astype(np.float32))
            t = (tb - thc).astype(np.float32)
            take = (tb > 0) & (d2 < r2) & (t > f32(_EPS)) & (t < tmin)
            tmin = np.where(take, t, tmin)
            hit = np.where(take, s, hit)
    return tmin, hit


def _host_trace(spec: SceneSpec, scene_arrays, width_px: int):
    dx, dy, dz = _ray_dirs(width_px)
    zero = np.zeros_like(dx)
    return _trace_from(scene_arrays, spec.num_spheres, zero, zero, zero,
                       dx, dy, dz)


def _host_ao(spec: SceneSpec, scene_arrays, width_px: int, ao_samples: int):
    f32 = np.float32
    dx, dy, dz = _ray_dirs(width_px)
    zero = np.zeros_like(dx)
    tmin, hit = _trace_from(scene_arrays, spec.num_spheres, zero, zero, zero,
                            dx, dy, dz)
    n = dx.shape[0]
    gid = np.arange(n, dtype=np.int64)
    state = (gid * 747796405 + (2891336453 & 0x7FFFFFFF)) & 0xFFFFFFFF
    state = np.where(state >= 2**31, state - 2**32, state)
    hx, hy, hz = dx * tmin, dy * tmin, dz * tmin
    occl = np.zeros(n, dtype=np.int32)

    def lcg(state):
        state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
        state = np.where(state >= 2**31, state - 2**32, state)
        bits = (state >> 16) & 0xFF
        comp = bits.astype(np.float32) * f32(2.0 / 255.0) + f32(-1.0)
        return state, comp

    for _ in range(ao_samples):
        state, adx = lcg(state)
        state, ady = lcg(state)
        state, adz = lcg(state)
        adz = (f32(0.0) - adz).astype(np.float32)
        norm = (adx * adx + ady * ady + adz * adz + f32(1e-4)).astype(np.float32)
        inv = (f32(1.0) / np.sqrt(norm)).astype(np.float32)
        adx, ady, adz = adx * inv, ady * inv, adz * inv
        _, hid2 = _trace_from(scene_arrays, spec.num_spheres,
                              hx, hy, hz, adx, ady, adz)
        occl += ((hid2 >= 0) & (hit >= 0)).astype(np.int32)

    base = f32(1.0) / (tmin * f32(0.1) + f32(1.0))
    shade = base * (f32(1.0) - occl.astype(np.float32) * f32(0.8 / ao_samples))
    return np.where(hit >= 0, shade, f32(0.1)).astype(np.float32)
