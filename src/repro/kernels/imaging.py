"""Image-processing workloads (paper Table 1: BF, SblFr, Gnoise).

Box filtering is coherent except at image borders; the Sobel filter adds
a threshold branch (edge vs. flat) that diverges on image content;
Gaussian-noise generation uses a rejection loop that retires lanes at
different iterations (Marsaglia polar method), making it divergent.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.registers import FlagRef
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload


def box_filter(dim: int = 48, simd_width: int = 16, seed: int = 40) -> Workload:
    """BF: 3x3 mean filter; interior-coherent, border-divergent."""
    b = KernelBuilder("boxfilter", simd_width)
    gid = b.global_id()
    si, so = b.surface_arg("inp"), b.surface_arg("out")
    n = b.scalar_arg("dim", DType.I32)
    row = b.vreg(DType.I32)
    col = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(row, gid, n)
    b.mul(tmp, row, n)
    b.sub(col, gid, tmp)
    last = b.vreg(DType.I32)
    b.sub(last, n, 1)

    acc = b.vreg(DType.F32)
    b.mov(acc, 0.0)
    cnt = b.vreg(DType.F32)
    b.mov(cnt, 0.0)
    val = b.vreg(DType.F32)
    naddr = b.vreg(DType.I32)
    nrow = b.vreg(DType.I32)
    ncol = b.vreg(DType.I32)
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            b.add(nrow, row, dr)
            b.add(ncol, col, dc)
            f_r0 = b.cmp(CmpOp.GE, nrow, 0)
            in_r = b.vreg(DType.I32)
            b.sel(in_r, f_r0, 1, 0)
            f_r1 = b.cmp(CmpOp.LE, nrow, last)
            in_b = b.vreg(DType.I32)
            b.sel(in_b, f_r1, 1, 0)
            b.and_(in_r, in_r, in_b)
            f_c0 = b.cmp(CmpOp.GE, ncol, 0)
            b.sel(in_b, f_c0, 1, 0)
            b.and_(in_r, in_r, in_b)
            f_c1 = b.cmp(CmpOp.LE, ncol, last)
            b.sel(in_b, f_c1, 1, 0)
            b.and_(in_r, in_r, in_b)
            f_in = b.cmp(CmpOp.NE, in_r, 0)
            with b.if_(f_in):
                b.mad(naddr, nrow, n, ncol)
                b.shl(naddr, naddr, 2)
                b.load(val, naddr, si)
                b.add(acc, acc, val)
                b.add(cnt, cnt, 1.0)
    b.div(acc, acc, cnt)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(acc, addr, so)
    program = b.finish()

    rng = np.random.default_rng(seed)
    img = rng.uniform(0, 255, (dim, dim)).astype(np.float32)
    out = np.zeros((dim, dim), dtype=np.float32)

    def check(buffers):
        expected = np.zeros((dim, dim), dtype=np.float64)
        counts = np.zeros((dim, dim), dtype=np.float64)
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                src = np.zeros((dim, dim))
                r0, r1 = max(0, -dr), dim - max(0, dr)
                c0, c1 = max(0, -dc), dim - max(0, dc)
                src[r0:r1, c0:c1] = img[r0 + dr:r1 + dr, c0 + dc:c1 + dc]
                valid = np.zeros((dim, dim))
                valid[r0:r1, c0:c1] = 1
                expected += src
                counts += valid
        np.testing.assert_allclose(
            buffers["out"].reshape(dim, dim), expected / counts, rtol=1e-4
        )

    return Workload(
        name="boxfilter",
        program=program,
        buffers={"inp": img.reshape(-1), "out": out.reshape(-1)},
        steps=[LaunchStep(global_size=dim * dim, scalars={"dim": dim})],
        check=check,
        category="coherent",
        description="3x3 box filter with border handling",
    )


def sobel(dim: int = 48, threshold: float = 120.0, simd_width: int = 16,
          seed: int = 41) -> Workload:
    """SblFr: Sobel gradient with an edge-threshold branch (divergent)."""
    b = KernelBuilder("sobel", simd_width)
    gid = b.global_id()
    si, so = b.surface_arg("inp"), b.surface_arg("out")
    n = b.scalar_arg("dim", DType.I32)
    thr = b.scalar_arg("threshold", DType.F32)
    row = b.vreg(DType.I32)
    col = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(row, gid, n)
    b.mul(tmp, row, n)
    b.sub(col, gid, tmp)
    last = b.vreg(DType.I32)
    b.sub(last, n, 1)

    out_val = b.vreg(DType.F32)
    b.mov(out_val, 0.0)
    # Interior pixels only; borders stay zero (divergent guard).
    f1 = b.cmp(CmpOp.GT, row, 0)
    g1 = b.vreg(DType.I32)
    b.sel(g1, f1, 1, 0)
    f2 = b.cmp(CmpOp.LT, row, last)
    g2 = b.vreg(DType.I32)
    b.sel(g2, f2, 1, 0)
    b.and_(g1, g1, g2)
    f3 = b.cmp(CmpOp.GT, col, 0)
    b.sel(g2, f3, 1, 0)
    b.and_(g1, g1, g2)
    f4 = b.cmp(CmpOp.LT, col, last)
    b.sel(g2, f4, 1, 0)
    b.and_(g1, g1, g2)
    interior = b.cmp(CmpOp.NE, g1, 0)
    with b.if_(interior):
        gx = b.vreg(DType.F32)
        gy = b.vreg(DType.F32)
        b.mov(gx, 0.0)
        b.mov(gy, 0.0)
        val = b.vreg(DType.F32)
        naddr = b.vreg(DType.I32)
        kx = {(-1, -1): -1, (-1, 1): 1, (0, -1): -2, (0, 1): 2, (1, -1): -1, (1, 1): 1}
        ky = {(-1, -1): -1, (-1, 0): -2, (-1, 1): -1, (1, -1): 1, (1, 0): 2, (1, 1): 1}
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                wx = kx.get((dr, dc), 0)
                wy = ky.get((dr, dc), 0)
                if wx == 0 and wy == 0:
                    continue
                b.add(naddr, row, dr)
                b.mul(naddr, naddr, n)
                b.add(naddr, naddr, col)
                b.add(naddr, naddr, dc)
                b.shl(naddr, naddr, 2)
                b.load(val, naddr, si)
                if wx:
                    b.mad(gx, val, float(wx), gx)
                if wy:
                    b.mad(gy, val, float(wy), gy)
        mag = b.vreg(DType.F32)
        b.mul(mag, gx, gx)
        b.mad(mag, gy, gy, mag)
        b.sqrt(mag, mag)
        # Edge pixels get an expensive tone-map; flat pixels a cheap copy.
        f_edge = b.cmp(CmpOp.GT, mag, thr)
        with b.if_(f_edge):
            b.mul(out_val, mag, 1.0 / 1445.0)
            b.log(out_val, out_val)
            b.mad(out_val, out_val, 0.1, 1.0)
            b.max_(out_val, out_val, 0.0)
            b.else_()
            b.mul(out_val, mag, 1.0 / 1445.0)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(out_val, addr, so)
    program = b.finish()

    rng = np.random.default_rng(seed)
    img = (rng.uniform(0, 64, (dim, dim))
           + 128 * (rng.random((dim, dim)) < 0.2)).astype(np.float32)
    out = np.zeros((dim, dim), dtype=np.float32)

    def check(buffers):
        f32 = np.float32
        gx = np.zeros((dim, dim), dtype=np.float32)
        gy = np.zeros((dim, dim), dtype=np.float32)
        kx = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float32)
        ky = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=np.float32)
        for dr in range(3):
            for dc in range(3):
                gx[1:-1, 1:-1] += kx[dr, dc] * img[dr:dim - 2 + dr, dc:dim - 2 + dc]
                gy[1:-1, 1:-1] += ky[dr, dc] * img[dr:dim - 2 + dr, dc:dim - 2 + dc]
        mag = np.sqrt(gx * gx + gy * gy).astype(np.float32)
        scaled = mag * f32(1.0 / 1445.0)
        with np.errstate(divide="ignore"):
            toned = np.maximum(np.log(scaled) * f32(0.1) + f32(1.0), f32(0.0))
        expected = np.where(mag > threshold, toned, scaled).astype(np.float32)
        expected[0, :] = expected[-1, :] = 0.0
        expected[:, 0] = expected[:, -1] = 0.0
        np.testing.assert_allclose(
            buffers["out"].reshape(dim, dim), expected, rtol=1e-3, atol=1e-5
        )

    return Workload(
        name="sobel",
        program=program,
        buffers={"inp": img.reshape(-1), "out": out.reshape(-1)},
        steps=[LaunchStep(global_size=dim * dim,
                          scalars={"dim": dim, "threshold": threshold})],
        check=check,
        category="divergent",
        description="Sobel filter with edge-threshold divergence",
    )


def gaussian_noise(n: int = 1024, simd_width: int = 16, seed: int = 42,
                   max_tries: int = 12) -> Workload:
    """Gnoise: Marsaglia polar rejection sampling; lanes retire unevenly."""
    b = KernelBuilder("gnoise", simd_width)
    gid = b.global_id()
    so = b.surface_arg("out")
    state = b.vreg(DType.I32)
    b.mad(state, gid, 1103515245 & 0x7FFFFFFF, 12345)
    u = b.vreg(DType.F32)
    v = b.vreg(DType.F32)
    s = b.vreg(DType.F32)
    tries = b.vreg(DType.I32)
    b.mov(tries, 0)
    accepted_s = b.vreg(DType.F32)
    b.mov(accepted_s, 0.5)  # fallback if no accept within max_tries
    accepted_u = b.vreg(DType.F32)
    b.mov(accepted_u, 0.5)
    bits = b.vreg(DType.I32)
    b.do_()
    for comp in (u, v):
        b.mul(state, state, 1664525)
        b.add(state, state, 1013904223)
        b.shr(bits, state, 16)
        b.and_(bits, bits, 0x7FFF)
        b.cvt(comp, bits)
        b.mad(comp, comp, 2.0 / 32767.0, -1.0)
    b.mul(s, u, u)
    b.mad(s, v, v, s)
    # Accept when 0 < s < 1; rejected lanes iterate again.
    f_ok = b.cmp(CmpOp.LT, s, 1.0)
    g_ok = b.vreg(DType.I32)
    b.sel(g_ok, f_ok, 1, 0)
    f_pos = b.cmp(CmpOp.GT, s, 1e-12)
    g_pos = b.vreg(DType.I32)
    b.sel(g_pos, f_pos, 1, 0)
    b.and_(g_ok, g_ok, g_pos)
    f_acc = b.cmp(CmpOp.NE, g_ok, 0)
    b.mov(accepted_s, s, pred=f_acc)
    b.mov(accepted_u, u, pred=f_acc)
    b.break_(f_acc)
    b.add(tries, tries, 1)
    f_more = b.cmp(CmpOp.LT, tries, max_tries, flag=FlagRef(1))
    b.while_(f_more)
    # z = u * sqrt(-2 ln(s) / s)
    z = b.vreg(DType.F32)
    b.log(z, accepted_s)
    b.mul(z, z, -2.0)
    b.div(z, z, accepted_s)
    b.sqrt(z, z)
    b.mul(z, z, accepted_u)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(z, addr, so)
    program = b.finish()

    out = np.zeros(n, dtype=np.float32)

    def check(buffers):
        ref = _gnoise_reference(n, max_tries)
        np.testing.assert_allclose(buffers["out"], ref, rtol=1e-3, atol=1e-4)

    return Workload(
        name="gnoise",
        program=program,
        buffers={"out": out},
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="divergent",
        description="Gaussian noise via polar rejection sampling",
    )


def _gnoise_reference(n: int, max_tries: int) -> np.ndarray:
    f32 = np.float32
    gid = np.arange(n, dtype=np.int64)
    state = (gid * (1103515245 & 0x7FFFFFFF) + 12345) & 0xFFFFFFFF
    state = np.where(state >= 2**31, state - 2**32, state)
    acc_s = np.full(n, 0.5, dtype=np.float32)
    acc_u = np.full(n, 0.5, dtype=np.float32)
    alive = np.ones(n, dtype=bool)

    def lcg(state, alive):
        nxt = (state * 1664525 + 1013904223) & 0xFFFFFFFF
        nxt = np.where(nxt >= 2**31, nxt - 2**32, nxt)
        state = np.where(alive, nxt, state)
        bits = (state >> 16) & 0x7FFF
        comp = bits.astype(np.float32) * f32(2.0 / 32767.0) + f32(-1.0)
        return state, comp

    for _ in range(max_tries):
        if not alive.any():
            break
        state, u = lcg(state, alive)
        state, v = lcg(state, alive)
        s = (u * u + v * v).astype(np.float32)
        accept = alive & (s < 1.0) & (s > 1e-12)
        acc_s = np.where(accept, s, acc_s)
        acc_u = np.where(accept, u, acc_u)
        alive &= ~accept
    z = acc_u * np.sqrt((np.log(acc_s) * f32(-2.0) / acc_s).astype(np.float32))
    return z.astype(np.float32)
