"""Search/learning workloads (paper Table 1: Bsearch, BP, HMM, SRD).

Binary search branches on every probe; the back-propagation layer
diverges on activation sign; the Viterbi step diverges on running-max
updates; SRAD (speckle-reducing anisotropic diffusion) clamps its
diffusion coefficient through data-dependent branches.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.registers import FlagRef
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload


def binary_search(num_keys: int = 1024, table_size: int = 1024,
                  simd_width: int = 16, seed: int = 80) -> Workload:
    """Bsearch: branchy lo/hi bisection over a sorted table."""
    steps_needed = int(np.ceil(np.log2(table_size))) + 1
    b = KernelBuilder("bsearch", simd_width)
    gid = b.global_id()
    s_table = b.surface_arg("table")
    s_keys = b.surface_arg("keys")
    s_out = b.surface_arg("found")
    n = b.scalar_arg("n", DType.I32)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    key = b.vreg(DType.F32)
    b.load(key, addr, s_keys)
    lo = b.vreg(DType.I32)
    hi = b.vreg(DType.I32)
    b.mov(lo, 0)
    b.mov(hi, n)
    mid = b.vreg(DType.I32)
    maddr = b.vreg(DType.I32)
    mval = b.vreg(DType.F32)
    it = b.vreg(DType.I32)
    b.mov(it, 0)
    nmax = b.vreg(DType.I32)
    b.sub(nmax, n, 1)
    b.do_()
    b.add(mid, lo, hi)
    b.shr(mid, mid, 1)
    # Clamp the probe: once lo == hi == n (key above the whole table)
    # the extra fixed-trip iterations re-read the last entry harmlessly.
    b.min_(mid, mid, nmax)
    b.shl(maddr, mid, 2)
    b.load(mval, maddr, s_table)
    below = b.cmp(CmpOp.LT, mval, key)
    with b.if_(below):
        b.add(lo, mid, 1)
        b.else_()
        b.mov(hi, mid)
    b.add(it, it, 1)
    more = b.cmp(CmpOp.LT, it, steps_needed, flag=FlagRef(1))
    b.while_(more)
    b.store(lo, addr, s_out)
    program = b.finish()

    rng = np.random.default_rng(seed)
    table = np.sort(rng.uniform(0, 1000, table_size)).astype(np.float32)
    keys = rng.uniform(-10, 1010, num_keys).astype(np.float32)
    found = np.zeros(num_keys, dtype=np.int32)

    def check(buffers):
        expected = np.searchsorted(table, keys, side="left").astype(np.int32)
        np.testing.assert_array_equal(buffers["found"], expected)

    return Workload(
        name="bsearch",
        program=program,
        buffers={"table": table, "keys": keys, "found": found},
        steps=[LaunchStep(global_size=num_keys, scalars={"n": table_size})],
        check=check,
        category="divergent",
        description="binary search with branchy bisection",
    )


def backprop_layer(neurons: int = 256, inputs: int = 24,
                   simd_width: int = 16, seed: int = 81) -> Workload:
    """BP: forward layer with a leaky-ReLU branch on the activation sign."""
    b = KernelBuilder("bp", simd_width)
    gid = b.global_id()
    s_w = b.surface_arg("weights")
    s_x = b.surface_arg("inputs")
    s_y = b.surface_arg("outputs")
    nin = b.scalar_arg("nin", DType.I32)

    acc = b.vreg(DType.F32)
    b.mov(acc, 0.0)
    base = b.vreg(DType.I32)
    b.mul(base, gid, nin)
    i = b.vreg(DType.I32)
    b.mov(i, 0)
    addr = b.vreg(DType.I32)
    w = b.vreg(DType.F32)
    x = b.vreg(DType.F32)
    b.do_()
    b.add(addr, base, i)
    b.shl(addr, addr, 2)
    b.load(w, addr, s_w)
    b.shl(addr, i, 2)
    b.load(x, addr, s_x)
    b.mad(acc, w, x, acc)
    b.add(i, i, 1)
    more = b.cmp(CmpOp.LT, i, nin)
    b.while_(more)

    # Leaky ReLU: negative activations take a heavier path (the paper's
    # BP kernel diverges on the sigmoid-derivative branch similarly).
    neg = b.cmp(CmpOp.LT, acc, 0.0)
    with b.if_(neg):
        b.mul(acc, acc, 0.01)
        b.exp(w, acc)  # extra EM work on the negative path
        b.mad(acc, w, 1e-6, acc)
        b.else_()
        pass  # identity on the positive path
    out_addr = b.vreg(DType.I32)
    b.shl(out_addr, gid, 2)
    b.store(acc, out_addr, s_y)
    program = b.finish()

    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((neurons, inputs)).astype(np.float32) / inputs
    x = rng.standard_normal(inputs).astype(np.float32)
    y = np.zeros(neurons, dtype=np.float32)

    def check(buffers):
        acts = (weights.astype(np.float64) @ x).astype(np.float32)
        negative = acts < 0
        leaky = acts * np.float32(0.01)
        ref = np.where(
            negative,
            leaky + np.exp(leaky) * np.float32(1e-6),
            acts,
        ).astype(np.float32)
        np.testing.assert_allclose(buffers["outputs"], ref, rtol=2e-3,
                                   atol=2e-4)

    return Workload(
        name="bp",
        program=program,
        buffers={"weights": weights.reshape(-1), "inputs": x, "outputs": y},
        steps=[LaunchStep(global_size=neurons, scalars={"nin": inputs})],
        check=check,
        category="divergent",
        description="neural layer with leaky-ReLU sign divergence",
    )


def hmm_viterbi(sequences: int = 256, timesteps: int = 12,
                simd_width: int = 16, seed: int = 82) -> Workload:
    """HMM: 4-state Viterbi per lane with branchy running-max updates."""
    num_states = 4
    b = KernelBuilder("hmm", simd_width)
    gid = b.global_id()
    s_obs = b.surface_arg("obs")  # per (sequence, t): observation in {0,1}
    s_trans = b.surface_arg("trans")  # log transition, 4x4
    s_emit = b.surface_arg("emit")  # log emission, 4x2
    s_out = b.surface_arg("loglik")
    steps_n = b.scalar_arg("T", DType.I32)

    v = [b.vreg(DType.F32) for _ in range(num_states)]
    for reg in v:
        b.mov(reg, np.log(1.0 / num_states))
    t = b.vreg(DType.I32)
    b.mov(t, 0)
    obs = b.vreg(DType.I32)
    addr = b.vreg(DType.I32)
    trans_v = b.vreg(DType.F32)
    emit_v = b.vreg(DType.F32)
    cand = b.vreg(DType.F32)
    best = b.vreg(DType.F32)
    new_v = [b.vreg(DType.F32) for _ in range(num_states)]

    b.do_()
    # obs[t] for this lane's sequence
    b.mul(addr, gid, steps_n)
    b.add(addr, addr, t)
    b.shl(addr, addr, 2)
    b.load(obs, addr, s_obs)
    for s_to in range(num_states):
        b.mov(best, -1e30)
        for s_from in range(num_states):
            taddr = b.vreg(DType.I32)
            b.mov(taddr, (s_from * num_states + s_to) * 4)
            b.load(trans_v, taddr, s_trans)
            b.add(cand, v[s_from], trans_v)
            higher = b.cmp(CmpOp.GT, cand, best)
            with b.if_(higher):
                b.mov(best, cand)
        eaddr = b.vreg(DType.I32)
        b.mov(eaddr, s_to * 2)
        b.add(eaddr, eaddr, obs)
        b.shl(eaddr, eaddr, 2)
        b.load(emit_v, eaddr, s_emit)
        b.add(new_v[s_to], best, emit_v)
    for s_to in range(num_states):
        b.mov(v[s_to], new_v[s_to])
    b.add(t, t, 1)
    more = b.cmp(CmpOp.LT, t, steps_n)
    b.while_(more)

    # loglik = max over final states (branchy again).
    b.mov(best, -1e30)
    for s_idx in range(num_states):
        higher = b.cmp(CmpOp.GT, v[s_idx], best)
        with b.if_(higher):
            b.mov(best, v[s_idx])
    out_addr = b.vreg(DType.I32)
    b.shl(out_addr, gid, 2)
    b.store(best, out_addr, s_out)
    program = b.finish()

    rng = np.random.default_rng(seed)
    trans = np.log(rng.dirichlet(np.ones(num_states), num_states)
                   ).astype(np.float32)
    emit = np.log(rng.dirichlet(np.ones(2), num_states)).astype(np.float32)
    obs = rng.integers(0, 2, (sequences, timesteps)).astype(np.int32)
    loglik = np.zeros(sequences, dtype=np.float32)

    def check(buffers):
        expected = np.zeros(sequences, dtype=np.float32)
        for seq in range(sequences):
            v = np.full(num_states, np.float32(np.log(1.0 / num_states)),
                        dtype=np.float32)
            for t in range(timesteps):
                scores = v[:, None] + trans  # [from, to]
                v = (scores.max(axis=0)
                     + emit[:, obs[seq, t]]).astype(np.float32)
            expected[seq] = v.max()
        np.testing.assert_allclose(buffers["loglik"], expected, rtol=1e-4,
                                   atol=1e-4)

    return Workload(
        name="hmm",
        program=program,
        buffers={"obs": obs.reshape(-1), "trans": trans.reshape(-1),
                 "emit": emit.reshape(-1), "loglik": loglik},
        steps=[LaunchStep(global_size=sequences, scalars={"T": timesteps})],
        check=check,
        category="divergent",
        description="4-state Viterbi with branchy max reductions",
    )


def srad(dim: int = 32, simd_width: int = 16, seed: int = 83) -> Workload:
    """SRD: one SRAD diffusion-coefficient step with clamp branches."""
    b = KernelBuilder("srad", simd_width)
    gid = b.global_id()
    s_img = b.surface_arg("img")
    s_c = b.surface_arg("coeff")
    n = b.scalar_arg("dim", DType.I32)
    q0 = b.scalar_arg("q0", DType.F32)

    row = b.vreg(DType.I32)
    col = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(row, gid, n)
    b.mul(tmp, row, n)
    b.sub(col, gid, tmp)
    last = b.vreg(DType.I32)
    b.sub(last, n, 1)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    center = b.vreg(DType.F32)
    b.load(center, addr, s_img)

    # Clamped neighbour fetch: min/max keep edge lanes in bounds (the
    # Rodinia kernel uses the same replicate-boundary convention).
    grad2 = b.vreg(DType.F32)
    b.mov(grad2, 0.0)
    lap = b.vreg(DType.F32)
    b.mov(lap, 0.0)
    nb = b.vreg(DType.F32)
    nrow = b.vreg(DType.I32)
    ncol = b.vreg(DType.I32)
    naddr = b.vreg(DType.I32)
    diff = b.vreg(DType.F32)
    for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        b.add(nrow, row, dr)
        b.max_(nrow, nrow, 0)
        b.min_(nrow, nrow, last)
        b.add(ncol, col, dc)
        b.max_(ncol, ncol, 0)
        b.min_(ncol, ncol, last)
        b.mul(naddr, nrow, n)
        b.add(naddr, naddr, ncol)
        b.shl(naddr, naddr, 2)
        b.load(nb, naddr, s_img)
        b.sub(diff, nb, center)
        b.add(lap, lap, diff)
        b.mad(grad2, diff, diff, grad2)

    # q = grad2 / (center^2 + eps); branch: smooth regions diffuse fully,
    # edges (q > q0) shut diffusion off, in between a rational falloff.
    c2 = b.vreg(DType.F32)
    b.mul(c2, center, center)
    b.add(c2, c2, 1e-4)
    q = b.vreg(DType.F32)
    b.div(q, grad2, c2)
    coeff = b.vreg(DType.F32)
    f_edge = b.cmp(CmpOp.GT, q, q0)
    with b.if_(f_edge):
        b.mov(coeff, 0.0)
        b.else_()
        denom = b.vreg(DType.F32)
        b.div(denom, q, q0)
        b.add(denom, denom, 1.0)
        b.div(coeff, 1.0, denom)
    out_addr = b.vreg(DType.I32)
    b.shl(out_addr, gid, 2)
    b.store(coeff, out_addr, s_c)
    program = b.finish()

    rng = np.random.default_rng(seed)
    img = (rng.uniform(0.5, 1.0, (dim, dim))
           + 2.0 * (rng.random((dim, dim)) < 0.15)).astype(np.float32)
    coeff = np.zeros(dim * dim, dtype=np.float32)
    q0_value = 0.5

    def check(buffers):
        f32 = np.float32
        padded = np.pad(img, 1, mode="edge")
        lap = np.zeros((dim, dim), dtype=np.float32)
        grad2 = np.zeros((dim, dim), dtype=np.float32)
        for (r0, r1, c0, c1) in ((0, -2, 1, -1), (2, None, 1, -1),
                                 (1, -1, 0, -2), (1, -1, 2, None)):
            nb = padded[r0:r1, c0:c1]
            diff = (nb - img).astype(np.float32)
            lap += diff
            grad2 += diff * diff
        q = grad2 / (img * img + f32(1e-4))
        smooth = f32(1.0) / (q / f32(q0_value) + f32(1.0))
        expected = np.where(q > q0_value, f32(0.0), smooth).astype(np.float32)
        np.testing.assert_allclose(
            buffers["coeff"].reshape(dim, dim), expected, rtol=1e-3,
            atol=1e-5)

    return Workload(
        name="srad",
        program=program,
        buffers={"img": img.reshape(-1), "coeff": coeff},
        steps=[LaunchStep(global_size=dim * dim,
                          scalars={"dim": dim, "q0": q0_value})],
        check=check,
        category="divergent",
        description="SRAD diffusion coefficient with edge-clamp branches",
    )
