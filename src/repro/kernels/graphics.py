"""3D-graphics workload: fragment shading with coverage/alpha divergence.

The paper's trace set includes OpenGL benchmarks (GLBench) whose
divergence comes from fragment quads straddling triangle edges and from
alpha-tested geometry.  This workload reproduces that structure the way
the hardware pipeline creates it: *rasterization* (edge functions) is
fixed-function and runs on the host, producing a per-pixel coverage
word; the simulated kernel is the *fragment shader*, launched once per
triangle over the full render target.  Warps fully outside the triangle
jump over the shader; warps straddling an edge execute it with a
partial mask — exactly the fragment-quad divergence the paper's OpenGL
traces exhibit — and alpha-tested triangles discard additional lanes
inside the covered region.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload

#: Floats per packed triangle record: shade, alpha, u-scale, v-scale.
TRI_FLOATS = 4


def _make_scene(num_tris: int, width_px: int, seed: int):
    """Rasterize random triangles on the host (the fixed-function step).

    Returns the per-pixel coverage bit-field (bit *t* set = pixel inside
    triangle *t*) and the per-triangle shading parameters.
    """
    if num_tris > 31:
        raise ValueError("coverage words hold at most 31 triangles")
    rng = np.random.default_rng(seed)
    gid = np.arange(width_px * width_px)
    py = (gid // width_px).astype(np.float64)
    px = (gid - (gid // width_px) * width_px).astype(np.float64)
    x = (px + 0.5) / width_px
    y = (py + 0.5) / width_px

    coverage = np.zeros(width_px * width_px, dtype=np.int32)
    params = np.zeros((num_tris, TRI_FLOATS), dtype=np.float32)
    for t in range(num_tris):
        center = rng.uniform(0.15, 0.85, 2)
        angles = np.sort(rng.uniform(0, 2 * np.pi, 3))
        radius = rng.uniform(0.15, 0.45, 3)
        vx = center[0] + radius * np.cos(angles)
        vy = center[1] + radius * np.sin(angles)
        inside = np.ones(gid.shape, dtype=bool)
        for v in range(3):
            nxt = (v + 1) % 3
            edge = ((x - vx[v]) * (vy[nxt] - vy[v])
                    - (y - vy[v]) * (vx[nxt] - vx[v]))
            inside &= edge <= 0
        coverage |= inside.astype(np.int32) << t
        params[t] = (rng.uniform(0.2, 1.0), rng.uniform(0.0, 1.0),
                     rng.uniform(8.0, 40.0), rng.uniform(8.0, 40.0))
    return coverage, params


def fragment_shade(width_px: int = 32, num_tris: int = 12,
                   simd_width: int = 16, alpha_cutoff: float = 0.35,
                   seed: int = 90) -> Workload:
    """Shade *num_tris* pre-rasterized triangles, one pass per triangle."""
    b = KernelBuilder("glfrag", simd_width)
    gid = b.global_id()
    s_cov = b.surface_arg("coverage")
    s_tris = b.surface_arg("tris")
    s_fb = b.surface_arg("framebuffer")
    tri = b.scalar_arg("tri", DType.I32)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    cov = b.vreg(DType.I32)
    b.load(cov, addr, s_cov)
    bit = b.vreg(DType.I32)
    b.shr(bit, cov, tri)
    b.and_(bit, bit, 1)
    covered = b.cmp(CmpOp.NE, bit, 0)
    with b.if_(covered):
        base = b.vreg(DType.I32)
        b.mul(base, tri, TRI_FLOATS * 4)
        shade = b.vreg(DType.F32)
        alpha = b.vreg(DType.F32)
        b.load(shade, base, s_tris)
        b.add(base, base, 4)
        b.load(alpha, base, s_tris)
        passed = b.cmp(CmpOp.GT, alpha, alpha_cutoff)
        with b.if_(passed):
            uscale = b.vreg(DType.F32)
            vscale = b.vreg(DType.F32)
            b.add(base, base, 4)
            b.load(uscale, base, s_tris)
            b.add(base, base, 4)
            b.load(vscale, base, s_tris)
            # Procedural texture: sin/cos interference + gamma.
            fx = b.vreg(DType.F32)
            fy = b.vreg(DType.F32)
            b.cvt(fx, gid)
            b.mul(fy, fx, 1.0 / width_px)
            b.floor(fy, fy)
            tex = b.vreg(DType.F32)
            b.mul(tex, fx, 0.0371)
            b.mul(tex, tex, uscale)
            b.sin(tex, tex)
            swirl = b.vreg(DType.F32)
            b.mul(swirl, fy, 0.0523)
            b.mul(swirl, swirl, vscale)
            b.cos(swirl, swirl)
            b.mad(tex, swirl, 0.5, tex)
            b.mad(tex, tex, 0.25, 1.0)
            lit = b.vreg(DType.F32)
            b.sqrt(lit, shade)
            b.mul(lit, lit, tex)
            b.mul(lit, lit, alpha)
            # Blend into the framebuffer (read-modify-write).
            dst = b.vreg(DType.F32)
            b.load(dst, addr, s_fb)
            one_minus = b.vreg(DType.F32)
            b.sub(one_minus, 1.0, alpha)
            b.mul(dst, dst, one_minus)
            b.add(dst, dst, lit)
            b.store(dst, addr, s_fb)
    program = b.finish()

    coverage, params = _make_scene(num_tris, width_px, seed)
    n = width_px * width_px
    framebuffer = np.full(n, 0.05, dtype=np.float32)

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= num_tris:
            return None
        return LaunchStep(global_size=n, scalars={"tri": index})

    def check(buffers):
        ref = _host_shade(coverage, params, width_px, alpha_cutoff)
        np.testing.assert_allclose(buffers["framebuffer"], ref, rtol=1e-4,
                                   atol=1e-5)

    return Workload(
        name="glfrag",
        program=program,
        buffers={"coverage": coverage, "tris": params.reshape(-1),
                 "framebuffer": framebuffer},
        steps=steps,
        check=check,
        category="divergent",
        description="fragment shading with coverage + alpha-test divergence",
        max_steps=num_tris + 1,
    )


def _host_shade(coverage: np.ndarray, params: np.ndarray, width_px: int,
                alpha_cutoff: float) -> np.ndarray:
    f32 = np.float32
    n = coverage.shape[0]
    gid = np.arange(n)
    color = np.full(n, 0.05, dtype=np.float32)
    fx = gid.astype(np.float32)
    fy = np.floor((fx * f32(1.0 / width_px)).astype(np.float32)).astype(np.float32)
    for t in range(params.shape[0]):
        shade, alpha, uscale, vscale = (f32(v) for v in params[t])
        inside = (coverage >> t) & 1 == 1
        if alpha <= alpha_cutoff:
            continue
        tex = np.sin(((fx * f32(0.0371)).astype(np.float32)
                      * uscale).astype(np.float32)).astype(np.float32)
        swirl = np.cos(((fy * f32(0.0523)).astype(np.float32)
                        * vscale).astype(np.float32)).astype(np.float32)
        tex = (tex + swirl * f32(0.5)).astype(np.float32)
        tex = (tex * f32(0.25) + f32(1.0)).astype(np.float32)
        lit = (f32(np.sqrt(shade)) * tex * alpha).astype(np.float32)
        blended = (color * (f32(1.0) - alpha) + lit).astype(np.float32)
        color = np.where(inside, blended, color)
    return color
