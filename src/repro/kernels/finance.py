"""Finance workloads (paper Table 1: Bscholes, BOP, MCA).

Black-Scholes is the archetypal *coherent* heavy-math kernel; the
binomial lattice is coherent with a long dependent loop; Monte Carlo
Asian-option pricing is *divergent*: each lane's path terminates early
when its running price crosses a barrier, so the path loop sheds lanes
over time — exactly the pattern intra-warp compaction harvests.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload

_INV_SQRT_2PI = 0.3989422804014327


def _emit_cnd(b: KernelBuilder, out, x, tmp_regs) -> None:
    """Emit the cumulative-normal-distribution polynomial approximation.

    Standard Abramowitz-Stegun 5-coefficient fit, as used by the
    OpenCL SDK Black-Scholes samples.
    """
    k, poly, pdf, absx = tmp_regs
    b.abs_(absx, x)
    # k = 1 / (1 + 0.2316419 * |x|)
    b.mad(k, absx, 0.2316419, 1.0)
    b.div(k, 1.0, k)
    # poly = k*(a1 + k*(a2 + k*(a3 + k*(a4 + k*a5))))
    b.mad(poly, k, 1.330274429, -1.821255978)
    b.mad(poly, poly, k, 1.781477937)
    b.mad(poly, poly, k, -0.356563782)
    b.mad(poly, poly, k, 0.319381530)
    b.mul(poly, poly, k)
    # pdf = inv_sqrt_2pi * exp(-x^2/2)
    b.mul(pdf, x, x)
    b.mul(pdf, pdf, -0.5)
    b.exp(pdf, pdf)
    b.mul(pdf, pdf, _INV_SQRT_2PI)
    # out = 1 - pdf*poly; for x < 0, out = 1 - out
    b.mul(out, pdf, poly)
    b.sub(out, 1.0, out)
    f = b.cmp(CmpOp.LT, x, 0.0)
    neg = poly  # reuse
    b.sub(neg, 1.0, out)
    b.sel(out, f, neg, out)


def black_scholes(n: int = 2048, simd_width: int = 16) -> Workload:
    """Bscholes-N: European call pricing; fully coherent EM-heavy math."""
    b = KernelBuilder("bscholes", simd_width)
    gid = b.global_id()
    sS, sK, sT, sC = (b.surface_arg(x) for x in ("S", "K", "T", "call"))
    riskfree = b.scalar_arg("r", DType.F32)
    vol = b.scalar_arg("v", DType.F32)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    S = b.vreg(DType.F32)
    K = b.vreg(DType.F32)
    T = b.vreg(DType.F32)
    b.load(S, addr, sS)
    b.load(K, addr, sK)
    b.load(T, addr, sT)

    sqrtT = b.vreg(DType.F32)
    b.sqrt(sqrtT, T)
    d1 = b.vreg(DType.F32)
    b.div(d1, S, K)
    b.log(d1, d1)
    vsq = b.vreg(DType.F32)
    b.mul(vsq, vol, vol)
    b.mul(vsq, vsq, 0.5)
    drift = b.vreg(DType.F32)
    b.add(drift, riskfree, vsq)
    b.mad(d1, drift, T, d1)
    denom = b.vreg(DType.F32)
    b.mul(denom, vol, sqrtT)
    b.div(d1, d1, denom)
    d2 = b.vreg(DType.F32)
    b.sub(d2, d1, denom)

    tmp = tuple(b.vreg(DType.F32) for _ in range(4))
    nd1 = b.vreg(DType.F32)
    nd2 = b.vreg(DType.F32)
    _emit_cnd(b, nd1, d1, tmp)
    _emit_cnd(b, nd2, d2, tmp)

    disc = b.vreg(DType.F32)
    b.mul(disc, riskfree, T)
    b.mul(disc, disc, -1.0)
    b.exp(disc, disc)
    call = b.vreg(DType.F32)
    b.mul(call, K, disc)
    b.mul(call, call, nd2)
    right = b.vreg(DType.F32)
    b.mul(right, S, nd1)
    b.sub(call, right, call)
    b.store(call, addr, sC)
    program = b.finish()

    rng = np.random.default_rng(10)
    S = rng.uniform(10, 100, n).astype(np.float32)
    K = rng.uniform(10, 100, n).astype(np.float32)
    T = rng.uniform(0.2, 2.0, n).astype(np.float32)
    call = np.zeros(n, dtype=np.float32)
    r, v = 0.05, 0.3

    def check(buffers):
        from scipy.stats import norm  # available offline per environment

        d1 = (np.log(S / K) + (r + v * v / 2) * T) / (v * np.sqrt(T))
        d2 = d1 - v * np.sqrt(T)
        ref = S * norm.cdf(d1) - K * np.exp(-r * T) * norm.cdf(d2)
        np.testing.assert_allclose(buffers["call"], ref, rtol=5e-3, atol=5e-3)

    return Workload(
        name="bscholes",
        program=program,
        buffers={"S": S, "K": K, "T": T, "call": call},
        steps=[LaunchStep(global_size=n, scalars={"r": r, "v": v})],
        check=check,
        category="coherent",
        description="Black-Scholes European option pricing",
    )


def binomial_option(n: int = 512, depth: int = 16, simd_width: int = 16) -> Workload:
    """BOP: binomial lattice backward induction; coherent fixed loop."""
    b = KernelBuilder("bop", simd_width)
    gid = b.global_id()
    sS, sC = b.surface_arg("S"), b.surface_arg("price")
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    S = b.vreg(DType.F32)
    b.load(S, addr, sS)
    # Simplified CRR lattice with fixed up/down factors; each work-item
    # walks its own `depth`-step induction entirely in registers.
    value = b.vreg(DType.F32)
    b.mov(value, 0.0)
    level = b.vreg(DType.I32)
    b.mov(level, 0)
    up = 1.05
    prob = 0.55
    growth = b.vreg(DType.F32)
    b.mov(growth, S)
    b.do_()
    # value = prob * value*up + (1-prob) * growth
    scaled = b.vreg(DType.F32)
    b.mul(scaled, value, up)
    b.mul(scaled, scaled, prob)
    b.mad(value, growth, 1.0 - prob, scaled)
    b.mul(growth, growth, 1.0 / up)
    b.add(level, level, 1)
    f = b.cmp(CmpOp.LT, level, depth)
    b.while_(f)
    b.store(value, addr, sC)
    program = b.finish()

    rng = np.random.default_rng(11)
    S = rng.uniform(10, 100, n).astype(np.float32)
    price = np.zeros(n, dtype=np.float32)

    def check(buffers):
        value = np.zeros(n, dtype=np.float64)
        growth = S.astype(np.float64).copy()
        for _ in range(depth):
            value = 0.55 * value * 1.05 + 0.45 * growth
            growth = growth / 1.05
        np.testing.assert_allclose(buffers["price"], value, rtol=1e-3)

    return Workload(
        name="bop",
        program=program,
        buffers={"S": S, "price": price},
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="coherent",
        description="binomial option pricing lattice",
    )


def monte_carlo_asian(n: int = 1024, max_steps: int = 24, simd_width: int = 16) -> Workload:
    """MCA: barrier-terminated price paths; lanes retire at different steps.

    Each lane evolves a pseudo-random walk and *breaks out* of the path
    loop when it crosses the knock-out barrier, leaving a dwindling
    active mask — a classic divergent workload.
    """
    b = KernelBuilder("mca", simd_width)
    gid = b.global_id()
    sS, sO = b.surface_arg("S"), b.surface_arg("payoff")
    barrier_level = b.scalar_arg("barrier", DType.F32)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    S = b.vreg(DType.F32)
    b.load(S, addr, sS)
    price = b.vreg(DType.F32)
    b.mov(price, S)
    total = b.vreg(DType.F32)
    b.mov(total, 0.0)
    step = b.vreg(DType.I32)
    b.mov(step, 0)
    # xorshift-style per-lane RNG state seeded from gid
    state = b.vreg(DType.I32)
    b.mad(state, gid, 2654435761 & 0x7FFFFFFF, 12345)
    b.do_()
    # advance RNG: state = state*1664525 + 1013904223 (LCG, low bits)
    b.mul(state, state, 1664525)
    b.add(state, state, 1013904223)
    noise = b.vreg(DType.I32)
    b.shr(noise, state, 16)
    b.and_(noise, noise, 0xFF)
    fnoise = b.vreg(DType.F32)
    b.cvt(fnoise, noise)
    # shock in [0.96, 1.0425]: price *= 0.96 + noise/255 * 0.0825
    b.mad(fnoise, fnoise, 0.0825 / 255.0, 0.96)
    b.mul(price, price, fnoise)
    b.add(total, total, price)
    b.add(step, step, 1)
    # knock-out: lanes whose price crossed the barrier exit early
    fout = b.cmp(CmpOp.GT, price, barrier_level)
    b.break_(fout)
    fcont = b.cmp(CmpOp.LT, step, max_steps)
    b.while_(fcont)
    avg = b.vreg(DType.F32)
    stepf = b.vreg(DType.F32)
    b.cvt(stepf, step)
    b.max_(stepf, stepf, 1.0)
    b.div(avg, total, stepf)
    b.store(avg, addr, sO)
    program = b.finish()

    rng = np.random.default_rng(12)
    S = rng.uniform(50, 95, n).astype(np.float32)
    payoff = np.zeros(n, dtype=np.float32)
    barrier_value = 100.0

    def check(buffers):
        ref = _mca_reference(S, barrier_value, max_steps, n)
        np.testing.assert_allclose(buffers["payoff"], ref, rtol=1e-3, atol=1e-3)

    return Workload(
        name="mca",
        program=program,
        buffers={"S": S, "payoff": payoff},
        steps=[LaunchStep(global_size=n, scalars={"barrier": barrier_value})],
        check=check,
        category="divergent",
        description="Monte Carlo barrier-option paths with early lane exit",
    )


def _mca_reference(S: np.ndarray, barrier: float, max_steps: int, n: int) -> np.ndarray:
    """Host reference for :func:`monte_carlo_asian` (same LCG stream)."""
    gid = np.arange(n, dtype=np.int64)
    state = (gid * (2654435761 & 0x7FFFFFFF) + 12345) & 0xFFFFFFFF
    state = np.where(state >= 2**31, state - 2**32, state)  # int32 wrap
    price = S.astype(np.float32).copy()
    total = np.zeros(n, dtype=np.float32)
    steps = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    for _ in range(max_steps):
        if not alive.any():
            break
        state[alive] = (state[alive] * 1664525 + 1013904223) & 0xFFFFFFFF
        state = np.where(state >= 2**31, state - 2**32, state)  # int32 wrap
        noise = (state >> 16) & 0xFF
        shock = (noise.astype(np.float32) * np.float32(0.0825 / 255.0)
                 + np.float32(0.96))
        price[alive] = price[alive] * shock[alive]
        total[alive] += price[alive]
        steps[alive] += 1
        crossed = alive & (price > barrier)
        alive &= ~crossed
    return total / np.maximum(steps, 1).astype(np.float32)
